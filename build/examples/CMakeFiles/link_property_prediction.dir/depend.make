# Empty dependencies file for link_property_prediction.
# This may be replaced when dependencies are built.
