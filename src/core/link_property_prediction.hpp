/// @file
/// Link property prediction — the extension task of SVIII-B.
///
/// The paper shows its framework extends to new tasks by reusing the
/// walk + word2vec front-end and swapping the data-preparation and
/// classifier stages; predicting *edge labels* is its worked example.
/// This module implements that task: each edge carries a property
/// class, and a classifier over concatenated endpoint embeddings
/// predicts it. A built-in labeler derives a 2-class temporal property
/// (old/recent edge) for datasets without explicit edge labels, which
/// is learnable precisely because temporal walks encode when
/// neighborhoods form.
#pragma once

#include "core/link_prediction.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>
#include <vector>

namespace tgl::core {

/// Assign each edge a class label by timestamp quantile: class c for
/// edges in the c-th of @p num_classes equal-count time buckets.
std::vector<std::uint32_t>
label_edges_by_time(const graph::EdgeList& edges,
                    std::uint32_t num_classes);

/// Train and evaluate a multi-class edge-property classifier.
///
/// @param edges       temporal edges
/// @param edge_labels one class per edge (parallel to @p edges)
/// @param num_classes |C|
/// @param embedding   node embeddings from the shared front-end
/// @param split       split fractions (negative sampling unused)
/// @param config      classifier hyperparameters
TaskResult run_link_property_prediction(
    const graph::EdgeList& edges,
    const std::vector<std::uint32_t>& edge_labels,
    std::uint32_t num_classes, const embed::Embedding& embedding,
    const SplitConfig& split, const ClassifierConfig& config);

} // namespace tgl::core
