# Empty compiler generated dependencies file for test_util_threading.
# This may be replaced when dependencies are built.
