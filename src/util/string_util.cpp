#include "util/string_util.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace tgl::util {

std::string_view
trim(std::string_view text)
{
    std::size_t first = 0;
    while (first < text.size() &&
           std::isspace(static_cast<unsigned char>(text[first]))) {
        ++first;
    }
    std::size_t last = text.size();
    while (last > first &&
           std::isspace(static_cast<unsigned char>(text[last - 1]))) {
        --last;
    }
    return text.substr(first, last - first);
}

std::vector<std::string_view>
split(std::string_view text, std::string_view delims)
{
    std::vector<std::string_view> fields;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t start = text.find_first_not_of(delims, pos);
        if (start == std::string_view::npos) {
            break;
        }
        std::size_t stop = text.find_first_of(delims, start);
        if (stop == std::string_view::npos) {
            stop = text.size();
        }
        fields.push_back(text.substr(start, stop - start));
        pos = stop;
    }
    return fields;
}

bool
starts_with(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

long long
parse_int(std::string_view text)
{
    text = trim(text);
    long long value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        fatal(strcat("malformed integer: '", std::string(text), "'"));
    }
    return value;
}

double
parse_double(std::string_view text)
{
    text = trim(text);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        fatal(strcat("malformed number: '", std::string(text), "'"));
    }
    return value;
}

std::string
format_fixed(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
format_count(unsigned long long value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
            out.push_back(',');
        }
        out.push_back(digits[i]);
    }
    return out;
}

std::string
json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out.push_back(c);
            }
            break;
        }
    }
    return out;
}

} // namespace tgl::util
