/// Tests for the mini-batch data loader.
#include "nn/data_loader.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tgl::nn {
namespace {

TaskDataset
make_dataset(std::size_t n)
{
    TaskDataset dataset;
    dataset.features.resize(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
        dataset.features(i, 0) = static_cast<float>(i);
        dataset.features(i, 1) = static_cast<float>(i) * 10.0f;
        dataset.binary_labels.push_back(i % 2 == 0 ? 1.0f : 0.0f);
        dataset.class_labels.push_back(static_cast<std::uint32_t>(i % 3));
    }
    return dataset;
}

TEST(DataLoader, BatchCountRoundsUp)
{
    const TaskDataset dataset = make_dataset(10);
    EXPECT_EQ(DataLoader(dataset, 4, false, 1).num_batches(), 3u);
    EXPECT_EQ(DataLoader(dataset, 5, false, 1).num_batches(), 2u);
    EXPECT_EQ(DataLoader(dataset, 10, false, 1).num_batches(), 1u);
    EXPECT_EQ(DataLoader(dataset, 16, false, 1).num_batches(), 1u);
}

TEST(DataLoader, UnshuffledPreservesOrder)
{
    const TaskDataset dataset = make_dataset(6);
    DataLoader loader(dataset, 4, false, 1);
    Tensor features;
    std::vector<float> binary;
    std::vector<std::uint32_t> classes;
    loader.batch(0, features, binary, classes);
    ASSERT_EQ(features.rows(), 4u);
    EXPECT_FLOAT_EQ(features(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(features(3, 0), 3.0f);
    loader.batch(1, features, binary, classes);
    ASSERT_EQ(features.rows(), 2u); // short final batch
    EXPECT_FLOAT_EQ(features(1, 0), 5.0f);
}

TEST(DataLoader, LabelsTrackFeatures)
{
    const TaskDataset dataset = make_dataset(6);
    DataLoader loader(dataset, 6, true, 7);
    Tensor features;
    std::vector<float> binary;
    std::vector<std::uint32_t> classes;
    loader.batch(0, features, binary, classes);
    for (std::size_t i = 0; i < 6; ++i) {
        const auto original =
            static_cast<std::size_t>(features(i, 0));
        EXPECT_FLOAT_EQ(binary[i], original % 2 == 0 ? 1.0f : 0.0f);
        EXPECT_EQ(classes[i], original % 3);
        EXPECT_FLOAT_EQ(features(i, 1),
                        static_cast<float>(original) * 10.0f);
    }
}

TEST(DataLoader, ShuffledEpochCoversAllExamplesOnce)
{
    const TaskDataset dataset = make_dataset(20);
    DataLoader loader(dataset, 7, true, 3);
    std::multiset<int> seen;
    Tensor features;
    std::vector<float> binary;
    std::vector<std::uint32_t> classes;
    for (std::size_t b = 0; b < loader.num_batches(); ++b) {
        loader.batch(b, features, binary, classes);
        for (std::size_t i = 0; i < features.rows(); ++i) {
            seen.insert(static_cast<int>(features(i, 0)));
        }
    }
    EXPECT_EQ(seen.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(seen.count(i), 1u) << "example " << i;
    }
}

TEST(DataLoader, StartEpochReshuffles)
{
    const TaskDataset dataset = make_dataset(50);
    DataLoader loader(dataset, 50, true, 5);
    Tensor first, second;
    std::vector<float> binary;
    std::vector<std::uint32_t> classes;
    loader.batch(0, first, binary, classes);
    loader.start_epoch();
    loader.batch(0, second, binary, classes);
    bool different = false;
    for (std::size_t i = 0; i < 50 && !different; ++i) {
        different = first(i, 0) != second(i, 0);
    }
    EXPECT_TRUE(different);
}

TEST(DataLoader, BinaryOnlyDatasetLeavesClassesEmpty)
{
    TaskDataset dataset;
    dataset.features.resize(3, 1);
    dataset.binary_labels = {1.0f, 0.0f, 1.0f};
    DataLoader loader(dataset, 2, false, 1);
    Tensor features;
    std::vector<float> binary;
    std::vector<std::uint32_t> classes;
    loader.batch(0, features, binary, classes);
    EXPECT_EQ(binary.size(), 2u);
    EXPECT_TRUE(classes.empty());
}

} // namespace
} // namespace tgl::nn
