#include "embed/batched_trainer.hpp"

#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"
#include "rng/splitmix64.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel_for.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

namespace tgl::embed {

namespace detail {

std::uint64_t
assemble_batch_pairs(const walk::Corpus& corpus, const Vocab& vocab,
                     const SgnsConfig& sgns, unsigned epoch,
                     std::size_t batch_begin, std::size_t batch_end,
                     std::uint64_t& pair_counter,
                     std::vector<WordId>& words,
                     std::vector<BatchPair>& out)
{
    const std::size_t num_sentences = corpus.num_walks();
    std::uint64_t tokens = 0;
    out.clear();
    for (std::size_t s = batch_begin; s < batch_end; ++s) {
        const auto sentence = corpus.walk(s);
        words.clear();
        for (graph::NodeId node : sentence) {
            const WordId w = vocab.word_of(node);
            if (w != kNoWord) {
                words.push_back(w);
            }
        }
        rng::Random window_random(rng::mix_seed(
            sgns.seed ^ 0xba7cedULL,
            static_cast<std::uint64_t>(epoch) * num_sentences + s));
        const std::size_t len = words.size();
        for (std::size_t pos = 0; pos < len; ++pos) {
            const unsigned shrink = static_cast<unsigned>(
                window_random.next_index(sgns.window));
            const unsigned effective = sgns.window - shrink;
            const std::size_t lo = pos >= effective ? pos - effective : 0;
            const std::size_t hi = std::min(len, pos + effective + 1);
            for (std::size_t c = lo; c < hi; ++c) {
                if (c == pos) {
                    continue;
                }
                out.push_back({words[c], words[pos], pair_counter++});
            }
        }
        tokens += sentence.size();
    }
    return tokens;
}

} // namespace detail

Embedding
train_sgns_batched(const walk::Corpus& corpus, graph::NodeId num_nodes,
                   const BatchedSgnsConfig& config, TrainStats* stats)
{
    const SgnsConfig& sgns = config.sgns;
    if (config.batch_size == 0) {
        util::fatal("train_sgns_batched: batch_size must be >= 1");
    }
    if (sgns.epochs == 0 || sgns.window == 0) {
        util::fatal("train_sgns_batched: epochs and window must be >= 1");
    }
    obs::Span span("sgns.train");
    util::Timer timer;

    const Vocab vocab(corpus, sgns.min_count);
    if (vocab.size() == 0) {
        util::fatal("train_sgns_batched: empty vocabulary");
    }
    const NegativeTable negatives(vocab);
    SgnsModel model(vocab, sgns);
    const kernels::SgnsBackendOps& ops = sgns_kernel_ops(sgns);

    const std::size_t num_sentences = corpus.num_walks();
    const std::uint64_t total_tokens =
        static_cast<std::uint64_t>(corpus.num_tokens()) * sgns.epochs;

    const unsigned max_team = sgns.num_threads ? sgns.num_threads
                                               : util::default_threads();
    struct RankState
    {
        std::vector<float> scratch;
    };
    std::vector<RankState> ranks(max_team);
    for (RankState& state : ranks) {
        state.scratch.resize(sgns.dim);
    }

    std::uint64_t tokens_done = 0;
    std::uint64_t pairs_trained = 0;
    // Global pair counter: one private splitmix stream per pair,
    // monotone across batches and epochs (see assemble_batch_pairs).
    std::uint64_t pair_counter = 0;
    std::vector<detail::BatchPair> batch_pairs;
    std::vector<WordId> words;

    obs::PerfRankScopes perf_scopes("sgns", max_team);

    for (unsigned epoch = 0; epoch < sgns.epochs; ++epoch) {
        const obs::Span epoch_span("sgns.epoch");
        std::size_t batch_begin = 0;
        while (batch_begin < num_sentences) {
            const std::size_t batch_end = std::min(
                num_sentences, batch_begin + config.batch_size);

            // Host-side batch assembly (the GPU implementation stages
            // sentence windows the same way before the launch): expand
            // each sentence into its (context, center) pairs.
            tokens_done += detail::assemble_batch_pairs(
                corpus, vocab, sgns, epoch, batch_begin, batch_end,
                pair_counter, words, batch_pairs);

            const float progress = static_cast<float>(
                static_cast<double>(tokens_done) /
                static_cast<double>(total_tokens));
            const float alpha = std::max(sgns.alpha * (1.0f - progress),
                                         sgns.alpha * 1e-4f);

            // Shared-negative mode: one pool of sgns.negatives words
            // per launch, reused verbatim by every pair — each pair
            // sees the same sgns.negatives counter-examples instead of
            // private draws (the pool is NOT scaled with the batch;
            // that is the point of the optimization: the shared rows
            // stay cache-hot across the whole launch).
            std::vector<WordId> shared_pool;
            if (config.shared_negatives) {
                rng::Random pool_random(rng::mix_seed(
                    sgns.seed ^ 0x9e9eULL,
                    static_cast<std::uint64_t>(epoch) * num_sentences +
                        batch_begin));
                shared_pool.resize(sgns.negatives);
                for (WordId& w : shared_pool) {
                    w = negatives.sample(pool_random);
                }
            }

            // One "kernel launch": all pairs of the batch in parallel,
            // unsynchronized writes (stale reads tolerated), barrier at
            // the end. With batch_size 1 this degenerates to the prior
            // implementations' per-sentence launch.
            util::parallel_for_ranked(
                0, batch_pairs.size(),
                [&](std::size_t p, unsigned rank) {
                    perf_scopes.ensure(rank);
                    const detail::BatchPair& pair = batch_pairs[p];
                    if (config.shared_negatives) {
                        sgns_update_pair_shared(
                            model, pair.context, pair.center,
                            shared_pool, alpha, ops,
                            ranks[rank].scratch.data());
                        return;
                    }
                    rng::Random random(rng::mix_seed(
                        sgns.seed ^ detail::kPairStreamTag, pair.stream));
                    sgns_update_pair(model, pair.context, pair.center,
                                     negatives, sgns.negatives, alpha,
                                     ops, random,
                                     ranks[rank].scratch.data());
                },
                {.num_threads = sgns.num_threads, .grain = 8});

            pairs_trained += batch_pairs.size();
            batch_begin = batch_end;
        }

        // Divergence screen (matches train_sgns): stop with context
        // instead of emitting a poisoned embedding.
        if (!model.all_finite()) {
            util::fatal(util::strcat(
                "train_sgns_batched: non-finite model weights after "
                "epoch ", epoch + 1, " of ", sgns.epochs,
                " — training diverged (alpha = ", sgns.alpha, ")"));
        }
    }

    const double seconds = timer.seconds();
    obs::Registry& registry = obs::Registry::global();
    registry.counter("sgns.pairs").add(pairs_trained);
    registry.counter("sgns.tokens").add(tokens_done);
    registry.counter("sgns.epochs").add(sgns.epochs);
    registry.gauge("sgns.alpha")
        .set(static_cast<double>(sgns.alpha));
    registry.gauge("sgns.pairs_per_second")
        .set(seconds > 0.0
                 ? static_cast<double>(pairs_trained) / seconds
                 : 0.0);

    const obs::PerfSample perf = perf_scopes.close();
    for (const auto& [key, value] : obs::perf_span_args(perf)) {
        span.arg(key, value);
    }

    if (stats != nullptr) {
        stats->pairs_trained = pairs_trained;
        stats->tokens_processed = tokens_done;
        stats->seconds = seconds;
    }
    return model.to_embedding(vocab, num_nodes);
}

} // namespace tgl::embed
