/// @file
/// Sequential feed-forward network container and the two fixed
/// architectures of the paper (SIV-B):
///  * link prediction — 2-layer FNN ending in a sigmoid probability;
///  * node classification — 3-layer FNN ending in log-softmax over C
///    classes.
#pragma once

#include "nn/layers.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tgl::nn {

/// A stack of layers executed in order.
class Mlp
{
  public:
    Mlp() = default;

    /// Append a layer (takes ownership).
    void add(std::unique_ptr<Layer> layer);

    /// Forward pass through every layer.
    const Tensor& forward(const Tensor& input);

    /// Backward pass (reverse order); returns dLoss/dInput.
    const Tensor& backward(const Tensor& grad_output);

    /// All learnable parameters in layer order.
    std::vector<Parameter*> parameters();

    /// Number of layers.
    std::size_t depth() const { return layers_.size(); }

    /// Total learnable scalar count.
    std::size_t num_parameters();

    /// Multi-line architecture description.
    std::string describe() const;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/// The paper's link-prediction classifier: edge features of width
/// 2d -> hidden -> 1 sigmoid probability.
Mlp make_link_predictor(std::size_t input_dim, std::size_t hidden_dim,
                        rng::Random& random);

/// The paper's node classifier: d -> hidden1 -> hidden2 -> |C|
/// log-probabilities.
Mlp make_node_classifier(std::size_t input_dim, std::size_t hidden1,
                         std::size_t hidden2, std::size_t num_classes,
                         rng::Random& random);

/// The SVIII-A extension: a residual link predictor — input projection
/// followed by @p num_blocks ResidualBlocks and a sigmoid head. The
/// paper observes ~2% link-prediction accuracy over the plain FNN.
Mlp make_residual_link_predictor(std::size_t input_dim,
                                 std::size_t hidden_dim,
                                 std::size_t num_blocks,
                                 rng::Random& random);

} // namespace tgl::nn
