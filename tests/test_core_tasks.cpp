/// End-to-end tests of the downstream tasks on structured graphs where
/// learnability is guaranteed by construction.
#include "core/link_prediction.hpp"
#include "core/link_property_prediction.hpp"
#include "core/node_classification.hpp"

#include "embed/trainer.hpp"
#include "gen/sbm.hpp"
#include "graph/builder.hpp"
#include "util/error.hpp"
#include "walk/engine.hpp"

#include <gtest/gtest.h>

namespace tgl::core {
namespace {

/// Shared front-end on a strongly assortative SBM: walks stay inside
/// communities, so embeddings separate them.
struct FrontEnd
{
    gen::LabeledGraph labeled;
    graph::TemporalGraph graph;
    embed::Embedding embedding;
};

FrontEnd
run_front_end(std::uint64_t seed)
{
    FrontEnd result;
    result.labeled = gen::generate_sbm({.num_nodes = 300,
                                        .num_edges = 6000,
                                        .num_communities = 3,
                                        .intra_probability = 0.9,
                                        .label_noise = 0.0,
                                        .seed = seed});
    result.graph = graph::GraphBuilder::build(result.labeled.edges,
                                              {.symmetrize = true});
    walk::WalkConfig walk_config;
    walk_config.walks_per_node = 10;
    walk_config.max_length = 6;
    walk_config.seed = seed;
    const walk::Corpus corpus =
        walk::generate_walks(result.graph, walk_config);
    embed::SgnsConfig sgns;
    sgns.dim = 8;
    sgns.epochs = 5;
    sgns.seed = seed;
    result.embedding = embed::train_sgns(
        corpus, result.graph.num_nodes(), sgns);
    return result;
}

ClassifierConfig
fast_classifier()
{
    ClassifierConfig config;
    config.max_epochs = 25;
    config.batch_size = 128;
    config.lr = 0.05f;
    config.momentum = 0.9f;
    return config;
}

TEST(LinkPrediction, BeatsCoinFlipOnStructuredGraph)
{
    const FrontEnd fe = run_front_end(1);
    const LinkSplits splits = prepare_link_splits(
        fe.labeled.edges, fe.graph, SplitConfig{});
    const TaskResult result =
        run_link_prediction(splits, fe.embedding, fast_classifier());

    EXPECT_GT(result.test_accuracy, 0.6);
    EXPECT_GT(result.test_auc, 0.65);
    EXPECT_EQ(result.epochs_run, 25u);
    EXPECT_GT(result.train_seconds, 0.0);
    EXPECT_NEAR(result.seconds_per_epoch,
                result.train_seconds / result.epochs_run, 1e-9);
}

TEST(LinkPrediction, EarlyStopOnTargetAccuracy)
{
    const FrontEnd fe = run_front_end(2);
    const LinkSplits splits = prepare_link_splits(
        fe.labeled.edges, fe.graph, SplitConfig{});
    ClassifierConfig config = fast_classifier();
    config.max_epochs = 100;
    config.target_valid_accuracy = 0.55; // easily reached
    const TaskResult result =
        run_link_prediction(splits, fe.embedding, config);
    EXPECT_LT(result.epochs_run, 100u);
    EXPECT_GE(result.valid_accuracy, 0.55);
}

TEST(NodeClassification, RecoversCommunityLabels)
{
    const FrontEnd fe = run_front_end(3);
    const NodeSplits splits =
        prepare_node_splits(fe.graph.num_nodes(), SplitConfig{});
    const TaskResult result = run_node_classification(
        splits, fe.labeled.labels, 3, fe.embedding, fast_classifier());

    // Chance is 1/3; community structure should push far above it.
    EXPECT_GT(result.test_accuracy, 0.6);
    EXPECT_GT(result.test_macro_f1, 0.55);
}

TEST(NodeClassification, RandomEmbeddingIsNoBetterThanChance)
{
    // Control experiment: zero-information embeddings must not beat
    // chance by much — guards against metric/plumbing bugs that leak
    // labels into features.
    const FrontEnd fe = run_front_end(4);
    embed::Embedding random_embedding(fe.graph.num_nodes(), 8);
    rng::Random random(5);
    for (graph::NodeId u = 0; u < fe.graph.num_nodes(); ++u) {
        for (float& v : random_embedding.row(u)) {
            v = random.next_float() - 0.5f;
        }
    }
    const NodeSplits splits =
        prepare_node_splits(fe.graph.num_nodes(), SplitConfig{});
    const TaskResult result = run_node_classification(
        splits, fe.labeled.labels, 3, random_embedding,
        fast_classifier());
    EXPECT_LT(result.test_accuracy, 0.55);
}

TEST(LinkProperty, TimeBucketLabelsCoverClasses)
{
    const auto labeled = gen::generate_sbm({.num_nodes = 50,
                                            .num_edges = 1000,
                                            .num_communities = 2,
                                            .seed = 6});
    const auto labels = label_edges_by_time(labeled.edges, 4);
    ASSERT_EQ(labels.size(), 1000u);
    std::vector<int> counts(4, 0);
    for (std::uint32_t label : labels) {
        ASSERT_LT(label, 4u);
        ++counts[label];
    }
    for (int count : counts) {
        EXPECT_EQ(count, 250);
    }
}

TEST(LinkProperty, LabelsOrderedByTime)
{
    graph::EdgeList edges;
    edges.add(0, 1, 0.9);
    edges.add(0, 1, 0.1);
    edges.add(0, 1, 0.5);
    edges.add(0, 1, 0.7);
    const auto labels = label_edges_by_time(edges, 2);
    EXPECT_EQ(labels[1], 0u); // earliest
    EXPECT_EQ(labels[2], 0u);
    EXPECT_EQ(labels[3], 1u);
    EXPECT_EQ(labels[0], 1u); // latest
}

TEST(LinkProperty, EndToEndRuns)
{
    const FrontEnd fe = run_front_end(7);
    const auto labels = label_edges_by_time(fe.labeled.edges, 2);
    const TaskResult result = run_link_property_prediction(
        fe.labeled.edges, labels, 2, fe.embedding, SplitConfig{},
        fast_classifier());
    EXPECT_GT(result.test_accuracy, 0.4);
    EXPECT_EQ(result.epochs_run, 25u);
}

TEST(LinkProperty, MismatchedLabelsThrow)
{
    const FrontEnd fe = run_front_end(8);
    const std::vector<std::uint32_t> labels(3, 0); // wrong size
    EXPECT_THROW(run_link_property_prediction(fe.labeled.edges, labels,
                                              2, fe.embedding,
                                              SplitConfig{},
                                              fast_classifier()),
                 util::Error);
}

TEST(LinkProperty, ZeroClassesThrows)
{
    graph::EdgeList edges;
    edges.add(0, 1, 0.5);
    EXPECT_THROW(label_edges_by_time(edges, 0), util::Error);
}

} // namespace
} // namespace tgl::core
