/// @file
/// Read-mostly embedding snapshots for the serving layer (`tgl_serve`).
///
/// A snapshot is an immutable, query-optimized view of one trained
/// embedding matrix: the fp32 rows (or an int8 per-row-quantized copy),
/// precomputed row L2 norms for cosine queries, the publishing epoch,
/// and the checkpoint fingerprint of the artifact it was built from
/// (PR-1 machinery), so every response can be traced to the exact
/// training run that produced it.
///
/// Publication is RCU-style: SnapshotStore holds one
/// std::atomic<std::shared_ptr<const EmbeddingSnapshot>>. Readers
/// acquire() a reference (one atomic load; never blocks on writers) and
/// keep scoring against that version for the whole request — a
/// concurrent publish() can never tear a batch across two epochs. The
/// previous snapshot is freed when its last in-flight reader drops the
/// reference; there is no reader registry, no grace period, and no lock
/// on the query path.
#pragma once

#include "embed/embedding.hpp"
#include "graph/types.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace tgl::serve {

/// Embedding storage format served by a snapshot.
enum class QuantMode : std::uint8_t
{
    kFp32 = 0,
    kInt8 = 1,
};

/// Parse a --quant value ("fp32", "int8").
std::optional<QuantMode> parse_quant_mode(std::string_view name);

/// Flag spelling of a quantization mode.
const char* quant_mode_name(QuantMode mode);

/// Immutable serving view of one embedding matrix. Construction does
/// all the expensive work (quantization, norms); queries only read.
class EmbeddingSnapshot
{
  public:
    /// Build a snapshot from a trained embedding. @p epoch is the
    /// publication sequence number (monotonic per server), @p
    /// fingerprint the checkpoint fingerprint of the source artifact
    /// (0 when served from an unkeyed text file).
    static std::shared_ptr<const EmbeddingSnapshot>
    build(const embed::Embedding& embedding, QuantMode quant,
          std::uint64_t epoch, std::uint64_t fingerprint);

    graph::NodeId num_nodes() const { return num_nodes_; }
    unsigned dim() const { return dim_; }
    QuantMode quant() const { return quant_; }
    std::uint64_t epoch() const { return epoch_; }
    std::uint64_t fingerprint() const { return fingerprint_; }

    /// Copy (fp32) or dequantize (int8) node @p u's row into
    /// out[0..dim). The classifier consumes fp32 features either way;
    /// under int8 the gathered row carries the documented quantization
    /// error (DESIGN.md §14).
    void gather_row(graph::NodeId u, float* out) const;

    /// dot(f(u), f(v)) in the active representation. fp32 uses the
    /// PR-8 SgnsBackendOps simd dot; int8 accumulates the integer
    /// products and rescales once.
    float dot(graph::NodeId u, graph::NodeId v) const;

    /// L2 norm of node @p u's served row (precomputed at build over the
    /// representation actually served, so int8 cosine is internally
    /// consistent).
    float norm(graph::NodeId u) const { return norms_[u]; }

    /// The k nodes most cosine-similar to @p u (excluding u), with
    /// their cosine scores, best first.
    std::vector<std::pair<graph::NodeId, float>>
    nearest(graph::NodeId u, unsigned k) const;

    /// Largest elementwise |original - served| over the whole matrix
    /// (0 for fp32): the measured quantization error this snapshot
    /// actually carries.
    float max_quant_error() const { return max_quant_error_; }

    /// Bytes of embedding payload served (fp32 data or int8 data +
    /// scales), for the serve.snapshot_bytes gauge.
    std::size_t payload_bytes() const;

  private:
    EmbeddingSnapshot() = default;

    graph::NodeId num_nodes_ = 0;
    unsigned dim_ = 0;
    QuantMode quant_ = QuantMode::kFp32;
    std::uint64_t epoch_ = 0;
    std::uint64_t fingerprint_ = 0;
    float max_quant_error_ = 0.0f;
    /// fp32 rows (kFp32 only).
    std::vector<float> data_;
    /// int8 rows + per-row symmetric scale (kInt8 only); the served
    /// value of element j of row u is q_[u*dim+j] * scales_[u].
    std::vector<std::int8_t> q_;
    std::vector<float> scales_;
    std::vector<float> norms_;
};

/// One atomically published current snapshot (see file comment).
class SnapshotStore
{
  public:
    SnapshotStore() = default;
    SnapshotStore(const SnapshotStore&) = delete;
    SnapshotStore& operator=(const SnapshotStore&) = delete;

    /// Replace the current snapshot. Readers holding the previous one
    /// finish against it; it is destroyed with its last reference.
    void
    publish(std::shared_ptr<const EmbeddingSnapshot> next)
    {
        current_.store(std::move(next), std::memory_order_release);
    }

    /// Pin the current snapshot for the duration of one request.
    std::shared_ptr<const EmbeddingSnapshot>
    acquire() const
    {
        return current_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<std::shared_ptr<const EmbeddingSnapshot>> current_;
};

} // namespace tgl::serve
