/// @file
/// Fundamental graph types shared across tgl.
#pragma once

#include <cstdint>
#include <limits>

namespace tgl::graph {

/// Vertex identifier. 32 bits covers the paper's largest graphs
/// (10M nodes) with headroom while halving CSR memory traffic —
/// the workload is memory-bound (SVII-B), so this matters.
using NodeId = std::uint32_t;

/// Edge index / CSR offset type (graphs reach 200M edges).
using EdgeId = std::uint64_t;

/// Edge timestamp. Stored as double so normalized [0,1] stamps keep
/// full precision (matches the artifact's preprocess_dataset.py).
using Timestamp = double;

/// Sentinel for "no vertex".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One timestamped directed edge (u, v, t).
struct TemporalEdge
{
    NodeId src = 0;
    NodeId dst = 0;
    Timestamp time = 0.0;

    friend bool
    operator==(const TemporalEdge& a, const TemporalEdge& b)
    {
        return a.src == b.src && a.dst == b.dst && a.time == b.time;
    }
};

/// CSR neighbor record: destination plus the edge timestamp. This is
/// the GAPBS WGraph layout with the weight field repurposed to hold the
/// timestamp (SV-A of the paper).
struct Neighbor
{
    NodeId dst = 0;
    Timestamp time = 0.0;
};

} // namespace tgl::graph
