/// @file
/// Structural statistics over temporal graphs, used by the dataset
/// catalog (to verify stand-ins match the shape of the paper's
/// datasets) and by the benchmark headers.
#pragma once

#include "graph/temporal_graph.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tgl::graph {

/// Summary statistics of a temporal graph.
struct GraphStats
{
    NodeId num_nodes = 0;
    EdgeId num_edges = 0;
    double avg_out_degree = 0.0;
    EdgeId max_out_degree = 0;
    NodeId num_isolated = 0;     ///< vertices with out-degree 0
    Timestamp min_time = 0.0;
    Timestamp max_time = 0.0;
    /// log2-bucketed out-degree histogram: bucket i counts vertices
    /// with out-degree in [2^i, 2^(i+1)), bucket 0 counts degree 1.
    std::vector<std::uint64_t> degree_histogram;
    /// Slope of a least-squares line fit to log(count) vs log(degree)
    /// over the histogram (≈ -alpha for a power-law graph; 0 if the
    /// graph is too small to fit).
    double degree_powerlaw_slope = 0.0;
};

/// Compute statistics (single pass over CSR plus the histogram fit).
GraphStats compute_stats(const TemporalGraph& graph);

/// Human-readable multi-line rendering.
std::string format_stats(const GraphStats& stats);

} // namespace tgl::graph
