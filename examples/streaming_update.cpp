/// @file
/// Streaming deployment scenario — the motivation behind the paper's
/// end-to-end time-breakdown study (SVII-B): "in a real-world
/// deployment, the graph evolves over time. With this evolution, an
/// entire pipeline needs to run to account for new nodes/connections."
///
/// This example simulates that deployment: a temporal interaction
/// network arrives as a stream, and at every checkpoint (say, nightly)
/// the full pipeline re-runs on the graph so far. It reports, per
/// checkpoint, the phase breakdown and the share of time spent in
/// classifier training — reproducing the paper's conclusion that
/// training dominates re-deployment cost, so accelerating it yields
/// the highest end-to-end benefit.
///
/// Example: ./streaming_update --dataset wiki-talk --checkpoints 5
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("streaming_update",
                        "periodic full-pipeline re-runs on a growing "
                        "temporal graph");
    cli.add_flag("dataset", "ia-email", "catalog link-prediction dataset");
    cli.add_flag("scale", "0.05", "stand-in scale");
    cli.add_flag("checkpoints", "5", "number of re-deployment points");
    cli.add_flag("epochs", "60", "classifier epochs per re-run");
    cli.add_flag("seed", "42", "random seed");

    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        const auto checkpoints =
            static_cast<std::size_t>(cli.get_int("checkpoints"));
        if (checkpoints == 0) {
            util::fatal("--checkpoints must be >= 1");
        }

        // The full interaction stream, time-ordered.
        gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"), seed);
        graph::EdgeList stream = std::move(dataset.edges);
        stream.sort_by_time();

        core::PipelineConfig config;
        config.walk.seed = seed;
        config.sgns.seed = seed;
        config.sgns.epochs = 12;
        config.classifier.max_epochs =
            static_cast<unsigned>(cli.get_int("epochs"));

        std::printf("# streaming deployment on %s stand-in: %zu edges "
                    "arriving over %zu checkpoints\n",
                    dataset.name.c_str(), stream.size(), checkpoints);
        std::printf("%12s %10s %10s %10s %10s %10s %12s %10s\n",
                    "edges-seen", "auc", "rwalk(s)", "w2v(s)", "prep(s)",
                    "train(s)", "train-share", "total(s)");

        for (std::size_t checkpoint = 1; checkpoint <= checkpoints;
             ++checkpoint) {
            // Prefix of the stream visible at this checkpoint.
            const std::size_t visible =
                stream.size() * checkpoint / checkpoints;
            graph::EdgeList window(std::vector<graph::TemporalEdge>(
                stream.edges().begin(),
                stream.edges().begin() +
                    static_cast<std::ptrdiff_t>(visible)));

            const core::PipelineResult result =
                core::run_link_prediction_pipeline(window, config);
            const double train_share =
                result.times.total() > 0.0
                    ? result.times.train / result.times.total()
                    : 0.0;
            std::printf(
                "%12zu %10.4f %10.3f %10.3f %10.3f %10.3f %11.1f%% "
                "%10.3f\n",
                visible, result.task.test_auc, result.times.random_walk,
                result.times.word2vec, result.times.data_prep,
                result.times.train, train_share * 100.0,
                result.times.total());
        }
        std::printf("\n# the paper's deployment takeaway (SVII-B): "
                    "every phase grows with the stream, and at "
                    "realistic training budgets (O(100) epochs) the "
                    "classifier takes the largest share — the first "
                    "target for optimization. Lower --epochs to see "
                    "word2vec take over instead.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
