#include "graph/io.hpp"

#include "util/artifact_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace tgl::graph {

EdgeList
load_wel(std::istream& in, const LoadOptions& options)
{
    EdgeList edges;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const std::string_view trimmed = util::trim(line);
        if (trimmed.empty() || trimmed.front() == '#' ||
            trimmed.front() == '%') {
            continue;
        }
        const auto fields = util::split(trimmed, " \t,");
        if (fields.size() < 2 ||
            (fields.size() < 3 && !options.allow_missing_timestamps)) {
            util::fatal(util::strcat("edge list line ", line_number,
                                     ": expected 'src dst time', got '",
                                     std::string(trimmed), "'"));
        }
        const long long src = util::parse_int(fields[0]);
        const long long dst = util::parse_int(fields[1]);
        if (src < 0 || dst < 0) {
            util::fatal(util::strcat("edge list line ", line_number,
                                     ": negative node id"));
        }
        // Ids at or above the kInvalidNode sentinel would silently wrap
        // (or collide with the sentinel) under the NodeId cast.
        constexpr long long max_node_id =
            static_cast<long long>(kInvalidNode) - 1;
        if (src > max_node_id || dst > max_node_id) {
            util::fatal(util::strcat("edge list line ", line_number,
                                     ": node id ",
                                     std::max(src, dst),
                                     " exceeds the supported maximum ",
                                     max_node_id));
        }
        Timestamp time = static_cast<Timestamp>(edges.size());
        if (fields.size() >= 3) {
            time = util::parse_double(fields[2]);
            // parse_double accepts "nan"/"inf"; neither is a usable
            // event time and both poison timestamp normalization.
            if (!std::isfinite(time)) {
                util::fatal(util::strcat("edge list line ", line_number,
                                         ": non-finite timestamp '",
                                         std::string(fields[2]), "'"));
            }
        }
        edges.add(static_cast<NodeId>(src), static_cast<NodeId>(dst), time);
    }
    if (options.normalize_timestamps) {
        edges.normalize_timestamps();
    }
    return edges;
}

EdgeList
load_wel_file(const std::string& path, const LoadOptions& options)
{
    std::ifstream in(path);
    if (!in) {
        util::fatal(util::strcat("cannot open edge list file: ", path));
    }
    return load_wel(in, options);
}

void
save_wel(std::ostream& out, const EdgeList& edges)
{
    for (const TemporalEdge& e : edges) {
        out << e.src << ' ' << e.dst << ' ' << e.time << '\n';
    }
}

void
save_wel_file(const std::string& path, const EdgeList& edges)
{
    // Atomic replacement also flushes before checking the stream, so
    // deferred write failures (ENOSPC, quota) are reported instead of
    // being dropped with the buffered tail.
    util::atomic_write_file(
        path, [&](std::ostream& out) { save_wel(out, edges); });
}

} // namespace tgl::graph
