/// @file
/// Loss functions of the two downstream tasks (SIV-B): binary
/// cross-entropy over sigmoid outputs for link prediction (Eq. 4), and
/// negative log likelihood over log-softmax outputs for multi-class
/// node classification.
#pragma once

#include "nn/tensor.hpp"

#include <cstdint>
#include <vector>

namespace tgl::nn {

/// Loss value plus the gradient w.r.t. the network output.
struct LossResult
{
    double loss = 0.0;       ///< mean over the batch
    Tensor grad;             ///< dLoss/dOutput, same shape as output
};

/// Binary cross-entropy. @p probabilities is (batch x 1) sigmoid
/// output; @p targets holds 0/1 labels. Probabilities are clamped away
/// from {0,1} for numerical safety.
LossResult binary_cross_entropy(const Tensor& probabilities,
                                const std::vector<float>& targets);

/// Negative log likelihood. @p log_probs is (batch x classes)
/// log-softmax output; @p targets holds class indices.
LossResult nll_loss(const Tensor& log_probs,
                    const std::vector<std::uint32_t>& targets);

} // namespace tgl::nn
