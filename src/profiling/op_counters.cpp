#include "profiling/op_counters.hpp"

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace tgl::prof {

namespace {

double
fraction(std::uint64_t part, std::uint64_t total)
{
    return total == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(total);
}

/// Fixed share of stack/SIMD/string/"others" instructions the compiler
/// adds around the algorithmic work; MICA runs on comparable kernels
/// report 15-25%, matching Fig. 9's "others" band.
constexpr double kOtherShare = 0.20;

std::uint64_t
other_from(std::uint64_t counted)
{
    return static_cast<std::uint64_t>(
        static_cast<double>(counted) * kOtherShare / (1.0 - kOtherShare));
}

} // namespace

double OpCounts::memory_fraction() const { return fraction(memory, total()); }
double OpCounts::branch_fraction() const { return fraction(branch, total()); }
double OpCounts::compute_fraction() const
{
    return fraction(compute, total());
}
double OpCounts::other_fraction() const { return fraction(other, total()); }

OpCounts
walk_op_counts(const walk::WalkProfile& profile)
{
    OpCounts counts;
    // Neighbor discovery: every candidate record examined is a load
    // plus a timestamp comparison (branch).
    counts.memory = profile.candidates_scanned;
    counts.branch = profile.candidates_scanned;
    // Transition sampling (counted live by the kernel).
    counts.memory += profile.transition_cost.memory_ops;
    counts.branch += profile.transition_cost.branch_ops;
    counts.compute += profile.transition_cost.compute_ops;
    // Per-step bookkeeping: CSR offset loads, clock/current updates,
    // loop control.
    counts.memory += profile.steps_taken * 3;
    counts.compute += profile.steps_taken * 2;
    counts.branch += profile.steps_taken + profile.walks_started;
    counts.other = other_from(counts.total());
    return counts;
}

OpCounts
walk_op_counts(const walk::WalkProfile& profile,
               const walk::TransitionCost* cache_build)
{
    if (cache_build == nullptr) {
        return walk_op_counts(profile);
    }
    OpCounts counts;
    counts.memory = profile.candidates_scanned;
    counts.branch = profile.candidates_scanned;
    counts.memory += profile.transition_cost.memory_ops;
    counts.branch += profile.transition_cost.branch_ops;
    counts.compute += profile.transition_cost.compute_ops;
    counts.memory += profile.steps_taken * 3;
    counts.compute += profile.steps_taken * 2;
    counts.branch += profile.steps_taken + profile.walks_started;
    // Amortized table construction: without this the cached kernel
    // would report only the binary-search draws and look impossibly
    // cheap next to the direct exp-scan.
    counts.memory += cache_build->memory_ops;
    counts.branch += cache_build->branch_ops;
    counts.compute += cache_build->compute_ops;
    counts.other = other_from(counts.total());
    return counts;
}

OpCounts
w2v_op_counts(const embed::TrainStats& stats,
              const embed::SgnsConfig& config)
{
    OpCounts counts;
    const std::uint64_t pairs = stats.pairs_trained;
    const std::uint64_t d = config.dim;
    const std::uint64_t targets = config.negatives + 1;
    // Per (pair, target): dot product (2d loads + 2d flops), two axpy
    // updates (2d loads + 2d stores + 2d flops each), sigmoid lookup.
    counts.memory = pairs * targets * (2 * d + 8 * d) +
                    pairs * 2 * d; // final scratch apply
    counts.compute = pairs * targets * (2 * d + 4 * d + 4) +
                     pairs * 2 * d;
    // Window iteration, negative-table draws, label branch.
    counts.branch = pairs * (targets + 4);
    counts.other = other_from(counts.total());
    return counts;
}

OpCounts
classifier_op_counts(std::size_t batch,
                     const std::vector<std::size_t>& layer_dims,
                     std::uint64_t passes, bool training)
{
    OpCounts counts;
    for (std::size_t layer = 0; layer + 1 < layer_dims.size(); ++layer) {
        const std::uint64_t m = batch;
        const std::uint64_t k = layer_dims[layer];
        const std::uint64_t n = layer_dims[layer + 1];
        // Forward GEMM: C(m,n) = A(m,k) * W(n,k)^T. Instruction-level
        // accounting (the MICA view): each MAC issues one mul+add and,
        // with register blocking amortizing operand reuse, about half
        // an operand load on average.
        std::uint64_t flops = 2 * m * k * n;
        std::uint64_t loads = m * k * n / 2 + m * n;
        if (training) {
            // dX GEMM + dW GEMM + SGD update traffic.
            flops *= 3;
            loads = loads * 3 + 2 * n * k;
        }
        counts.compute += flops;
        counts.memory += loads;
        // Activation: one compare/exp per element.
        counts.compute += m * n;
        counts.branch += m * n;
    }
    counts.compute *= passes;
    counts.memory *= passes;
    counts.branch *= passes;
    counts.other = other_from(counts.total());
    return counts;
}

std::string
format_op_counts(const std::string& kernel, const OpCounts& counts)
{
    return util::strcat(
        kernel, ": mem ",
        util::format_fixed(counts.memory_fraction() * 100.0, 1),
        "% branch ",
        util::format_fixed(counts.branch_fraction() * 100.0, 1),
        "% compute ",
        util::format_fixed(counts.compute_fraction() * 100.0, 1),
        "% other ",
        util::format_fixed(counts.other_fraction() * 100.0, 1), "%");
}

} // namespace tgl::prof
