/// Concurrency tests for the bounded MPMC shard queue that feeds the
/// overlapped walk→word2vec front end.
#include "util/shard_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace tgl::util {
namespace {

TEST(ShardQueue, FifoSingleThread)
{
    ShardQueue<int> queue(8);
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));
    EXPECT_TRUE(queue.push(3));
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.pop(), 1);
    EXPECT_EQ(queue.pop(), 2);
    EXPECT_EQ(queue.pop(), 3);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(ShardQueue, ZeroCapacityPromotedToOne)
{
    ShardQueue<int> queue(0);
    EXPECT_EQ(queue.capacity(), 1u);
}

TEST(ShardQueue, PopBlocksUntilPush)
{
    ShardQueue<int> queue(4);
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queue.push(42);
    });
    // pop() must block through the producer's delay and then deliver.
    EXPECT_EQ(queue.pop(), 42);
    producer.join();
    EXPECT_GT(queue.consumer_stall_seconds(), 0.0);
}

TEST(ShardQueue, PushBlocksWhenFull)
{
    ShardQueue<int> queue(2);
    ASSERT_TRUE(queue.push(1));
    ASSERT_TRUE(queue.push(2));
    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        queue.push(3); // must block: queue is at capacity
        third_pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(third_pushed.load());
    EXPECT_EQ(queue.pop(), 1);
    producer.join();
    EXPECT_TRUE(third_pushed.load());
    EXPECT_EQ(queue.pop(), 2);
    EXPECT_EQ(queue.pop(), 3);
    EXPECT_GT(queue.producer_stall_seconds(), 0.0);
    EXPECT_LE(queue.max_depth(), queue.capacity());
}

TEST(ShardQueue, CloseDrainsThenSignalsEnd)
{
    ShardQueue<int> queue(4);
    ASSERT_TRUE(queue.push(7));
    ASSERT_TRUE(queue.push(8));
    queue.close();
    EXPECT_TRUE(queue.closed());
    // Pending items survive close(); only then does pop() end.
    EXPECT_EQ(queue.pop(), 7);
    EXPECT_EQ(queue.pop(), 8);
    EXPECT_EQ(queue.pop(), std::nullopt);
    EXPECT_EQ(queue.pop(), std::nullopt); // idempotent after drain
}

TEST(ShardQueue, PushAfterCloseFails)
{
    ShardQueue<int> queue(4);
    queue.close();
    EXPECT_FALSE(queue.push(1));
    EXPECT_EQ(queue.size(), 0u);
}

TEST(ShardQueue, CloseUnblocksWaitingConsumers)
{
    ShardQueue<int> queue(4);
    std::atomic<int> ended{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            while (queue.pop()) {
            }
            ended.fetch_add(1);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    for (std::thread& consumer : consumers) {
        consumer.join();
    }
    EXPECT_EQ(ended.load(), 3);
}

TEST(ShardQueue, CloseUnblocksWaitingProducers)
{
    ShardQueue<int> queue(1);
    ASSERT_TRUE(queue.push(0));
    std::atomic<bool> rejected{false};
    std::thread producer([&] {
        rejected.store(!queue.push(1)); // blocks on full, then fails
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
    EXPECT_TRUE(rejected.load());
}

TEST(ShardQueue, MultiProducerMultiConsumerDeliversEveryItemOnce)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 250;
    ShardQueue<int> queue(8);

    std::atomic<int> live_producers{kProducers};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(queue.push(p * kPerProducer + i));
            }
            // Last producer out closes — the overlap layer's protocol.
            if (live_producers.fetch_sub(1) == 1) {
                queue.close();
            }
        });
    }

    std::mutex seen_mutex;
    std::set<int> seen;
    std::atomic<int> total{0};
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (std::optional<int> item = queue.pop()) {
                const std::lock_guard<std::mutex> lock(seen_mutex);
                EXPECT_TRUE(seen.insert(*item).second)
                    << "item " << *item << " delivered twice";
                total.fetch_add(1);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(total.load(), kProducers * kPerProducer);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    EXPECT_LE(queue.max_depth(), queue.capacity());
}

TEST(ShardQueue, MovesNonCopyableItems)
{
    ShardQueue<std::unique_ptr<int>> queue(2);
    ASSERT_TRUE(queue.push(std::make_unique<int>(5)));
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(**item, 5);
}

} // namespace
} // namespace tgl::util
