/// @file
/// SGEMM kernels for the classifier substrate.
///
/// The paper finds the classifier phase dominated by GEMM calls on
/// small, skinny matrices where vendor libraries are poorly tuned
/// (37.4x worse per-instruction than VGG-sized GEMM, SVII-B, and a
/// dedicated recommendation to GEMM library designers in SVIII-A).
/// This module provides a register-blocked, cache-tiled, parallel
/// implementation tuned for exactly those shapes, plus a naive
/// reference used for correctness tests and the blocking ablation.
#pragma once

#include "nn/tensor.hpp"

namespace tgl::nn {

/// C = A (rows m x k) * B (k x n). C is resized to m x n.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A * B^T with A (m x k), B (n x k). C resized to m x n.
/// This is the forward-pass shape: Y = X * W^T for W stored (out x in).
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T * B with A (k x m), B (k x n). C resized to m x n.
/// This is the weight-gradient shape: dW = dY^T * X.
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// Unblocked, single-threaded triple loop (reference / ablation).
void matmul_naive(const Tensor& a, const Tensor& b, Tensor& c);

/// Minimum total flops before a GEMM goes parallel; below it the
/// dispatch overhead dominates for the paper's tiny classifier layers.
inline constexpr std::size_t kParallelFlopThreshold = 1u << 20;

} // namespace tgl::nn
