#include "util/fault_injection.hpp"

#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace tgl::util {

namespace {

// The fast path (nothing armed) must stay a single relaxed load; the
// slow path takes a mutex so arm/hit races stay well-defined.
std::atomic<bool> g_armed{false};
std::mutex g_mutex;
std::string g_site;
std::uint64_t g_countdown = 0;
std::uint64_t g_hits = 0;

} // namespace

void
fault_point(const char* site)
{
    if (!g_armed.load(std::memory_order_relaxed)) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_armed.load(std::memory_order_relaxed) || g_site != site) {
        return;
    }
    ++g_hits;
    if (--g_countdown == 0) {
        g_armed.store(false, std::memory_order_relaxed);
        throw FaultInjected(strcat("injected fault at ", site));
    }
}

void
FaultInjector::arm(const std::string& site, std::uint64_t nth)
{
    TGL_ASSERT(nth >= 1);
    std::lock_guard<std::mutex> lock(g_mutex);
    g_site = site;
    g_countdown = nth;
    g_hits = 0;
    g_armed.store(true, std::memory_order_relaxed);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_armed.store(false, std::memory_order_relaxed);
    g_site.clear();
    g_countdown = 0;
}

std::uint64_t
FaultInjector::hits()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_hits;
}

FailAfterStreambuf::int_type
FailAfterStreambuf::overflow(int_type ch)
{
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
        return traits_type::not_eof(ch);
    }
    if (remaining_ == 0) {
        return traits_type::eof();
    }
    --remaining_;
    return inner_->sputc(traits_type::to_char_type(ch));
}

std::streamsize
FailAfterStreambuf::xsputn(const char* data, std::streamsize count)
{
    const auto want = static_cast<std::size_t>(count);
    const std::size_t granted = std::min(remaining_, want);
    const std::streamsize written = inner_->sputn(
        data, static_cast<std::streamsize>(granted));
    remaining_ -= static_cast<std::size_t>(written);
    // Returning fewer bytes than requested makes the ostream set
    // badbit — exactly how a full disk surfaces through iostreams.
    return written;
}

} // namespace tgl::util
