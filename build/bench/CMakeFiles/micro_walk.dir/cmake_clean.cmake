file(REMOVE_RECURSE
  "CMakeFiles/micro_walk.dir/micro_walk.cpp.o"
  "CMakeFiles/micro_walk.dir/micro_walk.cpp.o.d"
  "micro_walk"
  "micro_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
