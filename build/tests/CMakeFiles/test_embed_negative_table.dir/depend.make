# Empty dependencies file for test_embed_negative_table.
# This may be replaced when dependencies are built.
