# Empty dependencies file for test_core_data_prep.
# This may be replaced when dependencies are built.
