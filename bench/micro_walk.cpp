/// @file
/// Micro-benchmarks of the temporal random walk kernel: transition
/// model cost, neighbor-search ablation (binary vs the paper's linear
/// scan), and strictness modes. Throughput is reported in walk steps
/// per second.
#include "tgl/tgl.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace tgl;

const graph::TemporalGraph&
shared_graph()
{
    static const graph::TemporalGraph graph = [] {
        const auto dataset = gen::make_dataset("ia-email", 0.05, 7);
        return graph::GraphBuilder::build(dataset.edges,
                                          {.symmetrize = true});
    }();
    return graph;
}

void
run_walks(benchmark::State& state, walk::TransitionKind transition,
          bool linear_search)
{
    const graph::TemporalGraph& graph = shared_graph();
    walk::WalkConfig config;
    config.walks_per_node = 2;
    config.max_length = 6;
    config.transition = transition;
    config.linear_neighbor_search = linear_search;
    config.seed = 11;

    std::uint64_t steps = 0;
    for (auto _ : state) {
        walk::WalkProfile profile;
        const walk::Corpus corpus =
            walk::generate_walks(graph, config, &profile);
        benchmark::DoNotOptimize(corpus.num_tokens());
        steps += profile.steps_taken;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}

void
BM_WalkUniform(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kUniform, false);
}

void
BM_WalkExponential(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponential, false);
}

void
BM_WalkExponentialDecay(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponentialDecay, false);
}

void
BM_WalkLinearBias(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kLinear, false);
}

void
BM_WalkLinearNeighborScan(benchmark::State& state)
{
    // The paper's O(max-degree) sampleLatent search.
    run_walks(state, walk::TransitionKind::kExponential, true);
}

void
BM_WalkBinaryNeighborSearch(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponential, false);
}

BENCHMARK(BM_WalkUniform)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkExponential)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkExponentialDecay)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkLinearBias)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkLinearNeighborScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkBinaryNeighborSearch)->Unit(benchmark::kMillisecond);

void
BM_WalkLengthSweep(benchmark::State& state)
{
    const graph::TemporalGraph& graph = shared_graph();
    walk::WalkConfig config;
    config.walks_per_node = 2;
    config.max_length = static_cast<unsigned>(state.range(0));
    config.seed = 13;
    for (auto _ : state) {
        const walk::Corpus corpus = walk::generate_walks(graph, config);
        benchmark::DoNotOptimize(corpus.num_tokens());
    }
}

BENCHMARK(BM_WalkLengthSweep)
    ->Arg(2)
    ->Arg(6)
    ->Arg(20)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

} // namespace
