#include "nn/mlp.hpp"

#include "util/artifact_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

#include <fstream>

namespace tgl::nn {

void
Mlp::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

const Tensor&
Mlp::forward(const Tensor& input)
{
    TGL_ASSERT(!layers_.empty());
    const Tensor* current = &input;
    for (auto& layer : layers_) {
        current = &layer->forward(*current);
    }
    return *current;
}

const Tensor&
Mlp::backward(const Tensor& grad_output)
{
    TGL_ASSERT(!layers_.empty());
    const Tensor* current = &grad_output;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        current = &layers_[i]->backward(*current);
    }
    return *current;
}

std::vector<Parameter*>
Mlp::parameters()
{
    std::vector<Parameter*> all;
    for (auto& layer : layers_) {
        for (Parameter* p : layer->parameters()) {
            all.push_back(p);
        }
    }
    return all;
}

std::size_t
Mlp::num_parameters()
{
    std::size_t count = 0;
    for (Parameter* p : parameters()) {
        count += p->value.size();
    }
    return count;
}

namespace {

constexpr char kMlpKind[] = "mlp";
constexpr std::uint32_t kMlpPayloadVersion = 1;

} // namespace

void
Mlp::save_weights(std::ostream& out, std::uint64_t fingerprint)
{
    util::ArtifactWriter writer(out, kMlpKind, kMlpPayloadVersion,
                                fingerprint);
    const std::vector<Parameter*> params = parameters();
    writer.write_pod<std::uint32_t>(
        static_cast<std::uint32_t>(params.size()));
    for (const Parameter* p : params) {
        writer.write_string(p->name);
        writer.write_pod<std::uint64_t>(p->value.rows());
        writer.write_pod<std::uint64_t>(p->value.cols());
        writer.write_bytes(p->value.data(),
                           p->value.size() * sizeof(float));
    }
    writer.finish();
}

void
Mlp::load_weights(std::istream& in, std::uint64_t* fingerprint)
{
    util::ArtifactReader reader(in, kMlpKind);
    if (reader.payload_version() != kMlpPayloadVersion) {
        util::fatal(util::strcat(
            "mlp artifact: unsupported payload version ",
            reader.payload_version()));
    }
    const std::vector<Parameter*> params = parameters();
    const auto count = reader.read_pod<std::uint32_t>();
    if (count != params.size()) {
        util::fatal(util::strcat("mlp artifact: holds ", count,
                                 " parameters, this network has ",
                                 params.size(),
                                 " — architecture mismatch"));
    }
    // Stage into scratch tensors first so a mismatch or truncation
    // partway through leaves the live network untouched.
    std::vector<Tensor> staged(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        const std::string name = reader.read_string();
        const auto rows = reader.read_pod<std::uint64_t>();
        const auto cols = reader.read_pod<std::uint64_t>();
        if (name != params[i]->name ||
            rows != params[i]->value.rows() ||
            cols != params[i]->value.cols()) {
            util::fatal(util::strcat(
                "mlp artifact: parameter ", i, " is '", name, "' (",
                rows, "x", cols, "), this network expects '",
                params[i]->name, "' (", params[i]->value.rows(), "x",
                params[i]->value.cols(), ") — architecture mismatch"));
        }
        staged[i].resize(rows, cols);
        reader.read_bytes(staged[i].data(),
                          staged[i].size() * sizeof(float));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        params[i]->value = std::move(staged[i]);
    }
    if (fingerprint != nullptr) {
        *fingerprint = reader.fingerprint();
    }
}

void
Mlp::save_weights_file(const std::string& path, std::uint64_t fingerprint)
{
    util::atomic_write_file(
        path,
        [&](std::ostream& out) { save_weights(out, fingerprint); },
        /*binary=*/true);
}

void
Mlp::load_weights_file(const std::string& path, std::uint64_t* fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    load_weights(in, fingerprint);
}

std::string
Mlp::describe() const
{
    std::string text;
    for (const auto& layer : layers_) {
        if (!text.empty()) {
            text += " -> ";
        }
        text += layer->describe();
    }
    return text;
}

Mlp
make_link_predictor(std::size_t input_dim, std::size_t hidden_dim,
                    rng::Random& random)
{
    Mlp net;
    net.add(std::make_unique<Linear>(input_dim, hidden_dim, random));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Linear>(hidden_dim, 1, random));
    net.add(std::make_unique<Sigmoid>());
    return net;
}

Mlp
make_residual_link_predictor(std::size_t input_dim, std::size_t hidden_dim,
                             std::size_t num_blocks, rng::Random& random)
{
    Mlp net;
    net.add(std::make_unique<Linear>(input_dim, hidden_dim, random));
    net.add(std::make_unique<ReLU>());
    for (std::size_t b = 0; b < num_blocks; ++b) {
        net.add(std::make_unique<ResidualBlock>(hidden_dim, random));
    }
    net.add(std::make_unique<Linear>(hidden_dim, 1, random));
    net.add(std::make_unique<Sigmoid>());
    return net;
}

Mlp
make_node_classifier(std::size_t input_dim, std::size_t hidden1,
                     std::size_t hidden2, std::size_t num_classes,
                     rng::Random& random)
{
    Mlp net;
    net.add(std::make_unique<Linear>(input_dim, hidden1, random));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Linear>(hidden1, hidden2, random));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Linear>(hidden2, num_classes, random));
    net.add(std::make_unique<LogSoftmax>());
    return net;
}

} // namespace tgl::nn
