/// @file
/// Bounded retry with deterministic exponential backoff.
///
/// retry_transient() retries exactly util::TransientError — the
/// EINTR/EAGAIN-style hiccups and injected transient faults that are
/// expected to succeed on a second attempt. Every other exception
/// (terminal Error, Cancelled, FaultInjected) propagates on the first
/// throw: retrying a corrupt artifact or a cancelled run only wastes
/// the backoff budget.
///
/// The backoff schedule is precomputed from the policy alone —
/// exponential growth with seeded multiplicative jitter, per-wait and
/// cumulative caps — so tests can assert the exact schedule a seed
/// produces without sleeping through it.
#pragma once

#include "util/error.hpp"

#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

namespace tgl::util {

/// Knobs for one retry loop. Defaults keep the worst case short
/// (4 attempts, < ~100 ms of total sleeping) — artifact I/O either
/// recovers quickly or the failure is not transient after all.
struct RetryPolicy
{
    /// Total attempts including the first (>= 1); attempts-1 backoffs.
    unsigned max_attempts = 4;
    /// Wait before the first retry.
    std::chrono::microseconds initial_backoff{2000};
    /// Growth factor between consecutive waits (>= 1).
    double multiplier = 4.0;
    /// Per-wait ceiling, applied before jitter.
    std::chrono::microseconds max_backoff{50000};
    /// Cumulative ceiling: later waits are clipped so the schedule
    /// never sleeps more than this in total.
    std::chrono::microseconds max_total_backoff{100000};
    /// Multiplicative jitter fraction in [0, 1): each wait is scaled
    /// by a seeded uniform draw from [1 - jitter, 1 + jitter].
    double jitter = 0.25;
    /// Seed for the jitter draws; same seed, same schedule.
    std::uint64_t seed = 0;
};

/// The exact waits retry_transient() will sleep between attempts
/// (max_attempts - 1 entries). Deterministic in the policy.
std::vector<std::chrono::microseconds>
backoff_schedule(const RetryPolicy& policy);

namespace detail {

/// Log one transient failure and bump the retry.* counters.
/// @p will_retry is false on the attempt that exhausts the budget.
void note_transient(std::string_view what, const char* error,
                    unsigned attempt, unsigned max_attempts,
                    bool will_retry);

} // namespace detail

/// Run @p attempt, retrying on TransientError per @p policy. Returns
/// the first successful result; rethrows the last TransientError once
/// the budget is exhausted. @p sleep overrides the real clock in tests.
template <typename Attempt>
auto
retry_transient(const RetryPolicy& policy, std::string_view what,
                Attempt&& attempt,
                const std::function<void(std::chrono::microseconds)>&
                    sleep = {}) -> decltype(attempt())
{
    const std::vector<std::chrono::microseconds> schedule =
        backoff_schedule(policy);
    for (unsigned tried = 0;; ++tried) {
        try {
            return attempt();
        } catch (const TransientError& error) {
            const bool will_retry = tried + 1 < policy.max_attempts;
            detail::note_transient(what, error.what(), tried + 1,
                                   policy.max_attempts, will_retry);
            if (!will_retry) {
                throw;
            }
            const std::chrono::microseconds wait = schedule[tried];
            if (sleep) {
                sleep(wait);
            } else if (wait.count() > 0) {
                std::this_thread::sleep_for(wait);
            }
        }
    }
}

} // namespace tgl::util
