/// @file
/// Machine-readable results for the micro benches.
///
/// Custom comparison harnesses (cached vs direct sampling, and any
/// future A/B kernel) record their measurements as BENCH_<name>.json
/// next to the working directory so CI and scripts can assert on them
/// without scraping console tables. One schema for every bench:
///
///   {
///     "benchmark": "<suite name>",
///     "schema_version": 1,
///     "meta": {"<key>": "<string>", ...},        // optional
///     "entries": [
///       {"name": "...", "seconds": s, "items_per_second": r,
///        "metrics": {"<key>": v, ...}},
///       ...
///     ]
///   }
///
/// `seconds` is the best-of-N wall time of the measured region,
/// `items_per_second` the work rate at that time, and `metrics` a
/// free-form numeric bag (speedups, counts, sizes). `meta` holds
/// string-valued run provenance (e.g. the SIMD ISA the binary was
/// compiled for); tools/bench_compare.py refuses to compare timing
/// suites whose `simd_isa` values differ.
#pragma once

#include "util/string_util.hpp"

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace tgl::bench {

struct BenchEntry
{
    std::string name;
    double seconds = 0.0;
    double items_per_second = 0.0;
    std::vector<std::pair<std::string, double>> metrics;
    /// What `seconds` measures. "seconds" (default) marks a timing
    /// entry the regression gate may compare; anything else (e.g.
    /// "mix", "stall_share", "qps") marks a counter-valued entry tools
    /// must not treat as a wall-clock measurement. Declared after
    /// `metrics` so the positional aggregate initializers at timing
    /// call sites keep the default.
    std::string unit = "seconds";
    /// Gate direction. false (default): `seconds` is a cost and growth
    /// is a regression. true: the value is a rate (e.g. unit "qps"
    /// riding in the `seconds` slot) and *shrinkage* is a regression —
    /// tools/bench_compare.py inverts the ratio for these entries.
    /// Appended last, after `unit`, for the same positional-init
    /// reason.
    bool higher_is_better = false;
};

/// Serialize doubles with enough digits to round-trip; JSON has no
/// Inf/NaN, so degenerate measurements are clamped to 0.
inline std::string
json_number(double value)
{
    if (!(value == value) || value > 1e308 || value < -1e308) {
        return "0";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

inline void
write_bench_json(const std::string& path, const std::string& suite,
                 const std::vector<BenchEntry>& entries,
                 const std::vector<std::pair<std::string, std::string>>&
                     meta = {})
{
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"" << suite << "\",\n"
        << "  \"schema_version\": 1,\n";
    if (!meta.empty()) {
        out << "  \"meta\": {";
        for (std::size_t m = 0; m < meta.size(); ++m) {
            out << "\"" << util::json_escape(meta[m].first) << "\": \""
                << util::json_escape(meta[m].second) << "\"";
            if (m + 1 < meta.size()) {
                out << ", ";
            }
        }
        out << "},\n";
    }
    out << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BenchEntry& entry = entries[i];
        out << "    {\"name\": \"" << util::json_escape(entry.name)
            << "\", \"seconds\": " << json_number(entry.seconds)
            << ", \"items_per_second\": "
            << json_number(entry.items_per_second) << ", \"unit\": \""
            << util::json_escape(entry.unit) << "\", \"higher_is_better\": "
            << (entry.higher_is_better ? "true" : "false")
            << ", \"metrics\": {";
        for (std::size_t m = 0; m < entry.metrics.size(); ++m) {
            out << "\"" << entry.metrics[m].first
                << "\": " << json_number(entry.metrics[m].second);
            if (m + 1 < entry.metrics.size()) {
                out << ", ";
            }
        }
        out << "}}";
        if (i + 1 < entries.size()) {
            out << ",";
        }
        out << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

/// Incremental builder over the same schema. write_bench_json() forces
/// every caller to assemble the complete meta vector before the single
/// serialization call — a harness that learns provenance late (e.g. the
/// ISA probe result after the measurement loops) either threads that
/// state through its whole control flow or silently drops the key,
/// which is exactly how BENCH_serve.json lost its `simd_isa` meta in
/// an early draft. BenchReport decouples declaration order from
/// emission order: add() and set_meta() may interleave arbitrarily,
/// set_meta() upserts (last value per key wins), and write() always
/// emits the meta block before the entries.
class BenchReport
{
  public:
    explicit BenchReport(std::string suite) : suite_(std::move(suite)) {}

    /// Insert or replace one provenance key. Callable before, between,
    /// or after add() calls — emission order is fixed by the schema,
    /// not by call order.
    void
    set_meta(const std::string& key, const std::string& value)
    {
        for (auto& [existing, slot] : meta_) {
            if (existing == key) {
                slot = value;
                return;
            }
        }
        meta_.emplace_back(key, value);
    }

    void add(BenchEntry entry) { entries_.push_back(std::move(entry)); }

    const std::vector<BenchEntry>& entries() const { return entries_; }
    const std::vector<std::pair<std::string, std::string>>&
    meta() const
    {
        return meta_;
    }

    void
    write(const std::string& path) const
    {
        write_bench_json(path, suite_, entries_, meta_);
    }

  private:
    std::string suite_;
    std::vector<BenchEntry> entries_;
    std::vector<std::pair<std::string, std::string>> meta_;
};

} // namespace tgl::bench
