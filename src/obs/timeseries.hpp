/// @file
/// Time-series flight recorder over the metrics registry.
///
/// The registry answers "what are the totals right now"; the recorder
/// answers "what happened over the last 1s/10s/60s". A background
/// sampler thread snapshots the registry every `interval_ms` and files
/// each metric into a fixed-size ring buffer of samples, so a
/// long-running server keeps a bounded recent history it can serve
/// over the wire (kTimeseries opcode) or dump on drain
/// (`--timeseries-out`) without any external scrape infrastructure.
///
/// Storage model (DESIGN.md §15):
///  * Counters are stored as per-sample *deltas* (this sample's
///    cumulative minus the previous one). A cumulative value below the
///    previous sample means the counter was reset (Registry::reset());
///    the delta clamps to the post-reset cumulative — the standard
///    rate-across-reset convention — so rates never go negative.
///  * Gauges store the sampled value verbatim.
///  * Histograms store per-sample bucket-count deltas plus count/sum
///    deltas, which is exactly what windowed quantiles need.
///  * The first sample of a metric primes its baseline and records a
///    zero delta, so activity predating the recorder is not
///    misattributed to the first interval.
///
/// Queries aggregate the ring over trailing windows: counter
/// delta/rate, gauge last/min/max/mean, histogram count/rate/p50/p90/
/// p99 (quantiles report the matching bucket's upper bound; the
/// overflow bucket reports the largest finite bound). Everything —
/// rings, baselines, rollups — is guarded by one recorder mutex;
/// writers never touch it (they write to the registry as usual), so
/// the only cross-thread contention is sampler vs. query.
#pragma once

#include "obs/metrics.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tgl::obs {

struct TimeseriesConfig
{
    /// Sampler period. Bounded history = capacity * interval.
    unsigned interval_ms = 100;
    /// Ring slots per metric (600 x 100ms = one minute of history).
    std::size_t capacity = 600;
    /// Trailing rollup windows rendered by to_json(), in seconds.
    std::vector<double> windows = {1.0, 10.0, 60.0};
};

/// Windowed aggregate of one metric (see rollup()).
struct MetricRollup
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// Counter: summed delta over the window and delta/second. For
    /// histograms delta is the observation-count delta.
    double delta = 0.0;
    double rate = 0.0;
    /// Counter cumulative / gauge value at the newest sample.
    double last = 0.0;
    /// Gauge statistics over the window's samples.
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /// Histogram observation-sum delta and bucket-quantiles.
    double sum_delta = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

class FlightRecorder
{
  public:
    explicit FlightRecorder(Registry& registry,
                            TimeseriesConfig config = {});
    ~FlightRecorder();
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Spawn the background sampler thread (idempotent).
    void start();
    /// Stop and join the sampler; recorded history stays queryable.
    void stop();

    /// Take one sample synchronously (the sampler thread calls this;
    /// tests call it directly for deterministic rings).
    void sample_now();

    /// Total samples taken since construction (monotonic, not capped
    /// by ring capacity).
    std::uint64_t num_samples() const;

    /// Aggregate every recorded metric over the trailing
    /// @p window_seconds (relative to the newest sample).
    std::vector<MetricRollup> rollup(double window_seconds) const;

    /// Render every configured window as JSON:
    /// {"schema_version":1,"interval_ms":...,"samples":N,
    ///  "windows":[{"seconds":...,"metrics":[...]}, ...]}.
    std::string to_json() const;

    /// Write to_json() to @p path (tgl::util::Error on I/O failure).
    void write_json(const std::string& path) const;

    const TimeseriesConfig& config() const { return config_; }

  private:
    struct Sample
    {
        double t = 0.0; ///< seconds since recorder construction
        double delta = 0.0;
        double cumulative = 0.0; ///< counter total / gauge value
        std::vector<std::uint64_t> bucket_deltas;
        std::uint64_t count_delta = 0;
        double sum_delta = 0.0;
    };

    struct Series
    {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        std::vector<double> bounds;
        std::vector<Sample> ring; ///< capacity slots, lazily grown
        std::size_t head = 0;     ///< next write position
        std::size_t size = 0;
        /// Baseline for delta computation (previous cumulative state).
        double prev_value = 0.0;
        std::vector<std::uint64_t> prev_buckets;
        std::uint64_t prev_count = 0;
        double prev_sum = 0.0;
    };

    void sampler_main();
    void record_locked(Series& series, double t, const MetricValue& metric);
    const Sample* newest_locked(const Series& series) const;

    Registry& registry_;
    TimeseriesConfig config_;
    std::chrono::steady_clock::time_point epoch_;
    Counter samples_counter_;

    mutable std::mutex mutex_;
    std::vector<Series> series_;
    std::uint64_t num_samples_ = 0;

    std::mutex sampler_mutex_;
    std::condition_variable sampler_cv_;
    bool stop_requested_ = false;
    std::thread sampler_;
};

} // namespace tgl::obs
