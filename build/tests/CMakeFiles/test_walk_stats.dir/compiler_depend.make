# Empty compiler generated dependencies file for test_walk_stats.
# This may be replaced when dependencies are built.
