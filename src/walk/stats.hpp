/// @file
/// Walk-length distribution statistics — the data behind Fig. 4 of the
/// paper (power-law walk lengths: most temporal walks die after 1-5
/// hops because timestamp constraints exhaust the neighborhood).
#pragma once

#include "walk/corpus.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tgl::walk {

/// Distribution of walk lengths (token counts) in a corpus.
struct LengthDistribution
{
    /// counts[l] = number of walks with exactly l tokens (index 0 unused).
    std::vector<std::uint64_t> counts;
    double mean_length = 0.0;
    std::size_t max_length = 0;
    /// Fraction of walks with <= 5 tokens (the paper's "1 to 5" mass).
    double short_walk_fraction = 0.0;
    /// Least-squares slope of log(count) vs length over the decaying
    /// tail; strongly negative means exponential/power-law decay.
    double tail_log_slope = 0.0;
};

/// Compute the length distribution of a corpus.
LengthDistribution length_distribution(const Corpus& corpus);

/// Render as a two-column table (length, count) like Fig. 4's data.
std::string format_length_distribution(const LengthDistribution& dist);

} // namespace tgl::walk
