/// @file
/// R-MAT (recursive matrix) temporal graph generator.
///
/// Kronecker-style generator (Chakrabarti et al., SDM 2004) giving
/// skewed, community-clustered degree distributions; used for
/// large-scale scaling runs where BA's sequential attachment is too
/// slow, and for the ablation comparing degree-distribution effects.
#pragma once

#include "gen/timestamps.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>

namespace tgl::gen {

/// Parameters of the recursive quadrant process.
struct RmatParams
{
    /// log2 of the number of nodes.
    unsigned scale = 10;
    graph::EdgeId num_edges = 0;
    /// Quadrant probabilities; must sum to ~1. Defaults are the
    /// Graph500 constants.
    double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
    TimestampModel timestamps = TimestampModel::kUniform;
    std::uint64_t seed = 1;
};

/// Generate an R-MAT temporal edge list with 2^scale nodes.
graph::EdgeList generate_rmat(const RmatParams& params);

} // namespace tgl::gen
