#include "core/metrics.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <numeric>

namespace tgl::core {

double
binary_accuracy(const nn::Tensor& probabilities,
                const std::vector<float>& targets)
{
    TGL_ASSERT(probabilities.cols() == 1);
    TGL_ASSERT(probabilities.rows() == targets.size());
    const std::size_t n = targets.size();
    if (n == 0) {
        return 0.0;
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool predicted = probabilities(i, 0) >= 0.5f;
        const bool actual = targets[i] >= 0.5f;
        if (predicted == actual) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

double
roc_auc(const nn::Tensor& probabilities, const std::vector<float>& targets)
{
    TGL_ASSERT(probabilities.cols() == 1);
    TGL_ASSERT(probabilities.rows() == targets.size());
    const std::size_t n = targets.size();

    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return probabilities(a, 0) < probabilities(b, 0);
              });

    // Average ranks over ties, then apply the Mann–Whitney identity.
    std::vector<double> rank(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && probabilities(order[j + 1], 0) ==
                                probabilities(order[i], 0)) {
            ++j;
        }
        const double mean_rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) {
            rank[order[k]] = mean_rank;
        }
        i = j + 1;
    }

    double positive_rank_sum = 0.0;
    std::size_t positives = 0;
    for (std::size_t k = 0; k < n; ++k) {
        if (targets[k] >= 0.5f) {
            positive_rank_sum += rank[k];
            ++positives;
        }
    }
    const std::size_t negatives = n - positives;
    if (positives == 0 || negatives == 0) {
        return 0.5;
    }
    const double u = positive_rank_sum -
                     static_cast<double>(positives) *
                         (static_cast<double>(positives) + 1.0) / 2.0;
    return u / (static_cast<double>(positives) *
                static_cast<double>(negatives));
}

namespace {

std::uint32_t
argmax_row(const nn::Tensor& scores, std::size_t row)
{
    const auto r = scores.row(row);
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < r.size(); ++c) {
        if (r[c] > r[best]) {
            best = c;
        }
    }
    return best;
}

} // namespace

double
multiclass_accuracy(const nn::Tensor& scores,
                    const std::vector<std::uint32_t>& targets)
{
    TGL_ASSERT(scores.rows() == targets.size());
    const std::size_t n = targets.size();
    if (n == 0) {
        return 0.0;
    }
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (argmax_row(scores, i) == targets[i]) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

std::vector<std::vector<std::uint64_t>>
confusion_matrix(const nn::Tensor& scores,
                 const std::vector<std::uint32_t>& targets,
                 std::uint32_t num_classes)
{
    TGL_ASSERT(scores.rows() == targets.size());
    std::vector<std::vector<std::uint64_t>> matrix(
        num_classes, std::vector<std::uint64_t>(num_classes, 0));
    for (std::size_t i = 0; i < targets.size(); ++i) {
        TGL_ASSERT(targets[i] < num_classes);
        ++matrix[targets[i]][argmax_row(scores, i)];
    }
    return matrix;
}

double
macro_f1(const nn::Tensor& scores,
         const std::vector<std::uint32_t>& targets,
         std::uint32_t num_classes)
{
    const auto matrix = confusion_matrix(scores, targets, num_classes);
    double f1_sum = 0.0;
    std::uint32_t counted = 0;
    for (std::uint32_t c = 0; c < num_classes; ++c) {
        std::uint64_t tp = matrix[c][c];
        std::uint64_t fp = 0;
        std::uint64_t fn = 0;
        for (std::uint32_t other = 0; other < num_classes; ++other) {
            if (other != c) {
                fp += matrix[other][c];
                fn += matrix[c][other];
            }
        }
        if (tp + fp + fn == 0) {
            continue; // class absent from both truth and predictions
        }
        const double precision =
            tp + fp == 0 ? 0.0
                         : static_cast<double>(tp) /
                               static_cast<double>(tp + fp);
        const double recall =
            tp + fn == 0 ? 0.0
                         : static_cast<double>(tp) /
                               static_cast<double>(tp + fn);
        const double f1 = precision + recall == 0.0
                              ? 0.0
                              : 2.0 * precision * recall /
                                    (precision + recall);
        f1_sum += f1;
        ++counted;
    }
    return counted == 0 ? 0.0 : f1_sum / counted;
}

} // namespace tgl::core
