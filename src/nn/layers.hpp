/// @file
/// Feed-forward layers with explicit forward/backward passes.
///
/// The paper's classifiers are small fixed FNN stacks (2-layer for link
/// prediction, 3-layer for node classification, SIV-B), so tgl uses
/// hand-derived backward passes instead of a tape autodiff: every
/// gradient is a GEMM or an elementwise map, which keeps the classifier
/// phase transparent to the profiling substrate.
#pragma once

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "rng/random.hpp"

#include <memory>
#include <string>
#include <vector>

namespace tgl::nn {

/// One learnable parameter with its gradient accumulator.
struct Parameter
{
    std::string name;
    Tensor value;
    Tensor grad;
};

/// Abstract layer: forward caches whatever backward needs.
class Layer
{
  public:
    virtual ~Layer() = default;

    /// Compute the layer output for @p input (batch rows).
    virtual const Tensor& forward(const Tensor& input) = 0;

    /// Given dLoss/dOutput, accumulate parameter grads and return
    /// dLoss/dInput. Must be called after forward on the same batch.
    virtual const Tensor& backward(const Tensor& grad_output) = 0;

    /// Learnable parameters (empty for activations).
    virtual std::vector<Parameter*> parameters() { return {}; }

    /// Human-readable layer description.
    virtual std::string describe() const = 0;
};

/// Fully connected layer: Y = X * W^T + b, W stored (out x in).
class Linear : public Layer
{
  public:
    Linear(std::size_t in_features, std::size_t out_features,
           rng::Random& random);

    const Tensor& forward(const Tensor& input) override;
    const Tensor& backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string describe() const override;

    std::size_t in_features() const { return in_features_; }
    std::size_t out_features() const { return out_features_; }

  private:
    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_; // (out x in)
    Parameter bias_;   // (1 x out)
    Tensor input_cache_;
    Tensor output_;
    Tensor grad_input_;
};

/// Elementwise max(0, x).
class ReLU : public Layer
{
  public:
    const Tensor& forward(const Tensor& input) override;
    const Tensor& backward(const Tensor& grad_output) override;
    std::string describe() const override { return "ReLU"; }

  private:
    Tensor output_;
    Tensor grad_input_;
};

/// Elementwise logistic sigmoid (the link-prediction output layer).
class Sigmoid : public Layer
{
  public:
    const Tensor& forward(const Tensor& input) override;
    const Tensor& backward(const Tensor& grad_output) override;
    std::string describe() const override { return "Sigmoid"; }

  private:
    Tensor output_;
    Tensor grad_input_;
};

/// Pre-activation residual block: y = ReLU(x + W2 ReLU(W1 x + b1) + b2)
/// with square weight matrices (width x width).
///
/// The paper's SVIII-A notes that swapping the plain FNN for a
/// ResNet-style architecture buys ~2% link-prediction accuracy; this
/// block is that extension (see make_residual_link_predictor).
class ResidualBlock : public Layer
{
  public:
    ResidualBlock(std::size_t width, rng::Random& random);

    const Tensor& forward(const Tensor& input) override;
    const Tensor& backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string describe() const override;

  private:
    std::size_t width_;
    Parameter weight1_, bias1_;
    Parameter weight2_, bias2_;
    Tensor input_cache_;
    Tensor hidden_pre_;   // W1 x + b1
    Tensor hidden_post_;  // ReLU of the above
    Tensor output_;       // final ReLU(x + branch)
    Tensor grad_input_;
    Tensor branch_grad_;  // scratch
};

/// Row-wise log-softmax (the node-classification output layer; pairs
/// with NllLoss to form cross-entropy).
class LogSoftmax : public Layer
{
  public:
    const Tensor& forward(const Tensor& input) override;
    const Tensor& backward(const Tensor& grad_output) override;
    std::string describe() const override { return "LogSoftmax"; }

  private:
    Tensor output_;
    Tensor grad_input_;
};

} // namespace tgl::nn
