/// @file
/// Hogwild skip-gram trainer — the paper's CPU word2vec (RW-P2).
///
/// Threads sweep disjoint dynamic chunks of sentences and update the
/// shared model without synchronization; because each update touches
/// only a handful of rows, collisions are rare and the race-tolerant
/// scheme converges (Recht et al., NIPS 2011 — and the paper leans on
/// the same sparsity argument for its batched GPU variant, SV-B).
#pragma once

#include "embed/embedding.hpp"
#include "embed/sgns_model.hpp"
#include "walk/corpus.hpp"

#include <cstdint>

namespace tgl::embed {

/// Execution statistics of one training run.
struct TrainStats
{
    std::uint64_t pairs_trained = 0;
    std::uint64_t tokens_processed = 0;
    double seconds = 0.0;
};

/// Train SGNS embeddings over a walk corpus (Hogwild, multithreaded).
///
/// @param corpus     walk sentences
/// @param num_nodes  node-id space for the returned embedding
/// @param config     SGNS hyperparameters
/// @param stats      optional execution statistics
Embedding train_sgns(const walk::Corpus& corpus, graph::NodeId num_nodes,
                     const SgnsConfig& config, TrainStats* stats = nullptr);

} // namespace tgl::embed
