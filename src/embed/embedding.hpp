/// @file
/// Node embedding matrix: the d-dimensional representation f(u) that
/// the walk + word2vec front-end produces and the classifiers consume.
#pragma once

#include "graph/types.hpp"

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace tgl::embed {

/// Row-major (num_nodes x dim) float matrix addressed by node id.
/// Nodes absent from the training corpus keep zero rows.
class Embedding
{
  public:
    Embedding() = default;

    /// Zero-initialized matrix.
    Embedding(graph::NodeId num_nodes, unsigned dim)
        : num_nodes_(num_nodes), dim_(dim),
          data_(static_cast<std::size_t>(num_nodes) * dim, 0.0f)
    {
    }

    graph::NodeId num_nodes() const { return num_nodes_; }
    unsigned dim() const { return dim_; }

    /// Embedding vector of node u.
    std::span<const float>
    row(graph::NodeId u) const
    {
        return {data_.data() + static_cast<std::size_t>(u) * dim_, dim_};
    }

    std::span<float>
    row(graph::NodeId u)
    {
        return {data_.data() + static_cast<std::size_t>(u) * dim_, dim_};
    }

    const std::vector<float>& data() const { return data_; }

    /// Cosine similarity of two node embeddings (0 if either is zero).
    double cosine(graph::NodeId u, graph::NodeId v) const;

    /// The k nodes most cosine-similar to u (excluding u itself).
    std::vector<graph::NodeId> nearest(graph::NodeId u, unsigned k) const;

    /// Text serialization: header "num_nodes dim", one row per line.
    /// save_file replaces the target atomically (temp file + rename).
    void save(std::ostream& out) const;
    static Embedding load(std::istream& in);
    void save_file(const std::string& path) const;
    static Embedding load_file(const std::string& path);

    /// Binary serialization in the CRC32-checksummed artifact container
    /// (util/artifact_io.hpp, kind "embed"). load_binary rejects
    /// truncated, corrupt, or version-mismatched files with a
    /// tgl::util::Error; @p fingerprint keys the artifact to the
    /// configuration that produced it (checkpointing).
    void save_binary(std::ostream& out, std::uint64_t fingerprint = 0) const;
    static Embedding load_binary(std::istream& in,
                                 std::uint64_t* fingerprint = nullptr);
    /// Atomic (temp file + rename) binary file write.
    void save_binary_file(const std::string& path,
                          std::uint64_t fingerprint = 0) const;
    static Embedding load_binary_file(const std::string& path,
                                      std::uint64_t* fingerprint = nullptr);

  private:
    graph::NodeId num_nodes_ = 0;
    unsigned dim_ = 0;
    std::vector<float> data_;
};

} // namespace tgl::embed
