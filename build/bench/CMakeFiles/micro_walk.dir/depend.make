# Empty dependencies file for micro_walk.
# This may be replaced when dependencies are built.
