#include "util/env.hpp"

#include "util/logging.hpp"

#include <thread>

#ifdef __linux__
#include <unistd.h>
#endif

namespace tgl::util {

namespace {

#ifdef __linux__
std::size_t
sysconf_or(long name, std::size_t fallback)
{
    const long value = ::sysconf(name);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}
#endif

HostInfo
query_host()
{
    HostInfo info;
    const unsigned hw = std::thread::hardware_concurrency();
    info.hardware_threads = hw == 0 ? 1 : hw;
#ifdef __linux__
#ifdef _SC_LEVEL1_DCACHE_SIZE
    info.l1d_bytes = sysconf_or(_SC_LEVEL1_DCACHE_SIZE, info.l1d_bytes);
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
    info.l2_bytes = sysconf_or(_SC_LEVEL2_CACHE_SIZE, info.l2_bytes);
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
    info.llc_bytes = sysconf_or(_SC_LEVEL3_CACHE_SIZE, info.llc_bytes);
#endif
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
    info.cache_line_bytes =
        sysconf_or(_SC_LEVEL1_DCACHE_LINESIZE, info.cache_line_bytes);
#endif
#endif
    return info;
}

} // namespace

const HostInfo&
host_info()
{
    static const HostInfo info = query_host();
    return info;
}

std::string
host_summary()
{
    const HostInfo& info = host_info();
    return strcat("host: ", info.hardware_threads, " hw threads, L1d ",
                  info.l1d_bytes / 1024, "KiB, L2 ", info.l2_bytes / 1024,
                  "KiB, LLC ", info.llc_bytes / 1024, "KiB, line ",
                  info.cache_line_bytes, "B");
}

} // namespace tgl::util
