/// @file
/// Error handling primitives for tgl.
///
/// Following the gem5 fatal/panic split:
///  * user-caused failures (bad files, invalid configuration) throw
///    tgl::util::Error so callers can recover or report;
///  * internal invariant violations use TGL_ASSERT / TGL_PANIC, which
///    abort — they indicate a bug in tgl itself, never user error.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tgl::util {

/// Exception thrown for user-recoverable errors (bad input files,
/// invalid configurations, out-of-range hyperparameters).
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure that is expected to succeed if simply tried again
/// (EINTR/EAGAIN-style I/O hiccups, injected transient faults).
/// util::retry_transient() retries exactly this type; every other
/// Error is terminal and propagates on the first throw.
class TransientError : public Error
{
  public:
    explicit TransientError(const std::string& what) : Error(what) {}
};

/// Cooperative-cancellation signal (SIGINT/SIGTERM, stall watchdog).
/// Distinct from Error recovery paths: checkpoint loaders and retry
/// loops must always propagate it instead of degrading or retrying.
class Cancelled : public Error
{
  public:
    explicit Cancelled(const std::string& what) : Error(what) {}
};

/// Throw a tgl::util::Error with a formatted message.
[[noreturn]] inline void
fatal(const std::string& message)
{
    throw Error(message);
}

namespace detail {

[[noreturn]] inline void
panic_impl(const char* cond, const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "tgl panic: %s at %s:%d%s%s\n",
                 cond, file, line, msg[0] ? ": " : "", msg);
    std::abort();
}

} // namespace detail

} // namespace tgl::util

/// Abort with a diagnostic; use only for internal bugs, never user error.
#define TGL_PANIC(msg) \
    ::tgl::util::detail::panic_impl("panic", __FILE__, __LINE__, msg)

/// Assert an internal invariant. Active in all build types: the cost is
/// negligible outside hot loops, and hot loops use TGL_DASSERT instead.
#define TGL_ASSERT(cond)                                                     \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::tgl::util::detail::panic_impl(#cond, __FILE__, __LINE__, ""); \
        }                                                                    \
    } while (0)

/// Debug-only assert for hot paths; compiles away in NDEBUG builds.
#ifdef NDEBUG
#define TGL_DASSERT(cond) ((void)0)
#else
#define TGL_DASSERT(cond) TGL_ASSERT(cond)
#endif
