#include "core/checkpoint.hpp"

#include "core/link_prediction.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/retry.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

namespace tgl::core {

std::uint64_t
fingerprint_edges(const graph::EdgeList& edges)
{
    util::Fingerprint fp;
    fp.mix(static_cast<std::uint64_t>(edges.size()));
    for (const graph::TemporalEdge& e : edges) {
        fp.mix(e.src);
        fp.mix(e.dst);
        fp.mix(e.time);
    }
    return fp.value();
}

std::uint64_t
shard_fingerprint(std::uint64_t walk_fingerprint, std::size_t index,
                  std::size_t num_shards)
{
    util::Fingerprint fp;
    fp.mix(std::string_view("corpus-shard"));
    fp.mix(walk_fingerprint);
    fp.mix(static_cast<std::uint64_t>(index));
    fp.mix(static_cast<std::uint64_t>(num_shards));
    return fp.value();
}

void
mix_config(util::Fingerprint& fp, const walk::WalkConfig& config)
{
    fp.mix(std::string_view("walk"));
    fp.mix(config.walks_per_node);
    fp.mix(config.max_length);
    fp.mix(static_cast<std::uint32_t>(config.transition));
    fp.mix(static_cast<std::uint32_t>(config.start));
    fp.mix(static_cast<std::uint8_t>(config.temporal));
    fp.mix(static_cast<std::uint8_t>(config.strict_time));
    fp.mix(config.min_walk_tokens);
    fp.mix(config.seed);
    // The transition-cache mode is NOT speed-only: the cached sampler
    // consumes one RNG draw per step where the direct scan consumes
    // one per candidate, so the two modes produce different (equally
    // distributed) corpora from the same seed.
    fp.mix(static_cast<std::uint32_t>(config.transition_cache));
    // Same story for the batch width: widths > 1 consume the per-lane
    // RNG streams differently from the scalar sampler (one uniform
    // per step vs the kind-dependent scalar pattern), so the width is
    // output-affecting and a resumed pipeline must not mix corpora
    // generated under different widths.
    fp.mix(config.batch_width);
    // num_threads and linear_neighbor_search change only speed: walks
    // are seeded per (walk, vertex) and both neighbor searches select
    // the same edges.
}

void
mix_config(util::Fingerprint& fp, const embed::SgnsConfig& config)
{
    fp.mix(std::string_view("sgns"));
    fp.mix(config.dim);
    fp.mix(config.window);
    fp.mix(config.negatives);
    fp.mix(config.epochs);
    fp.mix(config.alpha);
    fp.mix(config.min_count);
    fp.mix(config.subsample);
    fp.mix(config.seed);
    fp.mix(config.row_stride);
    // num_threads is mixed because Hogwild training is only
    // reproducible for a fixed team size (and exactly so only for 1).
    fp.mix(config.num_threads);
    // The kernel backend is output-affecting: the simd kernels
    // reassociate the dot reduction into vector partial sums, so
    // backends agree in law but not bitwise. The *resolved* backend is
    // mixed (name + compiled ISA) so `auto` fingerprints identically
    // to the backend it resolves to on this build, and a checkpoint
    // trained under one backend is never resumed under another.
    const embed::kernels::SgnsBackendOps& ops =
        embed::sgns_kernel_ops(config);
    fp.mix(std::string_view(ops.name));
    fp.mix(std::string_view(ops.isa));
}

void
mix_config(util::Fingerprint& fp, const SplitConfig& config)
{
    fp.mix(std::string_view("split"));
    fp.mix(config.train_fraction);
    fp.mix(config.valid_fraction);
    fp.mix(config.test_fraction);
    fp.mix(config.negatives_per_positive);
    fp.mix(config.max_negative_attempts);
    fp.mix(config.seed);
}

void
mix_config(util::Fingerprint& fp, const ClassifierConfig& config)
{
    fp.mix(std::string_view("classifier"));
    fp.mix(config.hidden_dim);
    fp.mix(config.hidden1);
    fp.mix(config.hidden2);
    fp.mix(config.max_epochs);
    fp.mix(config.batch_size);
    fp.mix(config.lr);
    fp.mix(config.momentum);
    fp.mix(config.weight_decay);
    fp.mix(config.target_valid_accuracy);
    fp.mix(static_cast<std::uint8_t>(config.residual));
    fp.mix(config.residual_blocks);
    fp.mix(config.seed);
}

CheckpointManager::CheckpointManager(std::string directory)
    : directory_(std::move(directory))
{
    if (directory_.empty()) {
        util::fatal("CheckpointManager: checkpoint directory is empty");
    }
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec) {
        util::fatal(util::strcat("cannot create checkpoint directory ",
                                 directory_, ": ", ec.message()));
    }
}

std::string
CheckpointManager::corpus_path() const
{
    return (std::filesystem::path(directory_) / "corpus.tgla").string();
}

std::string
CheckpointManager::embedding_path() const
{
    return (std::filesystem::path(directory_) / "embedding.tgla").string();
}

std::string
CheckpointManager::classifier_path(const std::string& name) const
{
    return (std::filesystem::path(directory_) / (name + ".tgla")).string();
}

std::string
CheckpointManager::transition_cache_path() const
{
    return (std::filesystem::path(directory_) / "transition_cache.tgla")
        .string();
}

namespace {

/// Flip one byte near the middle of @p path — the `corrupt` failpoint
/// action damages the real on-disk artifact so the CRC/validation and
/// quarantine machinery is exercised end to end, not simulated.
void
corrupt_file_in_place(const std::string& path)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    if (!file) {
        return; // nothing to corrupt; the load will report "missing"
    }
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    if (size <= 0) {
        return;
    }
    const std::streamoff pos = size / 2;
    char byte = 0;
    file.seekg(pos);
    file.read(&byte, 1);
    byte ^= 0x5a;
    file.seekp(pos);
    file.write(&byte, 1);
}

/// Bump the shared recovery.regenerated counter (the metric the chaos
/// harness asserts on) alongside the per-manager count.
void
note_regenerated(std::atomic<unsigned>& regenerated)
{
    static const obs::Counter counter =
        obs::Registry::global().counter("recovery.regenerated");
    counter.inc();
    regenerated.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

/// Run @p loader against @p path, mapping every non-resume outcome
/// (absent file, stale fingerprint, failed container validation) to
/// false so the caller regenerates. @p loader receives the open stream
/// and the expected fingerprint and returns whether it matched.
/// Transient I/O failures are retried with bounded backoff; container
/// validation failures quarantine the damaged file; cancellation
/// propagates untouched.
template <typename Loader>
bool
CheckpointManager::load_checkpoint(const std::string& path,
                                   std::uint64_t fingerprint,
                                   const char* what,
                                   const Loader& loader) const
{
    enum Outcome { kMissing, kStale, kLoaded };
    const auto attempt = [&]() -> Outcome {
        if (util::fault_point("checkpoint.load") ==
            util::FailpointAction::kCorrupt) {
            corrupt_file_in_place(path);
        }
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            return kMissing; // nothing checkpointed yet
        }
        return loader(in, fingerprint) ? kLoaded : kStale;
    };

    util::RetryPolicy policy;
    policy.seed =
        util::Fingerprint().mix(std::string_view(path)).value();
    Outcome outcome;
    try {
        outcome = util::retry_transient(
            policy, util::strcat(what, " checkpoint load"), attempt);
    } catch (const util::Cancelled&) {
        throw; // a cancelled run must stop, not silently rebuild
    } catch (const util::FaultInjected& error) {
        // Injected terminal fault: the artifact on disk is fine, so
        // regenerate without quarantining it.
        util::warn(util::strcat("checkpoint ", path, " is unusable (",
                                error.what(), ") — regenerating"));
        note_regenerated(regenerated_);
        return false;
    } catch (const util::TransientError& error) {
        // Retry budget exhausted: treat like an unusable read and
        // rebuild — a flaky disk must cost time, never the run.
        util::warn(util::strcat("checkpoint ", path, " is unreadable (",
                                error.what(), ") — regenerating"));
        note_regenerated(regenerated_);
        return false;
    } catch (const util::Error& error) {
        // Container validation failed (truncation, checksum mismatch,
        // wrong kind): move the damaged file aside and rebuild.
        util::quarantine_artifact(path, error.what());
        quarantined_.fetch_add(1, std::memory_order_relaxed);
        note_regenerated(regenerated_);
        return false;
    }

    switch (outcome) {
    case kMissing:
        return false;
    case kStale:
        util::inform(util::strcat("checkpoint ", path, " is stale (",
                                  what, " inputs changed) — regenerating"));
        return false;
    case kLoaded:
        break;
    }
    util::inform(util::strcat("resumed ", what, " from checkpoint ", path));
    return true;
}

bool
CheckpointManager::load_corpus(std::uint64_t fingerprint,
                               walk::Corpus& out) const
{
    return load_checkpoint(
        corpus_path(), fingerprint, "walk corpus",
        [&](std::istream& in, std::uint64_t expected) {
            std::uint64_t stored = 0;
            walk::Corpus corpus = walk::Corpus::load_binary(in, &stored);
            if (stored != expected) {
                return false;
            }
            out = std::move(corpus);
            return true;
        });
}

void
CheckpointManager::store_corpus(std::uint64_t fingerprint,
                                const walk::Corpus& corpus) const
{
    corpus.save_binary_file(corpus_path(), fingerprint);
}

std::string
CheckpointManager::corpus_shard_path(std::size_t index) const
{
    return (std::filesystem::path(directory_) /
            util::strcat("corpus_shard_", index, ".tgla"))
        .string();
}

bool
CheckpointManager::load_corpus_shard(std::uint64_t fingerprint,
                                     std::size_t index,
                                     walk::Corpus& out) const
{
    return load_checkpoint(
        corpus_shard_path(index), fingerprint, "walk corpus shard",
        [&](std::istream& in, std::uint64_t expected) {
            std::uint64_t stored = 0;
            walk::Corpus shard = walk::Corpus::load_binary(in, &stored);
            if (stored != expected) {
                return false;
            }
            out = std::move(shard);
            return true;
        });
}

void
CheckpointManager::store_corpus_shard(std::uint64_t fingerprint,
                                      std::size_t index,
                                      const walk::Corpus& shard) const
{
    shard.save_binary_file(corpus_shard_path(index), fingerprint);
}

bool
CheckpointManager::load_transition_cache(std::uint64_t fingerprint,
                                         walk::TransitionCache& out) const
{
    return load_checkpoint(
        transition_cache_path(), fingerprint, "transition cache",
        [&](std::istream& in, std::uint64_t expected) {
            std::uint64_t stored = 0;
            walk::TransitionCache cache =
                walk::TransitionCache::load_binary(in, &stored);
            if (stored != expected) {
                return false;
            }
            out = std::move(cache);
            return true;
        });
}

void
CheckpointManager::store_transition_cache(
    std::uint64_t fingerprint, const walk::TransitionCache& cache) const
{
    cache.save_binary_file(transition_cache_path(), fingerprint);
}

bool
CheckpointManager::load_embedding(std::uint64_t fingerprint,
                                  embed::Embedding& out) const
{
    return load_checkpoint(
        embedding_path(), fingerprint, "embedding",
        [&](std::istream& in, std::uint64_t expected) {
            std::uint64_t stored = 0;
            embed::Embedding embedding =
                embed::Embedding::load_binary(in, &stored);
            if (stored != expected) {
                return false;
            }
            out = std::move(embedding);
            return true;
        });
}

void
CheckpointManager::store_embedding(std::uint64_t fingerprint,
                                   const embed::Embedding& embedding) const
{
    embedding.save_binary_file(embedding_path(), fingerprint);
}

bool
CheckpointManager::load_classifier(const std::string& name,
                                   std::uint64_t fingerprint,
                                   nn::Mlp& net) const
{
    return load_checkpoint(
        classifier_path(name), fingerprint, "classifier",
        [&](std::istream& in, std::uint64_t expected) {
            // Validate container + fingerprint before load_weights
            // mutates the network: a stale artifact must leave the
            // freshly initialized weights untouched, or the subsequent
            // retraining would start from the stale state.
            {
                util::ArtifactReader probe(in, "mlp");
                if (probe.fingerprint() != expected) {
                    return false;
                }
            }
            in.clear();
            in.seekg(0);
            std::uint64_t stored = 0;
            net.load_weights(in, &stored);
            return stored == expected;
        });
}

void
CheckpointManager::store_classifier(const std::string& name,
                                    std::uint64_t fingerprint,
                                    nn::Mlp& net) const
{
    util::atomic_write_file(
        classifier_path(name),
        [&](std::ostream& out) { net.save_weights(out, fingerprint); },
        /*binary=*/true);
}

} // namespace tgl::core
