/// Failure-path tests: malformed inputs, invalid configurations, and
/// numeric divergence must all surface as tgl::util::Error with a
/// descriptive message — never a crash, an abort, or silent garbage.
#include "core/link_prediction.hpp"
#include "core/pipeline.hpp"
#include "embed/embedding.hpp"
#include "embed/sigmoid_table.hpp"
#include "embed/trainer.hpp"
#include "graph/io.hpp"
#include "rng/random.hpp"
#include "util/error.hpp"
#include "walk/corpus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

namespace tgl {
namespace {

std::string
thrown_message(const std::function<void()>& action)
{
    try {
        action();
    } catch (const util::Error& error) {
        return error.what();
    }
    ADD_FAILURE() << "expected a tgl::util::Error";
    return "";
}

TEST(MalformedEdgeList, NanTimestampRejectedWithLineNumber)
{
    std::istringstream in("0 1 0.5\n1 2 nan\n");
    const std::string message =
        thrown_message([&] { graph::load_wel(in); });
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
    EXPECT_NE(message.find("non-finite"), std::string::npos) << message;
}

TEST(MalformedEdgeList, InfTimestampRejected)
{
    std::istringstream in("0 1 inf\n");
    EXPECT_THROW(graph::load_wel(in), util::Error);
}

TEST(MalformedEdgeList, NodeIdBeyond32BitsRejectedNotTruncated)
{
    // 2^32 would silently truncate to node 0 under a bare cast.
    std::istringstream in("4294967296 1 0.5\n");
    const std::string message =
        thrown_message([&] { graph::load_wel(in); });
    EXPECT_NE(message.find("4294967296"), std::string::npos) << message;
    EXPECT_NE(message.find("maximum"), std::string::npos) << message;
}

TEST(MalformedEdgeList, SentinelNodeIdRejected)
{
    // 2^32 - 1 is kInvalidNode and must not be accepted either.
    std::istringstream in("0 4294967295 0.5\n");
    EXPECT_THROW(graph::load_wel(in), util::Error);
}

TEST(MalformedEdgeList, OverlongNumericFieldRejected)
{
    std::istringstream in("1 2 " + std::string(1 << 20, '9') + "\n");
    EXPECT_THROW(graph::load_wel(in), util::Error);
}

TEST(MalformedEdgeList, MissingFieldReportsLineAndContent)
{
    std::istringstream in("0 1 0.5\n7\n");
    const std::string message =
        thrown_message([&] { graph::load_wel(in); });
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
}

TEST(MalformedArtifacts, TruncatedBinaryEmbeddingRejected)
{
    embed::Embedding original(4, 2);
    std::ostringstream out;
    original.save_binary(out);
    const std::string blob = out.str();
    std::istringstream in(blob.substr(0, blob.size() - 3));
    EXPECT_THROW(embed::Embedding::load_binary(in), util::Error);
}

TEST(MalformedArtifacts, WrongArtifactKindRejected)
{
    // A corpus artifact handed to the embedding loader must be refused
    // by its kind tag, not misparsed.
    walk::Corpus corpus;
    const graph::NodeId walk1[] = {0, 1, 2};
    corpus.add_walk(walk1);
    std::ostringstream out;
    corpus.save_binary(out);
    std::istringstream in(out.str());
    EXPECT_THROW(embed::Embedding::load_binary(in), util::Error);
}

TEST(InvalidConfig, EveryDiagnosticCollectedNotJustTheFirst)
{
    core::PipelineConfig config;
    config.walk.walks_per_node = 0;
    config.walk.max_length = 0;
    config.sgns.alpha = -1.0f;
    config.split.train_fraction = -0.5;
    config.classifier.lr = 0.0f;

    const std::vector<std::string> problems = config.validate();
    EXPECT_GE(problems.size(), 5u);

    const std::string message = thrown_message([&] {
        core::run_link_prediction_pipeline(graph::EdgeList{}, config);
    });
    EXPECT_NE(message.find("invalid pipeline configuration"),
              std::string::npos);
    EXPECT_NE(message.find("walk.walks_per_node"), std::string::npos)
        << message;
    EXPECT_NE(message.find("sgns.alpha"), std::string::npos) << message;
    EXPECT_NE(message.find("split.train_fraction"), std::string::npos)
        << message;
    EXPECT_NE(message.find("classifier.lr"), std::string::npos) << message;
}

TEST(InvalidConfig, ValidDefaultsPassEverywhere)
{
    EXPECT_TRUE(core::PipelineConfig{}.validate().empty());
    EXPECT_TRUE(walk::WalkConfig{}.validate().empty());
    EXPECT_TRUE(embed::SgnsConfig{}.validate().empty());
    EXPECT_TRUE(core::SplitConfig{}.validate().empty());
    EXPECT_TRUE(core::ClassifierConfig{}.validate().empty());
}

TEST(InvalidConfig, DroppedWalkContradictionExplained)
{
    walk::WalkConfig config;
    config.max_length = 2;
    config.min_walk_tokens = 10;
    const std::vector<std::string> problems = config.validate();
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("every walk would be dropped"),
              std::string::npos);
}

TEST(NumericGuards, SigmoidSaturatesOnNonFiniteInput)
{
    // NaN/inf scores from a diverged model must saturate, not index the
    // lookup table out of bounds (casting NaN to int is UB).
    const embed::SigmoidTable& sigmoid = embed::SigmoidTable::instance();
    EXPECT_EQ(sigmoid(std::numeric_limits<float>::infinity()), 1.0f);
    EXPECT_EQ(sigmoid(-std::numeric_limits<float>::infinity()), 0.0f);
    EXPECT_EQ(sigmoid(std::numeric_limits<float>::quiet_NaN()), 1.0f);
}

TEST(NumericGuards, DivergingSgnsReportsEpochContext)
{
    walk::Corpus corpus;
    for (graph::NodeId base = 0; base < 8; ++base) {
        const graph::NodeId walk1[] = {base, (base + 1) % 8,
                                       (base + 2) % 8, (base + 3) % 8};
        corpus.add_walk(walk1);
    }
    embed::SgnsConfig config;
    config.dim = 4;
    config.epochs = 3;
    config.alpha = 1e30f; // guaranteed overflow within one epoch
    config.num_threads = 1;

    const std::string message = thrown_message(
        [&] { embed::train_sgns(corpus, 8, config); });
    EXPECT_NE(message.find("diverged"), std::string::npos) << message;
    EXPECT_NE(message.find("epoch"), std::string::npos) << message;
}

TEST(NumericGuards, PoisonedFeaturesCaughtByClassifierGuard)
{
    rng::Random random(3);
    embed::Embedding embedding(10, 4);
    for (graph::NodeId u = 0; u < 10; ++u) {
        auto row = embedding.row(u);
        for (unsigned i = 0; i < 4; ++i) {
            row[i] = random.next_float();
        }
    }
    // ReLU hidden layers absorb NaN inputs (NaN > 0 is false), so a
    // poisoned feature never reaches the loss guard — it must be
    // rejected up front with its coordinates.
    embedding.row(0)[0] = std::numeric_limits<float>::quiet_NaN();
    core::LinkSplits splits;
    for (graph::NodeId u = 0; u < 10; ++u) {
        splits.train.push_back({u, (u + 1) % 10, u % 2 ? 1.0f : 0.0f});
        splits.test.push_back({u, (u + 3) % 10, u % 2 ? 0.0f : 1.0f});
    }
    core::ClassifierConfig config;
    config.max_epochs = 5;

    const std::string message = thrown_message([&] {
        core::run_link_prediction(splits, embedding, config);
    });
    EXPECT_NE(message.find("link prediction"), std::string::npos)
        << message;
    EXPECT_NE(message.find("non-finite"), std::string::npos) << message;
    EXPECT_NE(message.find("column"), std::string::npos) << message;
}

} // namespace
} // namespace tgl
