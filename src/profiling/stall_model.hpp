/// @file
/// Analytical GPU stall-attribution model — the Nsight substitution.
///
/// Fig. 11 of the paper attributes per-kernel stall cycles to: IMC
/// (immediate constant cache) misses, compute dependencies, i-cache
/// misses, scoreboard (memory) dependencies, pipe/MIO busy, barriers,
/// TEX-queue and other. Without an NVIDIA profiler we reproduce the
/// attribution as a first-order model driven by measured workload
/// facts:
///  * compute-dependency stalls scale with the kernel's long-latency
///    arithmetic share (the exp()-heavy transition sampling, Eq. 1);
///  * scoreboard/memory stalls scale with the irregular-access share
///    of memory operations (dependent loads into the embedding table);
///  * IMC stalls scale inversely with exposed parallelism — tiny
///    classifier layers launch few warps, so immediate/constant loads
///    have no reuse (the paper measures SM utilization < 10% there);
///  * barrier stalls scale with synchronization frequency.
/// The model is calibrated once, in code below, against the paper's
/// published per-kernel numbers; EXPERIMENTS.md reports model-vs-paper.
#pragma once

#include "profiling/op_counters.hpp"

#include <array>
#include <string>

namespace tgl::prof {

/// Stall categories in Fig. 11's legend order.
enum class StallCategory : unsigned
{
    kImcMiss = 0,
    kComputeDependency,
    kInstructionCacheMiss,
    kScoreboardMemory,
    kPipeBusy,
    kBarrier,
    kTexQueue,
    kOther,
    kCount,
};

/// Printable category name.
const char* stall_category_name(StallCategory category);

/// Workload facts the model consumes (all measurable in software).
struct StallModelInput
{
    OpCounts ops;
    /// Fraction of memory operations whose address depends on a prior
    /// load (pointer chasing / table lookups), in [0, 1].
    double irregular_access_fraction = 0.0;
    /// Fraction of compute that is long-latency (exp, div, sqrt).
    double long_latency_compute_fraction = 0.0;
    /// Average independent work items available per synchronization
    /// interval (e.g. pairs per batch, vertices per launch).
    double parallel_work_per_sync = 1e6;
    /// Branch-divergence proxy: coefficient of variation of per-item
    /// work (0 = perfectly uniform).
    double work_variability = 0.0;
};

/// Normalized stall distribution (fractions summing to 1).
using StallDistribution =
    std::array<double, static_cast<std::size_t>(StallCategory::kCount)>;

/// Attribute stall cycles to categories from workload facts.
StallDistribution attribute_stalls(const StallModelInput& input);

/// Convenience: model inputs for the four pipeline kernels, fed by
/// their measured op counts.
StallModelInput walk_stall_input(const walk::WalkProfile& profile,
                                 walk::TransitionKind transition);
StallModelInput w2v_stall_input(const embed::TrainStats& stats,
                                const embed::SgnsConfig& config);
StallModelInput classifier_stall_input(std::size_t batch,
                                       std::size_t widest_layer,
                                       const OpCounts& ops);

/// Render a distribution as "category pct, ..." sorted descending.
std::string format_stalls(const std::string& kernel,
                          const StallDistribution& stalls);

/// The model's eight categories folded onto the PMU's two
/// stalled-cycles axes, for comparison against measured
/// `stalled_cycles_{frontend,backend}` (obs/perf_events): frontend is
/// instruction delivery (icache-miss), backend is everything else
/// (data-side dependencies, IMC misses, execution-port pressure).
/// Fractions of the whole distribution; they sum to 1.
struct FoldedStalls
{
    double frontend = 0.0;
    double backend = 0.0;
};

FoldedStalls fold_stalls_frontend_backend(const StallDistribution& stalls);

} // namespace tgl::prof
