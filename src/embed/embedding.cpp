#include "embed/embedding.hpp"

#include "util/artifact_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace tgl::embed {

double
Embedding::cosine(graph::NodeId u, graph::NodeId v) const
{
    TGL_ASSERT(u < num_nodes_ && v < num_nodes_);
    const auto a = row(u);
    const auto b = row(v);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (unsigned i = 0; i < dim_; ++i) {
        dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
        nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
    }
    if (na <= 0.0 || nb <= 0.0) {
        return 0.0;
    }
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<graph::NodeId>
Embedding::nearest(graph::NodeId u, unsigned k) const
{
    std::vector<std::pair<double, graph::NodeId>> scored;
    scored.reserve(num_nodes_);
    for (graph::NodeId v = 0; v < num_nodes_; ++v) {
        if (v == u) {
            continue;
        }
        scored.emplace_back(cosine(u, v), v);
    }
    const std::size_t keep = std::min<std::size_t>(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(keep),
                      scored.end(),
                      [](const auto& a, const auto& b) {
                          return a.first > b.first;
                      });
    std::vector<graph::NodeId> result;
    result.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
        result.push_back(scored[i].second);
    }
    return result;
}

void
Embedding::save(std::ostream& out) const
{
    out << num_nodes_ << ' ' << dim_ << '\n';
    for (graph::NodeId u = 0; u < num_nodes_; ++u) {
        const auto r = row(u);
        for (unsigned i = 0; i < dim_; ++i) {
            out << r[i] << (i + 1 == dim_ ? '\n' : ' ');
        }
    }
}

Embedding
Embedding::load(std::istream& in)
{
    graph::NodeId num_nodes = 0;
    unsigned dim = 0;
    if (!(in >> num_nodes >> dim)) {
        util::fatal("Embedding::load: malformed header");
    }
    Embedding embedding(num_nodes, dim);
    for (graph::NodeId u = 0; u < num_nodes; ++u) {
        auto r = embedding.row(u);
        for (unsigned i = 0; i < dim; ++i) {
            if (!(in >> r[i])) {
                util::fatal(util::strcat("Embedding::load: truncated at row ",
                                         u));
            }
        }
    }
    return embedding;
}

void
Embedding::save_file(const std::string& path) const
{
    util::atomic_write_file(path,
                            [this](std::ostream& out) { save(out); });
}

Embedding
Embedding::load_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    return load(in);
}

namespace {

constexpr char kEmbeddingKind[] = "embed";
constexpr std::uint32_t kEmbeddingPayloadVersion = 1;

} // namespace

void
Embedding::save_binary(std::ostream& out, std::uint64_t fingerprint) const
{
    util::ArtifactWriter writer(out, kEmbeddingKind,
                                kEmbeddingPayloadVersion, fingerprint);
    writer.write_pod<std::uint32_t>(num_nodes_);
    writer.write_pod<std::uint32_t>(dim_);
    writer.write_bytes(data_.data(), data_.size() * sizeof(float));
    writer.finish();
}

Embedding
Embedding::load_binary(std::istream& in, std::uint64_t* fingerprint)
{
    util::ArtifactReader reader(in, kEmbeddingKind);
    if (reader.payload_version() != kEmbeddingPayloadVersion) {
        util::fatal(util::strcat(
            "embedding artifact: unsupported payload version ",
            reader.payload_version()));
    }
    const auto num_nodes = reader.read_pod<std::uint32_t>();
    const auto dim = reader.read_pod<std::uint32_t>();
    const std::size_t expected =
        static_cast<std::size_t>(num_nodes) * dim * sizeof(float);
    if (reader.remaining() != expected) {
        util::fatal(util::strcat(
            "embedding artifact: payload holds ", reader.remaining(),
            " matrix bytes, header implies ", expected));
    }
    Embedding embedding(num_nodes, dim);
    reader.read_bytes(embedding.data_.data(), expected);
    if (fingerprint != nullptr) {
        *fingerprint = reader.fingerprint();
    }
    return embedding;
}

void
Embedding::save_binary_file(const std::string& path,
                            std::uint64_t fingerprint) const
{
    util::atomic_write_file(
        path,
        [&](std::ostream& out) { save_binary(out, fingerprint); },
        /*binary=*/true);
}

Embedding
Embedding::load_binary_file(const std::string& path,
                            std::uint64_t* fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    return load_binary(in, fingerprint);
}

} // namespace tgl::embed
