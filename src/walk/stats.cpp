#include "walk/stats.hpp"

#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <cmath>

namespace tgl::walk {

LengthDistribution
length_distribution(const Corpus& corpus)
{
    LengthDistribution dist;
    const std::size_t walks = corpus.num_walks();
    if (walks == 0) {
        return dist;
    }

    double total = 0.0;
    std::uint64_t short_walks = 0;
    for (std::size_t i = 0; i < walks; ++i) {
        const std::size_t len = corpus.walk_length(i);
        if (dist.counts.size() <= len) {
            dist.counts.resize(len + 1, 0);
        }
        ++dist.counts[len];
        total += static_cast<double>(len);
        dist.max_length = std::max(dist.max_length, len);
        if (len <= 5) {
            ++short_walks;
        }
    }
    dist.mean_length = total / static_cast<double>(walks);
    dist.short_walk_fraction =
        static_cast<double>(short_walks) / static_cast<double>(walks);

    // Fit log(count) over the decaying tail, starting at the mode.
    std::size_t mode = 1;
    for (std::size_t l = 1; l < dist.counts.size(); ++l) {
        if (dist.counts[l] > dist.counts[mode]) {
            mode = l;
        }
    }
    std::size_t points = 0;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t l = mode; l < dist.counts.size(); ++l) {
        if (dist.counts[l] == 0) {
            continue;
        }
        const double x = static_cast<double>(l);
        const double y = std::log(static_cast<double>(dist.counts[l]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++points;
    }
    if (points >= 3) {
        const double np = static_cast<double>(points);
        const double denom = np * sxx - sx * sx;
        if (denom != 0.0) {
            dist.tail_log_slope = (np * sxy - sx * sy) / denom;
        }
    }
    return dist;
}

std::string
format_length_distribution(const LengthDistribution& dist)
{
    std::string text = util::strcat(
        "walk length distribution (mean ",
        util::format_fixed(dist.mean_length, 2), ", <=5 tokens: ",
        util::format_fixed(dist.short_walk_fraction * 100.0, 1),
        "%, tail log-slope ",
        util::format_fixed(dist.tail_log_slope, 3), ")\nlength  count");
    for (std::size_t l = 1; l < dist.counts.size(); ++l) {
        text += util::strcat("\n", l, "  ", dist.counts[l]);
    }
    return text;
}

} // namespace tgl::walk
