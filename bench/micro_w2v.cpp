/// @file
/// Micro-benchmarks of the SGNS trainers: Hogwild vs batched, padding
/// and vectorization knobs, dimension sweep. Items = training pairs.
///
/// After the google-benchmark suite, two comparison harnesses run:
/// the trainer comparison (Hogwild vs batched plus the negative-table
/// samplers, best-of-3, BENCH_w2v.json) and the kernel-backend A/B
/// (scalar vs simd single-pair update loop, cache-hot, per dim
/// 8/32/128, BENCH_w2v_kernels.json with a `simd_isa` meta key so the
/// regression gate skips cross-ISA comparisons) — see bench_json.hpp
/// for the schema.
#include "bench_json.hpp"
#include "tgl/tgl.hpp"
#include "util/timer.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

namespace {

using namespace tgl;

const walk::Corpus&
shared_corpus()
{
    static const walk::Corpus corpus = [] {
        const auto dataset = gen::make_dataset("ia-email", 0.03, 9);
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});
        walk::WalkConfig config;
        config.walks_per_node = 5;
        config.max_length = 6;
        config.seed = 21;
        return walk::generate_walks(graph, config);
    }();
    return corpus;
}

graph::NodeId
corpus_nodes()
{
    graph::NodeId max_node = 0;
    for (graph::NodeId node : shared_corpus().tokens()) {
        max_node = std::max(max_node, node);
    }
    return max_node + 1;
}

void
BM_HogwildTrain(benchmark::State& state)
{
    const walk::Corpus& corpus = shared_corpus();
    const graph::NodeId nodes = corpus_nodes();
    embed::SgnsConfig config;
    config.dim = static_cast<unsigned>(state.range(0));
    config.epochs = 1;
    std::uint64_t pairs = 0;
    for (auto _ : state) {
        embed::TrainStats stats;
        benchmark::DoNotOptimize(
            embed::train_sgns(corpus, nodes, config, &stats));
        pairs += stats.pairs_trained;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}

BENCHMARK(BM_HogwildTrain)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void
run_batched(benchmark::State& state, std::size_t batch, unsigned stride,
            bool vectorized)
{
    const walk::Corpus& corpus = shared_corpus();
    const graph::NodeId nodes = corpus_nodes();
    embed::BatchedSgnsConfig config;
    config.sgns.dim = 8;
    config.sgns.epochs = 1;
    config.sgns.row_stride = stride;
    config.sgns.vectorized = vectorized;
    config.batch_size = batch;
    std::uint64_t pairs = 0;
    for (auto _ : state) {
        embed::TrainStats stats;
        benchmark::DoNotOptimize(
            embed::train_sgns_batched(corpus, nodes, config, &stats));
        pairs += stats.pairs_trained;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}

void
BM_BatchedBySize(benchmark::State& state)
{
    run_batched(state, static_cast<std::size_t>(state.range(0)), 0, true);
}

BENCHMARK(BM_BatchedBySize)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void
BM_BatchedPadded(benchmark::State& state)
{
    run_batched(state, 16384, 16, true);
}

void
BM_BatchedNoPad(benchmark::State& state)
{
    run_batched(state, 16384, 0, true);
}

void
BM_BatchedScalar(benchmark::State& state)
{
    run_batched(state, 16384, 0, false);
}

void
BM_BatchedSharedNegatives(benchmark::State& state)
{
    const walk::Corpus& corpus = shared_corpus();
    const graph::NodeId nodes = corpus_nodes();
    embed::BatchedSgnsConfig config;
    config.sgns.dim = 8;
    config.sgns.epochs = 1;
    config.batch_size = 16384;
    config.shared_negatives = true;
    std::uint64_t pairs = 0;
    for (auto _ : state) {
        embed::TrainStats stats;
        benchmark::DoNotOptimize(
            embed::train_sgns_batched(corpus, nodes, config, &stats));
        pairs += stats.pairs_trained;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}

BENCHMARK(BM_BatchedPadded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchedNoPad)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchedScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchedSharedNegatives)->Unit(benchmark::kMillisecond);

void
BM_NegativeTableAlias(benchmark::State& state)
{
    const embed::Vocab vocab(shared_corpus());
    const embed::NegativeTable table(vocab,
                                     embed::NegativeTableKind::kAlias);
    rng::Random random(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.sample(random));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_NegativeTableArray(benchmark::State& state)
{
    const embed::Vocab vocab(shared_corpus());
    const embed::NegativeTable table(vocab,
                                     embed::NegativeTableKind::kArray,
                                     1 << 22);
    rng::Random random(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.sample(random));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_NegativeTableAlias);
BENCHMARK(BM_NegativeTableArray);

/// Best-of-N wall time of one full trainer run; returns the pairs
/// trained in the fastest rep via @p pairs so rates use real work.
template <typename TrainFn>
double
time_trainer(TrainFn&& train, std::uint64_t* pairs)
{
    constexpr int kReps = 3;
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        embed::TrainStats stats;
        util::Timer timer;
        const embed::Embedding embedding = train(stats);
        const double seconds = timer.seconds();
        benchmark::DoNotOptimize(embedding.num_nodes());
        if (seconds < best) {
            best = seconds;
            *pairs = stats.pairs_trained;
        }
    }
    return best;
}

/// Hogwild vs batched trainer and alias vs array negative-table
/// draws, written to BENCH_w2v.json for the CI regression gate.
void
run_trainer_comparison()
{
    const walk::Corpus& corpus = shared_corpus();
    const graph::NodeId nodes = corpus_nodes();

    embed::SgnsConfig hogwild;
    hogwild.dim = 32;
    hogwild.epochs = 2;
    std::uint64_t hogwild_pairs = 0;
    const double hogwild_s = time_trainer(
        [&](embed::TrainStats& stats) {
            return embed::train_sgns(corpus, nodes, hogwild, &stats);
        },
        &hogwild_pairs);

    embed::BatchedSgnsConfig batched;
    batched.sgns = hogwild;
    batched.batch_size = 16384;
    std::uint64_t batched_pairs = 0;
    const double batched_s = time_trainer(
        [&](embed::TrainStats& stats) {
            return embed::train_sgns_batched(corpus, nodes, batched,
                                             &stats);
        },
        &batched_pairs);

    // Negative-table draw rate: fixed draw count, best-of-3.
    const embed::Vocab vocab(corpus);
    constexpr std::uint64_t kDraws = 1u << 22;
    const auto time_table = [&](embed::NegativeTableKind kind) {
        const embed::NegativeTable table(vocab, kind, 1 << 22);
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            rng::Random random(3);
            std::uint64_t sink = 0;
            util::Timer timer;
            for (std::uint64_t i = 0; i < kDraws; ++i) {
                sink += table.sample(random);
            }
            const double seconds = timer.seconds();
            benchmark::DoNotOptimize(sink);
            best = std::min(best, seconds);
        }
        return best;
    };
    const double alias_s = time_table(embed::NegativeTableKind::kAlias);
    const double array_s = time_table(embed::NegativeTableKind::kArray);

    std::vector<bench::BenchEntry> entries;
    entries.push_back(
        {"w2v/hogwild", hogwild_s,
         hogwild_s > 0.0 ? hogwild_pairs / hogwild_s : 0.0,
         {{"pairs", static_cast<double>(hogwild_pairs)},
          {"dim", static_cast<double>(hogwild.dim)},
          {"epochs", static_cast<double>(hogwild.epochs)}}});
    entries.push_back(
        {"w2v/batched", batched_s,
         batched_s > 0.0 ? batched_pairs / batched_s : 0.0,
         {{"pairs", static_cast<double>(batched_pairs)},
          {"batch_size", static_cast<double>(batched.batch_size)}}});
    entries.push_back({"w2v/negative_alias", alias_s,
                       alias_s > 0.0 ? kDraws / alias_s : 0.0,
                       {{"draws", static_cast<double>(kDraws)}}});
    entries.push_back({"w2v/negative_array", array_s,
                       array_s > 0.0 ? kDraws / array_s : 0.0,
                       {{"draws", static_cast<double>(kDraws)}}});

    std::printf("\n--- SGNS trainer comparison (dim %u, %u epochs) ---\n",
                hogwild.dim, hogwild.epochs);
    std::printf("hogwild %8.4fs | batched %8.4fs | neg alias %8.4fs | "
                "neg array %8.4fs\n",
                hogwild_s, batched_s, alias_s, array_s);
    bench::write_bench_json("BENCH_w2v.json", "w2v", entries);
}

/// Scalar-vs-simd kernel backend A/B on the cache-hot single-pair
/// update loop: a small identity-space model (fits L2 at every dim)
/// hammered with pre-seeded pair draws, best-of-3 per backend per dim.
/// The speedup metrics and the ratio-unit median entry quantify the
/// tentpole claim (simd >= 1.0x median); the timing entries feed the
/// bench-regression gate.
void
run_kernel_comparison()
{
    constexpr std::size_t kVocab = 512;
    constexpr std::uint64_t kPairs = 300000;
    constexpr unsigned kNegatives = 5;
    const unsigned dims[] = {8, 32, 128};

    // Skewed counts so the negative table is realistic (unigram^0.75
    // over a Zipf-ish law) while every word stays sampleable.
    std::vector<std::uint64_t> counts(kVocab);
    for (std::size_t w = 0; w < kVocab; ++w) {
        counts[w] = 1 + 1000 / (w + 1);
    }
    const embed::NegativeTable negatives(counts);

    std::vector<bench::BenchEntry> entries;
    std::vector<double> speedups;
    for (const unsigned dim : dims) {
        embed::SgnsConfig config;
        config.dim = dim;

        const auto time_backend =
            [&](const embed::kernels::SgnsBackendOps& ops) {
                double best = 1e300;
                for (int rep = 0; rep < 3; ++rep) {
                    embed::SgnsModel model(kVocab, config);
                    std::vector<float> scratch(dim);
                    rng::Random pair_random(11);
                    rng::Random negative_random(13);
                    util::Timer timer;
                    for (std::uint64_t i = 0; i < kPairs; ++i) {
                        const auto context = static_cast<embed::WordId>(
                            pair_random.next_index(kVocab));
                        const auto center = static_cast<embed::WordId>(
                            pair_random.next_index(kVocab));
                        embed::sgns_update_pair(
                            model, context, center, negatives, kNegatives,
                            0.025f, ops, negative_random, scratch.data());
                    }
                    const double seconds = timer.seconds();
                    benchmark::DoNotOptimize(model.all_finite());
                    best = std::min(best, seconds);
                }
                return best;
            };

        const double scalar_s =
            time_backend(embed::kernels::scalar_sgns_ops());
        const double simd_s = time_backend(embed::kernels::simd_sgns_ops());
        const double speedup = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
        speedups.push_back(speedup);

        const std::string prefix =
            util::strcat("w2v_kernels/dim", dim, "/");
        entries.push_back(
            {prefix + "scalar", scalar_s,
             scalar_s > 0.0 ? kPairs / scalar_s : 0.0,
             {{"pairs", static_cast<double>(kPairs)},
              {"dim", static_cast<double>(dim)}}});
        entries.push_back({prefix + "simd", simd_s,
                           simd_s > 0.0 ? kPairs / simd_s : 0.0,
                           {{"pairs", static_cast<double>(kPairs)},
                            {"dim", static_cast<double>(dim)},
                            {"speedup_vs_scalar", speedup}}});
        std::printf("w2v kernels dim %3u: scalar %8.4fs | simd %8.4fs "
                    "| speedup %.2fx\n",
                    dim, scalar_s, simd_s, speedup);
    }

    // Median speedup as a non-timing entry: visible to humans and
    // scripts, excluded from the wall-clock regression gate by its
    // unit.
    std::vector<double> sorted = speedups;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    entries.push_back({"w2v_kernels/median_speedup", median, 0.0,
                       {},
                       "ratio"});
    std::printf("w2v kernels median speedup (simd vs scalar): %.2fx\n",
                median);

    bench::write_bench_json(
        "BENCH_w2v_kernels.json", "w2v_kernels", entries,
        {{"simd_isa", embed::kernels::simd_sgns_isa()}});
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    run_trainer_comparison();
    run_kernel_comparison();
    return 0;
}
