/// @file
/// Ablations beyond the paper's headline figures (DESIGN.md §3):
///
///  1. temporal vs static walks — the DeepWalk-style baseline ignores
///     timestamps; CTDNE's core claim (and this paper's premise) is
///     that temporal validity materially improves *future* link
///     prediction, because the test split is the most recent 20% of
///     edges (Fig. 7);
///  2. walk start policy — Algorithm 1's K-per-node starts vs CTDNE's
///     temporal-edge-sampled starts;
///  3. transition model — uniform vs Eq. 1 softmax vs recency decay vs
///     linear rank (accuracy and walk-kernel cost together);
///  4. classifier — the paper's plain 2-layer FNN vs the SVIII-A
///     residual architecture (paper: ~2% accuracy gain).
#include "tgl/tgl.hpp"

#include <cstdio>

namespace {

using namespace tgl;

struct FrontEndResult
{
    embed::Embedding embedding;
    double walk_seconds = 0.0;
};

FrontEndResult
run_front_end(const graph::TemporalGraph& graph,
              const walk::WalkConfig& walk_config, std::uint64_t seed)
{
    FrontEndResult result;
    util::Timer timer;
    const walk::Corpus corpus = walk::generate_walks(graph, walk_config);
    result.walk_seconds = timer.seconds();
    embed::SgnsConfig sgns;
    sgns.dim = 8;
    sgns.epochs = 12;
    sgns.seed = seed;
    result.embedding =
        embed::train_sgns(corpus, graph.num_nodes(), sgns);
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("ablation_baselines",
                        "temporal-vs-static, start-policy, transition, "
                        "and classifier ablations");
    cli.add_flag("dataset", "ia-email", "catalog link-prediction dataset");
    cli.add_flag("scale", "0.03", "stand-in scale");
    cli.add_flag("seed", "42", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"), seed);
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});
        const core::LinkSplits splits =
            core::prepare_link_splits(dataset.edges, graph, {});

        core::ClassifierConfig classifier;
        classifier.max_epochs = 20;

        walk::WalkConfig base;
        base.walks_per_node = 10;
        base.max_length = 6;
        base.seed = seed;

        std::printf("# Ablations — %s stand-in (%s nodes, %s edges), "
                    "link prediction on the future 20%% of edges\n\n",
                    dataset.name.c_str(),
                    util::format_count(graph.num_nodes()).c_str(),
                    util::format_count(graph.num_edges()).c_str());

        // ---- 1 + 2 + 3: walk-side ablations ---------------------------
        struct WalkCase
        {
            const char* name;
            bool temporal;
            walk::StartKind start;
            walk::TransitionKind transition;
        };
        const WalkCase cases[] = {
            {"static (DeepWalk)", false, walk::StartKind::kEveryNode,
             walk::TransitionKind::kUniform},
            {"temporal uniform", true, walk::StartKind::kEveryNode,
             walk::TransitionKind::kUniform},
            {"temporal exp (Eq.1)", true, walk::StartKind::kEveryNode,
             walk::TransitionKind::kExponential},
            {"temporal exp-decay", true, walk::StartKind::kEveryNode,
             walk::TransitionKind::kExponentialDecay},
            {"temporal linear", true, walk::StartKind::kEveryNode,
             walk::TransitionKind::kLinear},
            {"edge-start exp", true, walk::StartKind::kTemporalEdge,
             walk::TransitionKind::kExponential},
        };

        std::printf("%-22s %10s %10s %12s\n", "walk configuration",
                    "accuracy", "auc", "walk-time(s)");
        for (const WalkCase& walk_case : cases) {
            walk::WalkConfig config = base;
            config.temporal = walk_case.temporal;
            config.start = walk_case.start;
            config.transition = walk_case.transition;
            const FrontEndResult front =
                run_front_end(graph, config, seed);
            const core::TaskResult task = core::run_link_prediction(
                splits, front.embedding, classifier);
            std::printf("%-22s %10.4f %10.4f %12.3f\n", walk_case.name,
                        task.test_accuracy, task.test_auc,
                        front.walk_seconds);
        }

        // ---- drifting communities: where temporal MUST win -------------
        // The BA stand-ins above assign timestamps with little
        // structural signal, so the static baseline stays competitive.
        // On a drifting SBM — communities migrate over time, edges
        // follow the membership current at their timestamp — recent
        // structure predicts the future and time-respecting walks
        // dominate (the mechanism behind CTDNE's advantage on evolving
        // real networks).
        {
            gen::DriftingSbmParams drift;
            drift.num_nodes = 600;
            drift.num_edges = 20000;
            drift.num_communities = 4;
            drift.switch_fraction = 0.6;
            drift.seed = seed;
            const gen::LabeledGraph drifting =
                gen::generate_drifting_sbm(drift);
            const auto drift_graph = graph::GraphBuilder::build(
                drifting.edges, {.symmetrize = true});
            const core::LinkSplits drift_splits =
                core::prepare_link_splits(drifting.edges, drift_graph,
                                          {});
            const core::NodeSplits node_splits =
                core::prepare_node_splits(drift_graph.num_nodes(), {});

            std::printf("\n# drifting-SBM (communities migrate over "
                        "time): temporal vs static\n");
            std::printf("%-22s %10s %10s %12s %12s\n",
                        "walk configuration", "lp-acc", "lp-auc",
                        "nc-acc", "nc-f1");
            for (const bool temporal : {false, true}) {
                walk::WalkConfig config = base;
                config.temporal = temporal;
                const FrontEndResult front =
                    run_front_end(drift_graph, config, seed);
                const core::TaskResult lp = core::run_link_prediction(
                    drift_splits, front.embedding, classifier);
                const core::TaskResult nc =
                    core::run_node_classification(
                        node_splits, drifting.labels,
                        drift.num_communities, front.embedding,
                        classifier);
                std::printf("%-22s %10.4f %10.4f %12.4f %12.4f\n",
                            temporal ? "temporal exp (Eq.1)"
                                     : "static (DeepWalk)",
                            lp.test_accuracy, lp.test_auc,
                            nc.test_accuracy, nc.test_macro_f1);
            }
        }

        // ---- 4: classifier architecture --------------------------------
        std::printf("\n%-22s %10s %10s\n", "classifier", "accuracy",
                    "auc");
        const FrontEndResult front = run_front_end(graph, base, seed);
        for (const bool residual : {false, true}) {
            core::ClassifierConfig config = classifier;
            config.residual = residual;
            const core::TaskResult task = core::run_link_prediction(
                splits, front.embedding, config);
            std::printf("%-22s %10.4f %10.4f\n",
                        residual ? "residual (SVIII-A)" : "plain FNN",
                        task.test_accuracy, task.test_auc);
        }

        std::printf(
            "\n# shape checks: on the BA stand-in (timestamps carry "
            "little structural signal) the static baseline stays "
            "competitive; on the drifting SBM temporal walks dominate "
            "both tasks. Eq. 1 softmax costs walk time over uniform. "
            "The residual classifier reaches parity on strong-signal "
            "graphs (drifting SBM) but overfits the weak-signal BA "
            "stand-in (lower train loss, worse test accuracy); the "
            "paper reports ~2%% gains on its real data (SVIII-A).\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
