# Empty compiler generated dependencies file for test_util_string.
# This may be replaced when dependencies are built.
