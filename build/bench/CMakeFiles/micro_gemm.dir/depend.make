# Empty dependencies file for micro_gemm.
# This may be replaced when dependencies are built.
