# Empty dependencies file for test_nn_data_loader.
# This may be replaced when dependencies are built.
