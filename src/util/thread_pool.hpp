/// @file
/// Persistent worker-thread pool.
///
/// The paper parallelizes its kernels with dynamically scheduled OpenMP
/// threads ("work stealing using dynamically scheduled OpenMP threads",
/// SVII-B). This pool reproduces that execution model: a fixed set of
/// persistent workers that a caller can dispatch a team of any size
/// onto. Dynamic load balancing happens one level up, in parallel_for,
/// where team members self-schedule chunks off a shared atomic cursor.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tgl::util {

/// Fixed-size pool of worker threads supporting fork/join team dispatch.
///
/// run(parties, fn) invokes fn(rank) for rank in [0, parties) across the
/// workers and blocks until every invocation returns. Exceptions thrown
/// by any team member are captured and the first one is rethrown on the
/// calling thread after the join.
class ThreadPool
{
  public:
    /// Create a pool with @p num_threads workers (0 = hardware threads).
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads in the pool.
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Execute fn(rank) for rank in [0, min(parties, size())), blocking
    /// until all ranks finish. Not reentrant from inside a team.
    void run(unsigned parties, const std::function<void(unsigned)>& fn);

    /// Process-wide shared pool, created on first use with one worker
    /// per hardware thread.
    static ThreadPool& global();

  private:
    void worker_loop(unsigned rank);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const std::function<void(unsigned)>* job_ = nullptr;
    unsigned job_parties_ = 0;
    unsigned pending_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr first_error_;
    bool shutdown_ = false;
};

} // namespace tgl::util
