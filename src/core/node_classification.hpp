/// @file
/// The node-classification downstream task (SIV-B): a 3-layer FNN over
/// node embeddings trained with SGD + negative log likelihood to
/// predict multi-class node labels.
#pragma once

#include "core/link_prediction.hpp" // ClassifierConfig, TaskResult

namespace tgl::core {

/// Train and evaluate the node-classification FNN.
///
/// @param splits     train/valid/test node-id splits
/// @param labels     per-node class labels (size = num_nodes)
/// @param num_classes |C|
/// @param embedding  node embeddings
/// @param config     classifier hyperparameters
/// @param checkpoint optional stored-network resume hookup (see
///        run_link_prediction)
TaskResult run_node_classification(
    const NodeSplits& splits, const std::vector<std::uint32_t>& labels,
    std::uint32_t num_classes, const embed::Embedding& embedding,
    const ClassifierConfig& config,
    ClassifierCheckpoint* checkpoint = nullptr);

} // namespace tgl::core
