file(REMOVE_RECURSE
  "CMakeFiles/fig05_w2v_batching.dir/fig05_w2v_batching.cpp.o"
  "CMakeFiles/fig05_w2v_batching.dir/fig05_w2v_batching.cpp.o.d"
  "fig05_w2v_batching"
  "fig05_w2v_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_w2v_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
