# Empty dependencies file for test_rng_samplers.
# This may be replaced when dependencies are built.
