/// Unit tests for the corpus vocabulary.
#include "embed/vocab.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace tgl::embed {
namespace {

walk::Corpus
sample_corpus()
{
    walk::Corpus corpus;
    const graph::NodeId w1[] = {5, 3, 5};
    const graph::NodeId w2[] = {3, 5, 9};
    const graph::NodeId w3[] = {5};
    corpus.add_walk(w1);
    corpus.add_walk(w2);
    corpus.add_walk(w3);
    return corpus; // counts: 5 -> 4, 3 -> 2, 9 -> 1
}

TEST(Vocab, CountsAndOrdering)
{
    const Vocab vocab(sample_corpus());
    ASSERT_EQ(vocab.size(), 3u);
    // Descending frequency order.
    EXPECT_EQ(vocab.node_of(0), 5u);
    EXPECT_EQ(vocab.node_of(1), 3u);
    EXPECT_EQ(vocab.node_of(2), 9u);
    EXPECT_EQ(vocab.count(0), 4u);
    EXPECT_EQ(vocab.count(1), 2u);
    EXPECT_EQ(vocab.count(2), 1u);
}

TEST(Vocab, ReverseLookup)
{
    const Vocab vocab(sample_corpus());
    EXPECT_EQ(vocab.word_of(5), 0u);
    EXPECT_EQ(vocab.word_of(3), 1u);
    EXPECT_EQ(vocab.word_of(9), 2u);
    EXPECT_EQ(vocab.word_of(4), kNoWord);   // never seen
    EXPECT_EQ(vocab.word_of(100), kNoWord); // beyond max id
}

TEST(Vocab, TotalTokens)
{
    const Vocab vocab(sample_corpus());
    EXPECT_EQ(vocab.total_tokens(), 7u);
}

TEST(Vocab, MinCountFilters)
{
    const Vocab vocab(sample_corpus(), 2);
    EXPECT_EQ(vocab.size(), 2u);
    EXPECT_EQ(vocab.word_of(9), kNoWord);
    EXPECT_EQ(vocab.total_tokens(), 6u);
}

TEST(Vocab, TieBreakByNodeId)
{
    walk::Corpus corpus;
    const graph::NodeId w[] = {7, 2, 7, 2};
    corpus.add_walk(w);
    const Vocab vocab(corpus);
    // Equal counts: lower node id first.
    EXPECT_EQ(vocab.node_of(0), 2u);
    EXPECT_EQ(vocab.node_of(1), 7u);
}

TEST(Vocab, EmptyCorpus)
{
    const Vocab vocab(walk::Corpus{});
    EXPECT_EQ(vocab.size(), 0u);
    EXPECT_EQ(vocab.total_tokens(), 0u);
    EXPECT_EQ(vocab.word_of(0), kNoWord);
}

TEST(Vocab, DefaultConstructedIsEmpty)
{
    const Vocab vocab;
    EXPECT_EQ(vocab.size(), 0u);
}

// Regression: the count array for a node id at the very top of the
// NodeId range would need raw.size() == 2^32, past what a NodeId
// induction variable can compare against — the constructor must refuse
// instead of wrapping (or allocating ~32 GiB of counts).
TEST(Vocab, RejectsNodeIdAtRangeLimit)
{
    walk::Corpus corpus;
    const graph::NodeId w[] = {
        1, std::numeric_limits<graph::NodeId>::max()};
    corpus.add_walk(w);
    EXPECT_THROW(Vocab{corpus}, util::Error);
}

} // namespace
} // namespace tgl::embed
