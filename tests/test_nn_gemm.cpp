/// Correctness tests for the GEMM kernels against the naive reference.
#include "nn/gemm.hpp"

#include "rng/random.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace tgl::nn {
namespace {

Tensor
random_tensor(std::size_t rows, std::size_t cols, rng::Random& random)
{
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = random.next_float() * 2.0f - 1.0f;
    }
    return t;
}

void
expect_close(const Tensor& a, const Tensor& b, float tol)
{
    ASSERT_TRUE(a.same_shape(b));
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            EXPECT_NEAR(a(r, c), b(r, c), tol)
                << "(" << r << "," << c << ")";
        }
    }
}

Tensor
transpose(const Tensor& t)
{
    Tensor out(t.cols(), t.rows());
    for (std::size_t r = 0; r < t.rows(); ++r) {
        for (std::size_t c = 0; c < t.cols(); ++c) {
            out(c, r) = t(r, c);
        }
    }
    return out;
}

TEST(Gemm, KnownSmallProduct)
{
    const Tensor a(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    const Tensor b(2, 2, {5.0f, 6.0f, 7.0f, 8.0f});
    Tensor c;
    matmul(a, b, c);
    EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Gemm, IdentityIsNoop)
{
    rng::Random random(1);
    const Tensor a = random_tensor(4, 4, random);
    Tensor identity(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        identity(i, i) = 1.0f;
    }
    Tensor c;
    matmul(a, identity, c);
    expect_close(c, a, 1e-6f);
}

/// Parameterized shape sweep: matmul / matmul_nt / matmul_tn all agree
/// with the naive reference.
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, MatmulMatchesNaive)
{
    const auto [m, k, n] = GetParam();
    rng::Random random(42);
    const Tensor a = random_tensor(m, k, random);
    const Tensor b = random_tensor(k, n, random);
    Tensor fast, reference;
    matmul(a, b, fast);
    matmul_naive(a, b, reference);
    expect_close(fast, reference, 1e-3f);
}

TEST_P(GemmShapes, MatmulNtMatchesNaive)
{
    const auto [m, k, n] = GetParam();
    rng::Random random(43);
    const Tensor a = random_tensor(m, k, random);
    const Tensor b = random_tensor(n, k, random); // stored transposed
    Tensor fast, reference;
    matmul_nt(a, b, fast);
    matmul_naive(a, transpose(b), reference);
    expect_close(fast, reference, 1e-3f);
}

TEST_P(GemmShapes, MatmulTnMatchesNaive)
{
    const auto [m, k, n] = GetParam();
    rng::Random random(44);
    const Tensor a = random_tensor(k, m, random); // stored transposed
    const Tensor b = random_tensor(k, n, random);
    Tensor fast, reference;
    matmul_tn(a, b, fast);
    matmul_naive(transpose(a), b, reference);
    expect_close(fast, reference, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 8, 1),
                      std::make_tuple(3, 5, 7), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 9),
                      std::make_tuple(64, 8, 1),     // LP output layer
                      std::make_tuple(256, 16, 16),  // LP hidden layer
                      std::make_tuple(128, 64, 128),
                      std::make_tuple(200, 100, 50)));

TEST(Gemm, LargeProblemTriggersParallelPathCorrectly)
{
    rng::Random random(45);
    // 192 * 192 * 192 > kParallelFlopThreshold -> parallel path.
    const Tensor a = random_tensor(192, 192, random);
    const Tensor b = random_tensor(192, 192, random);
    Tensor fast, reference;
    matmul(a, b, fast);
    matmul_naive(a, b, reference);
    expect_close(fast, reference, 1e-2f);
}

TEST(Gemm, OutputResizedAutomatically)
{
    rng::Random random(46);
    const Tensor a = random_tensor(3, 4, random);
    const Tensor b = random_tensor(4, 5, random);
    Tensor c(10, 10); // wrong shape going in
    matmul(a, b, c);
    EXPECT_EQ(c.rows(), 3u);
    EXPECT_EQ(c.cols(), 5u);
}

} // namespace
} // namespace tgl::nn
