file(REMOVE_RECURSE
  "CMakeFiles/fig11_stall_characterization.dir/fig11_stall_characterization.cpp.o"
  "CMakeFiles/fig11_stall_characterization.dir/fig11_stall_characterization.cpp.o.d"
  "fig11_stall_characterization"
  "fig11_stall_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stall_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
