/// @file
/// Prometheus text-exposition encoder over the metrics registry.
///
/// Renders a MetricsSnapshot in the Prometheus text format (version
/// 0.0.4) so any standard scraper — Prometheus itself, Grafana Agent,
/// curl piped into promtool — can consume tgl telemetry without
/// knowing the registry's JSON schema. The mapping rules (DESIGN.md
/// §15):
///
///  * Names are sanitized to the Prometheus charset
///    [a-zA-Z_:][a-zA-Z0-9_:]*: every other character (the registry's
///    dots, dashes, ...) becomes '_', and a leading digit gains a '_'
///    prefix. `serve.link.latency_seconds` -> `serve_link_latency_seconds`.
///  * Counters gain the conventional `_total` suffix (unless the
///    sanitized name already ends in `_total`) and render one sample.
///  * Gauges render one sample; non-finite values use the format's
///    spellings (`+Inf`, `-Inf`, `NaN`).
///  * Histograms render the full conventional series: cumulative
///    `<name>_bucket{le="<bound>"}` lines (the registry stores
///    per-bucket counts; the encoder accumulates), a terminal
///    `le="+Inf"` bucket equal to the observation count, then
///    `<name>_sum` and `<name>_count`.
///
/// Every family is preceded by its `# TYPE` line, as scrapers require.
#pragma once

#include "obs/metrics.hpp"

#include <string>
#include <string_view>

namespace tgl::obs {

/// Sanitize a registry metric name into the Prometheus name charset.
std::string prometheus_name(std::string_view name);

/// Render @p snapshot in the Prometheus text exposition format.
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Write render_prometheus(registry.snapshot()) to @p path
/// (tgl::util::Error on I/O failure).
void write_prometheus_file(const Registry& registry,
                           const std::string& path);

} // namespace tgl::obs
