/// @file
/// Fig. 11 reproduction: stall-cycle attribution for the four pipeline
/// kernels on a large synthetic ER graph (the paper uses 10M nodes /
/// 200M edges; scaled by default).
///
/// The Nsight measurement is replaced by the analytical stall model of
/// profiling/stall_model.hpp, driven by measured workload facts (op
/// mixes, parallelism, divergence proxies). Expected diagnosis, from
/// the paper: rwalk -> compute dependencies (54.1%), word2vec ->
/// memory dependencies (46.2%), train/test -> IMC misses
/// (23.6%/30.6%); overall ~65% of stalls from those three causes.
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("fig11_stall_characterization",
                        "Fig. 11: per-kernel stall attribution");
    cli.add_flag("nodes", "100000", "ER nodes (paper: 10M)");
    cli.add_flag("edges", "2000000", "ER edges (paper: 200M)");
    cli.add_flag("seed", "1", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
        const auto edges = gen::generate_erdos_renyi(
            {.num_nodes =
                 static_cast<graph::NodeId>(cli.get_int("nodes")),
             .num_edges =
                 static_cast<graph::EdgeId>(cli.get_int("edges")),
             .seed = seed});
        const auto graph = graph::GraphBuilder::build(edges);

        walk::WalkConfig walk_config;
        walk_config.walks_per_node = 10;
        walk_config.max_length = 6;
        walk_config.seed = seed;
        // Fig. 11 models stalls of the paper's direct exp-scan kernel;
        // the prefix-CDF cache would change the operation mix.
        walk_config.transition_cache = walk::TransitionCacheMode::kOff;
        walk::WalkProfile walk_profile;
        const walk::Corpus corpus =
            walk::generate_walks(graph, walk_config, &walk_profile);

        embed::SgnsConfig sgns;
        sgns.dim = 8;
        sgns.epochs = 1;
        sgns.seed = seed;
        embed::TrainStats w2v_stats;
        embed::train_sgns(corpus, graph.num_nodes(), sgns, &w2v_stats);

        core::ClassifierConfig classifier;
        const std::vector<std::size_t> lp_dims = {
            2 * sgns.dim, classifier.hidden_dim, 1};
        const prof::OpCounts train_ops = prof::classifier_op_counts(
            classifier.batch_size, lp_dims, 100, true);
        const prof::OpCounts test_ops = prof::classifier_op_counts(
            4096, lp_dims, 1, false);

        const struct
        {
            const char* name;
            prof::StallModelInput input;
        } kernels[] = {
            {"rwalk", prof::walk_stall_input(walk_profile,
                                             walk_config.transition)},
            {"word2vec", prof::w2v_stall_input(w2v_stats, sgns)},
            {"train",
             prof::classifier_stall_input(classifier.batch_size,
                                          classifier.hidden_dim,
                                          train_ops)},
            {"test", prof::classifier_stall_input(4096,
                                                  classifier.hidden_dim,
                                                  test_ops)},
        };

        std::printf("# Fig. 11 reproduction — ER %s nodes / %s edges; "
                    "analytical stall model (see EXPERIMENTS.md)\n\n",
                    util::format_count(graph.num_nodes()).c_str(),
                    util::format_count(graph.num_edges()).c_str());
        std::printf("%-10s", "kernel");
        for (unsigned c = 0;
             c < static_cast<unsigned>(prof::StallCategory::kCount);
             ++c) {
            std::printf(" %11s", prof::stall_category_name(
                                     static_cast<prof::StallCategory>(c)));
        }
        std::printf("\n");

        double three_cause_sum = 0.0;
        for (const auto& kernel : kernels) {
            const prof::StallDistribution stalls =
                prof::attribute_stalls(kernel.input);
            std::printf("%-10s", kernel.name);
            for (double s : stalls) {
                std::printf(" %10.1f%%", s * 100.0);
            }
            std::printf("\n");
            three_cause_sum +=
                stalls[static_cast<std::size_t>(
                    prof::StallCategory::kImcMiss)] +
                stalls[static_cast<std::size_t>(
                    prof::StallCategory::kComputeDependency)] +
                stalls[static_cast<std::size_t>(
                    prof::StallCategory::kScoreboardMemory)];
        }
        std::printf("\n# IMC + compute-dep + memory-dep average: %.1f%% "
                    "(paper: 65.5%%)\n",
                    three_cause_sum / 4.0 * 100.0);
        std::printf("# paper shape check: rwalk topped by compute-dep, "
                    "word2vec by memory-dep, train/test by imc-miss — "
                    "no single optimization helps all kernels.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
