/// Tests for the unigram^0.75 negative-sampling table.
#include "embed/negative_table.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace tgl::embed {
namespace {

walk::Corpus
corpus_with_counts(const std::vector<std::pair<graph::NodeId, int>>& spec)
{
    walk::Corpus corpus;
    std::vector<graph::NodeId> walk;
    for (const auto& [node, count] : spec) {
        for (int i = 0; i < count; ++i) {
            walk.push_back(node);
        }
    }
    corpus.add_walk(walk);
    return corpus;
}

TEST(NegativeTable, AliasProbabilitiesFollowThreeQuarterPower)
{
    // counts 16 and 1: weights 16^0.75 = 8 and 1 -> probs 8/9, 1/9.
    const Vocab vocab(corpus_with_counts({{0, 16}, {1, 1}}));
    const NegativeTable table(vocab, NegativeTableKind::kAlias);
    EXPECT_NEAR(table.probability(0), 8.0 / 9.0, 1e-9);
    EXPECT_NEAR(table.probability(1), 1.0 / 9.0, 1e-9);
}

TEST(NegativeTable, AliasEmpiricalDistribution)
{
    const Vocab vocab(corpus_with_counts({{0, 16}, {1, 1}}));
    const NegativeTable table(vocab);
    rng::Random random(1);
    int zero_draws = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (table.sample(random) == 0) {
            ++zero_draws;
        }
    }
    EXPECT_NEAR(zero_draws / static_cast<double>(kDraws), 8.0 / 9.0,
                0.01);
}

TEST(NegativeTable, ArrayModeApproximatesAlias)
{
    const Vocab vocab(
        corpus_with_counts({{0, 100}, {1, 50}, {2, 10}, {3, 1}}));
    const NegativeTable alias(vocab, NegativeTableKind::kAlias);
    const NegativeTable array(vocab, NegativeTableKind::kArray, 1 << 16);
    for (WordId w = 0; w < 4; ++w) {
        EXPECT_NEAR(array.probability(w), alias.probability(w), 0.01)
            << "word " << w;
    }
}

TEST(NegativeTable, ArrayEmpiricalDistribution)
{
    const Vocab vocab(corpus_with_counts({{0, 81}, {1, 1}}));
    const NegativeTable table(vocab, NegativeTableKind::kArray, 1 << 14);
    rng::Random random(2);
    int zero_draws = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (table.sample(random) == 0) {
            ++zero_draws;
        }
    }
    // 81^0.75 = 27 -> p0 = 27/28.
    EXPECT_NEAR(zero_draws / static_cast<double>(kDraws), 27.0 / 28.0,
                0.01);
}

TEST(NegativeTable, EmptyVocabThrows)
{
    EXPECT_THROW(NegativeTable(Vocab{}), util::Error);
}

TEST(NegativeTable, ArraySmallerThanVocabThrows)
{
    const Vocab vocab(
        corpus_with_counts({{0, 1}, {1, 1}, {2, 1}, {3, 1}}));
    EXPECT_THROW(NegativeTable(vocab, NegativeTableKind::kArray, 2),
                 util::Error);
}

TEST(NegativeTable, EveryWordReachableInArrayMode)
{
    const Vocab vocab(
        corpus_with_counts({{0, 1000}, {1, 100}, {2, 10}, {3, 1}}));
    const NegativeTable table(vocab, NegativeTableKind::kArray, 1 << 16);
    for (WordId w = 0; w < 4; ++w) {
        EXPECT_GT(table.probability(w), 0.0) << "word " << w;
    }
}

/// Draw-count scale factor for the nightly high-sample rerun:
/// TGL_EQUIV_DRAWS=10 multiplies every statistical sample size by 10.
int
equiv_scale()
{
    const char* env = std::getenv("TGL_EQUIV_DRAWS");
    if (env == nullptr) {
        return 1;
    }
    const long mult = std::strtol(env, nullptr, 10);
    return mult > 1 ? static_cast<int>(mult) : 1;
}

// Regression for the array-fill defect inherited from word2vec's
// InitUnigramTable: the fill loop assigned every word at least one
// slot before checking the cumulative threshold, so a zero-count word
// (possible through the raw-counts constructor, e.g. a node the
// streaming shard never saw) kept 1/array_size sampling probability
// instead of zero. Pre-fix, probability() returns > 0 for words 1 and
// 3 here and this test fails.
TEST(NegativeTable, ArrayModeZeroCountWordsGetNoSlots)
{
    const std::vector<std::uint64_t> counts = {100, 0, 50, 0, 1};
    const NegativeTable array(counts, NegativeTableKind::kArray, 1 << 16);
    EXPECT_EQ(array.probability(1), 0.0);
    EXPECT_EQ(array.probability(3), 0.0);
    rng::Random random(7);
    const int draws = 20000 * equiv_scale();
    for (int i = 0; i < draws; ++i) {
        const WordId w = array.sample(random);
        EXPECT_NE(w, 1u);
        EXPECT_NE(w, 3u);
    }
}

/// Chi-square statistic of @p observed against expectations from
/// @p weights. Zero-weight bins must be empty (asserted exactly).
double
chi_square(const std::vector<int>& observed,
           const std::vector<double>& weights, int draws)
{
    double total = 0.0;
    for (double w : weights) {
        total += w;
    }
    double chi2 = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double expected = draws * weights[i] / total;
        if (expected < 1e-12) {
            EXPECT_EQ(observed[i], 0) << "zero-weight word " << i
                                      << " was sampled";
            continue;
        }
        const double diff = observed[i] - expected;
        chi2 += diff * diff / expected;
    }
    return chi2;
}

// Alias and array modes must agree on the same count^0.75 law even
// when the fixture interleaves zero-count words — the configuration
// the array-fill bug corrupted. Pre-fix the zero-weight bins collect
// ~draws/array_size hits each and the EXPECT_EQ inside chi_square
// fires.
TEST(NegativeTable, AliasArrayChiSquareAgreementWithZeroCounts)
{
    const std::vector<std::uint64_t> counts = {0, 400, 0, 81, 16, 0, 1};
    std::vector<double> weights(counts.size());
    for (std::size_t w = 0; w < counts.size(); ++w) {
        weights[w] = std::pow(static_cast<double>(counts[w]), 0.75);
    }
    const NegativeTable alias(counts, NegativeTableKind::kAlias);
    const NegativeTable array(counts, NegativeTableKind::kArray, 1 << 16);

    const int draws = 100000 * equiv_scale();
    std::vector<int> alias_hits(counts.size(), 0);
    std::vector<int> array_hits(counts.size(), 0);
    rng::Random alias_random(11);
    rng::Random array_random(13);
    for (int i = 0; i < draws; ++i) {
        ++alias_hits[alias.sample(alias_random)];
        ++array_hits[array.sample(array_random)];
    }
    // 4 sampleable words -> 3 degrees of freedom; 18.0 is far past the
    // 99.9% critical value 16.3... of chi2(3), but the array table also
    // carries O(vocab/array_size) quantization error, so leave slack.
    EXPECT_LT(chi_square(alias_hits, weights, draws), 18.0);
    EXPECT_LT(chi_square(array_hits, weights, draws), 18.0);
}

} // namespace
} // namespace tgl::embed
