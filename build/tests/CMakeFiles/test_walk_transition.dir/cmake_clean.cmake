file(REMOVE_RECURSE
  "CMakeFiles/test_walk_transition.dir/test_walk_transition.cpp.o"
  "CMakeFiles/test_walk_transition.dir/test_walk_transition.cpp.o.d"
  "test_walk_transition"
  "test_walk_transition.pdb"
  "test_walk_transition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walk_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
