file(REMOVE_RECURSE
  "CMakeFiles/test_gen_catalog.dir/test_gen_catalog.cpp.o"
  "CMakeFiles/test_gen_catalog.dir/test_gen_catalog.cpp.o.d"
  "test_gen_catalog"
  "test_gen_catalog.pdb"
  "test_gen_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
