/// @file
/// Host environment introspection used by the benchmark harness and the
/// stall model (thread counts, cache sizes). Values that cannot be
/// queried fall back to documented defaults so the code runs anywhere.
#pragma once

#include <cstddef>
#include <string>

namespace tgl::util {

/// Static description of the executing machine.
struct HostInfo
{
    unsigned hardware_threads = 1;
    std::size_t l1d_bytes = 32 * 1024;
    std::size_t l2_bytes = 512 * 1024;
    std::size_t llc_bytes = 8 * 1024 * 1024;
    std::size_t cache_line_bytes = 64;
};

/// Query (and cache) host information.
const HostInfo& host_info();

/// One-line human-readable host summary for benchmark headers.
std::string host_summary();

} // namespace tgl::util
