#include "core/node_classification.hpp"

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#include <cmath>

namespace tgl::core {

TaskResult
run_node_classification(const NodeSplits& splits,
                        const std::vector<std::uint32_t>& labels,
                        std::uint32_t num_classes,
                        const embed::Embedding& embedding,
                        const ClassifierConfig& config,
                        ClassifierCheckpoint* checkpoint)
{
    TaskResult result;
    rng::Random random(config.seed);

    const nn::TaskDataset train_set =
        make_node_dataset(splits.train, labels, embedding);
    const nn::TaskDataset valid_set =
        make_node_dataset(splits.valid, labels, embedding);
    const nn::TaskDataset test_set =
        make_node_dataset(splits.test, labels, embedding);
    check_finite_features(train_set, "node classification");
    check_finite_features(valid_set, "node classification");
    check_finite_features(test_set, "node classification");

    nn::Mlp net =
        nn::make_node_classifier(embedding.dim(), config.hidden1,
                                 config.hidden2, num_classes, random);
    nn::Sgd optimizer(net.parameters(), config.lr, config.momentum,
                      config.weight_decay);
    nn::DataLoader loader(train_set, config.batch_size, true,
                          config.seed ^ 0x22);

    const bool restored =
        checkpoint != nullptr && checkpoint->manager != nullptr &&
        checkpoint->manager->load_classifier(
            checkpoint->name, checkpoint->fingerprint, net);
    if (checkpoint != nullptr) {
        checkpoint->loaded = restored;
    }

    const obs::Span span("classifier.node_classification");
    // Shared handles: registration interns by name, so both classifier
    // entry points feed the same registry cells.
    obs::Registry& registry = obs::Registry::global();
    obs::Counter epochs_counter = registry.counter("classifier.epochs");
    obs::Counter batches_counter = registry.counter("classifier.batches");
    obs::Histogram batch_hist = registry.histogram(
        "classifier.batch_seconds",
        {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
         0.05, 0.1, 0.25, 0.5, 1.0});

    util::Timer train_timer;
    const auto train_begin = std::chrono::steady_clock::now();
    // The MLP runs on the calling thread, so a plain per-thread scope
    // captures the whole training loop.
    obs::PerfScope train_perf("train");
    nn::Tensor batch_features;
    std::vector<float> batch_binary;
    std::vector<std::uint32_t> batch_classes;

    for (unsigned epoch = 0; !restored && epoch < config.max_epochs;
         ++epoch) {
        util::check_cancellation("the classifier epoch loop");
        const obs::Span epoch_span("classifier.epoch");
        loader.start_epoch();
        double epoch_loss = 0.0;
        for (std::size_t b = 0; b < loader.num_batches(); ++b) {
            util::Timer batch_timer;
            loader.batch(b, batch_features, batch_binary, batch_classes);
            const nn::Tensor& output = net.forward(batch_features);
            const nn::LossResult loss = nn::nll_loss(output, batch_classes);
            if (!std::isfinite(loss.loss)) {
                util::fatal(util::strcat(
                    "node classification: non-finite training loss at "
                    "epoch ", epoch + 1, ", batch ", b + 1,
                    " — the classifier diverged (lower lr or check the "
                    "input features)"));
            }
            epoch_loss += loss.loss;
            optimizer.zero_grad();
            net.backward(loss.grad);
            optimizer.step();
            batches_counter.inc();
            batch_hist.observe(batch_timer.seconds());
        }
        epochs_counter.inc();
        result.final_train_loss =
            epoch_loss / static_cast<double>(loader.num_batches());
        result.epochs_run = epoch + 1;
        registry.gauge("classifier.train_loss")
            .set(result.final_train_loss);

        if (config.target_valid_accuracy < 1.0 && !splits.valid.empty()) {
            const nn::Tensor& valid_out =
                net.forward(valid_set.features);
            result.valid_accuracy = multiclass_accuracy(
                valid_out, valid_set.class_labels);
            if (result.valid_accuracy >= config.target_valid_accuracy) {
                break;
            }
        }
    }
    result.train_seconds = train_timer.seconds();
    const obs::PerfSample train_sample = train_perf.close();
    if (obs::TraceSession* session = obs::TraceSession::current()) {
        session->record("pipeline.train", train_begin,
                        std::chrono::steady_clock::now(),
                        obs::perf_span_args(train_sample));
    }
    result.seconds_per_epoch =
        result.epochs_run == 0
            ? 0.0
            : result.train_seconds / result.epochs_run;

    if (!restored && checkpoint != nullptr &&
        checkpoint->manager != nullptr) {
        checkpoint->manager->store_classifier(
            checkpoint->name, checkpoint->fingerprint, net);
        checkpoint->stored = true;
    }

    if (!splits.valid.empty()) {
        const nn::Tensor& valid_out = net.forward(valid_set.features);
        result.valid_accuracy =
            multiclass_accuracy(valid_out, valid_set.class_labels);
    }

    registry.gauge("classifier.valid_accuracy")
        .set(result.valid_accuracy);

    util::Timer test_timer;
    const obs::Span test_span("pipeline.test", "test");
    const nn::Tensor& test_out = net.forward(test_set.features);
    result.test_accuracy =
        multiclass_accuracy(test_out, test_set.class_labels);
    result.test_macro_f1 =
        macro_f1(test_out, test_set.class_labels, num_classes);
    result.test_seconds = test_timer.seconds();
    return result;
}

} // namespace tgl::core
