#include "graph/snapshot.hpp"

#include "graph/builder.hpp"
#include "util/error.hpp"

namespace tgl::graph {

EdgeList
snapshot_edges(const EdgeList& edges, Timestamp t)
{
    EdgeList result;
    for (const TemporalEdge& e : edges) {
        if (e.time <= t) {
            result.add(e.src, e.dst, e.time);
        }
    }
    return result;
}

EdgeList
window_edges(const EdgeList& edges, Timestamp t_begin, Timestamp t_end)
{
    if (t_begin > t_end) {
        util::fatal("window_edges: t_begin must be <= t_end");
    }
    EdgeList result;
    for (const TemporalEdge& e : edges) {
        if (e.time > t_begin && e.time <= t_end) {
            result.add(e.src, e.dst, e.time);
        }
    }
    return result;
}

std::vector<TemporalGraph>
snapshot_sequence(const EdgeList& edges, unsigned count,
                  const BuildOptions& options)
{
    if (count == 0) {
        util::fatal("snapshot_sequence: count must be >= 1");
    }
    Timestamp lo = 0.0, hi = 0.0;
    if (!edges.empty()) {
        lo = hi = edges[0].time;
        for (const TemporalEdge& e : edges) {
            lo = std::min(lo, e.time);
            hi = std::max(hi, e.time);
        }
    }

    // Fix the node-id space so every snapshot indexes consistently.
    BuildOptions fixed = options;
    fixed.min_num_nodes = std::max(fixed.min_num_nodes, edges.num_nodes());

    std::vector<TemporalGraph> snapshots;
    snapshots.reserve(count);
    for (unsigned i = 1; i <= count; ++i) {
        const Timestamp boundary =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(count);
        snapshots.push_back(
            GraphBuilder::build(snapshot_edges(edges, boundary), fixed));
    }
    return snapshots;
}

} // namespace tgl::graph
