#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py.

The load-bearing case doctors a +30% slowdown into the current results
and asserts the gate goes red — the proof the CI bench-regression job
can actually fail.  Run with:

    python3 -m unittest tools.test_bench_compare
"""

import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_compare


def write_suite(
    path: Path,
    names_seconds: dict[str, float],
    units: dict[str, str] | None = None,
    meta: dict[str, str] | None = None,
    higher_is_better: dict[str, bool] | None = None,
):
    units = units or {}
    higher_is_better = higher_is_better or {}
    doc = {
        "benchmark": path.stem.removeprefix("BENCH_"),
        "schema_version": 1,
        **({"meta": meta} if meta is not None else {}),
        "entries": [
            {"name": name, "seconds": seconds, "items_per_second": 0.0,
             **({"unit": units[name]} if name in units else {}),
             **({"higher_is_better": higher_is_better[name]}
                if name in higher_is_better else {}),
             "metrics": {}}
            for name, seconds in names_seconds.items()
        ],
    }
    path.write_text(json.dumps(doc))


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline_dir = root / "baselines"
        self.current_dir = root / "current"
        self.baseline_dir.mkdir()
        self.current_dir.mkdir()
        self.baseline = {
            "walk/exponential/direct": 1.0,
            "walk/exponential/cached": 0.4,
            "walk/uniform/direct": 0.2,
        }
        write_suite(self.baseline_dir / "BENCH_walk.json", self.baseline)

    def tearDown(self):
        self._tmp.cleanup()

    def compare(self, current: dict[str, float]) -> tuple[bool, str]:
        write_suite(self.current_dir / "BENCH_walk.json", current)
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        return ok, out.getvalue()

    def test_identical_results_pass(self):
        ok, out = self.compare(dict(self.baseline))
        self.assertTrue(ok)
        self.assertIn("ok", out)

    def test_injected_30_percent_slowdown_fails(self):
        doctored = {name: s * 1.30 for name, s in self.baseline.items()}
        ok, out = self.compare(doctored)
        self.assertFalse(ok)
        self.assertIn("FAIL", out)

    def test_8_percent_slowdown_warns_but_passes(self):
        doctored = {name: s * 1.08 for name, s in self.baseline.items()}
        ok, out = self.compare(doctored)
        self.assertTrue(ok)
        self.assertIn("WARN", out)

    def test_median_gate_tolerates_one_noisy_entry(self):
        # One entry 2x slower, the other two unchanged: the median stays
        # at 1.0, so a single outlier cannot flip the gate.
        doctored = dict(self.baseline)
        doctored["walk/uniform/direct"] *= 2.0
        ok, out = self.compare(doctored)
        self.assertTrue(ok)
        self.assertIn("<-- slower", out)

    def test_speedups_pass(self):
        doctored = {name: s * 0.5 for name, s in self.baseline.items()}
        ok, _ = self.compare(doctored)
        self.assertTrue(ok)

    def test_new_entries_are_ignored(self):
        doctored = dict(self.baseline)
        doctored["walk/brand_new_bench"] = 99.0
        ok, _ = self.compare(doctored)
        self.assertTrue(ok)

    def test_counter_entries_are_excluded_from_the_gate(self):
        # A counter-valued entry (unit != "seconds", e.g. the fig09
        # model-vs-measured mix) may drift by orders of magnitude run to
        # run — it must never participate in the timing gate.
        units = {"walk/perf_counter": "mix"}
        baseline = dict(self.baseline)
        baseline["walk/perf_counter"] = 1.0
        write_suite(
            self.baseline_dir / "BENCH_walk.json", baseline, units
        )
        doctored = dict(self.baseline)
        doctored["walk/perf_counter"] = 5_000_000.0  # huge "drift"
        write_suite(self.current_dir / "BENCH_walk.json", doctored, units)
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        self.assertTrue(ok)
        self.assertNotIn("perf_counter", out.getvalue())

    def test_missing_baseline_entry_warns_but_passes(self):
        # A baseline entry the current run no longer emits (renamed or
        # retired bench) must be a visible warning, never a hard error.
        doctored = dict(self.baseline)
        del doctored["walk/uniform/direct"]
        ok, out = self.compare(doctored)
        self.assertTrue(ok)
        self.assertIn("WARN", out)
        self.assertIn("walk/uniform/direct", out)
        self.assertIn("missing from the current run", out)

    def test_fully_disjoint_suite_warns_but_passes(self):
        # Nothing comparable at all (every entry renamed): the suite is
        # skipped with a warning instead of raising BenchError, so one
        # stale baseline file cannot take the whole gate down.
        ok, out = self.compare({"walk/renamed_everything": 1.0})
        self.assertTrue(ok)
        self.assertIn("no comparable entries", out)
        self.assertNotIn("FAIL", out)

    def test_missing_entry_warning_keeps_other_suites_gating(self):
        # The warn path must not weaken the gate: a second suite with a
        # real regression still fails the run.
        write_suite(
            self.baseline_dir / "BENCH_w2v.json", {"w2v/train": 1.0}
        )
        write_suite(
            self.current_dir / "BENCH_w2v.json", {"w2v/train": 1.5}
        )
        doctored = dict(self.baseline)
        del doctored["walk/uniform/direct"]
        ok, out = self.compare(doctored)
        self.assertFalse(ok)
        self.assertIn("missing from the current run", out)
        self.assertIn("FAIL", out)

    def test_missing_unit_defaults_to_seconds(self):
        # Pre-unit baselines (no "unit" field) still gate as timings.
        doctored = {name: s * 1.30 for name, s in self.baseline.items()}
        ok, out = self.compare(doctored)
        self.assertFalse(ok)
        self.assertIn("FAIL", out)

    def test_isa_mismatch_warns_and_skips_the_suite(self):
        # An AVX2 baseline vs a scalar-fallback run: a 2x "slowdown"
        # is an ISA change, not a regression — warn, skip, stay green.
        write_suite(
            self.baseline_dir / "BENCH_walk.json", self.baseline,
            meta={"simd_isa": "avx2", "f64_lanes": "4"},
        )
        write_suite(
            self.current_dir / "BENCH_walk.json",
            {name: s * 2.0 for name, s in self.baseline.items()},
            meta={"simd_isa": "scalar", "f64_lanes": "4"},
        )
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        self.assertTrue(ok)
        self.assertIn("simd_isa mismatch", out.getvalue())
        self.assertNotIn("FAIL", out.getvalue())

    def test_one_sided_isa_presence_is_a_mismatch(self):
        # Baseline predates the meta block but the current run records
        # an ISA (or vice versa): provenance unknown, so don't gate.
        write_suite(
            self.current_dir / "BENCH_walk.json",
            {name: s * 2.0 for name, s in self.baseline.items()},
            meta={"simd_isa": "avx2"},
        )
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        self.assertTrue(ok)
        self.assertIn("unrecorded", out.getvalue())

    def test_matching_isa_still_gates(self):
        write_suite(
            self.baseline_dir / "BENCH_walk.json", self.baseline,
            meta={"simd_isa": "avx2"},
        )
        write_suite(
            self.current_dir / "BENCH_walk.json",
            {name: s * 1.30 for name, s in self.baseline.items()},
            meta={"simd_isa": "avx2"},
        )
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        self.assertFalse(ok)
        self.assertIn("FAIL", out.getvalue())

    def test_malformed_meta_is_a_schema_error(self):
        write_suite(
            self.current_dir / "BENCH_walk.json", dict(self.baseline)
        )
        doc = json.loads(
            (self.current_dir / "BENCH_walk.json").read_text()
        )
        doc["meta"] = {"simd_isa": 4}
        (self.current_dir / "BENCH_walk.json").write_text(json.dumps(doc))
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.compare_dirs(
                self.baseline_dir, self.current_dir,
                fail_threshold=0.15, warn_threshold=0.05,
                out=io.StringIO(),
            )

    def test_missing_current_suite_is_a_schema_error(self):
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.compare_dirs(
                self.baseline_dir, self.current_dir,
                fail_threshold=0.15, warn_threshold=0.05,
                out=io.StringIO(),
            )

    def test_malformed_json_is_a_schema_error(self):
        (self.current_dir / "BENCH_walk.json").write_text("not json")
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.compare_dirs(
                self.baseline_dir, self.current_dir,
                fail_threshold=0.15, warn_threshold=0.05,
                out=io.StringIO(),
            )

    def test_wrong_schema_version_is_rejected(self):
        doc = {"benchmark": "walk", "schema_version": 2, "entries": []}
        (self.current_dir / "BENCH_walk.json").write_text(json.dumps(doc))
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.compare_dirs(
                self.baseline_dir, self.current_dir,
                fail_threshold=0.15, warn_threshold=0.05,
                out=io.StringIO(),
            )

    def test_update_promotes_current_to_baseline(self):
        doctored = {name: s * 1.30 for name, s in self.baseline.items()}
        write_suite(self.current_dir / "BENCH_walk.json", doctored)
        bench_compare.update_baselines(
            self.baseline_dir, self.current_dir, out=io.StringIO()
        )
        promoted = bench_compare.load_bench(
            self.baseline_dir / "BENCH_walk.json"
        )
        self.assertEqual(
            promoted, {name: (s, False) for name, s in doctored.items()}
        )

    def test_cli_exit_codes(self):
        write_suite(
            self.current_dir / "BENCH_walk.json",
            {name: s * 1.30 for name, s in self.baseline.items()},
        )
        argv = [
            "--baseline-dir", str(self.baseline_dir),
            "--current-dir", str(self.current_dir),
        ]
        self.assertEqual(bench_compare.main(argv), 1)
        write_suite(
            self.current_dir / "BENCH_walk.json", dict(self.baseline)
        )
        self.assertEqual(bench_compare.main(argv), 0)
        self.assertEqual(
            bench_compare.main(
                ["--baseline-dir", str(self.baseline_dir / "missing"),
                 "--current-dir", str(self.current_dir)]
            ),
            2,
        )


class HigherIsBetterTest(unittest.TestCase):
    """Gate direction for rate entries (the serve layer's QPS rungs)."""

    QPS_UNITS = {
        "serve/qps/c1/fp32": "qps",
        "serve/qps/c4/fp32": "qps",
        "serve/peak_qps/fp32": "qps",
    }
    QPS_FLAGS = {name: True for name in QPS_UNITS}

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.baseline_dir = root / "baselines"
        self.current_dir = root / "current"
        self.baseline_dir.mkdir()
        self.current_dir.mkdir()
        self.baseline = {
            "serve/qps/c1/fp32": 40_000.0,
            "serve/qps/c4/fp32": 45_000.0,
            "serve/peak_qps/fp32": 46_000.0,
        }
        write_suite(
            self.baseline_dir / "BENCH_serve.json", self.baseline,
            units=self.QPS_UNITS, higher_is_better=self.QPS_FLAGS,
        )

    def tearDown(self):
        self._tmp.cleanup()

    def compare(self, current: dict[str, float]) -> tuple[bool, str]:
        write_suite(
            self.current_dir / "BENCH_serve.json", current,
            units=self.QPS_UNITS, higher_is_better=self.QPS_FLAGS,
        )
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        return ok, out.getvalue()

    def test_doctored_30_percent_qps_drop_fails(self):
        # The load-bearing case for the serve gate: throughput fell 30%,
        # so the inverted ratio is ~1.43 and the run must go red.
        doctored = {name: q * 0.70 for name, q in self.baseline.items()}
        ok, out = self.compare(doctored)
        self.assertFalse(ok)
        self.assertIn("FAIL", out)
        self.assertIn("lower throughput", out)

    def test_unchanged_qps_passes(self):
        ok, out = self.compare(dict(self.baseline))
        self.assertTrue(ok)
        self.assertNotIn("FAIL", out)

    def test_qps_gain_passes(self):
        # Faster serving must never fail the gate (ratio < 1 after the
        # inversion).
        doubled = {name: q * 2.0 for name, q in self.baseline.items()}
        ok, out = self.compare(doubled)
        self.assertTrue(ok)
        self.assertIn("higher throughput", out)

    def test_qps_collapse_to_zero_fails(self):
        # A server that stopped serving maps to an infinite ratio — the
        # exact regression this gate exists to catch, not a skip.
        dead = {name: 0.0 for name in self.baseline}
        ok, out = self.compare(dead)
        self.assertFalse(ok)
        self.assertIn("FAIL", out)

    def test_mixed_suite_gates_latency_and_qps_together(self):
        # Latency entries (plain timings) and QPS entries coexist in
        # BENCH_serve.json; a drop in every QPS rung fails even while
        # the latency timings hold steady.
        units = dict(self.QPS_UNITS)
        flags = dict(self.QPS_FLAGS)
        baseline = dict(self.baseline)
        baseline["serve/link_p99/c1/fp32"] = 0.002
        write_suite(
            self.baseline_dir / "BENCH_serve.json", baseline,
            units=units, higher_is_better=flags,
        )
        doctored = {name: q * 0.5 for name, q in self.baseline.items()}
        doctored["serve/link_p99/c1/fp32"] = 0.002
        write_suite(
            self.current_dir / "BENCH_serve.json", doctored,
            units=units, higher_is_better=flags,
        )
        out = io.StringIO()
        ok = bench_compare.compare_dirs(
            self.baseline_dir, self.current_dir,
            fail_threshold=0.15, warn_threshold=0.05, out=out,
        )
        self.assertFalse(ok)
        self.assertIn("FAIL", out.getvalue())

    def test_direction_flag_mismatch_is_a_schema_error(self):
        # A baseline gating QPS as higher-is-better against a current
        # run re-declaring the same names as plain wall times compares
        # incommensurable numbers.
        write_suite(
            self.current_dir / "BENCH_serve.json", dict(self.baseline)
        )
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.compare_dirs(
                self.baseline_dir, self.current_dir,
                fail_threshold=0.15, warn_threshold=0.05,
                out=io.StringIO(),
            )

    def test_seconds_with_higher_is_better_is_contradictory(self):
        write_suite(
            self.current_dir / "BENCH_serve.json",
            {"serve/bogus": 1.0},
            higher_is_better={"serve/bogus": True},
        )
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.load_bench(
                self.current_dir / "BENCH_serve.json"
            )

    def test_non_bool_flag_is_a_schema_error(self):
        write_suite(
            self.current_dir / "BENCH_serve.json",
            {"serve/qps/c1/fp32": 40_000.0},
            units={"serve/qps/c1/fp32": "qps"},
        )
        doc = json.loads(
            (self.current_dir / "BENCH_serve.json").read_text()
        )
        doc["entries"][0]["higher_is_better"] = "yes"
        (self.current_dir / "BENCH_serve.json").write_text(json.dumps(doc))
        with self.assertRaises(bench_compare.BenchError):
            bench_compare.load_bench(
                self.current_dir / "BENCH_serve.json"
            )


if __name__ == "__main__":
    unittest.main()
