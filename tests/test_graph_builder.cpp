/// Unit + property tests for CSR construction and TemporalGraph.
#include "graph/builder.hpp"

#include "gen/erdos_renyi.hpp"
#include "graph/temporal_graph.hpp"

#include <gtest/gtest.h>

#include <map>

namespace tgl::graph {
namespace {

EdgeList
toy_edges()
{
    // Fig. 2-style toy graph: u=0, v=1, x=2, y=3, w=4.
    EdgeList edges;
    edges.add(0, 1, 1.0); // u -> v @ 1
    edges.add(1, 2, 2.0); // v -> x @ 2
    edges.add(1, 3, 3.0); // v -> y @ 3
    edges.add(4, 1, 0.5); // w -> v @ 0.5
    return edges;
}

TEST(Builder, BasicCsrShape)
{
    const TemporalGraph graph = GraphBuilder::build(toy_edges());
    EXPECT_EQ(graph.num_nodes(), 5u);
    EXPECT_EQ(graph.num_edges(), 4u);
    EXPECT_EQ(graph.out_degree(0), 1u);
    EXPECT_EQ(graph.out_degree(1), 2u);
    EXPECT_EQ(graph.out_degree(2), 0u);
    EXPECT_EQ(graph.max_out_degree(), 2u);
}

TEST(Builder, NeighborsSortedByTime)
{
    EdgeList edges;
    edges.add(0, 1, 5.0);
    edges.add(0, 2, 1.0);
    edges.add(0, 3, 3.0);
    const TemporalGraph graph = GraphBuilder::build(edges);
    const auto neighbors = graph.out_neighbors(0);
    ASSERT_EQ(neighbors.size(), 3u);
    EXPECT_EQ(neighbors[0].dst, 2u);
    EXPECT_EQ(neighbors[1].dst, 3u);
    EXPECT_EQ(neighbors[2].dst, 1u);
}

TEST(Builder, MultiEdgesPreserved)
{
    EdgeList edges;
    edges.add(0, 1, 1.0);
    edges.add(0, 1, 2.0);
    edges.add(0, 1, 3.0);
    const TemporalGraph graph = GraphBuilder::build(edges);
    EXPECT_EQ(graph.num_edges(), 3u);
    EXPECT_EQ(graph.out_degree(0), 3u);
}

TEST(Builder, MinNumNodesAddsIsolatedTail)
{
    EdgeList edges;
    edges.add(0, 1, 1.0);
    const TemporalGraph graph =
        GraphBuilder::build(edges, {.min_num_nodes = 10});
    EXPECT_EQ(graph.num_nodes(), 10u);
    EXPECT_EQ(graph.out_degree(9), 0u);
}

TEST(Builder, SymmetrizeOption)
{
    EdgeList edges;
    edges.add(0, 1, 1.0);
    const TemporalGraph graph =
        GraphBuilder::build(edges, {.symmetrize = true});
    EXPECT_EQ(graph.num_edges(), 2u);
    EXPECT_TRUE(graph.has_edge(0, 1));
    EXPECT_TRUE(graph.has_edge(1, 0));
}

TEST(Builder, RemoveSelfLoopsOption)
{
    EdgeList edges;
    edges.add(0, 0, 1.0);
    edges.add(0, 1, 2.0);
    const TemporalGraph graph =
        GraphBuilder::build(edges, {.remove_self_loops = true});
    EXPECT_EQ(graph.num_edges(), 1u);
}

TEST(Builder, EmptyEdgeListYieldsEmptyGraph)
{
    const TemporalGraph graph = GraphBuilder::build(EdgeList{});
    EXPECT_EQ(graph.num_nodes(), 0u);
    EXPECT_EQ(graph.num_edges(), 0u);
    EXPECT_TRUE(graph.check_invariants());
}

TEST(TemporalGraph, TimeRange)
{
    const TemporalGraph graph = GraphBuilder::build(toy_edges());
    EXPECT_DOUBLE_EQ(graph.min_time(), 0.5);
    EXPECT_DOUBLE_EQ(graph.max_time(), 3.0);
    EXPECT_DOUBLE_EQ(graph.time_range(), 2.5);
}

TEST(TemporalGraph, TemporalNeighborsStrict)
{
    const TemporalGraph graph = GraphBuilder::build(toy_edges());
    // From v=1 at time 2.0 strictly: only y@3 remains.
    const auto valid = graph.temporal_neighbors(1, 2.0, true);
    ASSERT_EQ(valid.size(), 1u);
    EXPECT_EQ(valid[0].dst, 3u);
}

TEST(TemporalGraph, TemporalNeighborsNonStrict)
{
    const TemporalGraph graph = GraphBuilder::build(toy_edges());
    // Non-strict includes the @2 edge itself.
    const auto valid = graph.temporal_neighbors(1, 2.0, false);
    ASSERT_EQ(valid.size(), 2u);
    EXPECT_EQ(valid[0].dst, 2u);
}

TEST(TemporalGraph, TemporalNeighborsBeforeAllEdges)
{
    const TemporalGraph graph = GraphBuilder::build(toy_edges());
    EXPECT_EQ(graph.temporal_neighbors(1, 0.0, true).size(), 2u);
    EXPECT_EQ(graph.temporal_neighbors(1, 3.0, true).size(), 0u);
}

TEST(TemporalGraph, LinearNeighborSearchMatchesBinary)
{
    const auto edges = gen::generate_erdos_renyi(
        {.num_nodes = 50, .num_edges = 500, .seed = 3});
    const TemporalGraph graph = GraphBuilder::build(edges);
    std::vector<std::uint32_t> scratch;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        for (double t : {0.0, 0.25, 0.5, 0.9, 1.0}) {
            for (bool strict : {true, false}) {
                const auto binary =
                    graph.temporal_neighbors(u, t, strict);
                const std::size_t linear =
                    graph.temporal_neighbors_linear(u, t, strict,
                                                    scratch);
                ASSERT_EQ(binary.size(), linear)
                    << "u=" << u << " t=" << t << " strict=" << strict;
                if (linear > 0) {
                    // Valid edges must be the trailing suffix.
                    EXPECT_EQ(scratch.front(),
                              graph.out_degree(u) - linear);
                }
            }
        }
    }
}

TEST(TemporalGraph, HasEdge)
{
    const TemporalGraph graph = GraphBuilder::build(toy_edges());
    EXPECT_TRUE(graph.has_edge(0, 1));
    EXPECT_TRUE(graph.has_edge(1, 3));
    EXPECT_FALSE(graph.has_edge(1, 0));
    EXPECT_FALSE(graph.has_edge(2, 3));
}

TEST(TemporalGraph, InvariantsHoldOnToyGraph)
{
    EXPECT_TRUE(GraphBuilder::build(toy_edges()).check_invariants());
}

/// Property test: CSR contains exactly the input multiset of edges.
class BuilderProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BuilderProperty, CsrMatchesInputMultiset)
{
    const auto edges = gen::generate_erdos_renyi(
        {.num_nodes = 200, .num_edges = 2000, .seed = GetParam()});
    const TemporalGraph graph = GraphBuilder::build(edges);

    EXPECT_TRUE(graph.check_invariants());
    EXPECT_EQ(graph.num_edges(), edges.size());

    std::map<std::pair<NodeId, NodeId>, int> expected;
    for (const TemporalEdge& e : edges) {
        ++expected[{e.src, e.dst}];
    }
    std::map<std::pair<NodeId, NodeId>, int> actual;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        for (const Neighbor& n : graph.out_neighbors(u)) {
            ++actual[{u, n.dst}];
        }
    }
    EXPECT_EQ(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

} // namespace
} // namespace tgl::graph
