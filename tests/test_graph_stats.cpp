/// Unit tests for graph statistics.
#include "graph/stats.hpp"

#include "gen/barabasi_albert.hpp"
#include "graph/builder.hpp"

#include <gtest/gtest.h>

namespace tgl::graph {
namespace {

TEST(Stats, EmptyGraph)
{
    const GraphStats stats = compute_stats(TemporalGraph{});
    EXPECT_EQ(stats.num_nodes, 0u);
    EXPECT_EQ(stats.num_edges, 0u);
}

TEST(Stats, CountsAndDegrees)
{
    EdgeList edges;
    edges.add(0, 1, 0.1);
    edges.add(0, 2, 0.2);
    edges.add(0, 3, 0.3);
    edges.add(1, 0, 0.4);
    const TemporalGraph graph =
        GraphBuilder::build(edges, {.min_num_nodes = 5});
    const GraphStats stats = compute_stats(graph);
    EXPECT_EQ(stats.num_nodes, 5u);
    EXPECT_EQ(stats.num_edges, 4u);
    EXPECT_EQ(stats.max_out_degree, 3u);
    EXPECT_EQ(stats.num_isolated, 3u); // 2, 3, 4 have no out-edges
    EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.8);
}

TEST(Stats, DegreeHistogramBuckets)
{
    EdgeList edges;
    // Node 0: degree 1 -> bucket 0; node 1: degree 2 -> bucket 1;
    // node 2: degree 5 -> bucket 2.
    edges.add(0, 1, 0.1);
    for (int i = 0; i < 2; ++i) {
        edges.add(1, 0, 0.1 * i);
    }
    for (int i = 0; i < 5; ++i) {
        edges.add(2, 0, 0.1 * i);
    }
    const GraphStats stats = compute_stats(GraphBuilder::build(edges));
    ASSERT_GE(stats.degree_histogram.size(), 3u);
    EXPECT_EQ(stats.degree_histogram[0], 1u);
    EXPECT_EQ(stats.degree_histogram[1], 1u);
    EXPECT_EQ(stats.degree_histogram[2], 1u);
}

TEST(Stats, TimeRangeReported)
{
    EdgeList edges;
    edges.add(0, 1, 0.25);
    edges.add(1, 0, 0.75);
    const GraphStats stats = compute_stats(GraphBuilder::build(edges));
    EXPECT_DOUBLE_EQ(stats.min_time, 0.25);
    EXPECT_DOUBLE_EQ(stats.max_time, 0.75);
}

TEST(Stats, BarabasiAlbertHasNegativePowerLawSlope)
{
    const auto edges = gen::generate_barabasi_albert(
        {.num_nodes = 5000, .edges_per_node = 3, .seed = 5});
    const TemporalGraph graph =
        GraphBuilder::build(edges, {.symmetrize = true});
    const GraphStats stats = compute_stats(graph);
    // Power-law graphs: bucket counts fall steeply with degree.
    EXPECT_LT(stats.degree_powerlaw_slope, -0.5);
}

TEST(Stats, FormatMentionsKeyFields)
{
    EdgeList edges;
    edges.add(0, 1, 0.0);
    const std::string text =
        format_stats(compute_stats(GraphBuilder::build(edges)));
    EXPECT_NE(text.find("nodes: 2"), std::string::npos);
    EXPECT_NE(text.find("edges: 1"), std::string::npos);
    EXPECT_NE(text.find("degree histogram"), std::string::npos);
}

} // namespace
} // namespace tgl::graph
