#include "graph/reorder.hpp"

#include "graph/builder.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace tgl::graph {

EdgeList
Reordering::apply(const EdgeList& edges) const
{
    EdgeList result;
    result.reserve(edges.size());
    for (const TemporalEdge& e : edges) {
        TGL_ASSERT(e.src < permutation.size() &&
                   e.dst < permutation.size());
        result.add(permutation[e.src], permutation[e.dst], e.time);
    }
    return result;
}

std::vector<NodeId>
Reordering::inverse() const
{
    std::vector<NodeId> inv(permutation.size());
    for (NodeId old_id = 0; old_id < permutation.size(); ++old_id) {
        inv[permutation[old_id]] = old_id;
    }
    return inv;
}

Reordering
compute_reordering(const EdgeList& edges, ReorderKind kind)
{
    const NodeId n = edges.num_nodes();
    Reordering result;
    result.permutation.resize(n);
    if (n == 0) {
        return result;
    }

    // Total (in+out) degree per vertex.
    std::vector<std::uint64_t> degree(n, 0);
    for (const TemporalEdge& e : edges) {
        ++degree[e.src];
        ++degree[e.dst];
    }

    switch (kind) {
      case ReorderKind::kDegreeSort: {
        std::vector<NodeId> order(n);
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](NodeId a, NodeId b) {
                             return degree[a] > degree[b];
                         });
        for (NodeId rank = 0; rank < n; ++rank) {
            result.permutation[order[rank]] = rank;
        }
        return result;
      }
      case ReorderKind::kBfs: {
        const TemporalGraph graph =
            GraphBuilder::build(edges, {.symmetrize = true});
        const NodeId root = static_cast<NodeId>(std::distance(
            degree.begin(),
            std::max_element(degree.begin(), degree.end())));

        std::vector<bool> visited(n, false);
        std::queue<NodeId> frontier;
        NodeId next_id = 0;
        auto visit = [&](NodeId u) {
            if (!visited[u]) {
                visited[u] = true;
                result.permutation[u] = next_id++;
                frontier.push(u);
            }
        };
        visit(root);
        while (next_id < n) {
            while (!frontier.empty()) {
                const NodeId u = frontier.front();
                frontier.pop();
                for (const Neighbor& nb : graph.out_neighbors(u)) {
                    visit(nb.dst);
                }
            }
            // Disconnected component: restart from any unvisited node.
            for (NodeId u = 0; u < n && frontier.empty(); ++u) {
                if (!visited[u]) {
                    visit(u);
                }
            }
        }
        return result;
      }
    }
    TGL_PANIC("unhandled reorder kind");
}

} // namespace tgl::graph
