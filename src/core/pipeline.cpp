#include "core/pipeline.hpp"

#include "graph/builder.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace tgl::core {

namespace {

/// Shared front-end: build CSR, walk, embed. Fills times/profiles and
/// returns the embedding plus the built graph (needed for negative
/// sampling downstream).
embed::Embedding
run_front_end(const graph::EdgeList& edges, const PipelineConfig& config,
              graph::TemporalGraph& graph, PipelineResult& result)
{
    util::Timer timer;
    graph::BuildOptions build_options;
    build_options.symmetrize = config.symmetrize_graph;
    graph = graph::GraphBuilder::build(edges, build_options);
    result.times.build_graph = timer.seconds();
    result.num_nodes = graph.num_nodes();
    result.num_edges = graph.num_edges();

    timer.reset();
    const walk::Corpus corpus =
        walk::generate_walks(graph, config.walk, &result.walk_profile);
    result.times.random_walk = timer.seconds();
    result.corpus_walks = corpus.num_walks();
    result.corpus_tokens = corpus.num_tokens();

    timer.reset();
    embed::Embedding embedding;
    if (config.w2v_mode == W2vMode::kHogwild) {
        embedding = embed::train_sgns(corpus, graph.num_nodes(),
                                      config.sgns, &result.w2v_stats);
    } else {
        embed::BatchedSgnsConfig batched;
        batched.sgns = config.sgns;
        batched.batch_size = config.w2v_batch_size;
        embedding = embed::train_sgns_batched(
            corpus, graph.num_nodes(), batched, &result.w2v_stats);
    }
    result.times.word2vec = timer.seconds();
    return embedding;
}

} // namespace

PipelineResult
run_link_prediction_pipeline(const graph::EdgeList& edges,
                             const PipelineConfig& config)
{
    PipelineResult result;
    graph::TemporalGraph graph;
    const embed::Embedding embedding =
        run_front_end(edges, config, graph, result);

    util::Timer timer;
    const LinkSplits splits =
        prepare_link_splits(edges, graph, config.split);
    result.times.data_prep = timer.seconds();

    result.task = run_link_prediction(splits, embedding, config.classifier);
    result.times.train = result.task.train_seconds;
    result.times.train_per_epoch = result.task.seconds_per_epoch;
    result.times.test = result.task.test_seconds;
    return result;
}

PipelineResult
run_node_classification_pipeline(const graph::EdgeList& edges,
                                 const std::vector<std::uint32_t>& labels,
                                 std::uint32_t num_classes,
                                 const PipelineConfig& config)
{
    PipelineResult result;
    graph::TemporalGraph graph;
    const embed::Embedding embedding =
        run_front_end(edges, config, graph, result);

    util::Timer timer;
    const NodeSplits splits =
        prepare_node_splits(graph.num_nodes(), config.split);
    result.times.data_prep = timer.seconds();

    result.task = run_node_classification(splits, labels, num_classes,
                                          embedding, config.classifier);
    result.times.train = result.task.train_seconds;
    result.times.train_per_epoch = result.task.seconds_per_epoch;
    result.times.test = result.task.test_seconds;
    return result;
}

PipelineResult
run_pipeline(const gen::Dataset& dataset, const PipelineConfig& config)
{
    if (dataset.task == gen::Task::kLinkPrediction) {
        return run_link_prediction_pipeline(dataset.edges, config);
    }
    return run_node_classification_pipeline(
        dataset.edges, dataset.labels, dataset.num_classes, config);
}

std::string
format_phase_times(const PhaseTimes& times)
{
    return util::strcat(
        "build ", util::format_fixed(times.build_graph, 3), "s | rwalk ",
        util::format_fixed(times.random_walk, 3), "s | word2vec ",
        util::format_fixed(times.word2vec, 3), "s | prep ",
        util::format_fixed(times.data_prep, 3), "s | train ",
        util::format_fixed(times.train, 3), "s (",
        util::format_fixed(times.train_per_epoch, 3), "s/epoch) | test ",
        util::format_fixed(times.test, 3), "s");
}

} // namespace tgl::core
