# Empty compiler generated dependencies file for fig09_instruction_breakdown.
# This may be replaced when dependencies are built.
