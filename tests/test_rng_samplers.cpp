/// Statistical tests for the alias table and discrete samplers.
#include "rng/alias_table.hpp"
#include "rng/discrete_sampler.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tgl::rng {
namespace {

/// Chi-square goodness-of-fit of empirical draws vs expected weights.
double
chi_square(const std::vector<int>& counts,
           const std::vector<double>& weights, int draws)
{
    double total_weight = 0.0;
    for (double w : weights) {
        total_weight += w;
    }
    double chi2 = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double expected = draws * weights[i] / total_weight;
        if (expected < 1e-12) {
            EXPECT_EQ(counts[i], 0);
            continue;
        }
        const double diff = counts[i] - expected;
        chi2 += diff * diff / expected;
    }
    return chi2;
}

TEST(AliasTable, UniformWeights)
{
    const std::vector<double> weights(8, 1.0);
    AliasTable table(weights);
    Random random(1);
    std::vector<int> counts(8, 0);
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i) {
        ++counts[table.sample(random)];
    }
    // 7 dof, 99.9% critical ~24.3.
    EXPECT_LT(chi_square(counts, weights, kDraws), 24.3);
}

TEST(AliasTable, SkewedWeights)
{
    const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0, 16.0};
    AliasTable table(weights);
    Random random(2);
    std::vector<int> counts(5, 0);
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        ++counts[table.sample(random)];
    }
    // 4 dof, 99.9% critical ~18.5.
    EXPECT_LT(chi_square(counts, weights, kDraws), 18.5);
}

TEST(AliasTable, ZeroWeightNeverDrawn)
{
    const std::vector<double> weights = {1.0, 0.0, 1.0};
    AliasTable table(weights);
    Random random(3);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_NE(table.sample(random), 1u);
    }
}

TEST(AliasTable, SingleOutcome)
{
    AliasTable table(std::vector<double>{5.0});
    Random random(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(table.sample(random), 0u);
    }
}

TEST(AliasTable, OutcomeProbabilityNormalized)
{
    const std::vector<double> weights = {3.0, 1.0};
    AliasTable table(weights);
    EXPECT_NEAR(table.outcome_probability(0), 0.75, 1e-12);
    EXPECT_NEAR(table.outcome_probability(1), 0.25, 1e-12);
}

TEST(AliasTable, RejectsInvalidWeights)
{
    EXPECT_THROW(AliasTable(std::vector<double>{}), util::Error);
    EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), util::Error);
    EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), util::Error);
}

TEST(DiscreteSampler, MatchesWeights)
{
    const std::vector<double> weights = {0.5, 1.5, 3.0, 1.0};
    DiscreteSampler sampler(weights);
    Random random(5);
    std::vector<int> counts(4, 0);
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        ++counts[sampler.sample(random)];
    }
    // 3 dof, 99.9% critical ~16.3.
    EXPECT_LT(chi_square(counts, weights, kDraws), 16.3);
}

TEST(DiscreteSampler, OutcomeProbability)
{
    DiscreteSampler sampler(std::vector<double>{1.0, 3.0});
    EXPECT_NEAR(sampler.outcome_probability(0), 0.25, 1e-12);
    EXPECT_NEAR(sampler.outcome_probability(1), 0.75, 1e-12);
}

TEST(DiscreteSampler, RejectsInvalidWeights)
{
    EXPECT_THROW(DiscreteSampler(std::vector<double>{}), util::Error);
    EXPECT_THROW(DiscreteSampler(std::vector<double>{0.0}), util::Error);
    EXPECT_THROW(DiscreteSampler(std::vector<double>{-2.0, 1.0}), util::Error);
}

TEST(OnePassSampler, MatchesWeights)
{
    const std::vector<double> weights = {2.0, 1.0, 1.0};
    Random random(6);
    std::vector<int> counts(3, 0);
    constexpr int kDraws = 90000;
    for (int i = 0; i < kDraws; ++i) {
        const std::size_t pick = sample_weighted_one_pass(
            3, [&](std::size_t j) { return weights[j]; }, random);
        ASSERT_LT(pick, 3u);
        ++counts[pick];
    }
    EXPECT_LT(chi_square(counts, weights, kDraws), 13.8); // 2 dof 99.9%
}

TEST(OnePassSampler, AllZeroReturnsN)
{
    Random random(7);
    EXPECT_EQ(sample_weighted_one_pass(
                  4, [](std::size_t) { return 0.0; }, random),
              4u);
}

TEST(TwoPassSampler, MatchesWeights)
{
    const std::vector<double> weights = {1.0, 1.0, 2.0};
    Random random(8);
    std::vector<int> counts(3, 0);
    constexpr int kDraws = 90000;
    for (int i = 0; i < kDraws; ++i) {
        const std::size_t pick = sample_weighted_two_pass(
            3, [&](std::size_t j) { return weights[j]; }, random);
        ASSERT_LT(pick, 3u);
        ++counts[pick];
    }
    EXPECT_LT(chi_square(counts, weights, kDraws), 13.8);
}

TEST(TwoPassSampler, AllZeroReturnsN)
{
    Random random(9);
    EXPECT_EQ(sample_weighted_two_pass(
                  5, [](std::size_t) { return 0.0; }, random),
              5u);
}

TEST(Samplers, OnePassAndTwoPassAgreeInDistribution)
{
    // Same weights, different algorithms: verify both land near the
    // analytic probabilities independently.
    const std::vector<double> weights = {1.0, 4.0};
    Random r1(10), r2(11);
    int one_pass_zero = 0, two_pass_zero = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
        if (sample_weighted_one_pass(
                2, [&](std::size_t j) { return weights[j]; }, r1) == 0) {
            ++one_pass_zero;
        }
        if (sample_weighted_two_pass(
                2, [&](std::size_t j) { return weights[j]; }, r2) == 0) {
            ++two_pass_zero;
        }
    }
    EXPECT_NEAR(one_pass_zero / static_cast<double>(kDraws), 0.2, 0.01);
    EXPECT_NEAR(two_pass_zero / static_cast<double>(kDraws), 0.2, 0.01);
}

} // namespace
} // namespace tgl::rng
