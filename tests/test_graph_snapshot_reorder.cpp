/// Tests for temporal snapshots (Definition III.1's G_t) and the
/// vertex reordering passes.
#include "graph/reorder.hpp"
#include "graph/snapshot.hpp"

#include "gen/barabasi_albert.hpp"
#include "graph/builder.hpp"
#include "util/error.hpp"
#include "walk/engine.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tgl::graph {
namespace {

EdgeList
staircase_edges()
{
    EdgeList edges;
    edges.add(0, 1, 0.1);
    edges.add(1, 2, 0.4);
    edges.add(2, 3, 0.7);
    edges.add(3, 0, 1.0);
    return edges;
}

TEST(Snapshot, PrefixByTime)
{
    const EdgeList edges = staircase_edges();
    EXPECT_EQ(snapshot_edges(edges, 0.05).size(), 0u);
    EXPECT_EQ(snapshot_edges(edges, 0.1).size(), 1u); // inclusive
    EXPECT_EQ(snapshot_edges(edges, 0.5).size(), 2u);
    EXPECT_EQ(snapshot_edges(edges, 1.0).size(), 4u);
}

TEST(Snapshot, WindowHalfOpenInterval)
{
    const EdgeList edges = staircase_edges();
    const EdgeList window = window_edges(edges, 0.1, 0.7);
    ASSERT_EQ(window.size(), 2u); // (0.1, 0.7] -> 0.4, 0.7
    EXPECT_DOUBLE_EQ(window[0].time, 0.4);
    EXPECT_DOUBLE_EQ(window[1].time, 0.7);
}

TEST(Snapshot, WindowRejectsInvertedRange)
{
    EXPECT_THROW(window_edges(staircase_edges(), 0.9, 0.1),
                 util::Error);
}

TEST(Snapshot, SequenceIsCumulative)
{
    const EdgeList edges = staircase_edges();
    const auto snapshots = snapshot_sequence(edges, 4, BuildOptions{});
    ASSERT_EQ(snapshots.size(), 4u);
    EdgeId previous = 0;
    for (const TemporalGraph& snapshot : snapshots) {
        EXPECT_GE(snapshot.num_edges(), previous);
        previous = snapshot.num_edges();
        // Consistent node-id space across snapshots.
        EXPECT_EQ(snapshot.num_nodes(), 4u);
        EXPECT_TRUE(snapshot.check_invariants());
    }
    EXPECT_EQ(snapshots.back().num_edges(), edges.size());
}

TEST(Snapshot, SequenceZeroCountThrows)
{
    EXPECT_THROW(snapshot_sequence(staircase_edges(), 0, BuildOptions{}),
                 util::Error);
}

TEST(Reorder, PermutationIsBijective)
{
    const auto edges = gen::generate_barabasi_albert(
        {.num_nodes = 500, .edges_per_node = 3, .seed = 31});
    for (const ReorderKind kind :
         {ReorderKind::kDegreeSort, ReorderKind::kBfs}) {
        const Reordering reordering = compute_reordering(edges, kind);
        std::set<NodeId> ids(reordering.permutation.begin(),
                             reordering.permutation.end());
        EXPECT_EQ(ids.size(), 500u);
        EXPECT_EQ(*ids.begin(), 0u);
        EXPECT_EQ(*ids.rbegin(), 499u);
    }
}

TEST(Reorder, DegreeSortPutsHubsFirst)
{
    const auto edges = gen::generate_barabasi_albert(
        {.num_nodes = 500, .edges_per_node = 3, .seed = 32});
    const Reordering reordering =
        compute_reordering(edges, ReorderKind::kDegreeSort);
    const EdgeList renamed = reordering.apply(edges);
    const auto graph =
        GraphBuilder::build(renamed, {.symmetrize = true});
    // New id 0 must hold the maximum degree.
    const EdgeId top_degree = graph.out_degree(0);
    for (NodeId u = 1; u < graph.num_nodes(); ++u) {
        EXPECT_LE(graph.out_degree(u), top_degree);
    }
}

TEST(Reorder, ApplyPreservesStructureAndTimestamps)
{
    const auto edges = gen::generate_barabasi_albert(
        {.num_nodes = 300, .edges_per_node = 2, .seed = 33});
    const Reordering reordering =
        compute_reordering(edges, ReorderKind::kBfs);
    const EdgeList renamed = reordering.apply(edges);
    ASSERT_EQ(renamed.size(), edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_EQ(renamed[i].src,
                  reordering.permutation[edges[i].src]);
        EXPECT_EQ(renamed[i].dst,
                  reordering.permutation[edges[i].dst]);
        EXPECT_DOUBLE_EQ(renamed[i].time, edges[i].time);
    }
}

TEST(Reorder, InverseRoundTrips)
{
    const auto edges = gen::generate_barabasi_albert(
        {.num_nodes = 200, .edges_per_node = 2, .seed = 34});
    const Reordering reordering =
        compute_reordering(edges, ReorderKind::kDegreeSort);
    const auto inverse = reordering.inverse();
    for (NodeId u = 0; u < 200; ++u) {
        EXPECT_EQ(inverse[reordering.permutation[u]], u);
    }
}

TEST(Reorder, WalkCorpusIsIsomorphicAfterReordering)
{
    // Reordering must not change walk *structure*: running the same
    // seeded walks on the renamed graph yields the renamed corpus.
    const auto edges = gen::generate_barabasi_albert(
        {.num_nodes = 200, .edges_per_node = 3, .seed = 35});
    const Reordering reordering =
        compute_reordering(edges, ReorderKind::kDegreeSort);

    // Degree-sort renaming changes which vertex owns which RNG stream,
    // so exact token equality is not expected — but corpus-level
    // statistics (token count per start vertex class) must agree.
    walk::WalkConfig config;
    config.walks_per_node = 2;
    config.max_length = 6;
    config.seed = 3;
    const auto original = walk::generate_walks(
        GraphBuilder::build(edges, {.symmetrize = true}), config);
    const auto renamed = walk::generate_walks(
        GraphBuilder::build(reordering.apply(edges),
                            {.symmetrize = true}),
        config);
    EXPECT_EQ(original.num_walks(), renamed.num_walks());
    // Same total out-degree structure -> statistically similar token
    // volume (within 10%).
    const double ratio = static_cast<double>(original.num_tokens()) /
                         static_cast<double>(renamed.num_tokens());
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(Reorder, EmptyGraph)
{
    const Reordering reordering =
        compute_reordering(EdgeList{}, ReorderKind::kDegreeSort);
    EXPECT_TRUE(reordering.permutation.empty());
}

} // namespace
} // namespace tgl::graph
