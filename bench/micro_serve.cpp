/// @file
/// Closed-loop load generator for the serving layer (DESIGN.md §14).
///
/// Boots an in-process tgl_serve instance on an ephemeral loopback
/// port, then sweeps offered load — closed-loop client threads, each
/// issuing one link-score request and waiting for the response before
/// the next — across a concurrency ladder for both snapshot storage
/// modes. A closed loop self-limits: each added client raises offered
/// load until the scorer pool saturates, so the QPS-vs-concurrency
/// curve exposes the saturation knee directly (peak QPS is the knee's
/// height; latency at the highest rung shows the queueing cost past
/// it).
///
/// Results land in BENCH_serve.json (bench_json.hpp schema):
///   - serve/link_p50|p99/c<N>/<quant> — request latency, gated as a
///     timing entry (lower is better),
///   - serve/qps/c<N>/<quant> and serve/peak_qps/<quant> — throughput
///     entries (unit "qps", higher_is_better), gated in the inverted
///     direction,
///   - serve/quant_error/int8 — max elementwise |served - trained|
///     plus max link-score delta vs fp32 (unit "delta", not gated).
///
/// TGL_SERVE_BENCH_SECONDS overrides the per-rung measure window;
/// TGL_SERVE_BENCH_LONG=1 selects the nightly sweep (wider concurrency
/// ladder, longer windows).
#include "bench_json.hpp"
#include "tgl/tgl.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace tgl;

struct LoadPoint
{
    double qps = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    std::uint64_t requests = 0;
};

double
percentile(std::vector<double>& sorted_ascending, double p)
{
    if (sorted_ascending.empty()) {
        return 0.0;
    }
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted_ascending.size() - 1));
    return sorted_ascending[rank];
}

/// Drive @p clients closed-loop client threads against @p port for
/// @p seconds, @p pairs_per_request pairs per link-score request.
LoadPoint
run_load_point(std::uint16_t port, unsigned clients, double seconds,
               std::size_t pairs_per_request, graph::NodeId num_nodes)
{
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    util::Timer wall;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            serve::Client client("127.0.0.1", port);
            rng::Random random(0x5e41e + c);
            std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(
                pairs_per_request);
            std::vector<double>& samples = latencies[c];
            util::Timer clock;
            while (clock.seconds() < seconds) {
                for (auto& [u, v] : pairs) {
                    u = static_cast<std::uint32_t>(
                        random.next_index(num_nodes));
                    v = static_cast<std::uint32_t>(
                        random.next_index(num_nodes));
                }
                util::Timer request;
                client.link_scores(pairs);
                samples.push_back(request.seconds());
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    const double elapsed = wall.seconds();

    LoadPoint point;
    std::vector<double> merged;
    for (const auto& samples : latencies) {
        merged.insert(merged.end(), samples.begin(), samples.end());
    }
    std::sort(merged.begin(), merged.end());
    point.requests = merged.size();
    point.qps = elapsed > 0.0
                    ? static_cast<double>(merged.size()) / elapsed
                    : 0.0;
    point.p50 = percentile(merged, 0.50);
    point.p99 = percentile(merged, 0.99);
    return point;
}

/// A small trained-shaped model: real SGNS embeddings over a BA graph
/// (so int8 quantization sees realistic value ranges), random-init
/// classifier (throughput does not depend on the weights being
/// trained).
embed::Embedding
build_embedding(graph::NodeId nodes, unsigned dim)
{
    const graph::EdgeList edges = gen::generate_barabasi_albert(
        {.num_nodes = nodes, .edges_per_node = 3, .seed = 17});
    const auto graph =
        graph::GraphBuilder::build(edges, {.symmetrize = true});
    walk::WalkConfig walk_config;
    walk_config.walks_per_node = 4;
    walk_config.max_length = 6;
    walk_config.seed = 17;
    const walk::Corpus corpus = walk::generate_walks(graph, walk_config);
    embed::SgnsConfig sgns;
    sgns.dim = dim;
    sgns.epochs = 2;
    sgns.seed = 17;
    return embed::train_sgns(corpus, graph.num_nodes(), sgns);
}

} // namespace

int
main()
{
    const graph::NodeId kNodes = 4000;
    const unsigned kDim = 32;
    const std::size_t kPairsPerRequest = 16;
    const unsigned kScorerThreads = 2;

    const bool long_sweep = [] {
        const char* env = std::getenv("TGL_SERVE_BENCH_LONG");
        return env != nullptr && std::string(env) == "1";
    }();
    double window = long_sweep ? 3.0 : 1.0;
    if (const char* env = std::getenv("TGL_SERVE_BENCH_SECONDS")) {
        window = util::parse_double(env);
    }
    std::vector<unsigned> ladder = {1, 2, 4, 8};
    if (long_sweep) {
        ladder.push_back(16);
        ladder.push_back(32);
    }

    std::printf("# micro_serve: %s\n", util::host_summary().c_str());
    std::printf("# closed-loop sweep: %zu pairs/request, %.1fs/rung, "
                "concurrency {", kPairsPerRequest, window);
    for (unsigned clients : ladder) {
        std::printf("%u ", clients);
    }
    std::printf("}\n");

    const embed::Embedding embedding = build_embedding(kNodes, kDim);
    const auto classifier_factory = [dim = embedding.dim()]() {
        rng::Random random(17);
        return nn::make_link_predictor(2 * std::size_t{dim}, 16, random);
    };

    bench::BenchReport report("serve");

    const auto fp32 = serve::EmbeddingSnapshot::build(
        embedding, serve::QuantMode::kFp32, 1, 0);
    const auto int8 = serve::EmbeddingSnapshot::build(
        embedding, serve::QuantMode::kInt8, 1, 0);

    for (const serve::QuantMode quant :
         {serve::QuantMode::kFp32, serve::QuantMode::kInt8}) {
        const char* quant_name = serve::quant_mode_name(quant);
        serve::ServeConfig config;
        config.scorer_threads = kScorerThreads;
        config.quant = quant;
        serve::Server server(
            config, quant == serve::QuantMode::kFp32 ? fp32 : int8,
            classifier_factory);
        server.start();

        // One throwaway rung warms connections, code, and caches.
        run_load_point(server.port(), 1, window * 0.25,
                       kPairsPerRequest, kNodes);

        double peak_qps = 0.0;
        for (const unsigned clients : ladder) {
            const LoadPoint point =
                run_load_point(server.port(), clients, window,
                               kPairsPerRequest, kNodes);
            peak_qps = std::max(peak_qps, point.qps);
            std::printf("%-6s c=%-3u %9.0f req/s   p50 %8.1fus   "
                        "p99 %8.1fus   (%llu requests)\n",
                        quant_name, clients, point.qps,
                        point.p50 * 1e6, point.p99 * 1e6,
                        static_cast<unsigned long long>(point.requests));
            const std::string suffix = util::strcat(
                "/c", clients, "/", quant_name);
            report.add({util::strcat("serve/link_p50", suffix),
                        point.p50, 0.0,
                        {{"clients", static_cast<double>(clients)}}});
            report.add({util::strcat("serve/link_p99", suffix),
                        point.p99, 0.0,
                        {{"clients", static_cast<double>(clients)}}});
            report.add({util::strcat("serve/qps", suffix), point.qps,
                        point.qps,
                        {{"clients", static_cast<double>(clients)},
                         {"requests",
                          static_cast<double>(point.requests)}},
                        "qps", /*higher_is_better=*/true});
        }
        report.add({util::strcat("serve/peak_qps/", quant_name),
                    peak_qps, peak_qps,
                    {{"scorer_threads",
                      static_cast<double>(kScorerThreads)}},
                    "qps", /*higher_is_better=*/true});
        std::printf("%-6s peak %9.0f req/s\n", quant_name, peak_qps);
        server.stop();
    }

    // Telemetry overhead A/B (DESIGN.md §15): identical fp32 servers,
    // one with per-request tracing + the flight-recorder sampler on
    // (the default) and one with both off, same concurrency rung. The
    // acceptance bar is <= 2% peak-QPS overhead; EXPERIMENTS.md §"serve
    // telemetry" records the measured numbers.
    {
        const unsigned kAbClients = ladder.back();
        const int kTrials = long_sweep ? 5 : 3;
        // Interleaved trials (on, off, on, off, ...) with peak-per-mode
        // so slow drift (thermal, scheduler) hits both modes equally;
        // a single paired run is noisier than the effect being measured.
        double peak_by_mode[2] = {0.0, 0.0};
        for (int trial = 0; trial < kTrials; ++trial) {
            for (const bool telemetry : {true, false}) {
                serve::ServeConfig config;
                config.scorer_threads = kScorerThreads;
                config.request_tracing = telemetry;
                config.timeseries = telemetry;
                serve::Server server(config, fp32, classifier_factory);
                server.start();
                run_load_point(server.port(), 1, window * 0.25,
                               kPairsPerRequest, kNodes); // warmup
                const LoadPoint point =
                    run_load_point(server.port(), kAbClients,
                                   window * 0.5, kPairsPerRequest,
                                   kNodes);
                double& peak = peak_by_mode[telemetry ? 0 : 1];
                peak = std::max(peak, point.qps);
                std::printf("telemetry %-3s c=%-3u trial %d "
                            "%9.0f req/s   p99 %8.1fus\n",
                            telemetry ? "on" : "off", kAbClients,
                            trial, point.qps, point.p99 * 1e6);
                server.stop();
            }
        }
        for (const bool telemetry : {true, false}) {
            report.add({util::strcat("serve/qps/telemetry_",
                                     telemetry ? "on" : "off"),
                        peak_by_mode[telemetry ? 0 : 1],
                        peak_by_mode[telemetry ? 0 : 1],
                        {{"clients", static_cast<double>(kAbClients)},
                         {"trials", static_cast<double>(kTrials)}},
                        "qps", /*higher_is_better=*/true});
        }
        const double overhead_pct =
            peak_by_mode[1] > 0.0
                ? (1.0 - peak_by_mode[0] / peak_by_mode[1]) * 100.0
                : 0.0;
        std::printf("telemetry overhead: %.2f%% of peak QPS "
                    "(on %.0f vs off %.0f, best of %d)\n",
                    overhead_pct, peak_by_mode[0], peak_by_mode[1],
                    kTrials);
        report.add({"serve/telemetry_overhead_pct", overhead_pct, 0.0,
                    {{"clients", static_cast<double>(kAbClients)},
                     {"trials", static_cast<double>(kTrials)}},
                    "pct"});
    }

    // int8 accuracy A/B vs fp32 on the raw embedding geometry: the
    // worst elementwise dequantization error and the worst dot-product
    // drift over a node sample (EXPERIMENTS.md carries the discussion).
    rng::Random random(99);
    double max_dot_delta = 0.0;
    for (unsigned draw = 0; draw < 4096; ++draw) {
        const auto u = static_cast<graph::NodeId>(
            random.next_index(kNodes));
        const auto v = static_cast<graph::NodeId>(
            random.next_index(kNodes));
        max_dot_delta =
            std::max(max_dot_delta,
                     static_cast<double>(
                         std::abs(fp32->dot(u, v) - int8->dot(u, v))));
    }
    report.add({"serve/quant_error/int8",
                static_cast<double>(int8->max_quant_error()), 0.0,
                {{"max_dot_delta", max_dot_delta},
                 {"dim", static_cast<double>(kDim)}},
                "delta"});
    std::printf("int8 quantization: max elem error %.3g, max dot "
                "delta %.3g\n",
                static_cast<double>(int8->max_quant_error()),
                max_dot_delta);

    // Meta lands after the measurement loops on purpose — BenchReport
    // keeps emission order independent of call order (the regression
    // test for the dropped-meta bug lives in tests/test_bench_json.cpp).
    report.set_meta("simd_isa", embed::kernels::simd_sgns_isa());
    report.set_meta("sweep", long_sweep ? "long" : "short");
    report.write("BENCH_serve.json");
    return 0;
}
