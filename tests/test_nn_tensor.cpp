/// Unit tests for the Tensor container.
#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace tgl::nn {
namespace {

TEST(Tensor, ShapeAndZeroInit)
{
    const Tensor t(2, 3);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    EXPECT_FALSE(t.empty());
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_EQ(t(r, c), 0.0f);
        }
    }
}

TEST(Tensor, DefaultIsEmpty)
{
    const Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.rows(), 0u);
}

TEST(Tensor, ElementWriteRead)
{
    Tensor t(2, 2);
    t(0, 1) = 5.0f;
    t(1, 0) = -3.0f;
    EXPECT_FLOAT_EQ(t(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(t(1, 0), -3.0f);
    EXPECT_FLOAT_EQ(t(0, 0), 0.0f);
}

TEST(Tensor, RowMajorLayout)
{
    Tensor t(2, 3);
    t(1, 2) = 9.0f;
    EXPECT_FLOAT_EQ(t.data()[5], 9.0f);
    EXPECT_FLOAT_EQ(t.row(1)[2], 9.0f);
}

TEST(Tensor, ConstructFromData)
{
    const Tensor t(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_FLOAT_EQ(t(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(t(1, 1), 4.0f);
}

TEST(Tensor, FillAndZero)
{
    Tensor t(2, 2);
    t.fill(7.0f);
    EXPECT_FLOAT_EQ(t(1, 1), 7.0f);
    t.zero();
    EXPECT_FLOAT_EQ(t(1, 1), 0.0f);
}

TEST(Tensor, AddAndAxpy)
{
    Tensor a(1, 3, {1.0f, 2.0f, 3.0f});
    const Tensor b(1, 3, {10.0f, 20.0f, 30.0f});
    a.add(b);
    EXPECT_FLOAT_EQ(a(0, 2), 33.0f);
    a.axpy(0.5f, b);
    EXPECT_FLOAT_EQ(a(0, 0), 16.0f);
}

TEST(Tensor, Scale)
{
    Tensor t(1, 2, {2.0f, -4.0f});
    t.scale(0.5f);
    EXPECT_FLOAT_EQ(t(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(t(0, 1), -2.0f);
}

TEST(Tensor, SameShape)
{
    const Tensor a(2, 3);
    const Tensor b(2, 3);
    const Tensor c(3, 2);
    EXPECT_TRUE(a.same_shape(b));
    EXPECT_FALSE(a.same_shape(c));
}

TEST(Tensor, ResizeZeroesContents)
{
    Tensor t(1, 1);
    t(0, 0) = 5.0f;
    t.resize(2, 2);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_FLOAT_EQ(t(0, 0), 0.0f);
}

TEST(Tensor, MaxAbs)
{
    const Tensor t(1, 3, {1.0f, -5.0f, 3.0f});
    EXPECT_FLOAT_EQ(t.max_abs(), 5.0f);
    EXPECT_FLOAT_EQ(Tensor{}.max_abs(), 0.0f);
}

} // namespace
} // namespace tgl::nn
