#include "util/artifact_io.hpp"

#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/retry.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <set>

#include <unistd.h>

namespace tgl::util {

namespace {

constexpr std::array<char, 4> kMagic = {'T', 'G', 'L', 'A'};
constexpr std::uint32_t kContainerVersion = 1;

const std::array<std::uint32_t, 256>&
crc_table()
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit) {
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/// Classify a failed stream operation by the errno the underlying
/// syscall left behind: interrupted/again-style failures are worth a
/// retry, everything else (ENOSPC, EIO, EROFS, ...) is terminal.
[[noreturn]] void
stream_failure(int saved_errno, const std::string& message)
{
    if (saved_errno == EINTR || saved_errno == EAGAIN ||
        saved_errno == EWOULDBLOCK || saved_errno == EBUSY) {
        throw TransientError(strcat(message, " (",
                                    std::strerror(saved_errno), ")"));
    }
    fatal(message);
}

std::array<char, ArtifactWriter::kKindSize>
pack_kind(std::string_view kind)
{
    std::array<char, ArtifactWriter::kKindSize> packed{};
    if (kind.size() > packed.size()) {
        fatal(strcat("artifact kind tag too long: '", std::string(kind),
                     "' (max ", packed.size(), " bytes)"));
    }
    std::memcpy(packed.data(), kind.data(), kind.size());
    return packed;
}

} // namespace

std::uint32_t
crc32(const void* data, std::size_t size, std::uint32_t seed)
{
    const auto& table = crc_table();
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t crc = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i) {
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    }
    return crc ^ 0xffffffffu;
}

Fingerprint&
Fingerprint::mix_bytes(const void* data, std::size_t size)
{
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        state_ ^= bytes[i];
        state_ *= 0x100000001b3ull; // FNV-1a prime
    }
    return *this;
}

Fingerprint&
Fingerprint::mix(std::string_view text)
{
    mix<std::uint64_t>(text.size());
    return mix_bytes(text.data(), text.size());
}

void
atomic_write_file(const std::string& path,
                  const std::function<void(std::ostream&)>& writer,
                  bool binary)
{
    namespace fs = std::filesystem;
    // Unique per process+call so concurrent writers to the same target
    // never clobber each other's temporaries.
    static std::atomic<std::uint64_t> counter{0};
    const std::string tmp = strcat(
        path, ".tmp.", static_cast<unsigned long>(::getpid()), ".",
        counter.fetch_add(1, std::memory_order_relaxed));

    auto discard = [&] {
        std::error_code ec;
        fs::remove(tmp, ec);
    };

    // One complete temp-write-rename cycle; retried on TransientError
    // (EINTR/EAGAIN-style flush failures, injected transient faults).
    // The writer callback is a pure serializer, so rerunning it is
    // safe, and each attempt starts from a fresh truncated temporary.
    const auto attempt = [&] {
        fault_point("artifact_io.write");
        {
            std::ios::openmode mode = std::ios::out | std::ios::trunc;
            if (binary) {
                mode |= std::ios::binary;
            }
            std::ofstream out(tmp, mode);
            if (!out) {
                fatal(strcat("cannot open for writing: ", tmp));
            }
            try {
                writer(out);
            } catch (...) {
                out.close();
                discard();
                throw;
            }
            // Flush buffered data before testing the stream so
            // deferred write failures (ENOSPC, quota) are observed
            // here, not lost when the ofstream destructor swallows
            // them.
            errno = 0;
            out.flush();
            if (!out) {
                const int saved_errno = errno;
                discard();
                stream_failure(saved_errno,
                               strcat("write failed: ", tmp,
                                      " (disk full or quota exceeded?)"));
            }
            out.close();
            if (out.fail()) {
                const int saved_errno = errno;
                discard();
                stream_failure(saved_errno, strcat("close failed: ", tmp));
            }
        }

        fault_point("artifact_io.before-rename");

        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec) {
            discard();
            fatal(strcat("cannot rename ", tmp, " -> ", path, ": ",
                         ec.message()));
        }
    };

    RetryPolicy policy;
    policy.seed = Fingerprint().mix(std::string_view(path)).value();
    try {
        retry_transient(policy, strcat("atomic write of ", path), attempt);
    } catch (...) {
        discard();
        throw;
    }
}

std::string
quarantine_artifact(const std::string& path, const std::string& why)
{
    namespace fs = std::filesystem;

    // Warn once per path: a retry loop or a second loader tripping over
    // the same corrupt artifact must not flood the log.
    static std::mutex logged_mutex;
    static std::set<std::string> logged;
    bool first = false;
    {
        std::lock_guard<std::mutex> lock(logged_mutex);
        first = logged.insert(path).second;
    }

    const auto stamp =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    const std::string target = strcat(path, ".corrupt.", stamp);
    std::error_code ec;
    fs::rename(path, target, ec);

    static const obs::Counter quarantined =
        obs::Registry::global().counter("recovery.quarantined");
    quarantined.inc();

    if (first) {
        warn(strcat("quarantined corrupt artifact ", path, " (", why,
                    ec ? strcat(") — rename failed: ", ec.message())
                       : strcat(") -> ", target)));
    }
    return ec ? std::string() : target;
}

ArtifactWriter::ArtifactWriter(std::ostream& out, std::string_view kind,
                               std::uint32_t payload_version,
                               std::uint64_t fingerprint)
    : out_(out), kind_(pack_kind(kind)),
      payload_version_(payload_version), fingerprint_(fingerprint)
{
}

void
ArtifactWriter::write_bytes(const void* data, std::size_t size)
{
    TGL_ASSERT(!finished_);
    const auto* bytes = static_cast<const char*>(data);
    payload_.insert(payload_.end(), bytes, bytes + size);
}

void
ArtifactWriter::write_string(std::string_view text)
{
    write_pod<std::uint32_t>(static_cast<std::uint32_t>(text.size()));
    write_bytes(text.data(), text.size());
}

void
ArtifactWriter::finish()
{
    TGL_ASSERT(!finished_);
    finished_ = true;

    out_.write(kMagic.data(), kMagic.size());
    auto put = [&](const auto& value) {
        out_.write(reinterpret_cast<const char*>(&value), sizeof(value));
    };
    put(kContainerVersion);
    out_.write(kind_.data(), kind_.size());
    put(payload_version_);
    put(fingerprint_);
    const std::uint64_t size = payload_.size();
    put(size);
    const std::uint32_t crc = crc32(payload_.data(), payload_.size());
    put(crc);
    out_.write(payload_.data(),
               static_cast<std::streamsize>(payload_.size()));
    out_.flush();
    if (!out_) {
        fatal("artifact write failed (stream error after flush)");
    }
}

ArtifactReader::ArtifactReader(std::istream& in,
                               std::string_view expected_kind)
{
    std::array<char, 4> magic{};
    in.read(magic.data(), magic.size());
    if (!in || magic != kMagic) {
        fatal("artifact: bad magic (not a tgl artifact file)");
    }
    auto get = [&](auto& value) {
        in.read(reinterpret_cast<char*>(&value), sizeof(value));
    };
    std::uint32_t container_version = 0;
    get(container_version);
    std::array<char, ArtifactWriter::kKindSize> kind{};
    in.read(kind.data(), kind.size());
    std::uint64_t payload_size = 0;
    get(payload_version_);
    get(fingerprint_);
    get(payload_size);
    std::uint32_t expected_crc = 0;
    get(expected_crc);
    if (!in) {
        fatal("artifact: truncated header");
    }
    if (container_version != kContainerVersion) {
        fatal(strcat("artifact: unsupported container version ",
                     container_version, " (expected ", kContainerVersion,
                     ")"));
    }
    if (kind != pack_kind(expected_kind)) {
        const auto* terminator =
            std::find(kind.begin(), kind.end(), '\0');
        const auto len =
            static_cast<std::size_t>(terminator - kind.begin());
        fatal(strcat("artifact: kind mismatch: file holds '",
                     std::string(kind.data(), len), "', expected '",
                     std::string(expected_kind), "'"));
    }

    // A corrupt size field must not drive a monster allocation and
    // std::bad_alloc; grow in bounded chunks so stream exhaustion
    // exposes the lie first.
    constexpr std::uint64_t kChunk = 1u << 20;
    std::uint64_t received = 0;
    while (received < payload_size) {
        const std::uint64_t want =
            std::min(kChunk, payload_size - received);
        payload_.resize(static_cast<std::size_t>(received + want));
        in.read(payload_.data() + received,
                static_cast<std::streamsize>(want));
        received += static_cast<std::uint64_t>(in.gcount());
        if (static_cast<std::uint64_t>(in.gcount()) != want) {
            break;
        }
    }
    if (received != payload_size) {
        fatal(strcat("artifact: truncated payload (expected ",
                     payload_size, " bytes, got ", received, ")"));
    }
    const std::uint32_t actual_crc =
        crc32(payload_.data(), payload_.size());
    if (actual_crc != expected_crc) {
        fatal(strcat("artifact: checksum mismatch (stored ", expected_crc,
                     ", computed ", actual_crc,
                     ") — file is corrupt"));
    }
}

void
ArtifactReader::read_bytes(void* data, std::size_t size)
{
    if (size > remaining()) {
        fatal(strcat("artifact: payload overrun (requested ", size,
                     " bytes, ", remaining(), " remain)"));
    }
    std::memcpy(data, payload_.data() + pos_, size);
    pos_ += size;
}

std::string
ArtifactReader::read_string()
{
    const auto size = read_pod<std::uint32_t>();
    std::string text(size, '\0');
    read_bytes(text.data(), size);
    return text;
}

} // namespace tgl::util
