/// @file
/// Dense row-major float matrix — the only tensor shape the paper's
/// classifiers need (batch x features). Deliberately 2-D: the FNNs of
/// SIV-B are pure matmul + elementwise stacks, and a minimal tensor
/// keeps the GEMM substrate honest and testable.
#pragma once

#include "util/error.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace tgl::nn {

/// (rows x cols) row-major float matrix.
class Tensor
{
  public:
    Tensor() = default;

    /// Zero-initialized matrix.
    Tensor(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    /// Matrix with given contents (size must equal rows*cols).
    Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        TGL_ASSERT(data_.size() == rows_ * cols_);
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& operator()(std::size_t r, std::size_t c)
    {
        TGL_DASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float operator()(std::size_t r, std::size_t c) const
    {
        TGL_DASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /// Row r as a span.
    std::span<float> row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }

    std::span<const float> row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /// Set every element to value.
    void fill(float value);

    /// Set every element to zero.
    void zero() { fill(0.0f); }

    /// this += other (shapes must match).
    void add(const Tensor& other);

    /// this += alpha * other (shapes must match).
    void axpy(float alpha, const Tensor& other);

    /// this *= alpha.
    void scale(float alpha);

    /// Shape equality.
    bool same_shape(const Tensor& other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

    /// Resize (contents become zero).
    void resize(std::size_t rows, std::size_t cols);

    /// Largest absolute element (0 for empty).
    float max_abs() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace tgl::nn
