#include "util/fault_injection.hpp"

#include "obs/metrics.hpp"
#include "rng/splitmix64.hpp"
#include "util/cancellation.hpp"
#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace tgl::util {

namespace {

enum class Kind : std::uint8_t { kError, kTransient, kDelay, kCorrupt };

struct Site
{
    Kind kind = Kind::kError;
    std::uint64_t nth = 0; ///< 0 = trigger on every hit
    double probability = 1.0;
    std::chrono::milliseconds delay{0};
    rng::SplitMix64 rng{0};
    std::uint64_t hits = 0;
    bool active = true;
    bool legacy = false;
    obs::Counter counter;
};

// The fast path (nothing armed) must stay a single relaxed load; the
// slow path takes a mutex so configure/hit races stay well-defined.
std::atomic<std::uint64_t> g_active_sites{0};
std::atomic<std::uint64_t> g_generation{0};
std::mutex g_mutex;
std::map<std::string, Site> g_sites; // guarded by g_mutex

std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view text, char separator)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find(separator, begin);
        if (end == std::string_view::npos) {
            parts.emplace_back(text.substr(begin));
            break;
        }
        parts.emplace_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return parts;
}

[[noreturn]] void
spec_error(const std::string& entry, const std::string& why)
{
    fatal(strcat("invalid failpoint spec entry \"", entry, "\": ", why,
                 " (grammar: site=action[:param][@N]; actions error, "
                 "error:transient, delay:<N>ms, corrupt; "
                 "triggers @N, p=<float>)"));
}

bool
parse_uint(const std::string& text, std::uint64_t& value)
{
    if (text.empty()) {
        return false;
    }
    value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') {
            return false;
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
}

/// Parse one "site=action[:param][@N]" entry into a named Site.
std::pair<std::string, Site>
parse_entry(const std::string& raw, std::uint64_t seed)
{
    const std::string entry = trim(raw);
    const std::size_t equals = entry.find('=');
    if (equals == std::string::npos || equals == 0) {
        spec_error(entry, "expected site=action");
    }
    const std::string name = trim(entry.substr(0, equals));
    std::string action = trim(entry.substr(equals + 1));
    if (name.empty() || action.empty()) {
        spec_error(entry, "empty site or action");
    }

    Site site;
    const std::size_t at = action.rfind('@');
    if (at != std::string::npos) {
        if (!parse_uint(action.substr(at + 1), site.nth) ||
            site.nth == 0) {
            spec_error(entry, "@N needs a positive integer");
        }
        action = trim(action.substr(0, at));
    }

    const std::vector<std::string> tokens = split(action, ':');
    const std::string& verb = tokens.front();
    if (verb == "error") {
        site.kind = Kind::kError;
    } else if (verb == "delay") {
        site.kind = Kind::kDelay;
    } else if (verb == "corrupt") {
        site.kind = Kind::kCorrupt;
    } else {
        spec_error(entry, strcat("unknown action \"", verb, "\""));
    }

    bool have_duration = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string param = trim(tokens[i]);
        if (param == "transient") {
            if (site.kind != Kind::kError) {
                spec_error(entry, "\"transient\" only modifies error");
            }
            site.kind = Kind::kTransient;
        } else if (param.rfind("p=", 0) == 0) {
            char* tail = nullptr;
            const std::string value = param.substr(2);
            site.probability = std::strtod(value.c_str(), &tail);
            if (value.empty() || tail == nullptr || *tail != '\0' ||
                !(site.probability >= 0.0 && site.probability <= 1.0)) {
                spec_error(entry, "p= needs a probability in [0, 1]");
            }
        } else if (param.size() > 2 &&
                   param.compare(param.size() - 2, 2, "ms") == 0) {
            std::uint64_t value = 0;
            if (!parse_uint(param.substr(0, param.size() - 2), value)) {
                spec_error(entry, "delay needs \"<integer>ms\"");
            }
            site.delay = std::chrono::milliseconds(value);
            have_duration = true;
        } else {
            spec_error(entry, strcat("unknown parameter \"", param, "\""));
        }
    }
    if (site.kind == Kind::kDelay && !have_duration) {
        spec_error(entry, "delay needs a duration, e.g. delay:50ms");
    }
    if (site.kind != Kind::kDelay && have_duration) {
        spec_error(entry, "a duration only modifies delay");
    }

    site.rng = rng::SplitMix64(rng::mix_seed(seed, fnv1a(name)));
    return {name, site};
}

/// Replace the registry contents under the lock and refresh the
/// fast-path gate + generation.
void
install(std::map<std::string, Site>&& sites)
{
    std::uint64_t active = 0;
    for (auto& [name, site] : sites) {
        site.counter = obs::Registry::global().counter(
            strcat("failpoint.", name, ".hits"));
        if (site.active) {
            ++active;
        }
    }
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sites = std::move(sites);
    g_active_sites.store(active, std::memory_order_relaxed);
    g_generation.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

FailpointAction
fault_point(const char* site)
{
    if (g_active_sites.load(std::memory_order_relaxed) == 0) {
        return FailpointAction::kNone;
    }

    Kind kind;
    std::chrono::milliseconds delay{0};
    std::uint64_t generation = 0;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        const auto it = g_sites.find(site);
        if (it == g_sites.end() || !it->second.active) {
            return FailpointAction::kNone;
        }
        Site& armed = it->second;
        ++armed.hits;
        armed.counter.inc();

        bool fire;
        if (armed.nth != 0) {
            // Nth-hit trigger: fire exactly once, then deactivate so
            // later hits cost the fast-path load only.
            fire = armed.hits == armed.nth;
            if (armed.hits >= armed.nth) {
                armed.active = false;
                g_active_sites.fetch_sub(1, std::memory_order_relaxed);
            }
        } else if (armed.probability < 1.0) {
            const double uniform =
                static_cast<double>(armed.rng.next() >> 11) * 0x1.0p-53;
            fire = uniform < armed.probability;
        } else {
            fire = true;
        }
        if (!fire) {
            return FailpointAction::kNone;
        }

        kind = armed.kind;
        delay = armed.delay;
        generation = g_generation.load(std::memory_order_relaxed);
        if (kind == Kind::kError) {
            throw FaultInjected(strcat("injected fault at ", site));
        }
        if (kind == Kind::kTransient) {
            throw TransientError(
                strcat("injected transient fault at ", site));
        }
        if (kind == Kind::kCorrupt) {
            return FailpointAction::kCorrupt;
        }
    }

    // kDelay: sleep outside the lock, in slices, so cancellation or a
    // reconfiguration (the watchdog's recovery path clears failpoints)
    // cuts a simulated stall short instead of wedging the worker.
    constexpr std::chrono::milliseconds kSlice{5};
    std::chrono::milliseconds left = delay;
    while (left.count() > 0) {
        if (cancellation_requested() ||
            g_generation.load(std::memory_order_relaxed) != generation) {
            break;
        }
        const std::chrono::milliseconds nap = std::min(left, kSlice);
        std::this_thread::sleep_for(nap);
        left -= nap;
    }
    return FailpointAction::kNone;
}

void
FailpointRegistry::configure(const std::string& spec, std::uint64_t seed)
{
    std::map<std::string, Site> sites;
    for (const std::string& raw : split(spec, ';')) {
        if (trim(raw).empty()) {
            continue;
        }
        auto [name, site] = parse_entry(raw, seed);
        sites[name] = site;
    }
    install(std::move(sites));
}

void
FailpointRegistry::configure_from_env()
{
    const char* spec = std::getenv("TGL_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') {
        return;
    }
    std::uint64_t seed = 0;
    if (const char* seed_text = std::getenv("TGL_FAILPOINTS_SEED")) {
        seed = std::strtoull(seed_text, nullptr, 10);
    }
    configure(spec, seed);
    inform(strcat("failpoints armed from TGL_FAILPOINTS: ", spec,
                  " (seed ", seed, ")"));
}

void
FailpointRegistry::clear()
{
    install({});
}

bool
FailpointRegistry::active()
{
    return g_active_sites.load(std::memory_order_relaxed) != 0;
}

std::uint64_t
FailpointRegistry::hits(const std::string& site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.hits;
}

std::vector<std::string>
FailpointRegistry::armed_sites()
{
    std::vector<std::string> names;
    std::lock_guard<std::mutex> lock(g_mutex);
    for (const auto& [name, site] : g_sites) {
        if (site.active) {
            names.push_back(name);
        }
    }
    return names; // std::map keeps them sorted
}

std::uint64_t
FailpointRegistry::generation()
{
    return g_generation.load(std::memory_order_relaxed);
}

void
FaultInjector::arm(const std::string& site, std::uint64_t nth)
{
    TGL_ASSERT(nth >= 1);
    Site armed;
    armed.kind = Kind::kError;
    armed.nth = nth;
    armed.legacy = true;
    armed.counter =
        obs::Registry::global().counter(strcat("failpoint.", site, ".hits"));

    std::lock_guard<std::mutex> lock(g_mutex);
    // Re-arming replaces any previous legacy site (configure()d chaos
    // schedules are left alone — tests may layer the two).
    for (auto it = g_sites.begin(); it != g_sites.end();) {
        if (it->second.legacy) {
            if (it->second.active) {
                g_active_sites.fetch_sub(1, std::memory_order_relaxed);
            }
            it = g_sites.erase(it);
        } else {
            ++it;
        }
    }
    g_sites[site] = armed;
    g_active_sites.fetch_add(1, std::memory_order_relaxed);
    g_generation.fetch_add(1, std::memory_order_relaxed);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    for (auto it = g_sites.begin(); it != g_sites.end();) {
        if (it->second.legacy) {
            if (it->second.active) {
                g_active_sites.fetch_sub(1, std::memory_order_relaxed);
            }
            it = g_sites.erase(it);
        } else {
            ++it;
        }
    }
    g_generation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::hits()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    for (const auto& [name, site] : g_sites) {
        if (site.legacy) {
            return site.hits;
        }
    }
    return 0;
}

FailAfterStreambuf::int_type
FailAfterStreambuf::overflow(int_type ch)
{
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
        return traits_type::not_eof(ch);
    }
    if (remaining_ == 0) {
        return traits_type::eof();
    }
    --remaining_;
    return inner_->sputc(traits_type::to_char_type(ch));
}

std::streamsize
FailAfterStreambuf::xsputn(const char* data, std::streamsize count)
{
    if (count <= 0) {
        return 0;
    }
    const auto want = static_cast<std::size_t>(count);
    const std::size_t granted = std::min(remaining_, want);
    const std::streamsize forwarded = inner_->sputn(
        data, static_cast<std::streamsize>(granted));
    // Clamp against a misbehaving inner buffer claiming more than it
    // was handed: remaining_ is unsigned, so an unchecked subtraction
    // would wrap the exhausted budget back open.
    const std::size_t accepted = std::min(
        granted,
        static_cast<std::size_t>(std::max<std::streamsize>(forwarded, 0)));
    remaining_ -= accepted;
    // Returning fewer bytes than requested makes the ostream set
    // badbit — exactly how a full disk surfaces through iostreams.
    return static_cast<std::streamsize>(accepted);
}

} // namespace tgl::util
