#include "util/retry.hpp"

#include "obs/metrics.hpp"
#include "rng/splitmix64.hpp"
#include "util/logging.hpp"

#include <algorithm>
#include <cmath>

namespace tgl::util {

std::vector<std::chrono::microseconds>
backoff_schedule(const RetryPolicy& policy)
{
    TGL_ASSERT(policy.max_attempts >= 1);
    TGL_ASSERT(policy.multiplier >= 1.0);
    TGL_ASSERT(policy.jitter >= 0.0 && policy.jitter < 1.0);

    std::vector<std::chrono::microseconds> schedule;
    schedule.reserve(policy.max_attempts - 1);
    rng::SplitMix64 rng(rng::mix_seed(policy.seed, 0x7e747279ULL));
    double wait = static_cast<double>(policy.initial_backoff.count());
    const double cap = static_cast<double>(policy.max_backoff.count());
    std::int64_t budget = policy.max_total_backoff.count();
    for (unsigned i = 0; i + 1 < policy.max_attempts; ++i) {
        const double uniform =
            static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
        const double factor =
            1.0 + policy.jitter * (2.0 * uniform - 1.0);
        const double jittered = std::min(wait, cap) * factor;
        const std::int64_t micros = std::min<std::int64_t>(
            budget, static_cast<std::int64_t>(std::llround(jittered)));
        schedule.emplace_back(std::max<std::int64_t>(micros, 0));
        budget -= schedule.back().count();
        wait *= policy.multiplier;
    }
    return schedule;
}

namespace detail {

void
note_transient(std::string_view what, const char* error,
               unsigned attempt, unsigned max_attempts, bool will_retry)
{
    static const obs::Counter failures =
        obs::Registry::global().counter("retry.transient_failures");
    static const obs::Counter giveups =
        obs::Registry::global().counter("retry.giveups");
    failures.inc();
    if (!will_retry) {
        giveups.inc();
    }
    warn(strcat("transient failure in ", what, " (attempt ", attempt,
                "/", max_attempts, "): ", error,
                will_retry ? " — backing off and retrying"
                           : " — retry budget exhausted"));
}

} // namespace detail

} // namespace tgl::util
