#include "embed/embedding.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace tgl::embed {

double
Embedding::cosine(graph::NodeId u, graph::NodeId v) const
{
    TGL_ASSERT(u < num_nodes_ && v < num_nodes_);
    const auto a = row(u);
    const auto b = row(v);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (unsigned i = 0; i < dim_; ++i) {
        dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
        nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
    }
    if (na <= 0.0 || nb <= 0.0) {
        return 0.0;
    }
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<graph::NodeId>
Embedding::nearest(graph::NodeId u, unsigned k) const
{
    std::vector<std::pair<double, graph::NodeId>> scored;
    scored.reserve(num_nodes_);
    for (graph::NodeId v = 0; v < num_nodes_; ++v) {
        if (v == u) {
            continue;
        }
        scored.emplace_back(cosine(u, v), v);
    }
    const std::size_t keep = std::min<std::size_t>(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(keep),
                      scored.end(),
                      [](const auto& a, const auto& b) {
                          return a.first > b.first;
                      });
    std::vector<graph::NodeId> result;
    result.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
        result.push_back(scored[i].second);
    }
    return result;
}

void
Embedding::save(std::ostream& out) const
{
    out << num_nodes_ << ' ' << dim_ << '\n';
    for (graph::NodeId u = 0; u < num_nodes_; ++u) {
        const auto r = row(u);
        for (unsigned i = 0; i < dim_; ++i) {
            out << r[i] << (i + 1 == dim_ ? '\n' : ' ');
        }
    }
}

Embedding
Embedding::load(std::istream& in)
{
    graph::NodeId num_nodes = 0;
    unsigned dim = 0;
    if (!(in >> num_nodes >> dim)) {
        util::fatal("Embedding::load: malformed header");
    }
    Embedding embedding(num_nodes, dim);
    for (graph::NodeId u = 0; u < num_nodes; ++u) {
        auto r = embedding.row(u);
        for (unsigned i = 0; i < dim; ++i) {
            if (!(in >> r[i])) {
                util::fatal(util::strcat("Embedding::load: truncated at row ",
                                         u));
            }
        }
    }
    return embedding;
}

void
Embedding::save_file(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        util::fatal(util::strcat("cannot open for writing: ", path));
    }
    save(out);
}

Embedding
Embedding::load_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    return load(in);
}

} // namespace tgl::embed
