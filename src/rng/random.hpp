/// @file
/// High-level random draws on top of Xoshiro256: uniform ints/reals,
/// Bernoulli, Gaussian, exponential, shuffling, and sampling without
/// replacement. All distributions are implemented directly (no libstdc++
/// distribution objects) so results are identical across standard
/// library versions — important for reproducible tests and benchmarks.
#pragma once

#include "rng/xoshiro256.hpp"

#include <cstdint>
#include <vector>

namespace tgl::rng {

/// Seedable random source with the draws tgl needs.
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x2545f4914f6cdd1dULL)
        : engine_(seed)
    {
    }

    /// Underlying bit generator (for std algorithms that want one).
    Xoshiro256& engine() { return engine_; }

    /// Raw 64 random bits.
    std::uint64_t bits() { return engine_(); }

    /// Uniform integer in [0, bound); bound must be > 0.
    std::uint64_t next_index(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_int(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform double in [lo, hi).
    double next_double(double lo, double hi);

    /// Uniform float in [0, 1).
    float next_float();

    /// True with probability p.
    bool next_bernoulli(double p);

    /// Standard normal via Box–Muller (cached second value).
    double next_gaussian();

    /// Exponential with the given rate (> 0).
    double next_exponential(double rate);

    /// Fisher–Yates shuffle.
    template <typename T>
    void
    shuffle(std::vector<T>& values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(next_index(i));
            std::swap(values[i - 1], values[j]);
        }
    }

    /// k distinct indices drawn uniformly from [0, n) (Floyd's method).
    std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                          std::uint64_t k);

  private:
    Xoshiro256 engine_;
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace tgl::rng
