/// @file
/// Deterministic fault injection for crash-path testing.
///
/// Production code marks interesting failure boundaries with
/// fault_point("site"); the call is a single relaxed atomic load unless
/// a test has armed that site via FaultInjector, in which case the Nth
/// hit throws FaultInjected. This is how the checkpoint/resume tests
/// "kill" a pipeline between phases without spawning processes.
///
/// FailAfterOStream complements it on the I/O side: a stream whose
/// buffer accepts a byte budget and then fails every write — a
/// deterministic stand-in for ENOSPC/quota failures, used to prove the
/// save paths actually report stream errors instead of dropping them.
#pragma once

#include "util/error.hpp"

#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>

namespace tgl::util {

/// Exception thrown by an armed fault point. Derives from Error so
/// generic handlers recover, but is distinct so tests can tell an
/// injected fault from a real failure.
class FaultInjected : public Error
{
  public:
    explicit FaultInjected(const std::string& what) : Error(what) {}
};

/// Trigger point. No-op unless @p site is armed; then throws
/// FaultInjected on the Nth matching hit.
void fault_point(const char* site);

/// Process-global switchboard arming fault_point sites (test-only).
class FaultInjector
{
  public:
    /// Arm @p site: the @p nth future hit throws (1 = next hit).
    /// Re-arming replaces any previous site. Auto-disarms after firing.
    static void arm(const std::string& site, std::uint64_t nth = 1);

    /// Remove any armed site.
    static void disarm();

    /// Hits recorded against the armed site since the last arm().
    static std::uint64_t hits();
};

/// streambuf decorator that forwards up to @p limit bytes to the
/// wrapped buffer, then reports failure on every subsequent write.
class FailAfterStreambuf : public std::streambuf
{
  public:
    FailAfterStreambuf(std::streambuf* inner, std::size_t limit)
        : inner_(inner), remaining_(limit)
    {
    }

  protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* data,
                           std::streamsize count) override;

  private:
    std::streambuf* inner_;
    std::size_t remaining_;
};

/// Output stream that starts failing after @p limit bytes (writes up to
/// the limit are forwarded to @p target).
class FailAfterOStream : public std::ostream
{
  public:
    FailAfterOStream(std::ostream& target, std::size_t limit)
        : std::ostream(nullptr), buffer_(target.rdbuf(), limit)
    {
        rdbuf(&buffer_);
    }

  private:
    FailAfterStreambuf buffer_;
};

} // namespace tgl::util
