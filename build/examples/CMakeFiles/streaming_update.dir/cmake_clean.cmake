file(REMOVE_RECURSE
  "CMakeFiles/streaming_update.dir/streaming_update.cpp.o"
  "CMakeFiles/streaming_update.dir/streaming_update.cpp.o.d"
  "streaming_update"
  "streaming_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
