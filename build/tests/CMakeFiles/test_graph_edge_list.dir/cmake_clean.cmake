file(REMOVE_RECURSE
  "CMakeFiles/test_graph_edge_list.dir/test_graph_edge_list.cpp.o"
  "CMakeFiles/test_graph_edge_list.dir/test_graph_edge_list.cpp.o.d"
  "test_graph_edge_list"
  "test_graph_edge_list.pdb"
  "test_graph_edge_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_edge_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
