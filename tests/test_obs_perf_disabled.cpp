/// Forced-degradation tests for obs/perf_events: with
/// TGL_PERF_DISABLE=1 the probe must report unavailable and every
/// scope must behave exactly as if counters were off — same pipeline
/// results, no perf.* metrics, no crashes — regardless of the
/// requested mode. The probe result is latched process-wide
/// (std::call_once), so this lives in its own binary with a custom
/// main() that sets the env var before any test can trigger the probe.
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"

#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "walk/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace tgl::obs {
namespace {

TEST(PerfDisabled, ProbeReportsTheEnvOverride)
{
    set_perf_mode(PerfMode::kOn);
    const PerfAvailability& availability = perf_availability();
    EXPECT_FALSE(availability.available);
    EXPECT_NE(availability.reason.find("TGL_PERF_DISABLE"),
              std::string::npos)
        << availability.reason;
    EXPECT_FALSE(perf_active());
}

TEST(PerfDisabled, ScopesAreInertUnderEveryMode)
{
    for (const PerfMode mode :
         {PerfMode::kOff, PerfMode::kOn, PerfMode::kAuto}) {
        set_perf_mode(mode);
        PerfScope scope("disabled_phase");
        EXPECT_FALSE(scope.active());
        EXPECT_FALSE(scope.sample().valid);
        EXPECT_FALSE(scope.close().valid);
    }
    EXPECT_FALSE(perf_phase_total("disabled_phase").valid);
    EXPECT_TRUE(perf_phase_totals().empty());
}

TEST(PerfDisabled, RankScopesAndRawSetsAreInert)
{
    set_perf_mode(PerfMode::kOn);
    PerfRankScopes scopes("disabled_ranked", 4);
    scopes.ensure(0);
    EXPECT_FALSE(scopes.close().valid);
    RawCounterSet raw({{1, 1, "task_clock"}});
    EXPECT_FALSE(raw.active());
    EXPECT_TRUE(raw.read_scaled().empty());
}

/// The acceptance property: a counters-requested run must produce
/// byte-identical results to a counters-off run — degradation may
/// drop the perf.* metrics, never change behavior.
TEST(PerfDisabled, WalkResultsMatchCountersOffExactly)
{
    const auto edges = gen::generate_erdos_renyi(
        {.num_nodes = 500, .num_edges = 4000, .seed = 7});
    const auto graph = graph::GraphBuilder::build(edges);
    walk::WalkConfig config;
    config.walks_per_node = 4;
    config.max_length = 5;
    config.seed = 7;

    set_perf_mode(PerfMode::kOff);
    const walk::Corpus off = walk::generate_walks(graph, config);
    set_perf_mode(PerfMode::kOn); // degraded: must change nothing
    const walk::Corpus on = walk::generate_walks(graph, config);

    EXPECT_EQ(off.tokens(), on.tokens());
    EXPECT_EQ(off.offsets(), on.offsets());
}

TEST(PerfDisabled, NoPerfMetricsEverReachTheRegistry)
{
    set_perf_mode(PerfMode::kOn);
    {
        PerfScope scope("leak_check");
        TraceSession session;
        session.start();
        { Span span("span.with.perf", "leak_check"); }
        session.stop();
    }
    for (const MetricValue& metric :
         Registry::global().snapshot().metrics) {
        EXPECT_NE(metric.name.rfind("perf.", 0), 0u)
            << "unexpected metric " << metric.name;
    }
}

} // namespace
} // namespace tgl::obs

int
main(int argc, char** argv)
{
    // Before InitGoogleTest and before anything can run the one-shot
    // probe — this is the whole reason for the custom main().
    ::setenv("TGL_PERF_DISABLE", "1", 1);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
