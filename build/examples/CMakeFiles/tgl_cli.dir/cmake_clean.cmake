file(REMOVE_RECURSE
  "CMakeFiles/tgl_cli.dir/tgl_cli.cpp.o"
  "CMakeFiles/tgl_cli.dir/tgl_cli.cpp.o.d"
  "tgl_cli"
  "tgl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
