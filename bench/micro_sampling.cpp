/// @file
/// Micro-benchmarks of the sampling substrate: PRNG throughput,
/// alias vs CDF tables, one-pass vs two-pass transient sampling, and
/// the full softmax transition draw at varying neighborhood sizes
/// (the inner loop that makes the walk kernel compute-bound, Eq. 1).
///
/// Besides the google-benchmark console suite, the softmax-draw A/B
/// (direct exp-scan vs the prefix-CDF cache) is measured by a
/// dedicated harness and written to BENCH_sampling.json — same schema
/// as micro_walk's BENCH_walk.json (bench_json.hpp).
#include "bench_json.hpp"
#include "graph/builder.hpp"
#include "rng/alias_table.hpp"
#include "rng/discrete_sampler.hpp"
#include "util/timer.hpp"
#include "walk/transition_cache.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace tgl;

void
BM_Xoshiro(benchmark::State& state)
{
    rng::Xoshiro256 engine(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine());
    }
}

BENCHMARK(BM_Xoshiro);

void
BM_NextIndex(benchmark::State& state)
{
    rng::Random random(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(random.next_index(12345));
    }
}

BENCHMARK(BM_NextIndex);

std::vector<double>
skewed_weights(std::size_t n)
{
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
        weights[i] = 1.0 / static_cast<double>(i + 1);
    }
    return weights;
}

void
BM_AliasTableSample(benchmark::State& state)
{
    const rng::AliasTable table(
        skewed_weights(static_cast<std::size_t>(state.range(0))));
    rng::Random random(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.sample(random));
    }
}

BENCHMARK(BM_AliasTableSample)->Arg(16)->Arg(1024)->Arg(65536);

void
BM_DiscreteSamplerSample(benchmark::State& state)
{
    const rng::DiscreteSampler sampler(
        skewed_weights(static_cast<std::size_t>(state.range(0))));
    rng::Random random(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sampler.sample(random));
    }
}

BENCHMARK(BM_DiscreteSamplerSample)->Arg(16)->Arg(1024)->Arg(65536);

void
BM_OnePassTransient(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Random random(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng::sample_weighted_one_pass(
            n, [](std::size_t i) { return static_cast<double>(i + 1); },
            random));
    }
}

BENCHMARK(BM_OnePassTransient)->Arg(4)->Arg(32)->Arg(256);

void
BM_TwoPassTransient(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Random random(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng::sample_weighted_two_pass(
            n, [](std::size_t i) { return static_cast<double>(i + 1); },
            random));
    }
}

BENCHMARK(BM_TwoPassTransient)->Arg(4)->Arg(32)->Arg(256);

std::vector<graph::Neighbor>
neighborhood(std::size_t n)
{
    std::vector<graph::Neighbor> result(n);
    for (std::size_t i = 0; i < n; ++i) {
        result[i] = {static_cast<graph::NodeId>(i),
                     static_cast<double>(i) / static_cast<double>(n)};
    }
    return result;
}

void
run_transition(benchmark::State& state, walk::TransitionKind kind)
{
    const auto candidates =
        neighborhood(static_cast<std::size_t>(state.range(0)));
    rng::Random random(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(walk::sample_transition(
            candidates, 0.0, 1.0, kind, random));
    }
}

void
BM_TransitionUniform(benchmark::State& state)
{
    run_transition(state, walk::TransitionKind::kUniform);
}

void
BM_TransitionSoftmax(benchmark::State& state)
{
    run_transition(state, walk::TransitionKind::kExponential);
}

void
BM_TransitionLinear(benchmark::State& state)
{
    run_transition(state, walk::TransitionKind::kLinear);
}

BENCHMARK(BM_TransitionUniform)->Arg(4)->Arg(32)->Arg(256);
BENCHMARK(BM_TransitionSoftmax)->Arg(4)->Arg(32)->Arg(256);
BENCHMARK(BM_TransitionLinear)->Arg(4)->Arg(32)->Arg(256);

/// Single-draw A/B of the two softmax samplers on a star vertex of
/// degree @p n, best-of-3 over @p draws draws per rep.
void
measure_transition_draw(std::size_t n, walk::TransitionKind kind,
                        std::vector<bench::BenchEntry>& entries)
{
    graph::EdgeList edges;
    for (std::size_t i = 0; i < n; ++i) {
        edges.add(0, static_cast<graph::NodeId>(i + 1),
                  static_cast<double>(i) / static_cast<double>(n));
    }
    const auto graph = graph::GraphBuilder::build(edges);
    const walk::TransitionCache cache =
        walk::TransitionCache::build(graph, kind);
    const auto candidates = graph.out_neighbors(0);
    const double rate = graph.time_range();

    constexpr int kDraws = 200000;
    constexpr int kReps = 3;
    double direct = 1e300, cached = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        rng::Random random(rep + 1);
        util::Timer timer;
        for (int i = 0; i < kDraws; ++i) {
            benchmark::DoNotOptimize(walk::sample_transition(
                candidates, 0.0, rate, kind, random));
        }
        direct = std::min(direct, timer.seconds());

        timer.reset();
        for (int i = 0; i < kDraws; ++i) {
            benchmark::DoNotOptimize(
                cache.sample(graph, 0, candidates, 0.0, random));
        }
        cached = std::min(cached, timer.seconds());
    }
    const double speedup = cached > 0.0 ? direct / cached : 0.0;
    const std::string base = std::string("sampling/") +
                             walk::transition_name(kind) + "/d" +
                             std::to_string(n);
    entries.push_back({base + "/direct", direct,
                       direct > 0.0 ? kDraws / direct : 0.0,
                       {{"degree", static_cast<double>(n)}}});
    entries.push_back({base + "/cached", cached,
                       cached > 0.0 ? kDraws / cached : 0.0,
                       {{"degree", static_cast<double>(n)},
                        {"speedup_vs_direct", speedup}}});
    std::printf("%-22s direct %8.1f ns/draw | cached %8.1f ns/draw | "
                "speedup %5.2fx\n",
                base.c_str(), direct * 1e9 / kDraws,
                cached * 1e9 / kDraws, speedup);
}

void
run_sampling_comparison()
{
    std::printf("\n--- prefix-CDF draw vs direct exp-scan (per-draw "
                "cost by degree) ---\n");
    std::vector<bench::BenchEntry> entries;
    for (const walk::TransitionKind kind :
         {walk::TransitionKind::kExponential,
          walk::TransitionKind::kExponentialDecay,
          walk::TransitionKind::kLinear}) {
        for (const std::size_t degree : {4u, 32u, 256u}) {
            measure_transition_draw(degree, kind, entries);
        }
    }
    bench::write_bench_json("BENCH_sampling.json", "sampling", entries);
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    run_sampling_comparison();
    return 0;
}
