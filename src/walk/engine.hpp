/// @file
/// The temporal random walk engine — Algorithm 1 of the paper.
///
/// For every vertex v and every walk index k < K, a walker starts at v
/// with clock t = 0 (the earliest normalized timestamp) and repeatedly
/// (1) finds the temporally-valid neighborhood N_u(t), (2) samples the
/// next edge by the configured transition probability, (3) advances its
/// clock to the chosen edge's timestamp — for at most N steps or until
/// N_u(t) is empty. The middle loop (over vertices) is parallelized,
/// matching the paper's empirically best choice (SV-A), with dynamic
/// chunk scheduling to absorb the degree/timestamp load imbalance.
///
/// Determinism: every (k, v) pair derives its own RNG stream from the
/// base seed, so the corpus is bit-identical for any thread count.
#pragma once

#include "graph/temporal_graph.hpp"
#include "walk/config.hpp"
#include "walk/corpus.hpp"
#include "walk/transition.hpp"
#include "walk/transition_cache.hpp"

#include <cstdint>

namespace tgl::walk {

/// Aggregate execution profile of one generate() call, feeding the
/// instruction-mix (Fig. 9) and stall (Fig. 11) models.
struct WalkProfile
{
    std::uint64_t walks_started = 0;
    std::uint64_t walks_kept = 0;      ///< >= min_walk_tokens
    std::uint64_t steps_taken = 0;     ///< edges traversed
    std::uint64_t dead_ends = 0;       ///< empty temporal neighborhood
    std::uint64_t candidates_scanned = 0; ///< neighbor records examined
    std::uint64_t cached_steps = 0;    ///< steps drawn via the cache
    std::uint64_t batched_steps = 0;   ///< steps advanced by the SIMD
                                       ///< batch kernel (walk/batch.hpp)
    TransitionCost transition_cost;
};

/// Generate the temporal walk corpus for a graph.
///
/// @param graph    time-sorted CSR temporal graph
/// @param config   walk hyperparameters (K, N, transition, seed, ...)
/// @param profile  optional execution profile accumulator
/// Walks appear in (walk-index, vertex) order regardless of threading.
/// When config.transition_cache resolves on (see use_transition_cache)
/// a prefix-CDF cache is built internally; its build time is part of
/// the walk phase.
Corpus generate_walks(const graph::TemporalGraph& graph,
                      const WalkConfig& config,
                      WalkProfile* profile = nullptr);

/// Same, but the caller supplies the transition cache (e.g. one
/// restored from a checkpoint); pass nullptr to force the direct
/// sampler regardless of config.transition_cache. A non-null cache
/// must have been built for @p graph and config.transition.
Corpus generate_walks(const graph::TemporalGraph& graph,
                      const WalkConfig& config,
                      const TransitionCache* cache, WalkProfile* profile);

/// Number of walk slots one full generation covers: K × |V| for both
/// start policies (the corpus budget is policy-independent). Slot i is
/// walk i / |V| of vertex i % |V| under the node-start policy and one
/// uniformly drawn temporal edge otherwise; either way slot i seeds its
/// RNG stream as mix_seed(seed, i).
std::size_t total_walk_slots(const graph::TemporalGraph& graph,
                             const WalkConfig& config);

/// Contiguous slot range [begin, end) — the unit of sharded generation.
struct SlotRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/// Slot range of shard @p index out of @p num_shards, distributing
/// @p total_slots as evenly as possible (shard sizes differ by <= 1).
SlotRange walk_shard_range(std::size_t total_slots,
                           std::size_t num_shards, std::size_t index);

/// Expected tokens per walk for pre-sizing corpus storage. Real
/// temporal walks terminate early (Fig. 4: most are 1-5 tokens), so
/// this caps the optimistic max_length+1 estimate instead of reserving
/// the worst case.
std::size_t expected_tokens_per_walk(const WalkConfig& config);

/// Serially generate the corpus shard covering @p slots. Per-slot RNG
/// seeding matches generate_walks, so concatenating every shard of a
/// partition in ascending index order reproduces the sequential corpus
/// bit-for-bit. Unlike generate_walks this emits NO registry metrics —
/// the overlap layer folds per-shard profiles and reports once via
/// report_walk_metrics.
Corpus generate_walk_shard(const graph::TemporalGraph& graph,
                           const WalkConfig& config,
                           const TransitionCache* cache, SlotRange slots,
                           WalkProfile* profile = nullptr);

/// Fold @p from into @p into (all counters, including walks_kept).
void accumulate_profile(WalkProfile& into, const WalkProfile& from);

/// Emit the walk.* registry counters for one completed walk phase.
void report_walk_metrics(const WalkProfile& totals);

} // namespace tgl::walk
