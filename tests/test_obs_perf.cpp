/// Unit tests for obs/perf_events (hardware counters), the perf-aware
/// trace spans, and the getrusage process gauges.
///
/// The syscall-backed tests cannot assume a PMU: CI containers hide
/// hardware events and sometimes the whole syscall. They therefore
/// GTEST_SKIP when perf_availability() reports the host refused, and
/// the deterministic parts (mode parsing, sample math, span-arg
/// rendering, JSON escaping) run everywhere. The forced-degradation
/// path has its own binary (test_obs_perf_disabled) because the
/// TGL_PERF_DISABLE probe result is latched process-wide.
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/process_stats.hpp"
#include "obs/trace.hpp"

#include "util/parallel_for.hpp"
#include "util/string_util.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace tgl::obs {
namespace {

/// Every test leaves the process-wide mode off so suites compose.
class PerfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        set_perf_mode(PerfMode::kOff);
        perf_reset_phase_totals();
    }
    void TearDown() override
    {
        set_perf_mode(PerfMode::kOff);
        perf_reset_phase_totals();
    }

    /// Enable counters; skip the calling test when the host refuses.
    void require_counters()
    {
        set_perf_mode(PerfMode::kOn);
        if (!perf_availability().available) {
            GTEST_SKIP() << "perf counters unavailable: "
                         << perf_availability().reason;
        }
    }

    /// A little on-CPU work so task-clock style counters move.
    static double burn()
    {
        volatile double sink = 1.0;
        for (int i = 0; i < 200000; ++i) {
            sink = sink * 1.0000001 + 0.5;
        }
        return sink;
    }
};

PerfSample
synthetic_sample()
{
    PerfSample sample;
    sample.valid = true;
    const auto set = [&sample](PerfEvent event, double value) {
        sample.values[static_cast<std::size_t>(event)] = value;
        sample.present[static_cast<std::size_t>(event)] = true;
    };
    set(PerfEvent::kCycles, 1000.0);
    set(PerfEvent::kInstructions, 2000.0);
    set(PerfEvent::kBranches, 400.0);
    set(PerfEvent::kBranchMisses, 40.0);
    set(PerfEvent::kCacheReferences, 100.0);
    set(PerfEvent::kCacheMisses, 25.0);
    set(PerfEvent::kStalledFrontend, 100.0);
    set(PerfEvent::kStalledBackend, 300.0);
    set(PerfEvent::kL1dLoads, 500.0);
    set(PerfEvent::kL1dStores, 100.0);
    sample.time_enabled_seconds = 1.0;
    sample.time_running_seconds = 1.0;
    return sample;
}

TEST_F(PerfTest, ParsePerfModeAcceptsTheThreeNames)
{
    EXPECT_EQ(parse_perf_mode("on"), PerfMode::kOn);
    EXPECT_EQ(parse_perf_mode("off"), PerfMode::kOff);
    EXPECT_EQ(parse_perf_mode("auto"), PerfMode::kAuto);
    EXPECT_FALSE(parse_perf_mode("ON").has_value());
    EXPECT_FALSE(parse_perf_mode("").has_value());
    EXPECT_FALSE(parse_perf_mode("yes").has_value());
}

TEST_F(PerfTest, ModeNameRoundTrips)
{
    for (const PerfMode mode :
         {PerfMode::kOff, PerfMode::kOn, PerfMode::kAuto}) {
        EXPECT_EQ(parse_perf_mode(perf_mode_name(mode)), mode);
    }
}

TEST_F(PerfTest, SetPerfModeIsObservable)
{
    set_perf_mode(PerfMode::kAuto);
    EXPECT_EQ(perf_mode(), PerfMode::kAuto);
    set_perf_mode(PerfMode::kOff);
    EXPECT_EQ(perf_mode(), PerfMode::kOff);
}

TEST_F(PerfTest, EventNamesAreStableSnakeCase)
{
    EXPECT_STREQ(perf_event_name(PerfEvent::kCycles), "cycles");
    EXPECT_STREQ(perf_event_name(PerfEvent::kInstructions),
                 "instructions");
    EXPECT_STREQ(perf_event_name(PerfEvent::kTaskClock),
                 "task_clock_ns");
    EXPECT_STREQ(perf_event_name(PerfEvent::kL1dLoads), "l1d_loads");
}

TEST_F(PerfTest, DerivedRatiosFromSyntheticSample)
{
    const PerfSample sample = synthetic_sample();
    EXPECT_DOUBLE_EQ(sample.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(sample.llc_miss_rate(), 0.25);
    EXPECT_DOUBLE_EQ(sample.branch_miss_rate(), 0.1);
    EXPECT_DOUBLE_EQ(sample.frontend_stall_fraction(), 0.1);
    EXPECT_DOUBLE_EQ(sample.backend_stall_fraction(), 0.3);
    EXPECT_DOUBLE_EQ(sample.memory_op_fraction(), 0.3);
    EXPECT_DOUBLE_EQ(sample.branch_op_fraction(), 0.2);
}

TEST_F(PerfTest, DerivedRatiosAreZeroWhenInputsAbsent)
{
    PerfSample sample;
    sample.valid = true;
    // Nothing present: every ratio must be 0, never NaN.
    EXPECT_DOUBLE_EQ(sample.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(sample.llc_miss_rate(), 0.0);
    EXPECT_DOUBLE_EQ(sample.branch_miss_rate(), 0.0);
    EXPECT_DOUBLE_EQ(sample.memory_op_fraction(), 0.0);
    // Instructions alone is not enough for IPC.
    sample.values[static_cast<std::size_t>(PerfEvent::kInstructions)] =
        100.0;
    sample.present[static_cast<std::size_t>(PerfEvent::kInstructions)] =
        true;
    EXPECT_DOUBLE_EQ(sample.ipc(), 0.0);
}

TEST_F(PerfTest, SampleAccumulationMergesPresence)
{
    PerfSample total;
    total += synthetic_sample();
    total += synthetic_sample();
    EXPECT_TRUE(total.valid);
    EXPECT_DOUBLE_EQ(total.value(PerfEvent::kCycles), 2000.0);
    EXPECT_DOUBLE_EQ(total.ipc(), 2.0); // ratios survive accumulation
    EXPECT_FALSE(total.has(PerfEvent::kTaskClock));

    // Adding an invalid sample is a no-op.
    const PerfSample before = total;
    total += PerfSample{};
    EXPECT_DOUBLE_EQ(total.value(PerfEvent::kCycles),
                     before.value(PerfEvent::kCycles));
}

TEST_F(PerfTest, SampleDifferenceClampsAtZero)
{
    PerfSample late = synthetic_sample();
    PerfSample early = synthetic_sample();
    late.values[static_cast<std::size_t>(PerfEvent::kCycles)] = 1500.0;
    const PerfSample delta = late - early;
    EXPECT_TRUE(delta.valid);
    EXPECT_DOUBLE_EQ(delta.value(PerfEvent::kCycles), 500.0);
    EXPECT_DOUBLE_EQ(delta.value(PerfEvent::kInstructions), 0.0);
    // A counter that went "backwards" (multiplexing jitter) clamps.
    early.values[static_cast<std::size_t>(PerfEvent::kBranches)] =
        9999.0;
    EXPECT_DOUBLE_EQ((late - early).value(PerfEvent::kBranches), 0.0);
}

TEST_F(PerfTest, SpanArgsRenderPresentEventsAndRatios)
{
    const auto args = perf_span_args(synthetic_sample());
    const auto find = [&args](const std::string& key) -> const double* {
        for (const auto& [name, value] : args) {
            if (name == key) {
                return &value;
            }
        }
        return nullptr;
    };
    ASSERT_NE(find("instructions"), nullptr);
    EXPECT_DOUBLE_EQ(*find("instructions"), 2000.0);
    ASSERT_NE(find("ipc"), nullptr);
    EXPECT_DOUBLE_EQ(*find("ipc"), 2.0);
    ASSERT_NE(find("llc_miss_rate"), nullptr);
    EXPECT_DOUBLE_EQ(*find("llc_miss_rate"), 0.25);
    // Absent events must not render at all.
    EXPECT_EQ(find("task_clock_ns"), nullptr);
}

TEST_F(PerfTest, SpanArgsEmptyForInvalidSample)
{
    EXPECT_TRUE(perf_span_args(PerfSample{}).empty());
}

TEST_F(PerfTest, ScopeIsInertWhenModeOff)
{
    ASSERT_EQ(perf_mode(), PerfMode::kOff);
    PerfScope scope("walk");
    EXPECT_FALSE(scope.active());
    burn();
    EXPECT_FALSE(scope.sample().valid);
    EXPECT_FALSE(scope.close().valid);
    EXPECT_FALSE(perf_phase_total("walk").valid);
}

TEST_F(PerfTest, ScopeMeasuresAndRecordsPhase)
{
    require_counters();
    Registry& registry = Registry::global();
    const MetricsSnapshot before = registry.snapshot();

    PerfScope scope("unit_test_phase");
    ASSERT_TRUE(scope.active());
    burn();
    const PerfSample mid = scope.sample();
    EXPECT_TRUE(mid.valid);
    EXPECT_TRUE(scope.active()); // sample() keeps the scope open
    const PerfSample final_sample = scope.close();
    ASSERT_TRUE(final_sample.valid);

    // At least one event scheduled, with a positive reading (the
    // standard set includes software task-clock precisely so this
    // holds on PMU-less hosts).
    bool any = false;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (final_sample.present[i]) {
            any = true;
            EXPECT_GE(final_sample.values[i], 0.0);
        }
    }
    EXPECT_TRUE(any);
    EXPECT_GT(final_sample.time_enabled_seconds, 0.0);

    // Phase aggregate and registry metrics picked the deltas up.
    const PerfSample total = perf_phase_total("unit_test_phase");
    ASSERT_TRUE(total.valid);
    const MetricsSnapshot after = registry.snapshot();
    bool any_metric = false;
    for (const MetricValue& metric : after.metrics) {
        if (metric.name.rfind("perf.unit_test_phase.", 0) == 0) {
            any_metric = true;
            EXPECT_GE(metric.value, 0.0);
        }
    }
    EXPECT_TRUE(any_metric);
    EXPECT_EQ(before.find("perf.unit_test_phase.task_clock_ns"),
              nullptr);

    // close() is idempotent: totals must not double.
    const double first_total = total.time_enabled_seconds;
    scope.close();
    EXPECT_DOUBLE_EQ(
        perf_phase_total("unit_test_phase").time_enabled_seconds,
        first_total);
}

TEST_F(PerfTest, NestedScopeOnSameThreadIsInert)
{
    require_counters();
    PerfScope outer("outer_phase");
    ASSERT_TRUE(outer.active());
    {
        PerfScope inner("inner_phase");
        EXPECT_FALSE(inner.active()); // depth guard: no double count
        burn();
    }
    outer.close();
    EXPECT_TRUE(perf_phase_total("outer_phase").valid);
    EXPECT_FALSE(perf_phase_total("inner_phase").valid);
}

TEST_F(PerfTest, PhaseTotalsAccumulateAcrossScopes)
{
    require_counters();
    {
        PerfScope first("accum_phase");
        burn();
    }
    const double after_one =
        perf_phase_total("accum_phase").time_enabled_seconds;
    {
        PerfScope second("accum_phase");
        burn();
    }
    const double after_two =
        perf_phase_total("accum_phase").time_enabled_seconds;
    EXPECT_GT(after_one, 0.0);
    EXPECT_GT(after_two, after_one);

    bool listed = false;
    for (const auto& [phase, sample] : perf_phase_totals()) {
        listed = listed || (phase == "accum_phase" && sample.valid);
    }
    EXPECT_TRUE(listed);

    perf_reset_phase_totals();
    EXPECT_FALSE(perf_phase_total("accum_phase").valid);
}

TEST_F(PerfTest, RankScopesAggregateATeam)
{
    require_counters();
    PerfRankScopes scopes("ranked_phase", 4);
    std::atomic<int> work{0};
    util::parallel_for_ranked(
        0, 64,
        [&](std::size_t, unsigned rank) {
            scopes.ensure(rank);
            burn();
            work.fetch_add(1, std::memory_order_relaxed);
        },
        {.num_threads = 4});
    EXPECT_EQ(work.load(), 64);
    const PerfSample aggregate = scopes.close();
    ASSERT_TRUE(aggregate.valid);
    EXPECT_GT(aggregate.time_enabled_seconds, 0.0);
    EXPECT_TRUE(perf_phase_total("ranked_phase").valid);
    // Idempotent close: the aggregate must not record twice.
    const double total =
        perf_phase_total("ranked_phase").time_enabled_seconds;
    scopes.close();
    EXPECT_DOUBLE_EQ(
        perf_phase_total("ranked_phase").time_enabled_seconds, total);
}

TEST_F(PerfTest, RankScopesAreInertWhenModeOff)
{
    ASSERT_EQ(perf_mode(), PerfMode::kOff);
    PerfRankScopes scopes("off_phase", 2);
    util::parallel_for_ranked(
        0, 8, [&](std::size_t, unsigned rank) { scopes.ensure(rank); },
        {.num_threads = 2});
    EXPECT_FALSE(scopes.close().valid);
    EXPECT_FALSE(perf_phase_total("off_phase").valid);
}

TEST_F(PerfTest, RawCounterSetCountsASoftwareEvent)
{
    require_counters();
    // PERF_TYPE_SOFTWARE (1) / PERF_COUNT_SW_TASK_CLOCK (1): available
    // wherever the probe succeeded, PMU or not.
    RawCounterSet raw({{1, 1, "raw_task_clock"}});
    ASSERT_TRUE(raw.active());
    burn();
    const auto readings = raw.read_scaled();
    ASSERT_EQ(readings.size(), 1u);
    EXPECT_EQ(readings[0].first, "raw_task_clock");
    EXPECT_GT(readings[0].second, 0.0);
}

TEST_F(PerfTest, RawCounterSetSkipsRejectedSpecs)
{
    require_counters();
    // A nonsense type id is rejected by the kernel but must not throw.
    RawCounterSet raw({{0xdeadbeefu, 0x42, "bogus"}});
    EXPECT_FALSE(raw.active());
    EXPECT_TRUE(raw.read_scaled().empty());
}

TEST_F(PerfTest, PerfSpanAttachesCounterArgs)
{
    require_counters();
    TraceSession session;
    session.start();
    {
        Span span("perf.span.test", "span_phase");
        burn();
        span.arg("custom_arg", 42.0);
    }
    session.stop();
    const std::vector<TraceEvent> events = session.events();
    ASSERT_EQ(events.size(), 1u);
    bool has_custom = false;
    bool has_counter = false;
    for (const auto& [key, value] : events[0].args) {
        has_custom = has_custom || (key == "custom_arg" && value == 42.0);
        has_counter = has_counter || key == "task_clock_ns" ||
                      key == "instructions";
    }
    EXPECT_TRUE(has_custom);
    EXPECT_TRUE(has_counter);
    EXPECT_TRUE(perf_phase_total("span_phase").valid);
}

TEST_F(PerfTest, PerfSpanRecordsMetricsEvenWithoutSession)
{
    require_counters();
    ASSERT_EQ(TraceSession::current(), nullptr);
    {
        Span span("no.session", "sessionless_phase");
        burn();
    }
    EXPECT_TRUE(perf_phase_total("sessionless_phase").valid);
}

// --------------------------------------------------------------------
// Satellite: TraceSession JSON escaping (regression for the lossy
// pre-RFC-8259 escaper, which dropped backslashes and control bytes).

TEST(TraceEscaping, HostileSpanNamesAreEscapedPerJsonSpec)
{
    TraceSession session;
    session.start();
    {
        Span span("evil\"name\\with\nnewline\tand\x01"
                  "ctrl");
    }
    session.stop();
    const std::string json = session.to_chrome_json();
    EXPECT_NE(
        json.find("evil\\\"name\\\\with\\nnewline\\tand\\u0001ctrl"),
        std::string::npos)
        << json;
    // No raw control bytes from the name may survive into the
    // serialized form ('\n' alone is the serializer's own formatting).
    for (const char c : json) {
        if (c != '\n') {
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
        }
    }
}

TEST(TraceEscaping, ArgsObjectSerializesNumericValues)
{
    TraceSession session;
    session.start();
    {
        Span span("argful");
        span.arg("count", 3.0);
        span.arg("rate\"key", 0.5); // hostile arg key
    }
    session.stop();
    const std::string json = session.to_chrome_json();
    EXPECT_NE(json.find("\"args\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("rate\\\"key"), std::string::npos) << json;
}

TEST(TraceEscaping, MetricNamesAreEscapedInSnapshotJson)
{
    Registry registry;
    registry.counter("weird\"metric\\name").add(1);
    const std::string json = registry.snapshot().to_json();
    EXPECT_NE(json.find("weird\\\"metric\\\\name"), std::string::npos)
        << json;
}

// --------------------------------------------------------------------
// Satellite: process gauges from getrusage.

TEST(ProcessStats, QueryReportsLiveUsage)
{
    const ProcessUsage usage = query_process_usage();
    // Any live test process has touched megabytes of RSS and burned
    // some user time.
    EXPECT_GT(usage.peak_rss_bytes, 1024u * 1024u);
    EXPECT_GE(usage.utime_seconds + usage.stime_seconds, 0.0);
}

TEST(ProcessStats, GaugesLandInSnapshot)
{
    Registry registry;
    record_process_gauges(registry);
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue* rss = snapshot.find("process.peak_rss_bytes");
    ASSERT_NE(rss, nullptr);
    EXPECT_GT(rss->value, 0.0);
    ASSERT_NE(snapshot.find("process.utime_seconds"), nullptr);
    ASSERT_NE(snapshot.find("process.stime_seconds"), nullptr);
    // Re-recording updates rather than duplicating.
    record_process_gauges(registry);
    std::size_t matches = 0;
    for (const MetricValue& metric : registry.snapshot().metrics) {
        matches += metric.name == "process.peak_rss_bytes";
    }
    EXPECT_EQ(matches, 1u);
}

} // namespace
} // namespace tgl::obs
