# Empty dependencies file for fig04_walk_length_distribution.
# This may be replaced when dependencies are built.
