file(REMOVE_RECURSE
  "CMakeFiles/test_embed_sgns.dir/test_embed_sgns.cpp.o"
  "CMakeFiles/test_embed_sgns.dir/test_embed_sgns.cpp.o.d"
  "test_embed_sgns"
  "test_embed_sgns.pdb"
  "test_embed_sgns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_sgns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
