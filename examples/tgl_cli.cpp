/// @file
/// tgl_cli — a multi-command driver exposing each pipeline stage as a
/// shell command, replacing the artifact repository's collection of
/// Python helper scripts (preprocess_dataset.py, generate_synthetic.py,
/// the run scripts) with one self-contained binary.
///
/// Commands:
///   generate  — synthesize a temporal graph and write a .wel file
///   preprocess— normalize/clean an existing edge list (the
///               preprocess_dataset.py equivalent)
///   stats     — print structural statistics of a .wel graph
///   walk      — generate a temporal walk corpus from a .wel graph
///   embed     — train node embeddings from a corpus (or a graph)
///   neighbors — query nearest neighbors in an embedding
///   pipeline  — run the end-to-end pipeline, optionally resuming
///               phase artifacts from a crash-safe checkpoint directory
///   serve     — long-running TCP server answering link-score / kNN
///               queries over a trained checkpoint (see DESIGN.md §14)
///
/// Examples:
///   ./tgl_cli generate --kind ba --nodes 10000 --out g.wel
///   ./tgl_cli preprocess --input raw.txt --out g.wel
///   ./tgl_cli stats --input g.wel
///   ./tgl_cli walk --input g.wel --out corpus.txt
///   ./tgl_cli embed --input g.wel --out emb.txt
///   ./tgl_cli neighbors --embeddings emb.txt --node 7 --k 5
///   ./tgl_cli pipeline --input g.wel --checkpoint-dir ckpt/
///   ./tgl_cli serve --checkpoint-dir ckpt/ --port 7411 --quant int8
#include "tgl/tgl.hpp"

#include "bench/bench_json.hpp"

#include <cstdio>
#include <fstream>

namespace {

using namespace tgl;

int
cmd_generate(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli generate",
                        "synthesize a temporal graph (.wel)");
    cli.add_flag("kind", "er", "er | ba | rmat | sbm | drifting-sbm");
    cli.add_flag("nodes", "10000", "number of nodes");
    cli.add_flag("edges", "100000",
                 "number of edges (er/rmat/sbm) — ba derives it");
    cli.add_flag("edges-per-node", "3", "ba attachment parameter");
    cli.add_flag("communities", "4", "sbm community count");
    cli.add_flag("timestamps", "uniform", "uniform | arrival | bursty");
    cli.add_flag("seed", "1", "random seed");
    cli.add_flag("out", "graph.wel", "output path");
    cli.add_flag("labels-out", "",
                 "write 'node label' lines here (sbm kinds only)");
    if (!cli.parse(argc, argv)) {
        return 0;
    }

    const std::string kind = cli.get_string("kind");
    const auto nodes =
        static_cast<graph::NodeId>(cli.get_int("nodes"));
    const auto edges =
        static_cast<graph::EdgeId>(cli.get_int("edges"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto stamps =
        gen::parse_timestamp_model(cli.get_string("timestamps"));

    graph::EdgeList result;
    std::vector<std::uint32_t> labels;
    if (kind == "er") {
        result = gen::generate_erdos_renyi(
            {.num_nodes = nodes, .num_edges = edges,
             .timestamps = stamps, .seed = seed});
    } else if (kind == "ba") {
        result = gen::generate_barabasi_albert(
            {.num_nodes = nodes,
             .edges_per_node =
                 static_cast<unsigned>(cli.get_int("edges-per-node")),
             .timestamps = stamps,
             .seed = seed});
    } else if (kind == "rmat") {
        unsigned scale = 0;
        while ((graph::NodeId{1} << scale) < nodes) {
            ++scale;
        }
        result = gen::generate_rmat({.scale = scale,
                                     .num_edges = edges,
                                     .timestamps = stamps,
                                     .seed = seed});
    } else if (kind == "sbm" || kind == "drifting-sbm") {
        const auto communities =
            static_cast<unsigned>(cli.get_int("communities"));
        gen::LabeledGraph labeled;
        if (kind == "sbm") {
            labeled = gen::generate_sbm({.num_nodes = nodes,
                                         .num_edges = edges,
                                         .num_communities = communities,
                                         .timestamps = stamps,
                                         .seed = seed});
        } else {
            labeled = gen::generate_drifting_sbm(
                {.num_nodes = nodes, .num_edges = edges,
                 .num_communities = communities, .seed = seed});
        }
        result = std::move(labeled.edges);
        labels = std::move(labeled.labels);
    } else {
        util::fatal("unknown --kind (er | ba | rmat | sbm | drifting-sbm)");
    }

    graph::save_wel_file(cli.get_string("out"), result);
    std::printf("wrote %zu edges over %u nodes to %s\n", result.size(),
                result.num_nodes(), cli.get_string("out").c_str());
    if (const std::string labels_out = cli.get_string("labels-out");
        !labels_out.empty()) {
        if (labels.empty()) {
            util::fatal("--labels-out needs an sbm kind");
        }
        std::ofstream out(labels_out);
        if (!out) {
            util::fatal("cannot open " + labels_out);
        }
        for (graph::NodeId u = 0; u < labels.size(); ++u) {
            out << u << ' ' << labels[u] << '\n';
        }
        std::printf("wrote %zu labels to %s\n", labels.size(),
                    labels_out.c_str());
    }
    return 0;
}

int
cmd_preprocess(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli preprocess",
                        "clean an edge list: strip comments, normalize "
                        "timestamps to [0,1] (preprocess_dataset.py)");
    cli.add_flag("input", "", "raw edge list (src dst [time] per line)");
    cli.add_flag("out", "graph.wel", "output path");
    cli.add_switch("allow-missing-timestamps",
                   "use arrival order when the time column is absent");
    if (!cli.parse(argc, argv)) {
        return 0;
    }
    const graph::EdgeList edges = graph::load_wel_file(
        cli.get_string("input"),
        {.normalize_timestamps = true,
         .allow_missing_timestamps =
             cli.get_switch("allow-missing-timestamps")});
    graph::save_wel_file(cli.get_string("out"), edges);
    std::printf("wrote %zu normalized edges to %s\n", edges.size(),
                cli.get_string("out").c_str());
    return 0;
}

int
cmd_stats(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli stats", "structural statistics");
    cli.add_flag("input", "", ".wel edge list");
    cli.add_switch("symmetrize", "treat edges as undirected");
    if (!cli.parse(argc, argv)) {
        return 0;
    }
    const graph::EdgeList edges =
        graph::load_wel_file(cli.get_string("input"));
    const auto graph = graph::GraphBuilder::build(
        edges, {.symmetrize = cli.get_switch("symmetrize")});
    std::printf("%s\n",
                graph::format_stats(graph::compute_stats(graph)).c_str());
    return 0;
}

int
cmd_walk(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli walk", "generate a temporal walk corpus");
    cli.add_flag("input", "", ".wel edge list");
    cli.add_flag("out", "corpus.txt", "corpus output path");
    cli.add_flag("walks", "10", "K: walks per node");
    cli.add_flag("length", "6", "N: max walk length");
    cli.add_flag("transition", "exp",
                 "uniform | exp | exp-decay | linear");
    cli.add_flag("transition-cache", "auto",
                 "prefix-CDF sampling cache: on | off | auto");
    cli.add_flag("batch-width", "auto",
                 "SIMD walker lanes per batch: auto | 1..64 (1 = exact "
                 "scalar engine)");
    cli.add_flag("start", "node", "node | edge");
    cli.add_flag("seed", "1", "random seed");
    cli.add_switch("static", "ignore timestamps (DeepWalk baseline)");
    cli.add_switch("histogram", "also print the Fig. 4 length table");
    if (!cli.parse(argc, argv)) {
        return 0;
    }
    const graph::EdgeList edges =
        graph::load_wel_file(cli.get_string("input"));
    const auto graph =
        graph::GraphBuilder::build(edges, {.symmetrize = true});

    walk::WalkConfig config;
    config.walks_per_node = static_cast<unsigned>(cli.get_int("walks"));
    config.max_length = static_cast<unsigned>(cli.get_int("length"));
    config.transition =
        walk::parse_transition(cli.get_string("transition"));
    config.transition_cache = walk::parse_transition_cache_mode(
        cli.get_string("transition-cache"));
    config.batch_width =
        walk::parse_batch_width(cli.get_string("batch-width"));
    config.temporal = !cli.get_switch("static");
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (cli.get_string("start") == "edge") {
        config.start = walk::StartKind::kTemporalEdge;
    } else if (cli.get_string("start") != "node") {
        util::fatal("--start must be node or edge");
    }

    const walk::Corpus corpus = walk::generate_walks(graph, config);
    corpus.save_file(cli.get_string("out"));
    std::printf("wrote %zu walks (%zu tokens) to %s\n",
                corpus.num_walks(), corpus.num_tokens(),
                cli.get_string("out").c_str());
    if (cli.get_switch("histogram")) {
        std::printf("%s\n",
                    walk::format_length_distribution(
                        walk::length_distribution(corpus)).c_str());
    }
    return 0;
}

int
cmd_embed(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli embed",
                        "train skip-gram node embeddings");
    cli.add_flag("input", "", ".wel graph (walked internally) ...");
    cli.add_flag("corpus", "", "... or a pre-generated corpus file");
    cli.add_flag("out", "embeddings.txt", "embedding output path");
    cli.add_flag("dim", "8", "embedding dimension");
    cli.add_flag("epochs", "5", "training epochs");
    cli.add_flag("walks", "10", "walks per node (with --input)");
    cli.add_flag("length", "6", "walk length (with --input)");
    cli.add_flag("seed", "1", "random seed");
    cli.add_flag("sgns-backend", "auto",
                 "SGNS kernel backend: auto | scalar | simd");
    cli.add_switch("batched", "use the batched (GPU-model) trainer");
    if (!cli.parse(argc, argv)) {
        return 0;
    }

    walk::Corpus corpus;
    graph::NodeId num_nodes = 0;
    if (const std::string corpus_path = cli.get_string("corpus");
        !corpus_path.empty()) {
        corpus = walk::Corpus::load_file(corpus_path);
        for (graph::NodeId node : corpus.tokens()) {
            num_nodes = std::max(num_nodes, node + 1);
        }
    } else {
        const graph::EdgeList edges =
            graph::load_wel_file(cli.get_string("input"));
        const auto graph =
            graph::GraphBuilder::build(edges, {.symmetrize = true});
        num_nodes = graph.num_nodes();
        walk::WalkConfig config;
        config.walks_per_node =
            static_cast<unsigned>(cli.get_int("walks"));
        config.max_length =
            static_cast<unsigned>(cli.get_int("length"));
        config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        corpus = walk::generate_walks(graph, config);
    }

    embed::SgnsConfig sgns;
    sgns.dim = static_cast<unsigned>(cli.get_int("dim"));
    sgns.epochs = static_cast<unsigned>(cli.get_int("epochs"));
    sgns.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (const auto backend = embed::kernels::parse_sgns_backend(
            cli.get_string("sgns-backend"))) {
        sgns.backend = *backend;
    } else {
        util::fatal("--sgns-backend expects auto | scalar | simd");
    }

    embed::TrainStats stats;
    embed::Embedding embedding;
    if (cli.get_switch("batched")) {
        embed::BatchedSgnsConfig batched;
        batched.sgns = sgns;
        embedding = embed::train_sgns_batched(corpus, num_nodes, batched,
                                              &stats);
    } else {
        embedding = embed::train_sgns(corpus, num_nodes, sgns, &stats);
    }
    embedding.save_file(cli.get_string("out"));
    std::printf("trained %u-d embeddings for %u nodes (%llu pairs, "
                "%.2fs) -> %s\n",
                embedding.dim(), embedding.num_nodes(),
                static_cast<unsigned long long>(stats.pairs_trained),
                stats.seconds, cli.get_string("out").c_str());
    return 0;
}

int
cmd_neighbors(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli neighbors",
                        "nearest nodes by embedding cosine");
    cli.add_flag("embeddings", "", "embedding file from `embed`");
    cli.add_flag("node", "0", "query node id");
    cli.add_flag("k", "10", "neighbors to print");
    if (!cli.parse(argc, argv)) {
        return 0;
    }
    const embed::Embedding embedding =
        embed::Embedding::load_file(cli.get_string("embeddings"));
    const auto node = static_cast<graph::NodeId>(cli.get_int("node"));
    if (node >= embedding.num_nodes()) {
        util::fatal("node id out of range");
    }
    for (const graph::NodeId v : embedding.nearest(
             node, static_cast<unsigned>(cli.get_int("k")))) {
        std::printf("%u\t%.4f\n", v, embedding.cosine(node, v));
    }
    return 0;
}

/// Re-emit the pipeline phase breakdown in the shared BENCH_*.json
/// schema (bench/bench_json.hpp) so CI asserts on pipeline runs the
/// same way it asserts on the micro benches.
void
write_pipeline_bench(const std::string& path,
                     const core::PipelineResult& result)
{
    const double total = result.times.total();
    const auto rate = [](double items, double seconds) {
        return seconds > 0.0 ? items / seconds : 0.0;
    };
    std::vector<bench::BenchEntry> entries;
    entries.push_back({"pipeline/build_graph", result.times.build_graph,
                       rate(static_cast<double>(result.num_edges),
                            result.times.build_graph),
                       {{"num_nodes",
                         static_cast<double>(result.num_nodes)},
                        {"num_edges",
                         static_cast<double>(result.num_edges)}}});
    entries.push_back(
        {"pipeline/walk", result.times.random_walk,
         rate(static_cast<double>(result.walk_profile.steps_taken),
              result.times.random_walk),
         {{"walks_kept",
           static_cast<double>(result.walk_profile.walks_kept)},
          {"steps_taken",
           static_cast<double>(result.walk_profile.steps_taken)},
          {"cached_steps",
           static_cast<double>(result.walk_profile.cached_steps)},
          {"corpus_tokens",
           static_cast<double>(result.corpus_tokens)}}});
    entries.push_back(
        {"pipeline/word2vec", result.times.word2vec,
         rate(static_cast<double>(result.w2v_stats.pairs_trained),
              result.times.word2vec),
         {{"pairs_trained",
           static_cast<double>(result.w2v_stats.pairs_trained)},
          {"tokens_processed",
           static_cast<double>(result.w2v_stats.tokens_processed)}}});
    entries.push_back({"pipeline/data_prep", result.times.data_prep,
                       0.0,
                       {}});
    entries.push_back(
        {"pipeline/train", result.times.train,
         rate(static_cast<double>(result.task.epochs_run),
              result.times.train),
         {{"epochs_run", static_cast<double>(result.task.epochs_run)},
          {"final_train_loss", result.task.final_train_loss},
          {"valid_accuracy", result.task.valid_accuracy}}});
    entries.push_back({"pipeline/test", result.times.test, 0.0,
                       {{"test_accuracy", result.task.test_accuracy},
                        {"test_auc", result.task.test_auc},
                        {"test_macro_f1", result.task.test_macro_f1}}});
    if (result.overlap.used) {
        // With overlap on, walk + word2vec busy time exceeds the fused
        // region's wall clock; this entry carries the measured wall and
        // the queue health counters for the A/B comparison.
        entries.push_back(
            {"pipeline/front_end_wall", result.times.walk_w2v_wall, 0.0,
             {{"shards", static_cast<double>(result.overlap.shards)},
              {"max_queue_depth",
               static_cast<double>(result.overlap.max_queue_depth)},
              {"producer_stall_seconds",
               result.overlap.producer_stall_seconds},
              {"consumer_stall_seconds",
               result.overlap.consumer_stall_seconds}}});
    }
    entries.push_back({"pipeline/total", total, 0.0, {}});
    bench::write_bench_json(path, "pipeline", entries);
}

int
cmd_pipeline(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli pipeline",
                        "walk -> word2vec -> classifier end to end, "
                        "with optional checkpoint/resume");
    cli.add_flag("input", "", ".wel edge list (link prediction) ...");
    cli.add_flag("dataset", "", "... or a catalog dataset name");
    cli.add_flag("scale", "0.1", "catalog dataset scale");
    cli.add_flag("walks", "10", "K: walks per node");
    cli.add_flag("length", "6", "N: max walk length");
    cli.add_flag("dim", "8", "embedding dimension");
    cli.add_flag("epochs", "12", "word2vec epochs");
    cli.add_flag("w2v-threads", "0",
                 "word2vec team size (1 = deterministic resume)");
    cli.add_flag("transition-cache", "auto",
                 "prefix-CDF sampling cache: on | off | auto");
    cli.add_flag("batch-width", "auto",
                 "SIMD walker lanes per batch: auto | 1..64 (1 = exact "
                 "scalar engine)");
    cli.add_flag("seed", "1", "random seed");
    cli.add_flag("checkpoint-dir", "",
                 "resume phase artifacts from / persist them to this "
                 "directory (empty disables checkpointing)");
    cli.add_flag("metrics-out", "",
                 "write the end-of-run metrics registry snapshot (JSON) "
                 "to this path");
    cli.add_flag("metrics-text-out", "",
                 "write the end-of-run metrics in the Prometheus text "
                 "exposition format to this path");
    cli.add_flag("trace-out", "",
                 "write a chrome://tracing / Perfetto trace (JSON) to "
                 "this path");
    cli.add_flag("bench-out", "",
                 "write the phase breakdown as BENCH_pipeline.json "
                 "(shared bench schema) to this path");
    cli.add_flag("overlap", "auto",
                 "overlapped walk->word2vec execution: on | off | auto "
                 "(auto overlaps when the phase cost estimates are "
                 "within 4x)");
    cli.add_flag("overlap-shards", "0",
                 "corpus shards for overlapped execution (0 = auto)");
    cli.add_flag("perf", "auto",
                 "hardware counters (perf_event_open) per phase: on | "
                 "off | auto (on/auto degrade to no-ops when "
                 "unavailable; see README for perf_event_paranoid)");
    cli.add_flag("failpoints", "",
                 "chaos-testing fault spec: site=action[:param][@N] "
                 "entries joined by ';' (overrides TGL_FAILPOINTS; see "
                 "README)");
    cli.add_flag("failpoints-seed", "0",
                 "seed for probabilistic failpoint triggers");
    cli.add_flag("watchdog-timeout", "0",
                 "overlap stall watchdog deadline in seconds (0 "
                 "disables); on a stall the run aborts with a resumable "
                 "checkpoint instead of hanging");
    cli.add_flag("sgns-backend", "auto",
                 "SGNS kernel backend: auto | scalar | simd");
    cli.add_switch("batched", "use the batched (GPU-model) trainer");
    if (!cli.parse(argc, argv)) {
        return 0;
    }

    core::PipelineConfig config;
    config.walk.walks_per_node =
        static_cast<unsigned>(cli.get_int("walks"));
    config.walk.max_length = static_cast<unsigned>(cli.get_int("length"));
    config.walk.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.walk.transition_cache = walk::parse_transition_cache_mode(
        cli.get_string("transition-cache"));
    config.walk.batch_width =
        walk::parse_batch_width(cli.get_string("batch-width"));
    config.sgns.dim = static_cast<unsigned>(cli.get_int("dim"));
    config.sgns.epochs = static_cast<unsigned>(cli.get_int("epochs"));
    config.sgns.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.sgns.num_threads =
        static_cast<unsigned>(cli.get_int("w2v-threads"));
    if (const auto backend = embed::kernels::parse_sgns_backend(
            cli.get_string("sgns-backend"))) {
        config.sgns.backend = *backend;
    } else {
        util::fatal("--sgns-backend expects auto | scalar | simd");
    }
    if (cli.get_switch("batched")) {
        config.w2v_mode = core::W2vMode::kBatched;
    }
    if (const auto mode =
            core::parse_overlap_mode(cli.get_string("overlap"))) {
        config.overlap = *mode;
    } else {
        util::fatal("--overlap expects on | off | auto");
    }
    config.overlap_shards =
        static_cast<std::size_t>(cli.get_int("overlap-shards"));
    config.checkpoint_dir = cli.get_string("checkpoint-dir");
    config.watchdog_timeout_seconds =
        util::parse_double(cli.get_string("watchdog-timeout"));
    if (const auto mode =
            obs::parse_perf_mode(cli.get_string("perf"))) {
        obs::set_perf_mode(*mode);
    } else {
        util::fatal("--perf expects on | off | auto");
    }
    if (const std::string failpoints = cli.get_string("failpoints");
        !failpoints.empty()) {
        util::FailpointRegistry::configure(
            failpoints,
            static_cast<std::uint64_t>(cli.get_int("failpoints-seed")));
    }

    const std::string metrics_out = cli.get_string("metrics-out");
    const std::string metrics_text_out =
        cli.get_string("metrics-text-out");
    const std::string trace_out = cli.get_string("trace-out");
    const std::string bench_out = cli.get_string("bench-out");

    // Telemetry covers exactly this run: clear any previously scraped
    // registry state and trace only while the pipeline executes.
    obs::Registry::global().reset();
    obs::perf_reset_phase_totals();
    obs::TraceSession session;
    if (!trace_out.empty()) {
        session.start();
    }

    // Ctrl-C / SIGTERM cancel cooperatively: the run stops at the next
    // phase boundary with checkpoints intact, telemetry still flushes
    // below, and the exit code is 130 (interrupted shell job).
    util::install_signal_handlers();

    core::PipelineResult result;
    std::string cancelled;
    try {
        if (const std::string dataset_name = cli.get_string("dataset");
            !dataset_name.empty()) {
            const gen::Dataset dataset = gen::make_dataset(
                dataset_name, util::parse_double(cli.get_string("scale")),
                static_cast<std::uint64_t>(cli.get_int("seed")));
            result = core::run_pipeline(dataset, config);
        } else if (!cli.get_string("input").empty()) {
            const graph::EdgeList edges =
                graph::load_wel_file(cli.get_string("input"));
            result = core::run_link_prediction_pipeline(edges, config);
        } else {
            util::fatal("pipeline needs --input or --dataset");
        }
    } catch (const util::Cancelled& interrupt) {
        cancelled = interrupt.what();
    }

    session.stop();
    if (!metrics_out.empty()) {
        obs::record_process_gauges(obs::Registry::global());
        obs::Registry::global().write_json(metrics_out);
        std::printf("wrote metrics snapshot to %s\n",
                    metrics_out.c_str());
    }
    if (!metrics_text_out.empty()) {
        obs::record_process_gauges(obs::Registry::global());
        obs::write_prometheus_file(obs::Registry::global(),
                                   metrics_text_out);
        std::printf("wrote Prometheus exposition to %s\n",
                    metrics_text_out.c_str());
    }
    if (!trace_out.empty()) {
        session.write_chrome_json(trace_out);
        std::printf("wrote trace (%zu spans) to %s\n",
                    session.events().size(), trace_out.c_str());
    }
    if (!cancelled.empty()) {
        // Partial run: metrics/trace above reflect the work actually
        // done, but the phase/accuracy summary and bench JSON would be
        // misleading, so skip them.
        std::fprintf(stderr, "interrupted: %s\n", cancelled.c_str());
        return 130;
    }
    if (!bench_out.empty()) {
        write_pipeline_bench(bench_out, result);
    }

    std::printf("%s\n", core::format_phase_times(result.times).c_str());
    if (result.overlap.used) {
        std::printf("overlap: %zu shards | queue depth max %zu | "
                    "producer stall %.3fs | consumer stall %.3fs\n",
                    result.overlap.shards,
                    result.overlap.max_queue_depth,
                    result.overlap.producer_stall_seconds,
                    result.overlap.consumer_stall_seconds);
    } else if (!result.overlap.decision.empty() &&
               config.overlap != core::OverlapMode::kOff) {
        std::printf("overlap: %s\n", result.overlap.decision.c_str());
    }
    std::printf("test accuracy %.4f | auc %.4f | macro-f1 %.4f "
                "(%u epochs)\n",
                result.task.test_accuracy, result.task.test_auc,
                result.task.test_macro_f1, result.task.epochs_run);
    if (!config.checkpoint_dir.empty()) {
        const core::CheckpointStatus& s = result.checkpoints;
        std::printf("checkpoints: corpus %s | transition-cache %s | "
                    "embedding %s | classifier %s\n",
                    s.corpus_loaded ? "resumed"
                    : s.corpus_stored ? "stored" : "skipped",
                    s.cache_loaded ? "resumed"
                    : s.cache_stored ? "stored" : "skipped",
                    s.embedding_loaded ? "resumed"
                    : s.embedding_stored ? "stored" : "skipped",
                    s.classifier_loaded ? "resumed"
                    : s.classifier_stored ? "stored" : "skipped");
        if (s.corpus_shards_loaded > 0 || s.corpus_shards_stored > 0) {
            std::printf("checkpoints: corpus shards %u resumed, "
                        "%u stored\n",
                        s.corpus_shards_loaded, s.corpus_shards_stored);
        }
        if (s.artifacts_quarantined > 0 || s.artifacts_regenerated > 0) {
            std::printf("recovery: %u artifacts quarantined, "
                        "%u regenerated\n",
                        s.artifacts_quarantined, s.artifacts_regenerated);
        }
    }
    return 0;
}

int
cmd_serve(int argc, const char* const* argv)
{
    util::CliParser cli("tgl_cli serve",
                        "serve link scores and kNN queries over a "
                        "trained model (length-prefixed TCP protocol; "
                        "SIGTERM drains gracefully)");
    cli.add_flag("checkpoint-dir", "",
                 "pipeline checkpoint directory holding embedding.tgla "
                 "and link-predictor.tgla");
    cli.add_flag("embeddings", "",
                 "embedding file (.tgla binary or text) — overrides the "
                 "checkpoint directory's embedding");
    cli.add_flag("classifier", "",
                 "classifier weights (.tgla) — overrides the checkpoint "
                 "directory's link-predictor");
    cli.add_flag("hidden", "16",
                 "classifier hidden width (must match training)");
    cli.add_switch("residual",
                   "classifier was trained with the residual "
                   "architecture");
    cli.add_flag("residual-blocks", "2",
                 "residual depth (with --residual)");
    cli.add_flag("host", "127.0.0.1", "bind address (loopback only by "
                                      "default; no auth layer)");
    cli.add_flag("port", "0",
                 "TCP port (0 = ephemeral; the bound port is printed "
                 "on the 'listening on' line)");
    cli.add_flag("quant", "fp32", "snapshot storage: fp32 | int8");
    cli.add_flag("scorer-threads", "2",
                 "classifier scorer threads (each owns a private model "
                 "replica)");
    cli.add_flag("max-batch-pairs", "256",
                 "coalescing cap: pairs per scorer batch");
    cli.add_flag("metrics-out", "",
                 "write the end-of-run metrics registry snapshot (JSON) "
                 "to this path after the drain");
    cli.add_flag("tracing", "on",
                 "per-request stage tracing (serve.stage.* histograms "
                 "and the slow-request log): on | off");
    cli.add_flag("timeseries", "on",
                 "background flight recorder feeding the kTimeseries "
                 "opcode: on | off");
    cli.add_flag("sample-interval-ms", "100",
                 "flight-recorder sampler period");
    cli.add_flag("timeseries-out", "",
                 "write the flight-recorder windowed rollups (JSON) to "
                 "this path after the drain");
    if (!cli.parse(argc, argv)) {
        return 0;
    }

    const std::string checkpoint_dir = cli.get_string("checkpoint-dir");
    std::string embeddings_path = cli.get_string("embeddings");
    std::string classifier_file = cli.get_string("classifier");
    if (!checkpoint_dir.empty()) {
        const core::CheckpointManager manager(checkpoint_dir);
        if (embeddings_path.empty()) {
            embeddings_path = manager.embedding_path();
        }
        if (classifier_file.empty()) {
            classifier_file = manager.classifier_path("link-predictor");
        }
    }
    if (embeddings_path.empty() || classifier_file.empty()) {
        util::fatal("serve needs --checkpoint-dir, or both --embeddings "
                    "and --classifier");
    }

    const bool binary_embedding =
        embeddings_path.size() >= 5 &&
        embeddings_path.compare(embeddings_path.size() - 5, 5, ".tgla") ==
            0;
    std::uint64_t fingerprint = 0;
    const embed::Embedding embedding =
        binary_embedding
            ? embed::Embedding::load_binary_file(embeddings_path,
                                                 &fingerprint)
            : embed::Embedding::load_file(embeddings_path);

    const auto hidden =
        static_cast<std::size_t>(cli.get_int("hidden"));
    const bool residual = cli.get_switch("residual");
    const auto residual_blocks =
        static_cast<std::size_t>(cli.get_int("residual-blocks"));
    const unsigned dim = embedding.dim();
    const auto classifier_factory = [classifier_file, dim, hidden,
                                     residual, residual_blocks]() {
        rng::Random random(1);
        nn::Mlp net =
            residual ? nn::make_residual_link_predictor(
                           2 * std::size_t{dim}, hidden, residual_blocks,
                           random)
                     : nn::make_link_predictor(2 * std::size_t{dim},
                                               hidden, random);
        net.load_weights_file(classifier_file);
        return net;
    };
    classifier_factory(); // fail fast on a weights/architecture mismatch

    serve::ServeConfig config;
    config.host = cli.get_string("host");
    config.port = static_cast<std::uint16_t>(cli.get_int("port"));
    config.scorer_threads =
        static_cast<unsigned>(cli.get_int("scorer-threads"));
    config.max_batch_pairs =
        static_cast<std::size_t>(cli.get_int("max-batch-pairs"));
    if (const auto quant =
            serve::parse_quant_mode(cli.get_string("quant"))) {
        config.quant = *quant;
    } else {
        util::fatal("--quant expects fp32 | int8");
    }
    const auto parse_on_off = [](const std::string& value,
                                 const char* flag) -> bool {
        if (value == "off") {
            return false;
        }
        if (value != "on") {
            util::fatal(util::strcat("--", flag, " expects on | off"));
        }
        return true;
    };
    config.request_tracing =
        parse_on_off(cli.get_string("tracing"), "tracing");
    config.timeseries =
        parse_on_off(cli.get_string("timeseries"), "timeseries");
    config.sample_interval_ms =
        static_cast<unsigned>(cli.get_int("sample-interval-ms"));
    const std::string timeseries_out = cli.get_string("timeseries-out");
    if (!timeseries_out.empty() && !config.timeseries) {
        util::fatal("--timeseries-out needs --timeseries on");
    }

    auto snapshot = serve::EmbeddingSnapshot::build(
        embedding, config.quant, /*epoch=*/1, fingerprint);
    serve::Server server(config, std::move(snapshot), classifier_factory);

    // SIGTERM / Ctrl-C request a graceful drain: stop accepting, let
    // every in-flight request flush its response, then exit 0 (unlike
    // `pipeline`, where an interrupt aborts the job with 130 — here the
    // drain IS the normal way to stop the process).
    util::install_signal_handlers();
    server.start();
    std::printf("tgl_serve listening on %s:%u (epoch 1, %s, %u nodes, "
                "dim %u)\n",
                config.host.c_str(), server.port(),
                serve::quant_mode_name(config.quant),
                embedding.num_nodes(), dim);
    std::fflush(stdout); // scripts parse the port from a pipe
    server.run_until_cancelled();

    if (const std::string metrics_out = cli.get_string("metrics-out");
        !metrics_out.empty()) {
        obs::record_process_gauges(obs::Registry::global());
        obs::Registry::global().write_json(metrics_out);
        std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
    }
    if (!timeseries_out.empty()) {
        std::ofstream out(timeseries_out);
        if (!out) {
            util::fatal("cannot open " + timeseries_out + " for writing");
        }
        out << server.timeseries_json();
        std::printf("wrote timeseries rollups to %s\n",
                    timeseries_out.c_str());
    }
    if (config.request_tracing) {
        const auto slow = server.slow_log().entries();
        const std::size_t shown = std::min<std::size_t>(slow.size(), 5);
        if (shown > 0) {
            std::printf("slowest requests (top %zu of %zu traced):\n",
                        shown, slow.size());
        }
        for (std::size_t i = 0; i < shown; ++i) {
            const serve::SlowRequestRecord& r = slow[i];
            std::printf("  id %llu  pairs %zu  total %.3fms  "
                        "(queue %.3fms, forward %.3fms)\n",
                        static_cast<unsigned long long>(r.request_id),
                        r.pairs, r.total_seconds * 1e3,
                        r.queue_seconds * 1e3, r.forward_seconds * 1e3);
        }
    }
    std::printf("tgl_serve drained cleanly\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fputs(
            "usage: tgl_cli <generate|preprocess|stats|walk|embed|"
            "neighbors|pipeline|serve> [flags]\n"
            "(each command supports --help)\n",
            stderr);
        return 1;
    }
    const std::string command = argv[1];
    // Shift argv so each command parses its own flags.
    const int sub_argc = argc - 1;
    const char* const* sub_argv = argv + 1;
    try {
        // Every command honors TGL_FAILPOINTS so chaos schedules can
        // target single-stage invocations, not just `pipeline`.
        tgl::util::FailpointRegistry::configure_from_env();
        if (command == "generate") {
            return cmd_generate(sub_argc, sub_argv);
        }
        if (command == "preprocess") {
            return cmd_preprocess(sub_argc, sub_argv);
        }
        if (command == "stats") {
            return cmd_stats(sub_argc, sub_argv);
        }
        if (command == "walk") {
            return cmd_walk(sub_argc, sub_argv);
        }
        if (command == "embed") {
            return cmd_embed(sub_argc, sub_argv);
        }
        if (command == "neighbors") {
            return cmd_neighbors(sub_argc, sub_argv);
        }
        if (command == "pipeline") {
            return cmd_pipeline(sub_argc, sub_argv);
        }
        if (command == "serve") {
            return cmd_serve(sub_argc, sub_argv);
        }
        std::fprintf(stderr, "unknown command: %s\n", command.c_str());
        return 1;
    } catch (const tgl::util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    } catch (const std::exception& error) {
        // Unexpected library failures (bad_alloc, filesystem_error, ...)
        // must still exit non-zero with a message, never abort via an
        // unhandled exception.
        std::fprintf(stderr, "unexpected error: %s\n", error.what());
        return 1;
    }
}
