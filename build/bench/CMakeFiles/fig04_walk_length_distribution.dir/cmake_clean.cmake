file(REMOVE_RECURSE
  "CMakeFiles/fig04_walk_length_distribution.dir/fig04_walk_length_distribution.cpp.o"
  "CMakeFiles/fig04_walk_length_distribution.dir/fig04_walk_length_distribution.cpp.o.d"
  "fig04_walk_length_distribution"
  "fig04_walk_length_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_walk_length_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
