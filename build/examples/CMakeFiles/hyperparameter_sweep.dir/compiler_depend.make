# Empty compiler generated dependencies file for hyperparameter_sweep.
# This may be replaced when dependencies are built.
