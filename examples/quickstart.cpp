/// @file
/// Quickstart: the whole pipeline in ~30 lines.
///
/// Builds a small synthetic interaction network shaped like the
/// paper's ia-email dataset, runs temporal random walks + word2vec +
/// link-prediction training with the paper's optimal hyperparameters
/// (K = 10 walks, length 6, d = 8), and prints accuracy plus the
/// Table III-style phase breakdown.
///
/// Run: ./quickstart
#include "tgl/tgl.hpp"

#include <cstdio>

int
main()
{
    using namespace tgl;

    // 1. A temporal graph. Swap in graph::load_wel_file("yours.wel")
    //    for real data; the catalog gives paper-shaped synthetics.
    const gen::Dataset dataset = gen::make_dataset("ia-email", 0.05);
    std::printf("dataset %s: %u nodes, %zu temporal edges\n",
                dataset.name.c_str(), dataset.edges.num_nodes(),
                dataset.edges.size());

    // 2. Configure the pipeline. Defaults are the paper's optimum;
    //    everything is overridable.
    core::PipelineConfig config;
    config.walk.walks_per_node = 10; // K  (Fig. 8b saturates here)
    config.walk.max_length = 6;      // N  (Fig. 8c saturates here)
    config.sgns.dim = 8;             // d  (Fig. 8d saturates here)
    config.classifier.max_epochs = 20;

    // 3. Run it.
    const core::PipelineResult result = core::run_pipeline(dataset, config);

    // 4. Results.
    std::printf("link prediction accuracy: %.3f  (AUC %.3f)\n",
                result.task.test_accuracy, result.task.test_auc);
    std::printf("phases: %s\n",
                core::format_phase_times(result.times).c_str());
    std::printf("walks: %zu (%zu tokens), dead ends: %llu\n",
                result.corpus_walks, result.corpus_tokens,
                static_cast<unsigned long long>(
                    result.walk_profile.dead_ends));
    return 0;
}
