/// @file
/// Portable SIMD shim for the batched walker engine (f64) and the SGNS
/// kernel layer (f32).
///
/// Exactly one backend is selected at compile time:
///
///   - AVX2  (x86-64 with __AVX2__): 4 f64 / 8 f32 lanes, i32 gathers
///   - NEON  (aarch64 with __ARM_NEON): 2 f64 / 4 f32 lanes, emulated
///     gathers
///   - scalar fallback everywhere else: 4 f64 / 8 f32 lane arrays +
///     plain loops
///
/// Defining TGL_SIMD_FORCE_SCALAR forces the scalar backend even when
/// vector intrinsics are available — the CI scalar-fallback job builds
/// with it so the portable path stays exercised.
///
/// Design constraints the batch kernel relies on:
///
///   - All *index* arithmetic happens in doubles. Every index the
///     kernel manipulates is an exact non-negative integer < 2^31
///     (resolve_batch_width refuses larger graphs), and doubles
///     represent integers exactly up to 2^53, so floor/add/sub on
///     indices are exact. This sidesteps AVX2's lack of useful 64-bit
///     integer compares and lets one VDouble type carry both values
///     and positions.
///   - vgather takes its indices as integer-valued doubles and a lane
///     mask; masked-off lanes are NOT dereferenced (their index may be
///     garbage) and receive @p fallback instead. This makes lockstep
///     binary searches safe once some lanes have converged.
///   - Comparison results (VBool) are opaque per-backend masks; they
///     only flow into vselect / vand / vany.
///
/// The f32 half (VFloat, f-prefixed operations) serves the SGNS kernels
/// in embed/kernels.cpp: dot/axpy over embedding rows plus a sigmoid
/// LUT gather. Its gather (fgather) takes *unmasked* integer-valued
/// float indices — the caller clamps them into the table first — and
/// its ordering-sensitive operations pin down NaN behavior:
///
///   - fmax(a, b) returns b when a is NaN on AVX2/scalar (the vmaxps
///     second-operand rule); NEON propagates the NaN instead, which is
///     safe only because NEON's float→int conversion in fgather turns
///     NaN into 0. Either way a NaN index cannot read out of bounds.
///   - fnlt(a, b) is the *unordered* !(a < b): true when a is NaN.
///     The sigmoid kernel uses it to saturate NaN scores to 1 exactly
///     like the scalar SigmoidTable does.
///
/// The shim is deliberately tiny: just the operations the lockstep
/// searches in walk/batch.cpp and the SGNS kernels need, nothing
/// speculative.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(TGL_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define TGL_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(TGL_SIMD_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define TGL_SIMD_NEON 1
#include <arm_neon.h>
#else
#define TGL_SIMD_SCALAR 1
#include <cmath>
#endif

namespace tgl::util::simd {

#if defined(TGL_SIMD_AVX2)

inline constexpr std::size_t kF64Lanes = 4;
inline constexpr const char* kIsaName = "avx2";

using VDouble = __m256d;
/// Lane mask: all-ones / all-zeros per 64-bit lane, stored as doubles
/// (the natural output of _mm256_cmp_pd and input of blendv/gather).
using VBool = __m256d;

inline VDouble vsplat(double x) { return _mm256_set1_pd(x); }
inline VDouble vload(const double* p) { return _mm256_loadu_pd(p); }
inline void vstore(double* p, VDouble v) { _mm256_storeu_pd(p, v); }
inline VDouble vadd(VDouble a, VDouble b) { return _mm256_add_pd(a, b); }
inline VDouble vsub(VDouble a, VDouble b) { return _mm256_sub_pd(a, b); }
inline VDouble vmul(VDouble a, VDouble b) { return _mm256_mul_pd(a, b); }
inline VDouble vmin(VDouble a, VDouble b) { return _mm256_min_pd(a, b); }
inline VDouble
vfloor(VDouble a)
{
    return _mm256_round_pd(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
}
inline VBool vlt(VDouble a, VDouble b)
{
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
}
inline VBool vle(VDouble a, VDouble b)
{
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
}
inline VBool vgt(VDouble a, VDouble b)
{
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
}
inline VBool vand(VBool a, VBool b) { return _mm256_and_pd(a, b); }
inline VDouble
vselect(VBool mask, VDouble a, VDouble b)
{
    // mask ? a : b, lane-wise.
    return _mm256_blendv_pd(b, a, mask);
}
inline bool vany(VBool mask) { return _mm256_movemask_pd(mask) != 0; }

/// base[(int)idx[lane]] for active lanes, @p fallback elsewhere.
/// Masked-off lanes are not dereferenced.
inline VDouble
vgather(const double* base, VDouble idx, VBool active, double fallback)
{
    const __m128i vindex = _mm256_cvttpd_epi32(idx);
    return _mm256_mask_i32gather_pd(vsplat(fallback), base, vindex, active,
                                    /*scale=*/8);
}

inline void
prefetch_read(const void* p)
{
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
}

// ---- f32 half (SGNS kernels) ----

inline constexpr std::size_t kF32Lanes = 8;

using VFloat = __m256;
/// f32 lane mask: all-ones / all-zeros per 32-bit lane.
using VFBool = __m256;

inline VFloat fsplat(float x) { return _mm256_set1_ps(x); }
inline VFloat fload(const float* p) { return _mm256_loadu_ps(p); }
inline void fstore(float* p, VFloat v) { _mm256_storeu_ps(p, v); }
inline VFloat fadd(VFloat a, VFloat b) { return _mm256_add_ps(a, b); }
inline VFloat fsub(VFloat a, VFloat b) { return _mm256_sub_ps(a, b); }
inline VFloat fmul(VFloat a, VFloat b) { return _mm256_mul_ps(a, b); }
/// min(a, b); returns b when a is NaN (vminps second-operand rule).
inline VFloat fmin(VFloat a, VFloat b) { return _mm256_min_ps(a, b); }
/// max(a, b); returns b when a is NaN (vmaxps second-operand rule).
inline VFloat fmax(VFloat a, VFloat b) { return _mm256_max_ps(a, b); }
inline VFBool fle(VFloat a, VFloat b)
{
    return _mm256_cmp_ps(a, b, _CMP_LE_OQ);
}
/// Unordered !(a < b): true when a >= b or either operand is NaN.
inline VFBool fnlt(VFloat a, VFloat b)
{
    return _mm256_cmp_ps(a, b, _CMP_NLT_UQ);
}
inline VFloat
fselect(VFBool mask, VFloat a, VFloat b)
{
    // mask ? a : b, lane-wise.
    return _mm256_blendv_ps(b, a, mask);
}
/// Sum of all 8 lanes.
inline float
fhsum(VFloat v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 sum = _mm_add_ps(lo, hi);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x1));
    return _mm_cvtss_f32(sum);
}
/// base[(int)idx[lane]] for every lane. The caller clamps idx into the
/// table; every lane is dereferenced.
inline VFloat
fgather(const float* base, VFloat idx)
{
    return _mm256_i32gather_ps(base, _mm256_cvttps_epi32(idx),
                               /*scale=*/4);
}

#elif defined(TGL_SIMD_NEON)

inline constexpr std::size_t kF64Lanes = 2;
inline constexpr const char* kIsaName = "neon";

using VDouble = float64x2_t;
using VBool = uint64x2_t;

inline VDouble vsplat(double x) { return vdupq_n_f64(x); }
inline VDouble vload(const double* p) { return vld1q_f64(p); }
inline void vstore(double* p, VDouble v) { vst1q_f64(p, v); }
inline VDouble vadd(VDouble a, VDouble b) { return vaddq_f64(a, b); }
inline VDouble vsub(VDouble a, VDouble b) { return vsubq_f64(a, b); }
inline VDouble vmul(VDouble a, VDouble b) { return vmulq_f64(a, b); }
inline VDouble vmin(VDouble a, VDouble b) { return vminq_f64(a, b); }
inline VDouble vfloor(VDouble a) { return vrndmq_f64(a); }
inline VBool vlt(VDouble a, VDouble b) { return vcltq_f64(a, b); }
inline VBool vle(VDouble a, VDouble b) { return vcleq_f64(a, b); }
inline VBool vgt(VDouble a, VDouble b) { return vcgtq_f64(a, b); }
inline VBool vand(VBool a, VBool b) { return vandq_u64(a, b); }
inline VDouble
vselect(VBool mask, VDouble a, VDouble b)
{
    return vbslq_f64(mask, a, b);
}
inline bool
vany(VBool mask)
{
    return (vgetq_lane_u64(mask, 0) | vgetq_lane_u64(mask, 1)) != 0;
}

inline VDouble
vgather(const double* base, VDouble idx, VBool active, double fallback)
{
    // NEON has no gather; emulate lane-wise without touching memory
    // behind masked-off lanes.
    double out[2] = {fallback, fallback};
    if (vgetq_lane_u64(active, 0) != 0) {
        out[0] = base[static_cast<std::int64_t>(vgetq_lane_f64(idx, 0))];
    }
    if (vgetq_lane_u64(active, 1) != 0) {
        out[1] = base[static_cast<std::int64_t>(vgetq_lane_f64(idx, 1))];
    }
    return vld1q_f64(out);
}

inline void
prefetch_read(const void* p)
{
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
}

// ---- f32 half (SGNS kernels) ----

inline constexpr std::size_t kF32Lanes = 4;

using VFloat = float32x4_t;
using VFBool = uint32x4_t;

inline VFloat fsplat(float x) { return vdupq_n_f32(x); }
inline VFloat fload(const float* p) { return vld1q_f32(p); }
inline void fstore(float* p, VFloat v) { vst1q_f32(p, v); }
inline VFloat fadd(VFloat a, VFloat b) { return vaddq_f32(a, b); }
inline VFloat fsub(VFloat a, VFloat b) { return vsubq_f32(a, b); }
inline VFloat fmul(VFloat a, VFloat b) { return vmulq_f32(a, b); }
/// NEON vmin/vmax propagate NaN instead of selecting the second
/// operand; fgather below converts NaN indices to 0 (vcvtq semantics),
/// so a NaN lane still cannot read out of bounds.
inline VFloat fmin(VFloat a, VFloat b) { return vminq_f32(a, b); }
inline VFloat fmax(VFloat a, VFloat b) { return vmaxq_f32(a, b); }
inline VFBool fle(VFloat a, VFloat b) { return vcleq_f32(a, b); }
/// Unordered !(a < b): true when a >= b or either operand is NaN.
inline VFBool fnlt(VFloat a, VFloat b)
{
    return vmvnq_u32(vcltq_f32(a, b));
}
inline VFloat
fselect(VFBool mask, VFloat a, VFloat b)
{
    return vbslq_f32(mask, a, b);
}
inline float fhsum(VFloat v) { return vaddvq_f32(v); }
inline VFloat
fgather(const float* base, VFloat idx)
{
    // No NEON gather; convert in-register (NaN → 0, defined) and read
    // lane-wise.
    const int32x4_t vi = vcvtq_s32_f32(idx);
    float out[4];
    out[0] = base[vgetq_lane_s32(vi, 0)];
    out[1] = base[vgetq_lane_s32(vi, 1)];
    out[2] = base[vgetq_lane_s32(vi, 2)];
    out[3] = base[vgetq_lane_s32(vi, 3)];
    return vld1q_f32(out);
}

#else // scalar fallback

inline constexpr std::size_t kF64Lanes = 4;
inline constexpr const char* kIsaName = "scalar";

struct VDouble
{
    double lane[kF64Lanes];
};
struct VBool
{
    bool lane[kF64Lanes];
};

inline VDouble
vsplat(double x)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = x;
    }
    return v;
}
inline VDouble
vload(const double* p)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = p[i];
    }
    return v;
}
inline void
vstore(double* p, VDouble v)
{
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        p[i] = v.lane[i];
    }
}
inline VDouble
vadd(VDouble a, VDouble b)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = a.lane[i] + b.lane[i];
    }
    return v;
}
inline VDouble
vsub(VDouble a, VDouble b)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = a.lane[i] - b.lane[i];
    }
    return v;
}
inline VDouble
vmul(VDouble a, VDouble b)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = a.lane[i] * b.lane[i];
    }
    return v;
}
inline VDouble
vmin(VDouble a, VDouble b)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return v;
}
inline VDouble
vfloor(VDouble a)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = std::floor(a.lane[i]);
    }
    return v;
}
inline VBool
vlt(VDouble a, VDouble b)
{
    VBool m;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        m.lane[i] = a.lane[i] < b.lane[i];
    }
    return m;
}
inline VBool
vle(VDouble a, VDouble b)
{
    VBool m;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        m.lane[i] = a.lane[i] <= b.lane[i];
    }
    return m;
}
inline VBool
vgt(VDouble a, VDouble b)
{
    VBool m;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        m.lane[i] = a.lane[i] > b.lane[i];
    }
    return m;
}
inline VBool
vand(VBool a, VBool b)
{
    VBool m;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        m.lane[i] = a.lane[i] && b.lane[i];
    }
    return m;
}
inline VDouble
vselect(VBool mask, VDouble a, VDouble b)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = mask.lane[i] ? a.lane[i] : b.lane[i];
    }
    return v;
}
inline bool
vany(VBool mask)
{
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        if (mask.lane[i]) {
            return true;
        }
    }
    return false;
}
inline VDouble
vgather(const double* base, VDouble idx, VBool active, double fallback)
{
    VDouble v;
    for (std::size_t i = 0; i < kF64Lanes; ++i) {
        v.lane[i] = active.lane[i]
                        ? base[static_cast<std::int64_t>(idx.lane[i])]
                        : fallback;
    }
    return v;
}
inline void
prefetch_read(const void* p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

// ---- f32 half (SGNS kernels) ----

inline constexpr std::size_t kF32Lanes = 8;

struct VFloat
{
    float lane[kF32Lanes];
};
struct VFBool
{
    bool lane[kF32Lanes];
};

inline VFloat
fsplat(float x)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = x;
    }
    return v;
}
inline VFloat
fload(const float* p)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = p[i];
    }
    return v;
}
inline void
fstore(float* p, VFloat v)
{
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        p[i] = v.lane[i];
    }
}
inline VFloat
fadd(VFloat a, VFloat b)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = a.lane[i] + b.lane[i];
    }
    return v;
}
inline VFloat
fsub(VFloat a, VFloat b)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = a.lane[i] - b.lane[i];
    }
    return v;
}
inline VFloat
fmul(VFloat a, VFloat b)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = a.lane[i] * b.lane[i];
    }
    return v;
}
/// min(a, b); returns b when a is NaN (std::fmin NaN-quieting rule
/// matches the AVX2 second-operand behavior for our clamp usage).
inline VFloat
fmin(VFloat a, VFloat b)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = std::fmin(a.lane[i], b.lane[i]);
    }
    return v;
}
/// max(a, b); returns b when a is NaN.
inline VFloat
fmax(VFloat a, VFloat b)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = std::fmax(a.lane[i], b.lane[i]);
    }
    return v;
}
inline VFBool
fle(VFloat a, VFloat b)
{
    VFBool m;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        m.lane[i] = a.lane[i] <= b.lane[i];
    }
    return m;
}
/// Unordered !(a < b): true when a >= b or either operand is NaN.
inline VFBool
fnlt(VFloat a, VFloat b)
{
    VFBool m;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        m.lane[i] = !(a.lane[i] < b.lane[i]);
    }
    return m;
}
inline VFloat
fselect(VFBool mask, VFloat a, VFloat b)
{
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = mask.lane[i] ? a.lane[i] : b.lane[i];
    }
    return v;
}
inline float
fhsum(VFloat v)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        sum += v.lane[i];
    }
    return sum;
}
inline VFloat
fgather(const float* base, VFloat idx)
{
    // Indices are clamped by the caller and NaN lanes were already
    // forced to 0 by fmax, so the int cast is always in range.
    VFloat v;
    for (std::size_t i = 0; i < kF32Lanes; ++i) {
        v.lane[i] = base[static_cast<std::int32_t>(idx.lane[i])];
    }
    return v;
}

#endif

} // namespace tgl::util::simd
