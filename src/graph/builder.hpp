/// @file
/// Edge list -> CSR construction.
#pragma once

#include "graph/edge_list.hpp"
#include "graph/temporal_graph.hpp"

namespace tgl::graph {

/// Options controlling CSR construction.
struct BuildOptions
{
    /// Force a node count larger than max id + 1 (isolated tail nodes).
    NodeId min_num_nodes = 0;
    /// Add the reverse of every edge before building (undirected view).
    bool symmetrize = false;
    /// Drop self loops before building.
    bool remove_self_loops = false;
};

/// Build an immutable CSR temporal graph from an edge list.
///
/// Multi-edges are preserved; each vertex's neighbor slice comes out
/// sorted by timestamp (counting sort over sources, then a per-slice
/// stable sort by time). Runs in O(|E| + |V|) plus the per-slice sorts.
class GraphBuilder
{
  public:
    /// One-shot build.
    static TemporalGraph build(const EdgeList& edges,
                               const BuildOptions& options = {});
};

} // namespace tgl::graph
