/// @file
/// Erdős–Rényi temporal graph generator, G(n, m) variant.
///
/// This is the generator behind the paper's hardware-study inputs
/// (synthetic ER graphs of 1M nodes x 100k..200M edges, SVI-C / Table
/// III), replacing the artifact's Python networkx script.
#pragma once

#include "gen/timestamps.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>

namespace tgl::gen {

/// Parameters for G(n, m).
struct ErdosRenyiParams
{
    graph::NodeId num_nodes = 0;
    graph::EdgeId num_edges = 0;
    TimestampModel timestamps = TimestampModel::kUniform;
    bool allow_self_loops = false;
    std::uint64_t seed = 1;
};

/// Generate a directed temporal G(n, m): each of m edges picks its
/// endpoints uniformly at random. Multi-edges may occur (they are valid
/// temporal interactions). Throws on num_nodes == 0 with edges requested.
graph::EdgeList generate_erdos_renyi(const ErdosRenyiParams& params);

} // namespace tgl::gen
