/// Unit tests for the obs metrics registry and trace spans.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include "util/error.hpp"
#include "util/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tgl::obs {
namespace {

TEST(Registry, CounterAccumulates)
{
    Registry registry;
    const Counter counter = registry.counter("test.counter");
    counter.add(3);
    counter.inc();
    EXPECT_EQ(registry.snapshot().value("test.counter"), 4.0);
}

TEST(Registry, DefaultHandleIsNoOp)
{
    const Counter counter;
    counter.inc(); // must not crash
    const Gauge gauge;
    gauge.set(1.0);
    const Histogram histogram;
    histogram.observe(1.0);
}

TEST(Registry, RegistrationIsIdempotentByName)
{
    Registry registry;
    registry.counter("test.shared").add(2);
    registry.counter("test.shared").add(5);
    const MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.value("test.shared"), 7.0);
    // One metric, not two.
    std::size_t matches = 0;
    for (const MetricValue& metric : snapshot.metrics) {
        matches += metric.name == "test.shared";
    }
    EXPECT_EQ(matches, 1u);
}

TEST(Registry, KindMismatchIsAnError)
{
    Registry registry;
    registry.counter("test.kind");
    EXPECT_THROW(registry.gauge("test.kind"), util::Error);
    EXPECT_THROW(registry.histogram("test.kind", {1.0}), util::Error);
}

TEST(Registry, GaugeKeepsLastWrite)
{
    Registry registry;
    const Gauge gauge = registry.gauge("test.gauge");
    gauge.set(1.5);
    gauge.set(-2.25);
    EXPECT_EQ(registry.snapshot().value("test.gauge"), -2.25);
}

TEST(Registry, HistogramBucketsCountAndSum)
{
    Registry registry;
    const Histogram histogram =
        registry.histogram("test.hist", {1.0, 10.0, 100.0});
    histogram.observe(0.5);   // bucket 0 (<= 1)
    histogram.observe(1.0);   // bucket 0 (inclusive upper bound)
    histogram.observe(7.0);   // bucket 1
    histogram.observe(500.0); // overflow bucket
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue* metric = snapshot.find("test.hist");
    ASSERT_NE(metric, nullptr);
    ASSERT_EQ(metric->bounds.size(), 3u);
    ASSERT_EQ(metric->bucket_counts.size(), 4u);
    EXPECT_EQ(metric->bucket_counts[0], 2u);
    EXPECT_EQ(metric->bucket_counts[1], 1u);
    EXPECT_EQ(metric->bucket_counts[2], 0u);
    EXPECT_EQ(metric->bucket_counts[3], 1u);
    EXPECT_EQ(metric->count, 4u);
    EXPECT_DOUBLE_EQ(metric->sum, 508.5);
}

TEST(Registry, HistogramBoundsMustBeStrictlyIncreasing)
{
    Registry registry;
    EXPECT_THROW(registry.histogram("test.bad", {}), util::Error);
    EXPECT_THROW(registry.histogram("test.bad2", {1.0, 1.0}),
                 util::Error);
}

TEST(Registry, CountsFromManyThreadsMergeExactly)
{
    Registry registry;
    const Counter counter = registry.counter("test.parallel");
    constexpr std::size_t kItems = 20000;
    util::parallel_for(0, kItems,
                       [&](std::size_t) { counter.inc(); });
    EXPECT_EQ(registry.snapshot().value("test.parallel"),
              static_cast<double>(kItems));
}

TEST(Registry, ResetZeroesButKeepsInstruments)
{
    Registry registry;
    const Counter counter = registry.counter("test.reset");
    const Histogram histogram = registry.histogram("test.reset.h", {1.0});
    counter.add(9);
    histogram.observe(0.5);
    registry.reset();
    EXPECT_EQ(registry.snapshot().value("test.reset"), 0.0);
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue* metric = snapshot.find("test.reset.h");
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->count, 0u);
    // Old handles still feed the same (now zeroed) cells.
    counter.add(2);
    EXPECT_EQ(registry.snapshot().value("test.reset"), 2.0);
}

TEST(Registry, JsonSnapshotContainsEveryKind)
{
    Registry registry;
    registry.counter("c").add(1);
    registry.gauge("g").set(2.5);
    registry.histogram("h", {1.0}).observe(0.5);
    const std::string json = registry.snapshot().to_json();
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"c\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
}

TEST(Trace, SpanRecordsIntoActiveSession)
{
    TraceSession session;
    session.start();
    {
        const Span span("test.span");
    }
    session.stop();
    const std::vector<TraceEvent> events = session.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "test.span");
    EXPECT_GE(events[0].ts_us, 0.0);
    EXPECT_GE(events[0].dur_us, 0.0);
    EXPECT_EQ(events[0].tid, 1u);
}

TEST(Trace, SpanWithoutSessionIsNoOp)
{
    ASSERT_EQ(TraceSession::current(), nullptr);
    const Span span("test.orphan"); // must not crash or record
}

TEST(Trace, SecondSessionIsRejectedWhileActive)
{
    TraceSession first;
    first.start();
    TraceSession second;
    EXPECT_THROW(second.start(), util::Error);
    first.stop();
    second.start();
    second.stop();
}

TEST(Trace, ChromeJsonIsLoadableShape)
{
    TraceSession session;
    session.start();
    {
        const Span span("phase \"quoted\"");
    }
    session.stop();
    const std::string json = session.to_chrome_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

TEST(Trace, ThreadsGetDenseTids)
{
    TraceSession session;
    session.start();
    std::thread worker([] { const Span span("test.worker"); });
    worker.join();
    {
        const Span span("test.main");
    }
    session.stop();
    const std::vector<TraceEvent> events = session.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].tid, events[1].tid);
    EXPECT_LE(events[0].tid, 2u);
    EXPECT_LE(events[1].tid, 2u);
}

} // namespace
} // namespace tgl::obs
