#include "core/link_prediction.hpp"

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#include <cmath>

namespace tgl::core {

std::vector<std::string>
ClassifierConfig::validate() const
{
    std::vector<std::string> problems;
    if (hidden_dim == 0) {
        problems.push_back("hidden_dim must be >= 1");
    }
    if (hidden1 == 0 || hidden2 == 0) {
        problems.push_back("hidden1 and hidden2 must be >= 1");
    }
    if (max_epochs == 0) {
        problems.push_back("max_epochs must be >= 1");
    }
    if (batch_size == 0) {
        problems.push_back("batch_size must be >= 1");
    }
    if (!(lr > 0.0f) || !std::isfinite(lr)) {
        problems.push_back("lr must be positive and finite, got " +
                           std::to_string(lr));
    }
    if (!std::isfinite(momentum) || momentum < 0.0f || momentum >= 1.0f) {
        problems.push_back("momentum must be in [0, 1), got " +
                           std::to_string(momentum));
    }
    if (!std::isfinite(weight_decay) || weight_decay < 0.0f) {
        problems.push_back("weight_decay must be >= 0 and finite");
    }
    if (!std::isfinite(target_valid_accuracy) ||
        target_valid_accuracy <= 0.0 || target_valid_accuracy > 1.0) {
        problems.push_back(
            "target_valid_accuracy must be in (0, 1], got " +
            std::to_string(target_valid_accuracy));
    }
    if (residual && residual_blocks == 0) {
        problems.push_back(
            "residual_blocks must be >= 1 when residual is set");
    }
    return problems;
}

TaskResult
run_link_prediction(const LinkSplits& splits,
                    const embed::Embedding& embedding,
                    const ClassifierConfig& config,
                    ClassifierCheckpoint* checkpoint)
{
    TaskResult result;
    rng::Random random(config.seed);

    const nn::TaskDataset train_set =
        make_edge_dataset(splits.train, embedding);
    const nn::TaskDataset valid_set =
        make_edge_dataset(splits.valid, embedding);
    const nn::TaskDataset test_set =
        make_edge_dataset(splits.test, embedding);
    check_finite_features(train_set, "link prediction");
    check_finite_features(valid_set, "link prediction");
    check_finite_features(test_set, "link prediction");

    nn::Mlp net =
        config.residual
            ? nn::make_residual_link_predictor(2 * embedding.dim(),
                                               config.hidden_dim,
                                               config.residual_blocks,
                                               random)
            : nn::make_link_predictor(2 * embedding.dim(),
                                      config.hidden_dim, random);
    nn::Sgd optimizer(net.parameters(), config.lr, config.momentum,
                      config.weight_decay);
    nn::DataLoader loader(train_set, config.batch_size, true,
                          config.seed ^ 0x11);

    const bool restored =
        checkpoint != nullptr && checkpoint->manager != nullptr &&
        checkpoint->manager->load_classifier(
            checkpoint->name, checkpoint->fingerprint, net);
    if (checkpoint != nullptr) {
        checkpoint->loaded = restored;
    }

    const obs::Span span("classifier.link_prediction");
    // Shared handles: registration interns by name, so both classifier
    // entry points feed the same registry cells.
    obs::Registry& registry = obs::Registry::global();
    obs::Counter epochs_counter = registry.counter("classifier.epochs");
    obs::Counter batches_counter = registry.counter("classifier.batches");
    obs::Histogram batch_hist = registry.histogram(
        "classifier.batch_seconds",
        {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
         0.05, 0.1, 0.25, 0.5, 1.0});

    util::Timer train_timer;
    const auto train_begin = std::chrono::steady_clock::now();
    // The MLP runs on the calling thread, so a plain per-thread scope
    // captures the whole training loop.
    obs::PerfScope train_perf("train");
    nn::Tensor batch_features;
    std::vector<float> batch_binary;
    std::vector<std::uint32_t> batch_classes;

    for (unsigned epoch = 0; !restored && epoch < config.max_epochs;
         ++epoch) {
        util::check_cancellation("the classifier epoch loop");
        const obs::Span epoch_span("classifier.epoch");
        loader.start_epoch();
        double epoch_loss = 0.0;
        for (std::size_t b = 0; b < loader.num_batches(); ++b) {
            util::Timer batch_timer;
            loader.batch(b, batch_features, batch_binary, batch_classes);
            const nn::Tensor& output = net.forward(batch_features);
            const nn::LossResult loss =
                nn::binary_cross_entropy(output, batch_binary);
            if (!std::isfinite(loss.loss)) {
                util::fatal(util::strcat(
                    "link prediction: non-finite training loss at epoch ",
                    epoch + 1, ", batch ", b + 1,
                    " — the classifier diverged (lower lr or check the "
                    "input features)"));
            }
            epoch_loss += loss.loss;
            optimizer.zero_grad();
            net.backward(loss.grad);
            optimizer.step();
            batches_counter.inc();
            batch_hist.observe(batch_timer.seconds());
        }
        epochs_counter.inc();
        result.final_train_loss =
            epoch_loss / static_cast<double>(loader.num_batches());
        result.epochs_run = epoch + 1;
        registry.gauge("classifier.train_loss")
            .set(result.final_train_loss);

        // Validation-accuracy early stop (the artifact's target
        // accuracy knob).
        if (config.target_valid_accuracy < 1.0 && !splits.valid.empty()) {
            const nn::Tensor& valid_out =
                net.forward(valid_set.features);
            result.valid_accuracy =
                binary_accuracy(valid_out, valid_set.binary_labels);
            if (result.valid_accuracy >= config.target_valid_accuracy) {
                break;
            }
        }
    }
    result.train_seconds = train_timer.seconds();
    const obs::PerfSample train_sample = train_perf.close();
    if (obs::TraceSession* session = obs::TraceSession::current()) {
        session->record("pipeline.train", train_begin,
                        std::chrono::steady_clock::now(),
                        obs::perf_span_args(train_sample));
    }
    result.seconds_per_epoch =
        result.epochs_run == 0
            ? 0.0
            : result.train_seconds / result.epochs_run;

    if (!restored && checkpoint != nullptr &&
        checkpoint->manager != nullptr) {
        checkpoint->manager->store_classifier(
            checkpoint->name, checkpoint->fingerprint, net);
        checkpoint->stored = true;
    }

    if (!splits.valid.empty()) {
        const nn::Tensor& valid_out = net.forward(valid_set.features);
        result.valid_accuracy =
            binary_accuracy(valid_out, valid_set.binary_labels);
    }

    registry.gauge("classifier.valid_accuracy")
        .set(result.valid_accuracy);

    util::Timer test_timer;
    const obs::Span test_span("pipeline.test", "test");
    const nn::Tensor& test_out = net.forward(test_set.features);
    result.test_accuracy =
        binary_accuracy(test_out, test_set.binary_labels);
    result.test_auc = roc_auc(test_out, test_set.binary_labels);
    result.test_seconds = test_timer.seconds();
    return result;
}

} // namespace tgl::core
