#include "graph/edge_list.hpp"

#include <algorithm>
#include <utility>

namespace tgl::graph {

void
EdgeList::sort_by_time()
{
    std::stable_sort(edges_.begin(), edges_.end(),
                     [](const TemporalEdge& a, const TemporalEdge& b) {
                         return a.time < b.time;
                     });
}

bool
EdgeList::is_time_sorted() const
{
    return std::is_sorted(edges_.begin(), edges_.end(),
                          [](const TemporalEdge& a, const TemporalEdge& b) {
                              return a.time < b.time;
                          });
}

NodeId
EdgeList::max_node_id() const
{
    if (edges_.empty()) {
        return kInvalidNode;
    }
    NodeId max_id = 0;
    for (const TemporalEdge& e : edges_) {
        max_id = std::max({max_id, e.src, e.dst});
    }
    return max_id;
}

NodeId
EdgeList::num_nodes() const
{
    const NodeId max_id = max_node_id();
    return max_id == kInvalidNode ? 0 : max_id + 1;
}

std::pair<Timestamp, Timestamp>
EdgeList::normalize_timestamps()
{
    if (edges_.empty()) {
        return {0.0, 0.0};
    }
    Timestamp lo = edges_.front().time;
    Timestamp hi = edges_.front().time;
    for (const TemporalEdge& e : edges_) {
        lo = std::min(lo, e.time);
        hi = std::max(hi, e.time);
    }
    const Timestamp span = hi - lo;
    for (TemporalEdge& e : edges_) {
        e.time = span > 0.0 ? (e.time - lo) / span : 0.0;
    }
    return {lo, hi};
}

std::size_t
EdgeList::remove_self_loops()
{
    const std::size_t before = edges_.size();
    edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                                [](const TemporalEdge& e) {
                                    return e.src == e.dst;
                                }),
                 edges_.end());
    return before - edges_.size();
}

void
EdgeList::symmetrize()
{
    const std::size_t original = edges_.size();
    edges_.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
        const TemporalEdge e = edges_[i];
        edges_.push_back({e.dst, e.src, e.time});
    }
}

} // namespace tgl::graph
