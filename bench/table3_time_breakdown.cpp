/// @file
/// Table III reproduction: end-to-end phase time breakdown across
/// synthetic Erdős–Rényi graphs of growing edge counts, for the
/// standard CPU execution and the batched "GPU execution model"
/// word2vec (the cross-platform comparison column).
///
/// Paper findings: (1) classifier training dominates end-to-end time;
/// (2) every phase grows monotonically with graph size; (3) the
/// batched/GPU execution loses at small sizes (fixed overheads) and
/// wins at large sizes. The default run scales the paper's 1M-node
/// configs down 100x; pass --node-scale 1 for paper size.
///
/// --overlap-ab swaps the batched column for an overlapped-front-end
/// A/B: each row runs twice with --overlap off/on and reports the
/// fused walk+w2v wall time and the resulting speedup.
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("table3_time_breakdown",
                        "Table III: phase time breakdown vs graph size");
    cli.add_flag("node-scale", "0.01",
                 "scale on the paper's 1M-node configs");
    cli.add_flag("max-rows", "6", "how many of the 9 size rows to run");
    cli.add_flag("seed", "1", "random seed");
    cli.add_flag("sgns-backend", "auto",
                 "SGNS kernel backend: auto | scalar | simd");
    cli.add_switch("overlap-ab",
                   "replace the batched column with an overlapped "
                   "walk+w2v A/B (off vs on) per row");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const double node_scale = cli.get_double("node-scale");
        const long long max_rows = cli.get_int("max-rows");
        const auto seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
        const bool overlap_ab = cli.get_switch("overlap-ab");
        const auto sgns_backend = embed::kernels::parse_sgns_backend(
            cli.get_string("sgns-backend"));
        if (!sgns_backend) {
            util::fatal("--sgns-backend expects auto | scalar | simd");
        }

        // Paper rows: 1M nodes x {100k, 1M, 2M, 5M, 10M, 20M, 50M,
        // 100M, 200M} edges.
        const double edge_multipliers[] = {0.1, 1, 2, 5, 10, 20, 50,
                                           100, 200};
        const auto nodes = static_cast<graph::NodeId>(1e6 * node_scale);

        if (overlap_ab) {
            std::printf("# Table III variant — ER graphs, %s nodes; "
                        "overlapped walk+w2v front end A/B (off vs "
                        "on)\n",
                        util::format_count(nodes).c_str());
            std::printf("%-14s %12s %12s %12s %10s\n", "graph",
                        "seq wall(s)", "ovl wall(s)", "speedup",
                        "total(s)");
        } else {
            std::printf("# Table III reproduction — ER graphs, %s nodes "
                        "(paper: 1M), per-epoch train times; cpu = "
                        "Hogwild w2v, batched = GPU execution model\n",
                        util::format_count(nodes).c_str());
            std::printf("%-14s %10s %10s %12s %12s %12s %10s\n",
                        "graph", "rwalk(s)", "w2v-cpu(s)", "w2v-batch(s)",
                        "train/ep(s)", "test(s)", "total(s)");
        }

        for (int row = 0;
             row < static_cast<int>(std::size(edge_multipliers)) &&
             row < max_rows;
             ++row) {
            const auto edge_count = static_cast<graph::EdgeId>(
                1e6 * edge_multipliers[row] * node_scale);
            const auto edges = gen::generate_erdos_renyi(
                {.num_nodes = nodes, .num_edges = edge_count,
                 .seed = seed});

            core::PipelineConfig config;
            config.walk.walks_per_node = 10;
            config.walk.max_length = 6;
            config.walk.seed = seed;
            config.sgns.dim = 8;
            config.sgns.epochs = 1;
            config.sgns.seed = seed;
            config.sgns.backend = *sgns_backend;
            config.classifier.max_epochs = 3;

            if (overlap_ab) {
                config.overlap = core::OverlapMode::kOff;
                const core::PipelineResult seq =
                    core::run_link_prediction_pipeline(edges, config);
                config.overlap = core::OverlapMode::kOn;
                const core::PipelineResult ovl =
                    core::run_link_prediction_pipeline(edges, config);

                const double seq_wall =
                    seq.times.random_walk + seq.times.word2vec;
                const double ovl_wall = ovl.times.walk_w2v_wall > 0.0
                                            ? ovl.times.walk_w2v_wall
                                            : ovl.times.random_walk +
                                                  ovl.times.word2vec;
                std::printf("%-3s,%-9s %12.3f %12.3f %11.2fx %10.3f\n",
                            util::format_count(nodes).c_str(),
                            util::format_count(edge_count).c_str(),
                            seq_wall, ovl_wall,
                            ovl_wall > 0.0 ? seq_wall / ovl_wall : 0.0,
                            ovl.times.total());
                continue;
            }

            const core::PipelineResult cpu =
                core::run_link_prediction_pipeline(edges, config);

            config.w2v_mode = core::W2vMode::kBatched;
            config.w2v_batch_size = 16384;
            const core::PipelineResult batched =
                core::run_link_prediction_pipeline(edges, config);

            std::printf(
                "%-3s,%-9s %10.3f %10.3f %12.3f %12.3f %12.3f %10.3f\n",
                util::format_count(nodes).c_str(),
                util::format_count(edge_count).c_str(),
                cpu.times.random_walk, cpu.times.word2vec,
                batched.times.word2vec, cpu.times.train_per_epoch,
                cpu.times.test, cpu.times.total());
        }
        if (overlap_ab) {
            std::printf("\n# speedup > 1 needs >= 2 hardware threads "
                        "and phase costs within ~4x of each other; on "
                        "one core the overlapped run pays queue "
                        "overhead for no concurrency.\n");
        } else {
            std::printf("\n# paper shape check: train dominates total "
                        "time; all phases grow with edges; the batched "
                        "w2v column overtakes the cpu column as graphs "
                        "grow.\n");
        }
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
