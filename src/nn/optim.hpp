/// @file
/// Optimizers. The paper trains both classifiers with SGD (SIV-B);
/// momentum and weight decay are provided for the extension studies.
#pragma once

#include "nn/layers.hpp"

#include <vector>

namespace tgl::nn {

/// Stochastic gradient descent over a set of parameters.
class Sgd
{
  public:
    /// @param parameters  borrowed; must outlive the optimizer
    /// @param lr          learning rate
    /// @param momentum    classical momentum (0 disables)
    /// @param weight_decay L2 coefficient (0 disables)
    Sgd(std::vector<Parameter*> parameters, float lr,
        float momentum = 0.0f, float weight_decay = 0.0f);

    /// Apply one update from the accumulated gradients.
    void step();

    /// Clear all gradient accumulators.
    void zero_grad();

    float lr() const { return lr_; }
    void set_lr(float lr) { lr_ = lr; }

  private:
    std::vector<Parameter*> parameters_;
    std::vector<Tensor> velocity_;
    float lr_;
    float momentum_;
    float weight_decay_;
};

} // namespace tgl::nn
