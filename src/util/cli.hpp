/// @file
/// Tiny command-line flag parser for the examples and benchmark drivers.
///
/// Supports `--name value` and `--name=value` forms plus boolean
/// switches. Unknown flags are an error so typos surface immediately.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tgl::util {

/// Declarative command-line parser.
///
/// Usage:
/// @code
///   CliParser cli("my_tool", "does things");
///   cli.add_flag("walks", "10", "walks per node");
///   cli.add_switch("verbose", "chatty output");
///   cli.parse(argc, argv);
///   int walks = cli.get_int("walks");
/// @endcode
class CliParser
{
  public:
    CliParser(std::string program, std::string description);

    /// Register a value flag with a default.
    void add_flag(const std::string& name, const std::string& default_value,
                  const std::string& help);

    /// Register a boolean switch (defaults to false).
    void add_switch(const std::string& name, const std::string& help);

    /// Parse argv; throws tgl::util::Error on unknown or malformed flags.
    /// Returns false if --help was requested (help text already printed).
    bool parse(int argc, const char* const* argv);

    /// Accessors; throw if the flag was never registered.
    std::string get_string(const std::string& name) const;
    long long get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_switch(const std::string& name) const;

    /// Positional arguments left over after flag parsing.
    const std::vector<std::string>& positional() const { return positional_; }

    /// Render the help text.
    std::string help() const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
        bool is_switch = false;
    };

    const Flag& find(const std::string& name) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace tgl::util
