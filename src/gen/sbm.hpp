/// @file
/// Stochastic block model generator with node labels.
///
/// Stand-in for the paper's node-classification datasets (dblp3, dblp5,
/// brain): a temporal graph whose nodes carry class labels correlated
/// with community structure. Edges fall inside a node's community with
/// probability proportional to p_in and across with p_out, so a learner
/// that captures neighborhood structure (the temporal-walk + word2vec
/// front-end) can recover the labels — which is exactly the property
/// the real co-author / brain-connectivity datasets have.
#pragma once

#include "gen/timestamps.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>
#include <vector>

namespace tgl::gen {

/// Parameters of the labeled SBM.
struct SbmParams
{
    graph::NodeId num_nodes = 0;
    graph::EdgeId num_edges = 0;
    unsigned num_communities = 2;
    /// Odds that an edge endpoint pair is intra-community. 0.5 means
    /// no structure; 0.9 means strongly assortative.
    double intra_probability = 0.85;
    /// Fraction of node labels flipped to a random other class,
    /// modeling label noise in real data.
    double label_noise = 0.05;
    TimestampModel timestamps = TimestampModel::kBursty;
    std::uint64_t seed = 1;
};

/// A labeled temporal graph.
struct LabeledGraph
{
    graph::EdgeList edges;
    std::vector<std::uint32_t> labels; ///< one label per node
    unsigned num_classes = 0;
};

/// Generate a labeled SBM temporal graph. Nodes are assigned to
/// communities round-robin (balanced classes); labels equal community
/// ids before noise.
LabeledGraph generate_sbm(const SbmParams& params);

/// Parameters of the time-drifting SBM.
struct DriftingSbmParams
{
    graph::NodeId num_nodes = 0;
    graph::EdgeId num_edges = 0;
    unsigned num_communities = 2;
    double intra_probability = 0.9;
    /// Fraction of nodes that switch to a different community at a
    /// uniformly random time.
    double switch_fraction = 0.5;
    std::uint64_t seed = 1;
};

/// Generate a *drifting* SBM: each edge connects nodes by their
/// community membership AT THE EDGE'S TIMESTAMP, and a fraction of
/// nodes migrates to another community mid-stream. Labels report the
/// FINAL membership.
///
/// This is the synthetic testbed where temporal validity is provably
/// informative: recent edges reflect current communities while old
/// edges reflect stale ones, so time-respecting walks (which can only
/// move forward in time, and whose Eq. 1 bias favors later edges) see
/// the current structure, whereas static walks blend both — the
/// mechanism behind CTDNE's advantage on evolving real networks.
LabeledGraph generate_drifting_sbm(const DriftingSbmParams& params);

} // namespace tgl::gen
