/// @file
/// Batched (SIMD) temporal walker engine — N in-flight walkers per
/// thread in struct-of-arrays form.
///
/// The scalar engine advances one walker, one binary search, one RNG
/// draw at a time; the paper's characterization shows that serialized
/// sampling loop dominating end-to-end cost. This module restructures
/// the hot loop around a WalkerBatch of `width` lanes that advance in
/// lockstep: per step, the temporal-suffix search and the prefix-CDF
/// inversion over the transition cache each run as branchless
/// vectorized binary searches across all live lanes (util/simd.hpp),
/// with software prefetch of each lane's neighbor range issued before
/// the searches touch it.
///
/// Reproducibility contract (DESIGN.md §12):
///   - Lanes are fully independent: lane L of a batch covering slots
///     [s, s+width) is exactly slot s+L, seeds its own RNG stream as
///     mix_seed(seed, s+L), and consumes draws only for its own steps.
///     The corpus for a given (config, graph, width) is therefore
///     bit-identical for ANY thread count and ANY shard partition.
///   - batch_width == 1 never enters this module; the engine routes it
///     through the unchanged scalar path, byte-identical to the
///     pre-batching engine.
///   - Widths > 1 draw from the same per-step distribution as the
///     scalar sampler but consume the RNG stream differently (exactly
///     one uniform per step with >= 1 candidate, vs. the scalar path's
///     kind-dependent pattern), so corpora across widths agree in law,
///     not byte-for-byte — same contract as the PR-2 cache-on/off
///     divergence, and why batch_width participates in the walk
///     fingerprint (core/checkpoint.cpp).
#pragma once

#include "graph/temporal_graph.hpp"
#include "rng/random.hpp"
#include "walk/config.hpp"
#include "walk/engine.hpp"
#include "walk/transition_cache.hpp"

#include <cstddef>
#include <cstdint>

namespace tgl::walk {

/// Hard cap on lanes per batch (sizes the SoA arrays).
inline constexpr unsigned kMaxBatchWidth = 64;

/// Lanes used when batch_width = 0 (auto) resolves to batched mode.
/// Wide batches win because the lockstep searches interleave one
/// halving step per 4-lane chunk per round: 64 lanes keep up to 16
/// independent gathers in flight, hiding the probe latency that
/// serializes narrow batches (w8 measures *slower* than scalar on
/// R-MAT; w64 is the fastest measured width).
inline constexpr unsigned kAutoBatchWidth = 64;

/// Graphs with >= 2^30 edges fall back to scalar: the AVX2 gather
/// consumes 32-bit signed indices and the timestamp gather doubles the
/// edge index (16-byte Neighbor stride), so 2 * edge_id + 1 must stay
/// below 2^31.
inline constexpr std::uint64_t kMaxBatchedEdges = std::uint64_t{1} << 30;

/// Compile-time selected SIMD backend ("avx2" | "neon" | "scalar").
const char* batch_isa_name();

/// f64 lanes per vector of the selected backend (4 / 2 / 4).
std::size_t batch_f64_lanes();

/// Struct-of-arrays state of up to kMaxBatchWidth in-flight walkers.
/// Arrays the lockstep searches load with SIMD are doubles (indices
/// are exact integers < 2^31) and 64-byte aligned; per-lane bookkeeping
/// the scalar phases touch stays in natural integer types.
struct WalkerBatch
{
    /// Walker clocks (normalized timestamps), one per lane.
    alignas(64) double clock[kMaxBatchWidth] = {};
    /// Lockstep search state: lower bound / remaining length / target.
    alignas(64) double search_lo[kMaxBatchWidth] = {};
    alignas(64) double search_len[kMaxBatchWidth] = {};
    alignas(64) double search_target[kMaxBatchWidth] = {};
    /// Per-step scratch: uniform draw, candidate count, picked index.
    alignas(64) double draw[kMaxBatchWidth] = {};
    alignas(64) double count[kMaxBatchWidth] = {};
    alignas(64) double pick[kMaxBatchWidth] = {};

    /// Current vertex per lane.
    graph::NodeId current[kMaxBatchWidth] = {};
    /// CSR bounds of the lane's temporally-valid suffix.
    std::uint64_t suffix_first[kMaxBatchWidth] = {};
    std::uint64_t slice_end[kMaxBatchWidth] = {};
    /// Tokens emitted so far into the lane's output row.
    std::uint8_t emitted[kMaxBatchWidth] = {};
    /// Lane still walking (not dead-ended, not at max_length).
    bool alive[kMaxBatchWidth] = {};
    /// Per-lane RNG stream, seeded mix_seed(seed, slot).
    rng::Random rng[kMaxBatchWidth];

    /// Live lanes in [0, width); the ragged tail of a slot range may
    /// populate fewer than the configured width.
    unsigned width = 0;
};

/// Resolve the effective lanes-per-batch for one generation run.
/// Returns 1 (scalar path) unless every batching precondition holds:
/// temporal walks, binary neighbor search (the linear-scan ablation
/// pins the paper-faithful scalar loop), a transition cache present
/// for the softmax kinds, and < kMaxBatchedEdges edges. `has_cache`
/// tells the resolver whether the caller holds (or will build) a
/// prefix-CDF cache. batch_width = 0 (auto) resolves to
/// kAutoBatchWidth when eligible.
unsigned resolve_batch_width(const WalkConfig& config,
                             const graph::TemporalGraph& graph,
                             bool has_cache);

/// Slots each batched work item covers, as a multiple of the batch
/// width. Lanes refill from this backlog as their walks retire, so a
/// factor well above 1 keeps occupancy high even when most temporal
/// walks die long before max_length (the refill order cannot change
/// walk bytes — slots are RNG-independent).
inline constexpr std::size_t kBatchRefillFactor = 8;

/// Walk every slot of @p slots with a pool of up to @p width
/// (<= kMaxBatchWidth) lockstep lanes; lanes refill from the range as
/// their walks retire. Slot s writes its tokens into
/// @p rows + (s - slots.begin) * row_stride and its token count into
/// @p lengths[s - slots.begin]. Walks below config.min_walk_tokens
/// are NOT filtered here — the caller compacts, exactly like the
/// scalar block path. @p cache may be null only for kUniform /
/// kLinear.
void run_walk_batch(const graph::TemporalGraph& graph,
                    const WalkConfig& config, const TransitionCache* cache,
                    SlotRange slots, unsigned width, graph::NodeId* rows,
                    std::size_t row_stride, std::uint8_t* lengths,
                    WalkProfile& profile);

/// Log the dispatched SIMD backend once per process through the obs
/// layer (simd.dispatch.<isa> counter + one inform line). Safe to call
/// per generation; only the first call emits.
void log_batch_dispatch(unsigned width);

} // namespace tgl::walk
