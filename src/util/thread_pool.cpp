#include "util/thread_pool.hpp"

#include "util/error.hpp"

#include <cstdint>

namespace tgl::util {

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) {
            num_threads = 1;
        }
    }
    workers_.reserve(num_threads);
    for (unsigned rank = 0; rank < num_threads; ++rank) {
        workers_.emplace_back([this, rank] { worker_loop(rank); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::run(unsigned parties, const std::function<void(unsigned)>& fn)
{
    if (parties == 0) {
        return;
    }
    if (parties > size()) {
        parties = size();
    }
    if (parties == 1) {
        // Degenerate team: run inline, no dispatch overhead.
        fn(0);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    TGL_ASSERT(job_ == nullptr && "ThreadPool::run is not reentrant");
    job_ = &fn;
    job_parties_ = parties;
    pending_ = parties;
    first_error_ = nullptr;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::worker_loop(unsigned rank)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(unsigned)>* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ ||
                       (job_ != nullptr && generation_ != seen_generation &&
                        rank < job_parties_);
            });
            if (shutdown_) {
                return;
            }
            seen_generation = generation_;
            job = job_;
        }
        std::exception_ptr error;
        try {
            (*job)(rank);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !first_error_) {
                first_error_ = error;
            }
            if (--pending_ == 0) {
                done_cv_.notify_all();
            }
        }
    }
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace tgl::util
