/// @file
/// Fig. 6 reproduction: cumulative word2vec optimizations.
///
/// The paper stacks four optimizations onto the prior GPU word2vec
/// [86] and reports cumulative speedup on wiki-talk (220.5x end to
/// end, no accuracy loss):
///   baseline  : per-sentence launch, cache-line padding, per-element
///               (uncoalesced) access
///   +Batch    : 16k-sentence batches
///   +No-pad   : remove the cache-line padding (wasteful at d = 8)
///   +Coalesce : threads cooperate across the embedding dimension
///   +Par-red  : parallel reduction for the dot products
///
/// CPU model mapping (see DESIGN.md): padding = row_stride 16 vs 8;
/// Coalesce+Par-red = vectorized contiguous inner loops vs forced
/// scalar; batching = parallel region per batch vs per sentence.
/// Coalesce and Par-red collapse into one toggle here because on a CPU
/// both manifest as SIMD over the dimension.
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("fig06_w2v_optimizations",
                        "Fig. 6: cumulative word2vec optimizations");
    cli.add_flag("dataset", "wiki-talk", "catalog dataset");
    cli.add_flag("scale", "0.02", "stand-in scale");
    cli.add_flag("seed", "1", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"), seed);
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});
        walk::WalkConfig walk_config;
        walk_config.walks_per_node = 10;
        walk_config.max_length = 6;
        walk_config.seed = seed;
        const walk::Corpus corpus =
            walk::generate_walks(graph, walk_config);
        const core::LinkSplits splits =
            core::prepare_link_splits(dataset.edges, graph, {});

        struct Step
        {
            const char* name;
            std::size_t batch;
            unsigned stride;
            bool vectorized;
        };
        const Step steps[] = {
            {"baseline [86]", 1, 16, false},
            {"+Batch(16k)", 16384, 16, false},
            {"+No-pad", 16384, 0, false},
            {"+Coalesce/Par-red", 16384, 0, true},
        };

        std::printf("# Fig. 6 reproduction — %s stand-in, %s sentences\n",
                    dataset.name.c_str(),
                    util::format_count(corpus.num_walks()).c_str());
        std::printf("%-20s %10s %10s %10s %10s\n", "configuration",
                    "w2v(s)", "speedup", "accuracy", "auc");

        double baseline_seconds = 0.0;
        for (const Step& step : steps) {
            embed::BatchedSgnsConfig config;
            config.sgns.dim = 8;
            config.sgns.epochs = 6;
            config.sgns.seed = seed;
            config.sgns.row_stride = step.stride;
            config.sgns.vectorized = step.vectorized;
            config.batch_size = step.batch;
            embed::TrainStats stats;
            const embed::Embedding embedding = embed::train_sgns_batched(
                corpus, graph.num_nodes(), config, &stats);
            if (baseline_seconds == 0.0) {
                baseline_seconds = stats.seconds;
            }
            core::ClassifierConfig classifier;
            classifier.max_epochs = 15;
            const core::TaskResult task =
                core::run_link_prediction(splits, embedding, classifier);
            std::printf("%-20s %10.3f %9.1fx %10.4f %10.4f\n", step.name,
                        stats.seconds, baseline_seconds / stats.seconds,
                        task.test_accuracy, task.test_auc);
        }

        // Reference row: the Hogwild CPU implementation.
        embed::SgnsConfig hogwild;
        hogwild.dim = 8;
        hogwild.epochs = 6;
        hogwild.seed = seed;
        embed::TrainStats stats;
        const embed::Embedding embedding = embed::train_sgns(
            corpus, graph.num_nodes(), hogwild, &stats);
        core::ClassifierConfig classifier;
        classifier.max_epochs = 15;
        const core::TaskResult task =
            core::run_link_prediction(splits, embedding, classifier);
        std::printf("%-20s %10.3f %9.1fx %10.4f %10.4f\n",
                    "hogwild-cpu (ref)", stats.seconds,
                    baseline_seconds / stats.seconds, task.test_accuracy,
                    task.test_auc);

        std::printf("\n# paper shape check: each cumulative row faster "
                    "than the previous, accuracy flat (paper total: "
                    "220.5x on GPU; CPU-model total is smaller).\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
