#include "graph/stats.hpp"

#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tgl::graph {

GraphStats
compute_stats(const TemporalGraph& graph)
{
    GraphStats stats;
    stats.num_nodes = graph.num_nodes();
    stats.num_edges = graph.num_edges();
    stats.min_time = graph.min_time();
    stats.max_time = graph.max_time();
    if (stats.num_nodes == 0) {
        return stats;
    }
    stats.avg_out_degree =
        static_cast<double>(stats.num_edges) / stats.num_nodes;

    for (NodeId u = 0; u < stats.num_nodes; ++u) {
        const EdgeId degree = graph.out_degree(u);
        stats.max_out_degree = std::max(stats.max_out_degree, degree);
        if (degree == 0) {
            ++stats.num_isolated;
            continue;
        }
        const unsigned bucket =
            static_cast<unsigned>(std::bit_width(degree) - 1);
        if (stats.degree_histogram.size() <= bucket) {
            stats.degree_histogram.resize(bucket + 1, 0);
        }
        ++stats.degree_histogram[bucket];
    }

    // Least-squares fit of log2(count) against bucket index (log2 of
    // degree); the slope approximates -alpha for power-law graphs.
    std::size_t points = 0;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < stats.degree_histogram.size(); ++i) {
        if (stats.degree_histogram[i] == 0) {
            continue;
        }
        const double x = static_cast<double>(i);
        const double y =
            std::log2(static_cast<double>(stats.degree_histogram[i]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++points;
    }
    if (points >= 3) {
        const double n = static_cast<double>(points);
        const double denom = n * sxx - sx * sx;
        if (denom != 0.0) {
            stats.degree_powerlaw_slope = (n * sxy - sx * sy) / denom;
        }
    }
    return stats;
}

std::string
format_stats(const GraphStats& stats)
{
    std::string text = util::strcat(
        "nodes: ", util::format_count(stats.num_nodes),
        "\nedges: ", util::format_count(stats.num_edges),
        "\navg out-degree: ", util::format_fixed(stats.avg_out_degree, 2),
        "\nmax out-degree: ", stats.max_out_degree,
        "\nisolated: ", util::format_count(stats.num_isolated),
        "\ntime range: [", stats.min_time, ", ", stats.max_time, "]",
        "\npower-law slope: ",
        util::format_fixed(stats.degree_powerlaw_slope, 2),
        "\ndegree histogram (log2 buckets):");
    for (std::size_t i = 0; i < stats.degree_histogram.size(); ++i) {
        text += util::strcat("\n  [2^", i, ", 2^", i + 1,
                             "): ", stats.degree_histogram[i]);
    }
    return text;
}

} // namespace tgl::graph
