/// Unit tests for crash-safe artifact I/O: CRC32, fingerprints, the
/// checksummed container, atomic file replacement, and the
/// fault-injection primitives backing the robustness suite.
#include "util/artifact_io.hpp"

#include "util/error.hpp"
#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace tgl::util {
namespace {

TEST(Crc32, MatchesKnownVectors)
{
    // The IEEE 802.3 check value for "123456789".
    const char check[] = "123456789";
    EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data = "the quick brown fox jumps over the lazy dog";
    const std::uint32_t whole = crc32(data.data(), data.size());
    const std::uint32_t first = crc32(data.data(), 10);
    const std::uint32_t rest =
        crc32(data.data() + 10, data.size() - 10, first);
    EXPECT_EQ(rest, whole);
}

TEST(Fingerprint, OrderAndLengthSensitive)
{
    Fingerprint a;
    a.mix(std::string_view("ab")).mix(std::string_view("c"));
    Fingerprint b;
    b.mix(std::string_view("a")).mix(std::string_view("bc"));
    EXPECT_NE(a.value(), b.value());

    Fingerprint c;
    c.mix(std::uint32_t{1}).mix(std::uint32_t{2});
    Fingerprint d;
    d.mix(std::uint32_t{2}).mix(std::uint32_t{1});
    EXPECT_NE(c.value(), d.value());
}

TEST(Fingerprint, Deterministic)
{
    Fingerprint a;
    a.mix(std::uint64_t{42}).mix(std::string_view("walk"));
    Fingerprint b;
    b.mix(std::uint64_t{42}).mix(std::string_view("walk"));
    EXPECT_EQ(a.value(), b.value());
}

std::string
write_container(std::string_view kind, std::uint32_t version,
                std::uint64_t fingerprint, const std::string& payload)
{
    std::ostringstream out;
    ArtifactWriter writer(out, kind, version, fingerprint);
    writer.write_bytes(payload.data(), payload.size());
    writer.finish();
    return out.str();
}

TEST(Artifact, RoundTripPreservesEverything)
{
    const std::string blob =
        write_container("test", 3, 0xDEADBEEFu, "payload bytes");
    std::istringstream in(blob);
    ArtifactReader reader(in, "test");
    EXPECT_EQ(reader.payload_version(), 3u);
    EXPECT_EQ(reader.fingerprint(), 0xDEADBEEFu);
    ASSERT_EQ(reader.remaining(), 13u);
    std::string payload(13, '\0');
    reader.read_bytes(payload.data(), payload.size());
    EXPECT_EQ(payload, "payload bytes");
    EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Artifact, PodAndStringHelpers)
{
    std::ostringstream out;
    ArtifactWriter writer(out, "test", 1, 0);
    writer.write_pod(std::uint64_t{77});
    writer.write_string("hello");
    writer.write_pod(float{1.5f});
    writer.finish();

    std::istringstream in(out.str());
    ArtifactReader reader(in, "test");
    EXPECT_EQ(reader.read_pod<std::uint64_t>(), 77u);
    EXPECT_EQ(reader.read_string(), "hello");
    EXPECT_EQ(reader.read_pod<float>(), 1.5f);
}

TEST(Artifact, RejectsBadMagic)
{
    std::string blob = write_container("test", 1, 0, "data");
    blob[0] = 'X';
    std::istringstream in(blob);
    EXPECT_THROW(ArtifactReader(in, "test"), Error);
}

TEST(Artifact, RejectsKindMismatch)
{
    const std::string blob = write_container("test", 1, 0, "data");
    std::istringstream in(blob);
    EXPECT_THROW(ArtifactReader(in, "other"), Error);
}

TEST(Artifact, RejectsEmptyStream)
{
    std::istringstream in("");
    EXPECT_THROW(ArtifactReader(in, "test"), Error);
}

TEST(Artifact, RejectsTruncationAtEveryLength)
{
    const std::string blob = write_container("test", 1, 42, "payload");
    for (std::size_t length = 0; length < blob.size(); ++length) {
        std::istringstream in(blob.substr(0, length));
        EXPECT_THROW(ArtifactReader(in, "test"), Error)
            << "truncated to " << length << " bytes";
    }
}

TEST(Artifact, RejectsEveryPossibleByteFlip)
{
    // Whatever single byte rots, the reader must either throw
    // (corruption detected) or parse with the flip visible in the
    // fingerprint / payload-version fields — the two header fields the
    // container itself cannot vouch for (their owners validate them).
    // A successful parse must always return the original payload.
    const std::string blob = write_container("test", 1, 42, "payload");
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::string corrupt = blob;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
        std::istringstream in(corrupt);
        try {
            ArtifactReader reader(in, "test");
            EXPECT_TRUE(reader.fingerprint() != 42u ||
                        reader.payload_version() != 1u)
                << "byte " << i << " flip went unnoticed";
            std::string payload(reader.remaining(), '\0');
            reader.read_bytes(payload.data(), payload.size());
            EXPECT_EQ(payload, "payload") << "byte " << i;
        } catch (const Error&) {
            // Rejected — the expected outcome everywhere else.
        }
    }
}

TEST(Artifact, RejectsPayloadOverrun)
{
    const std::string blob = write_container("test", 1, 0, "abc");
    std::istringstream in(blob);
    ArtifactReader reader(in, "test");
    EXPECT_THROW(reader.read_pod<std::uint64_t>(), Error);
}

TEST(Artifact, RejectsOversizedKindTag)
{
    std::ostringstream out;
    EXPECT_THROW(ArtifactWriter(out, "much-too-long-kind", 1, 0), Error);
}

TEST(AtomicWrite, ReplacesContentAtomically)
{
    const std::string path =
        testing::TempDir() + "/tgl_atomic_write_test.txt";
    atomic_write_file(path,
                      [](std::ostream& out) { out << "first"; });
    atomic_write_file(path,
                      [](std::ostream& out) { out << "second"; });
    std::ifstream in(path);
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "second");
    std::filesystem::remove(path);
}

TEST(AtomicWrite, WriterExceptionLeavesOriginalIntact)
{
    const std::string path =
        testing::TempDir() + "/tgl_atomic_keep_test.txt";
    atomic_write_file(path, [](std::ostream& out) { out << "original"; });
    EXPECT_THROW(atomic_write_file(path,
                                   [](std::ostream& out) {
                                       out << "partial";
                                       throw Error("writer failed");
                                   }),
                 Error);
    std::ifstream in(path);
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "original");
    // No stray temporary may survive the failure.
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(
             std::filesystem::path(path).parent_path())) {
        if (entry.path().filename().string().find(
                "tgl_atomic_keep_test.txt.tmp") != std::string::npos) {
            ++files;
        }
    }
    EXPECT_EQ(files, 0u);
    std::filesystem::remove(path);
}

TEST(AtomicWrite, UnwritableDirectoryThrows)
{
    EXPECT_THROW(atomic_write_file("/nonexistent-dir/file.txt",
                                   [](std::ostream& out) { out << "x"; }),
                 Error);
}

TEST(AtomicWrite, InjectedFaultBeforeRenameLeavesOriginal)
{
    const std::string path =
        testing::TempDir() + "/tgl_atomic_fault_test.txt";
    atomic_write_file(path, [](std::ostream& out) { out << "original"; });
    FaultInjector::arm("artifact_io.before-rename");
    EXPECT_THROW(atomic_write_file(
                     path, [](std::ostream& out) { out << "replacement"; }),
                 FaultInjected);
    FaultInjector::disarm();
    std::ifstream in(path);
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "original");
    std::filesystem::remove(path);
}

TEST(FailAfterOStream, FailsExactlyAfterBudget)
{
    std::ostringstream target;
    FailAfterOStream out(target, 4);
    out << "abcd";
    EXPECT_TRUE(out.good());
    out << "e";
    EXPECT_FALSE(out.good());
    EXPECT_EQ(target.str(), "abcd");
}

TEST(FailAfterOStream, SavePathReportsStreamFailure)
{
    // A container write into a stream that runs out of space mid-way
    // must throw, not silently truncate.
    std::ostringstream target;
    FailAfterOStream out(target, 10);
    ArtifactWriter writer(out, "test", 1, 0);
    const std::string payload(256, 'x');
    writer.write_bytes(payload.data(), payload.size());
    EXPECT_THROW(writer.finish(), Error);
}

TEST(FaultInjector, ArmsNthHitAndCountsHits)
{
    FaultInjector::arm("test.site", 3);
    fault_point("other.site"); // different site: no effect
    fault_point("test.site");
    fault_point("test.site");
    EXPECT_THROW(fault_point("test.site"), FaultInjected);
    EXPECT_EQ(FaultInjector::hits(), 3u);
    // Auto-disarmed after firing.
    fault_point("test.site");
    FaultInjector::disarm();
}

class FailpointRegistryTest : public testing::Test
{
  protected:
    void TearDown() override { FailpointRegistry::clear(); }
};

TEST_F(FailpointRegistryTest, ParsesMultiSiteSpec)
{
    FailpointRegistry::configure(
        "a.write=error@3;b.pop=delay:5ms;c.load=corrupt:p=0.5");
    EXPECT_TRUE(FailpointRegistry::active());
    const std::vector<std::string> armed =
        FailpointRegistry::armed_sites();
    ASSERT_EQ(armed.size(), 3u);
    EXPECT_EQ(armed[0], "a.write");
    EXPECT_EQ(armed[1], "b.pop");
    EXPECT_EQ(armed[2], "c.load");
    FailpointRegistry::clear();
    EXPECT_FALSE(FailpointRegistry::active());
}

TEST_F(FailpointRegistryTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(FailpointRegistry::configure("no-equals"), Error);
    EXPECT_THROW(FailpointRegistry::configure("site="), Error);
    EXPECT_THROW(FailpointRegistry::configure("site=explode"), Error);
    EXPECT_THROW(FailpointRegistry::configure("site=delay"), Error);
    EXPECT_THROW(FailpointRegistry::configure("site=delay:xms"), Error);
    EXPECT_THROW(FailpointRegistry::configure("site=error@zero"), Error);
    EXPECT_THROW(FailpointRegistry::configure("site=corrupt:p=2"), Error);
    EXPECT_THROW(FailpointRegistry::configure("=error"), Error);
    // A malformed spec must leave the previous configuration armed.
    FailpointRegistry::configure("keep.me=error@5");
    EXPECT_THROW(FailpointRegistry::configure("broken"), Error);
    ASSERT_EQ(FailpointRegistry::armed_sites().size(), 1u);
    EXPECT_EQ(FailpointRegistry::armed_sites()[0], "keep.me");
}

TEST_F(FailpointRegistryTest, NthHitFiresOnceThenDeactivates)
{
    FailpointRegistry::configure("test.nth=error@2");
    fault_point("test.nth");
    EXPECT_THROW(fault_point("test.nth"), FaultInjected);
    // Deactivated after firing: later hits pass and stop counting.
    fault_point("test.nth");
    EXPECT_EQ(FailpointRegistry::hits("test.nth"), 2u);
}

TEST_F(FailpointRegistryTest, TransientActionThrowsRetryable)
{
    FailpointRegistry::configure("test.flaky=error:transient@1");
    EXPECT_THROW(fault_point("test.flaky"), TransientError);
    fault_point("test.flaky"); // @1 deactivated after firing
}

TEST_F(FailpointRegistryTest, CorruptActionReturnsVerdict)
{
    FailpointRegistry::configure("test.rot=corrupt");
    EXPECT_EQ(fault_point("test.rot"), FailpointAction::kCorrupt);
    EXPECT_EQ(fault_point("test.unarmed"), FailpointAction::kNone);
}

TEST_F(FailpointRegistryTest, DelayActionSleeps)
{
    FailpointRegistry::configure("test.slow=delay:20ms");
    const auto begin = std::chrono::steady_clock::now();
    EXPECT_EQ(fault_point("test.slow"), FailpointAction::kNone);
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(
                  elapsed).count(), 15);
}

TEST_F(FailpointRegistryTest, ProbabilisticTriggerIsSeedDeterministic)
{
    const auto firing_pattern = [](std::uint64_t seed) {
        FailpointRegistry::configure("test.maybe=corrupt:p=0.5", seed);
        std::string pattern;
        for (int i = 0; i < 64; ++i) {
            pattern += fault_point("test.maybe") ==
                               FailpointAction::kCorrupt
                           ? '1'
                           : '0';
        }
        return pattern;
    };
    const std::string first = firing_pattern(7);
    EXPECT_EQ(first, firing_pattern(7));
    EXPECT_NE(first, firing_pattern(8));
    // p=0.5 over 64 draws: both outcomes must appear.
    EXPECT_NE(first.find('0'), std::string::npos);
    EXPECT_NE(first.find('1'), std::string::npos);
}

TEST_F(FailpointRegistryTest, CountsHitsPerSite)
{
    FailpointRegistry::configure("test.a=corrupt:p=0;test.b=corrupt:p=0");
    fault_point("test.a");
    fault_point("test.a");
    fault_point("test.b");
    EXPECT_EQ(FailpointRegistry::hits("test.a"), 2u);
    EXPECT_EQ(FailpointRegistry::hits("test.b"), 1u);
    EXPECT_EQ(FailpointRegistry::hits("test.unknown"), 0u);
}

TEST_F(FailpointRegistryTest, GenerationBumpsOnReconfigure)
{
    const std::uint64_t before = FailpointRegistry::generation();
    FailpointRegistry::configure("test.site=error@99");
    EXPECT_GT(FailpointRegistry::generation(), before);
    const std::uint64_t armed = FailpointRegistry::generation();
    FailpointRegistry::clear();
    EXPECT_GT(FailpointRegistry::generation(), armed);
}

TEST(Quarantine, RenamesCorruptArtifactAside)
{
    const std::string dir =
        testing::TempDir() + "/tgl_quarantine_test";
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/artifact.bin";
    { std::ofstream(path) << "rotten"; }
    const std::string moved = quarantine_artifact(path, "unit test");
    EXPECT_FALSE(std::filesystem::exists(path));
    ASSERT_FALSE(moved.empty());
    EXPECT_TRUE(std::filesystem::exists(moved));
    EXPECT_NE(moved.find("artifact.bin.corrupt."), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Quarantine, MissingFileReturnsEmpty)
{
    EXPECT_TRUE(quarantine_artifact(
                    testing::TempDir() + "/tgl_quarantine_missing.bin",
                    "unit test")
                    .empty());
}

TEST(FailAfterStreambuf, ExactLimitWriteIsAcceptedThenNextFails)
{
    // A bulk write that lands exactly on the byte budget must succeed
    // in full; only the next byte fails.
    std::ostringstream target;
    FailAfterOStream out(target, 4);
    out.write("abcd", 4);
    EXPECT_TRUE(out.good());
    out.put('e');
    EXPECT_FALSE(out.good());
    EXPECT_EQ(target.str(), "abcd");
}

TEST(FailAfterStreambuf, StraddlingWriteForwardsOnlyRemaining)
{
    // A bulk write straddling the budget forwards the remaining bytes
    // and reports a short count, which ostream::write turns into
    // badbit — the partial-write shape real ENOSPC produces.
    std::ostringstream target;
    FailAfterOStream out(target, 4);
    out.write("abc", 3);
    EXPECT_TRUE(out.good());
    out.write("defg", 4);
    EXPECT_FALSE(out.good());
    EXPECT_EQ(target.str(), "abcd");
    // The budget is pinned at zero, not wrapped around: clearing the
    // stream and writing again must still forward nothing.
    out.clear();
    out.write("hi", 2);
    EXPECT_FALSE(out.good());
    EXPECT_EQ(target.str(), "abcd");
}

TEST(FailAfterStreambuf, ZeroBudgetRejectsFirstWrite)
{
    std::ostringstream target;
    FailAfterOStream out(target, 0);
    out.write("abc", 3);
    EXPECT_FALSE(out.good());
    EXPECT_TRUE(target.str().empty());
}

} // namespace
} // namespace tgl::util
