#include "graph/io.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace tgl::graph {

EdgeList
load_wel(std::istream& in, const LoadOptions& options)
{
    EdgeList edges;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const std::string_view trimmed = util::trim(line);
        if (trimmed.empty() || trimmed.front() == '#' ||
            trimmed.front() == '%') {
            continue;
        }
        const auto fields = util::split(trimmed, " \t,");
        if (fields.size() < 2 ||
            (fields.size() < 3 && !options.allow_missing_timestamps)) {
            util::fatal(util::strcat("edge list line ", line_number,
                                     ": expected 'src dst time', got '",
                                     std::string(trimmed), "'"));
        }
        const long long src = util::parse_int(fields[0]);
        const long long dst = util::parse_int(fields[1]);
        if (src < 0 || dst < 0) {
            util::fatal(util::strcat("edge list line ", line_number,
                                     ": negative node id"));
        }
        const Timestamp time =
            fields.size() >= 3
                ? util::parse_double(fields[2])
                : static_cast<Timestamp>(edges.size());
        edges.add(static_cast<NodeId>(src), static_cast<NodeId>(dst), time);
    }
    if (options.normalize_timestamps) {
        edges.normalize_timestamps();
    }
    return edges;
}

EdgeList
load_wel_file(const std::string& path, const LoadOptions& options)
{
    std::ifstream in(path);
    if (!in) {
        util::fatal(util::strcat("cannot open edge list file: ", path));
    }
    return load_wel(in, options);
}

void
save_wel(std::ostream& out, const EdgeList& edges)
{
    for (const TemporalEdge& e : edges) {
        out << e.src << ' ' << e.dst << ' ' << e.time << '\n';
    }
}

void
save_wel_file(const std::string& path, const EdgeList& edges)
{
    std::ofstream out(path);
    if (!out) {
        util::fatal(util::strcat("cannot open file for writing: ", path));
    }
    save_wel(out, edges);
    if (!out) {
        util::fatal(util::strcat("write failed: ", path));
    }
}

} // namespace tgl::graph
