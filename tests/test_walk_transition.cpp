/// Statistical tests for the walk transition samplers against their
/// analytic distributions (Eq. 1 and variants).
#include "walk/transition.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

namespace tgl::walk {
namespace {

std::vector<graph::Neighbor>
candidates_at(const std::vector<graph::Timestamp>& times)
{
    std::vector<graph::Neighbor> result;
    for (std::size_t i = 0; i < times.size(); ++i) {
        result.push_back({static_cast<graph::NodeId>(i), times[i]});
    }
    return result;
}

std::vector<double>
empirical_distribution(std::span<const graph::Neighbor> candidates,
                       graph::Timestamp now, graph::Timestamp range,
                       TransitionKind kind, int draws)
{
    // Nightly CI raises the sample budget of every distribution check
    // in the `equivalence` label via TGL_EQUIV_DRAWS (multiplier).
    if (const char* env = std::getenv("TGL_EQUIV_DRAWS")) {
        const int mult = std::atoi(env);
        if (mult > 1) {
            draws *= mult;
        }
    }
    rng::Random random(77);
    std::vector<int> counts(candidates.size(), 0);
    for (int i = 0; i < draws; ++i) {
        const std::size_t pick =
            sample_transition(candidates, now, range, kind, random);
        ++counts[pick];
    }
    std::vector<double> fractions(candidates.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        fractions[i] = static_cast<double>(counts[i]) / draws;
    }
    return fractions;
}

TEST(Transition, EmptyCandidatesReturnSize)
{
    rng::Random random(1);
    EXPECT_EQ(sample_transition({}, 0.0, 1.0,
                                TransitionKind::kUniform, random),
              0u);
}

TEST(Transition, SingleCandidateAlwaysPicked)
{
    rng::Random random(2);
    const auto candidates = candidates_at({0.7});
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(sample_transition(candidates, 0.0, 1.0,
                                    TransitionKind::kExponential, random),
                  0u);
    }
}

TEST(Transition, UniformIsUniform)
{
    const auto candidates = candidates_at({0.1, 0.2, 0.3, 0.4});
    const auto dist = empirical_distribution(
        candidates, 0.0, 1.0, TransitionKind::kUniform, 100000);
    for (double f : dist) {
        EXPECT_NEAR(f, 0.25, 0.01);
    }
}

TEST(Transition, ExponentialMatchesEq1)
{
    // Eq. 1: Pr[i] = exp(t_i / r) / sum_j exp(t_j / r).
    const std::vector<graph::Timestamp> times = {0.1, 0.5, 0.9};
    const double r = 1.0;
    const auto candidates = candidates_at(times);
    double total = 0.0;
    std::vector<double> expected;
    for (double t : times) {
        expected.push_back(std::exp(t / r));
        total += expected.back();
    }
    for (double& e : expected) {
        e /= total;
    }
    const auto dist = empirical_distribution(
        candidates, 0.0, r, TransitionKind::kExponential, 200000);
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_NEAR(dist[i], expected[i], 0.01) << "candidate " << i;
    }
}

TEST(Transition, ExponentialFavorsLaterTimestamps)
{
    const auto candidates = candidates_at({0.1, 0.9});
    const auto dist = empirical_distribution(
        candidates, 0.0, 0.2, TransitionKind::kExponential, 50000);
    EXPECT_GT(dist[1], dist[0]);
}

TEST(Transition, ExponentialDecayMatchesAnalytic)
{
    const std::vector<graph::Timestamp> times = {0.2, 0.5, 1.0};
    const double now = 0.1;
    const double r = 1.0;
    const auto candidates = candidates_at(times);
    double total = 0.0;
    std::vector<double> expected;
    for (double t : times) {
        expected.push_back(std::exp(-(t - now) / r));
        total += expected.back();
    }
    for (double& e : expected) {
        e /= total;
    }
    const auto dist = empirical_distribution(
        candidates, now, r, TransitionKind::kExponentialDecay, 200000);
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_NEAR(dist[i], expected[i], 0.01);
    }
}

TEST(Transition, ExponentialDecayFavorsSoonerTimestamps)
{
    const auto candidates = candidates_at({0.2, 0.9});
    const auto dist = empirical_distribution(
        candidates, 0.1, 0.3, TransitionKind::kExponentialDecay, 50000);
    EXPECT_GT(dist[0], dist[1]);
}

TEST(Transition, LinearMatchesDescendingRank)
{
    // Weights n-i: for 3 candidates, probabilities 3/6, 2/6, 1/6.
    const auto candidates = candidates_at({0.1, 0.5, 0.9});
    const auto dist = empirical_distribution(
        candidates, 0.0, 1.0, TransitionKind::kLinear, 120000);
    EXPECT_NEAR(dist[0], 3.0 / 6.0, 0.01);
    EXPECT_NEAR(dist[1], 2.0 / 6.0, 0.01);
    EXPECT_NEAR(dist[2], 1.0 / 6.0, 0.01);
}

TEST(Transition, NumericalStabilityWithLargeRawTimestamps)
{
    // Unnormalized epoch-seconds timestamps must not overflow exp().
    const auto candidates =
        candidates_at({1.6e9, 1.6e9 + 1000.0, 1.6e9 + 2000.0});
    rng::Random random(3);
    for (int i = 0; i < 1000; ++i) {
        const std::size_t pick = sample_transition(
            candidates, 1.6e9 - 10.0, 2000.0,
            TransitionKind::kExponential, random);
        EXPECT_LT(pick, 3u);
    }
}

TEST(Transition, ZeroTimeRangeTreatedAsOne)
{
    const auto candidates = candidates_at({0.0, 0.0});
    rng::Random random(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_LT(sample_transition(candidates, 0.0, 0.0,
                                    TransitionKind::kExponential, random),
                  2u);
    }
}

TEST(Transition, CostAccountingAccumulates)
{
    const auto candidates = candidates_at({0.1, 0.2, 0.3});
    rng::Random random(5);
    TransitionCost cost;
    sample_transition(candidates, 0.0, 1.0,
                      TransitionKind::kExponential, random, &cost);
    EXPECT_GT(cost.memory_ops, 0u);
    EXPECT_GT(cost.compute_ops, 0u);
    EXPECT_GT(cost.branch_ops, 0u);
    // Uniform does constant work; exponential scales with candidates.
    TransitionCost uniform_cost;
    sample_transition(candidates, 0.0, 1.0, TransitionKind::kUniform,
                      random, &uniform_cost);
    EXPECT_LT(uniform_cost.compute_ops, cost.compute_ops);
}

TEST(Transition, ParseNamesRoundTrip)
{
    for (const TransitionKind kind :
         {TransitionKind::kUniform, TransitionKind::kExponential,
          TransitionKind::kExponentialDecay, TransitionKind::kLinear}) {
        EXPECT_EQ(parse_transition(transition_name(kind)), kind);
    }
    EXPECT_THROW(parse_transition("bogus"), util::Error);
}

} // namespace
} // namespace tgl::walk
