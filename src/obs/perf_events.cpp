#include "obs/perf_events.hpp"

#include "obs/metrics.hpp"
#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace tgl::obs {

namespace {

// ---------------------------------------------------------------------------
// Event table

struct EventDesc
{
    std::uint32_t type;
    std::uint64_t config;
    const char* name;
};

#if defined(__linux__)
constexpr std::uint64_t
hw_cache_config(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}
#endif

constexpr std::array<EventDesc, kNumPerfEvents> kEventTable = {{
#if defined(__linux__)
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS, "branches"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch_misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES,
     "cache_references"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache_misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_FRONTEND,
     "stalled_frontend"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND,
     "stalled_backend"},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task_clock_ns"},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_ACCESS),
     "l1d_loads"},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_L1D,
                     PERF_COUNT_HW_CACHE_OP_WRITE,
                     PERF_COUNT_HW_CACHE_RESULT_ACCESS),
     "l1d_stores"},
#else
    {0, 0, "cycles"},
    {0, 1, "instructions"},
    {0, 4, "branches"},
    {0, 5, "branch_misses"},
    {0, 2, "cache_references"},
    {0, 3, "cache_misses"},
    {0, 7, "stalled_frontend"},
    {0, 8, "stalled_backend"},
    {1, 1, "task_clock_ns"},
    {3, 0, "l1d_loads"},
    {3, 0x100, "l1d_stores"},
#endif
}};

// ---------------------------------------------------------------------------
// Syscall layer

/// One read(2) result under
/// PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING.
struct Reading
{
    std::uint64_t value = 0;
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
};

#if defined(__linux__)

/// Open a per-thread (pid=0, cpu=-1) counting fd for (type, config).
/// Counting starts immediately; scopes work off read deltas, so no
/// enable/disable ioctls are needed. Returns -1 with errno set on
/// failure. exclude_kernel/hv keeps us admissible under
/// perf_event_paranoid == 2 (the common distro default) and matches
/// the userspace-only instrumentation the software models assume.
int
open_event(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                            /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL);
    return static_cast<int>(fd);
}

bool
read_event(int fd, Reading& out)
{
    if (fd < 0) {
        return false;
    }
    std::uint64_t buffer[3] = {0, 0, 0};
    const ssize_t got = read(fd, buffer, sizeof(buffer));
    if (got != static_cast<ssize_t>(sizeof(buffer))) {
        return false;
    }
    out.value = buffer[0];
    out.time_enabled = buffer[1];
    out.time_running = buffer[2];
    return true;
}

void
close_event(int fd)
{
    if (fd >= 0) {
        close(fd);
    }
}

#else // !__linux__

int
open_event(std::uint32_t, std::uint64_t)
{
    errno = ENOSYS;
    return -1;
}

bool
read_event(int, Reading&)
{
    return false;
}

void
close_event(int)
{
}

#endif

// ---------------------------------------------------------------------------
// Mode + availability

std::atomic<PerfMode> g_mode{PerfMode::kOff};

std::once_flag g_probe_once;
PerfAvailability g_availability;
std::atomic<bool> g_available{false};

std::string
probe_errno_reason(int err)
{
    std::string reason = "perf_event_open failed (";
    reason += std::strerror(err);
    reason += ")";
    if (err == EPERM || err == EACCES) {
        reason += " — check /proc/sys/kernel/perf_event_paranoid";
    } else if (err == ENOSYS) {
        reason += " — kernel or container without perf support";
    } else if (err == ENOENT || err == ENODEV || err == EOPNOTSUPP) {
        reason += " — no PMU exposed on this host";
    }
    return reason;
}

void
probe()
{
    const char* disable = std::getenv("TGL_PERF_DISABLE");
    if (disable != nullptr && disable[0] != '\0' &&
        !(disable[0] == '0' && disable[1] == '\0')) {
        g_availability = {false, "disabled via TGL_PERF_DISABLE"};
    } else {
        // Hardware first; a host that hides the PMU (VMs, containers)
        // may still grant software events, which keeps the syscall
        // path — multiplex scaling included — fully exercisable.
        const EventDesc& cycles =
            kEventTable[static_cast<std::size_t>(PerfEvent::kCycles)];
        int fd = open_event(cycles.type, cycles.config);
        int hw_errno = errno;
        if (fd < 0) {
            const EventDesc& clock = kEventTable[static_cast<std::size_t>(
                PerfEvent::kTaskClock)];
            fd = open_event(clock.type, clock.config);
        }
        if (fd >= 0) {
            close_event(fd);
            g_availability = {true, ""};
        } else {
            g_availability = {false, probe_errno_reason(hw_errno)};
        }
    }
    if (!g_availability.available) {
        util::inform("obs::perf: counters unavailable: " +
                     g_availability.reason +
                     " — perf scopes are no-ops");
    }
    g_available.store(g_availability.available,
                      std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Per-thread counter set

/// The standard event set, opened at most once per thread and cached
/// for the thread's lifetime. `depth` is the same-thread scope-nesting
/// guard: only the outermost scope measures, so nested phases (e.g. a
/// pipeline span around the walk engine when threads == 1) never count
/// an instruction twice.
struct ThreadCounters
{
    std::array<int, kNumPerfEvents> fds;
    bool attempted = false;
    bool any_open = false;
    int depth = 0;

    ThreadCounters() { fds.fill(-1); }
    ~ThreadCounters()
    {
        for (int fd : fds) {
            close_event(fd);
        }
    }

    void open_all()
    {
        attempted = true;
        for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
            fds[i] = open_event(kEventTable[i].type, kEventTable[i].config);
            any_open = any_open || fds[i] >= 0;
        }
    }
};

ThreadCounters&
thread_counters()
{
    thread_local ThreadCounters counters;
    if (!counters.attempted) {
        counters.open_all();
    }
    return counters;
}

/// Raw begin/end readings of one thread's set, flattened as
/// [value, time_enabled, time_running] triples (the layout PerfScope
/// stores in begin_).
void
read_all(const ThreadCounters& counters,
         std::array<std::uint64_t, 3 * kNumPerfEvents>& out)
{
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        Reading reading;
        if (!read_event(counters.fds[i], reading)) {
            // Leave zeros: a zero time_enabled delta marks the event
            // absent during scaling.
            out[3 * i] = 0;
            out[3 * i + 1] = 0;
            out[3 * i + 2] = 0;
            continue;
        }
        out[3 * i] = reading.value;
        out[3 * i + 1] = reading.time_enabled;
        out[3 * i + 2] = reading.time_running;
    }
}

/// Multiplexing-aware delta: each event scaled by how long the kernel
/// actually had it scheduled, scaled_delta = d_value * (d_te / d_tr).
/// d_te == 0 means the fd never produced a reading inside the scope
/// (not opened, or read failed) → absent. d_tr == 0 with d_te > 0
/// means enabled but never scheduled (PMU oversubscribed the whole
/// time) → absent too, since no extrapolation base exists.
PerfSample
scale_delta(const std::array<std::uint64_t, 3 * kNumPerfEvents>& begin,
            const std::array<std::uint64_t, 3 * kNumPerfEvents>& end)
{
    PerfSample sample;
    sample.valid = true;
    double max_te = 0.0;
    double max_tr = 0.0;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        const std::uint64_t d_value = end[3 * i] - begin[3 * i];
        const std::uint64_t d_te = end[3 * i + 1] - begin[3 * i + 1];
        const std::uint64_t d_tr = end[3 * i + 2] - begin[3 * i + 2];
        if (end[3 * i + 1] == 0 || d_te == 0 || d_tr == 0) {
            continue;
        }
        const double scale =
            static_cast<double>(d_te) / static_cast<double>(d_tr);
        sample.values[i] = static_cast<double>(d_value) * scale;
        sample.present[i] = true;
        max_te = std::max(max_te, static_cast<double>(d_te));
        max_tr = std::max(max_tr, static_cast<double>(d_tr));
    }
    sample.time_enabled_seconds = max_te * 1e-9;
    sample.time_running_seconds = max_tr * 1e-9;
    return sample;
}

// ---------------------------------------------------------------------------
// Phase aggregates + registry recording

std::mutex g_phase_mutex;
std::vector<std::pair<std::string, PerfSample>> g_phase_totals;

void
record_phase_sample(const std::string& phase, const PerfSample& sample)
{
    if (!sample.valid) {
        return;
    }
    bool any_present = false;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (!sample.present[i]) {
            continue;
        }
        any_present = true;
        Registry::global()
            .counter("perf." + phase + "." + kEventTable[i].name)
            .add(static_cast<std::uint64_t>(
                std::llround(std::max(0.0, sample.values[i]))));
    }
    if (!any_present) {
        return;
    }
    const std::lock_guard<std::mutex> lock(g_phase_mutex);
    for (auto& entry : g_phase_totals) {
        if (entry.first == phase) {
            entry.second += sample;
            return;
        }
    }
    g_phase_totals.emplace_back(phase, sample);
}

double
safe_ratio(double numerator, double denominator)
{
    return denominator > 0.0 ? numerator / denominator : 0.0;
}

} // namespace

// ---------------------------------------------------------------------------
// Mode

std::optional<PerfMode>
parse_perf_mode(std::string_view text)
{
    if (text == "off") {
        return PerfMode::kOff;
    }
    if (text == "on") {
        return PerfMode::kOn;
    }
    if (text == "auto") {
        return PerfMode::kAuto;
    }
    return std::nullopt;
}

const char*
perf_mode_name(PerfMode mode)
{
    switch (mode) {
    case PerfMode::kOff:
        return "off";
    case PerfMode::kOn:
        return "on";
    case PerfMode::kAuto:
        return "auto";
    }
    return "off";
}

void
set_perf_mode(PerfMode mode)
{
    g_mode.store(mode, std::memory_order_relaxed);
}

PerfMode
perf_mode()
{
    return g_mode.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Events / availability

const char*
perf_event_name(PerfEvent event)
{
    return kEventTable[static_cast<std::size_t>(event)].name;
}

const PerfAvailability&
perf_availability()
{
    std::call_once(g_probe_once, probe);
    return g_availability;
}

bool
perf_active()
{
    if (g_mode.load(std::memory_order_relaxed) == PerfMode::kOff) {
        return false;
    }
    return perf_availability().available;
}

// ---------------------------------------------------------------------------
// PerfSample

double
PerfSample::ipc() const
{
    if (!has(PerfEvent::kCycles) || !has(PerfEvent::kInstructions)) {
        return 0.0;
    }
    return safe_ratio(value(PerfEvent::kInstructions),
                      value(PerfEvent::kCycles));
}

double
PerfSample::llc_miss_rate() const
{
    if (!has(PerfEvent::kCacheReferences) || !has(PerfEvent::kCacheMisses)) {
        return 0.0;
    }
    return std::clamp(safe_ratio(value(PerfEvent::kCacheMisses),
                                 value(PerfEvent::kCacheReferences)),
                      0.0, 1.0);
}

double
PerfSample::branch_miss_rate() const
{
    if (!has(PerfEvent::kBranches) || !has(PerfEvent::kBranchMisses)) {
        return 0.0;
    }
    return std::clamp(safe_ratio(value(PerfEvent::kBranchMisses),
                                 value(PerfEvent::kBranches)),
                      0.0, 1.0);
}

double
PerfSample::frontend_stall_fraction() const
{
    if (!has(PerfEvent::kStalledFrontend) || !has(PerfEvent::kCycles)) {
        return 0.0;
    }
    return std::clamp(safe_ratio(value(PerfEvent::kStalledFrontend),
                                 value(PerfEvent::kCycles)),
                      0.0, 1.0);
}

double
PerfSample::backend_stall_fraction() const
{
    if (!has(PerfEvent::kStalledBackend) || !has(PerfEvent::kCycles)) {
        return 0.0;
    }
    return std::clamp(safe_ratio(value(PerfEvent::kStalledBackend),
                                 value(PerfEvent::kCycles)),
                      0.0, 1.0);
}

double
PerfSample::memory_op_fraction() const
{
    if (!has(PerfEvent::kInstructions) ||
        (!has(PerfEvent::kL1dLoads) && !has(PerfEvent::kL1dStores))) {
        return 0.0;
    }
    const double accesses =
        value(PerfEvent::kL1dLoads) + value(PerfEvent::kL1dStores);
    return std::clamp(
        safe_ratio(accesses, value(PerfEvent::kInstructions)), 0.0, 1.0);
}

double
PerfSample::branch_op_fraction() const
{
    if (!has(PerfEvent::kInstructions) || !has(PerfEvent::kBranches)) {
        return 0.0;
    }
    return std::clamp(safe_ratio(value(PerfEvent::kBranches),
                                 value(PerfEvent::kInstructions)),
                      0.0, 1.0);
}

PerfSample&
PerfSample::operator+=(const PerfSample& other)
{
    if (!other.valid) {
        return *this;
    }
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (!other.present[i]) {
            continue;
        }
        values[i] += other.values[i];
        present[i] = true;
    }
    time_enabled_seconds += other.time_enabled_seconds;
    time_running_seconds += other.time_running_seconds;
    valid = true;
    return *this;
}

PerfSample
PerfSample::operator-(const PerfSample& other) const
{
    PerfSample out = *this;
    if (!other.valid) {
        return out;
    }
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (!other.present[i]) {
            continue;
        }
        out.values[i] = std::max(0.0, out.values[i] - other.values[i]);
        out.present[i] = true;
    }
    out.time_enabled_seconds =
        std::max(0.0, out.time_enabled_seconds - other.time_enabled_seconds);
    out.time_running_seconds =
        std::max(0.0, out.time_running_seconds - other.time_running_seconds);
    out.valid = valid || other.valid;
    return out;
}

std::vector<std::pair<std::string, double>>
perf_span_args(const PerfSample& sample)
{
    std::vector<std::pair<std::string, double>> args;
    if (!sample.valid) {
        return args;
    }
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (sample.present[i]) {
            args.emplace_back(kEventTable[i].name, sample.values[i]);
        }
    }
    if (sample.has(PerfEvent::kCycles) &&
        sample.has(PerfEvent::kInstructions)) {
        args.emplace_back("ipc", sample.ipc());
    }
    if (sample.has(PerfEvent::kCacheReferences) &&
        sample.has(PerfEvent::kCacheMisses)) {
        args.emplace_back("llc_miss_rate", sample.llc_miss_rate());
    }
    if (sample.has(PerfEvent::kBranches) &&
        sample.has(PerfEvent::kBranchMisses)) {
        args.emplace_back("branch_miss_rate", sample.branch_miss_rate());
    }
    if (sample.has(PerfEvent::kStalledFrontend) &&
        sample.has(PerfEvent::kCycles)) {
        args.emplace_back("frontend_stall_fraction",
                          sample.frontend_stall_fraction());
    }
    if (sample.has(PerfEvent::kStalledBackend) &&
        sample.has(PerfEvent::kCycles)) {
        args.emplace_back("backend_stall_fraction",
                          sample.backend_stall_fraction());
    }
    return args;
}

// ---------------------------------------------------------------------------
// PerfScope

PerfScope::PerfScope() : PerfScope(std::string_view{})
{
}

PerfScope::PerfScope(std::string_view phase) : phase_(phase)
{
    if (!perf_active()) {
        return;
    }
    ThreadCounters& counters = thread_counters();
    if (!counters.any_open || counters.depth > 0) {
        return;
    }
    counters.depth = 1;
    read_all(counters, begin_);
    open_ = true;
}

PerfScope::~PerfScope()
{
    close();
}

PerfSample
PerfScope::sample() const
{
    if (!open_ || closed_) {
        return PerfSample{};
    }
    std::array<std::uint64_t, 3 * kNumPerfEvents> end{};
    read_all(thread_counters(), end);
    return scale_delta(begin_, end);
}

PerfSample
PerfScope::close()
{
    if (!open_ || closed_) {
        return PerfSample{};
    }
    closed_ = true;
    ThreadCounters& counters = thread_counters();
    std::array<std::uint64_t, 3 * kNumPerfEvents> end{};
    read_all(counters, end);
    counters.depth = 0;
    const PerfSample sample = scale_delta(begin_, end);
    if (!phase_.empty()) {
        record_phase_sample(phase_, sample);
    }
    return sample;
}

// ---------------------------------------------------------------------------
// PerfRankScopes

/// Per-rank state. `state` is written by the rank's thread in ensure()
/// (release) and read by the coordinator in close() (acquire); the fds
/// it points at were populated before the store, so the acquire load
/// makes them — and `begin` — visible. The coordinator only runs
/// close() after the team join, so no rank is still measuring.
struct PerfRankScopes::Slot
{
    std::atomic<ThreadCounters*> state{nullptr};
    std::array<std::uint64_t, 3 * kNumPerfEvents> begin{};
};

PerfRankScopes::PerfRankScopes(std::string_view phase, unsigned max_ranks)
    : phase_(phase), slots_(max_ranks)
{
}

PerfRankScopes::~PerfRankScopes()
{
    close();
}

void
PerfRankScopes::ensure(unsigned rank)
{
    if (rank >= slots_.size()) {
        return;
    }
    Slot& slot = slots_[rank];
    if (slot.state.load(std::memory_order_relaxed) != nullptr) {
        return;
    }
    if (!perf_active()) {
        return;
    }
    ThreadCounters& counters = thread_counters();
    if (!counters.any_open || counters.depth > 0) {
        return;
    }
    counters.depth = 1;
    read_all(counters, slot.begin);
    slot.state.store(&counters, std::memory_order_release);
}

PerfSample
PerfRankScopes::close()
{
    if (closed_) {
        return PerfSample{};
    }
    closed_ = true;
    PerfSample total;
    for (Slot& slot : slots_) {
        ThreadCounters* counters =
            slot.state.load(std::memory_order_acquire);
        if (counters == nullptr) {
            continue;
        }
        std::array<std::uint64_t, 3 * kNumPerfEvents> end{};
        read_all(*counters, end);
        counters->depth = 0;
        total += scale_delta(slot.begin, end);
    }
    if (total.valid && !phase_.empty()) {
        record_phase_sample(phase_, total);
    }
    return total;
}

// ---------------------------------------------------------------------------
// RawCounterSet

RawCounterSet::RawCounterSet(std::vector<RawCounterSpec> specs)
{
    slots_.reserve(specs.size());
    for (RawCounterSpec& spec : specs) {
        Slot slot;
        slot.fd = perf_active() ? open_event(spec.type, spec.config) : -1;
        slot.spec = std::move(spec);
        slots_.push_back(std::move(slot));
    }
}

RawCounterSet::~RawCounterSet()
{
    for (Slot& slot : slots_) {
        close_event(slot.fd);
    }
}

bool
RawCounterSet::active() const
{
    for (const Slot& slot : slots_) {
        if (slot.fd >= 0) {
            return true;
        }
    }
    return false;
}

std::vector<std::pair<std::string, double>>
RawCounterSet::read_scaled() const
{
    std::vector<std::pair<std::string, double>> out;
    for (const Slot& slot : slots_) {
        Reading reading;
        if (!read_event(slot.fd, reading) || reading.time_running == 0) {
            continue;
        }
        const double scale = static_cast<double>(reading.time_enabled) /
                             static_cast<double>(reading.time_running);
        out.emplace_back(slot.spec.name,
                         static_cast<double>(reading.value) * scale);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Phase aggregates

PerfSample
perf_phase_total(std::string_view phase)
{
    const std::lock_guard<std::mutex> lock(g_phase_mutex);
    for (const auto& entry : g_phase_totals) {
        if (entry.first == phase) {
            return entry.second;
        }
    }
    return PerfSample{};
}

std::vector<std::pair<std::string, PerfSample>>
perf_phase_totals()
{
    const std::lock_guard<std::mutex> lock(g_phase_mutex);
    return g_phase_totals;
}

void
perf_reset_phase_totals()
{
    const std::lock_guard<std::mutex> lock(g_phase_mutex);
    g_phase_totals.clear();
}

} // namespace tgl::obs
