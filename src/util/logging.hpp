/// @file
/// Minimal leveled logging for tgl.
///
/// Modeled after gem5's inform()/warn() message facilities: these report
/// status to the user and never stop execution. Output goes to stderr so
/// benchmark result rows on stdout stay machine-parsable.
#pragma once

#include <sstream>
#include <string>

namespace tgl::util {

/// Severity levels, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kQuiet = 3 };

/// Set the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emit a message at the given level (thread-safe).
void log_message(LogLevel level, const std::string& message);

/// Status message a user should see during normal operation.
inline void
inform(const std::string& message)
{
    log_message(LogLevel::kInfo, message);
}

/// Something looks off but execution can continue.
inline void
warn(const std::string& message)
{
    log_message(LogLevel::kWarn, message);
}

/// Developer-facing detail, hidden by default.
inline void
debug(const std::string& message)
{
    log_message(LogLevel::kDebug, message);
}

/// Build a string from streamable parts: strcat("n=", 4, " ok").
template <typename... Args>
std::string
strcat(Args&&... args)
{
    std::ostringstream oss;
    if constexpr (sizeof...(args) > 0) {
        (oss << ... << args);
    }
    return oss.str();
}

} // namespace tgl::util
