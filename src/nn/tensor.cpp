#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace tgl::nn {

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::add(const Tensor& other)
{
    TGL_ASSERT(same_shape(other));
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
}

void
Tensor::axpy(float alpha, const Tensor& other)
{
    TGL_ASSERT(same_shape(other));
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += alpha * other.data_[i];
    }
}

void
Tensor::scale(float alpha)
{
    for (float& value : data_) {
        value *= alpha;
    }
}

void
Tensor::resize(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
}

float
Tensor::max_abs() const
{
    float best = 0.0f;
    for (float value : data_) {
        best = std::max(best, std::fabs(value));
    }
    return best;
}

} // namespace tgl::nn
