/// @file
/// Link property prediction — the SVIII-B extension task, showing how
/// the framework incorporates a *new* downstream task by reusing the
/// random-walk and word2vec stages unchanged (the paper's Fig. 12
/// workflow) and swapping only data preparation + classifier.
///
/// The edge property predicted here is the temporal age bucket of an
/// edge (old vs recent), derived automatically, so the example runs on
/// any temporal graph without external label files.
///
/// Example: ./link_property_prediction --dataset wiki-talk --buckets 2
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("link_property_prediction",
                        "edge-label prediction via pipeline reuse");
    cli.add_flag("dataset", "ia-email", "catalog link-prediction dataset");
    cli.add_flag("scale", "0.05", "stand-in scale");
    cli.add_flag("buckets", "2", "number of temporal age classes");
    cli.add_flag("walks", "10", "K: walks per node");
    cli.add_flag("length", "6", "N: max walk length");
    cli.add_flag("dim", "8", "d: embedding dimension");
    cli.add_flag("epochs", "30", "classifier training epochs");
    cli.add_flag("seed", "42", "random seed");

    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"),
            static_cast<std::uint64_t>(cli.get_int("seed")));
        const auto num_classes =
            static_cast<std::uint32_t>(cli.get_int("buckets"));
        std::printf("== link property prediction on %s (%u classes) ==\n",
                    dataset.name.c_str(), num_classes);

        // Stage 1 + 2: the unchanged front-end (Fig. 12 lines 11-12).
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});
        walk::WalkConfig walk_config;
        walk_config.walks_per_node =
            static_cast<unsigned>(cli.get_int("walks"));
        walk_config.max_length =
            static_cast<unsigned>(cli.get_int("length"));
        walk_config.seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
        util::Timer timer;
        const walk::Corpus corpus =
            walk::generate_walks(graph, walk_config);
        const double walk_seconds = timer.seconds();

        embed::SgnsConfig sgns;
        sgns.dim = static_cast<unsigned>(cli.get_int("dim"));
        sgns.seed = walk_config.seed;
        timer.reset();
        const embed::Embedding embedding =
            embed::train_sgns(corpus, graph.num_nodes(), sgns);
        const double w2v_seconds = timer.seconds();

        // Stage 3: task-specific data preparation — the only new code
        // a user writes for a new task.
        const auto labels =
            core::label_edges_by_time(dataset.edges, num_classes);

        // Stage 4: classifier (reusing the node-classifier stack over
        // concatenated edge features).
        core::ClassifierConfig classifier;
        classifier.max_epochs =
            static_cast<unsigned>(cli.get_int("epochs"));
        const core::TaskResult result = core::run_link_property_prediction(
            dataset.edges, labels, num_classes, embedding, core::SplitConfig{},
            classifier);

        std::printf("test accuracy : %.4f (chance %.4f)\n",
                    result.test_accuracy, 1.0 / num_classes);
        std::printf("test macro-F1 : %.4f\n", result.test_macro_f1);
        std::printf("walk %.3fs | word2vec %.3fs | train %.3fs | "
                    "test %.3fs\n",
                    walk_seconds, w2v_seconds, result.train_seconds,
                    result.test_seconds);
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
