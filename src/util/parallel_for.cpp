#include "util/parallel_for.hpp"

#include <atomic>
#include <thread>

namespace tgl::util {

namespace {

std::atomic<unsigned> g_default_threads{0};

} // namespace

void
set_default_threads(unsigned num_threads)
{
    g_default_threads.store(num_threads, std::memory_order_relaxed);
}

unsigned
default_threads()
{
    unsigned configured = g_default_threads.load(std::memory_order_relaxed);
    if (configured != 0) {
        return configured;
    }
    unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

} // namespace tgl::util
