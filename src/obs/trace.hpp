/// @file
/// Scoped spans with a chrome://tracing-compatible JSON exporter.
///
/// A TraceSession collects complete ("ph":"X") duration events; Span is
/// the RAII recorder. When no session is active a Span costs one atomic
/// load, so phase code can stay instrumented unconditionally:
///
/// @code
///   tgl::obs::TraceSession session;
///   session.start();
///   { tgl::obs::Span span("pipeline.walk"); run_walk(); }
///   session.stop();
///   session.write_chrome_json("trace.json");
/// @endcode
///
/// The exported file is the Trace Event Format JSON object
/// ({"traceEvents":[...]}) that chrome://tracing and Perfetto load
/// directly: per event `name`, `cat` ("tgl"), `ph` ("X"), `ts`/`dur`
/// in microseconds since session start, `pid` (always 1), and a dense
/// per-thread `tid`.
///
/// Only one session is active at a time (start() fails otherwise), and
/// an active session must outlive every span opened while it was
/// active — the natural structure when a driver starts tracing around
/// a pipeline run.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace tgl::obs {

class PerfScope;

/// One complete duration event. `args` render as the event's "args"
/// JSON object (numeric values only — counter readings and ratios);
/// empty means no "args" key is emitted.
struct TraceEvent
{
    std::string name;
    double ts_us = 0.0;  ///< start, microseconds since session start
    double dur_us = 0.0; ///< duration in microseconds
    std::uint32_t tid = 0;
    std::vector<std::pair<std::string, double>> args;
};

/// Collects span events while installed as the process-wide active
/// session. Spans are phase/epoch granularity, so recording takes a
/// short mutex rather than sharding.
class TraceSession
{
  public:
    TraceSession() = default;
    ~TraceSession();
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    /// The active session, or nullptr when tracing is off.
    static TraceSession* current();

    /// Install as the active session (tgl::util::Error if another
    /// session is already active) and reset the clock origin.
    void start();

    /// Uninstall; spans closing afterwards are dropped. Idempotent.
    void stop();

    /// Copy of the recorded events (in completion order).
    std::vector<TraceEvent> events() const;

    /// Serialize as a Trace Event Format JSON object.
    std::string to_chrome_json() const;

    /// Write to_chrome_json() to @p path (tgl::util::Error on failure).
    void write_chrome_json(const std::string& path) const;

    /// Record one complete event (called by Span; public for custom
    /// instrumentation). The overload with @p args attaches numeric
    /// event arguments (e.g. perf counter readings).
    void record(std::string name,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end);
    void record(std::string name,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::vector<std::pair<std::string, double>> args);

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::vector<std::thread::id> thread_ids_; ///< dense tid mapping
    std::chrono::steady_clock::time_point origin_{};
};

/// RAII span: records a complete event on the active session between
/// construction and destruction; a no-op when tracing is off.
class Span
{
  public:
    explicit Span(std::string_view name);

    /// Span that also measures hardware counters (obs/perf_events)
    /// over its lifetime under phase @p perf_phase: the scope records
    /// `perf.<phase>.<event>` metrics on close and the scaled deltas
    /// are attached to this event as args. Works with tracing off
    /// (metrics still record) and with counters off (plain span).
    Span(std::string_view name, std::string_view perf_phase);

    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attach one numeric argument to the event (no-op when tracing
    /// is off).
    void arg(std::string_view key, double value);

  private:
    TraceSession* session_ = nullptr;
    std::string name_;
    std::chrono::steady_clock::time_point start_{};
    std::vector<std::pair<std::string, double>> args_;
    std::unique_ptr<PerfScope> perf_;
};

} // namespace tgl::obs
