/// @file
/// Next-edge selection among temporally-valid candidates.
///
/// The candidate span is a time-sorted suffix of a vertex's CSR slice
/// (every edge already satisfies t' > t), so the softmax weights can be
/// stabilized by subtracting the last (= maximum) timestamp before
/// exponentiation.
#pragma once

#include "graph/types.hpp"
#include "rng/random.hpp"
#include "walk/config.hpp"

#include <bit>
#include <span>

namespace tgl::walk {

/// Per-call cost accounting for the instruction-mix study (Fig. 9).
/// Incremented by sample_transition when non-null; the counts follow
/// the kernel's actual data touches and arithmetic, categorized with
/// the MICA taxonomy the paper uses (memory / branch / compute).
struct TransitionCost
{
    std::uint64_t memory_ops = 0;
    std::uint64_t branch_ops = 0;
    std::uint64_t compute_ops = 0;
};

/// Probe count of a binary search over @p n candidates — the shared
/// cost-model constant for every O(log d) draw (cache and batched).
inline std::uint64_t
search_probes(std::size_t n)
{
    // 1 + floor(log2(n)) for n >= 1, i.e. bit_width; 1 for n == 0.
    return n > 1 ? std::bit_width(static_cast<std::uint64_t>(n)) : 1;
}

/// Cumulative descending-rank weight of kLinear: candidates 0..j of a
/// suffix of size m carry weights m, m-1, ..., m-j, summing to
/// (j+1)(2m-j)/2. Exact in doubles for any realistic degree (< 2^26).
/// Shared by the cached scalar draw and the batched lockstep search so
/// both invert the same CDF bit-for-bit.
inline double
linear_cumulative(std::size_t m, std::size_t j)
{
    const double dm = static_cast<double>(m);
    const double dj = static_cast<double>(j);
    return (dj + 1.0) * (2.0 * dm - dj) / 2.0;
}

/// Pick the index of the next edge within @p candidates according to
/// the transition model. @p now is the walker's clock and @p time_range
/// the graph's total timespan (the r of Eq. 1; 0 is treated as 1).
/// Returns candidates.size() if candidates is empty.
std::size_t sample_transition(std::span<const graph::Neighbor> candidates,
                              graph::Timestamp now,
                              graph::Timestamp time_range,
                              TransitionKind kind, rng::Random& random,
                              TransitionCost* cost = nullptr);

} // namespace tgl::walk
