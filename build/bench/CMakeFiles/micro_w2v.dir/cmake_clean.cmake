file(REMOVE_RECURSE
  "CMakeFiles/micro_w2v.dir/micro_w2v.cpp.o"
  "CMakeFiles/micro_w2v.dir/micro_w2v.cpp.o.d"
  "micro_w2v"
  "micro_w2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_w2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
