#include "serve/request_trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace tgl::serve {

namespace {

bool
slower(const SlowRequestRecord& a, const SlowRequestRecord& b)
{
    return a.total_seconds > b.total_seconds;
}

std::string
json_number(double value)
{
    if (!(value == value) || value > 1e308 || value < -1e308) {
        return "0";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace

double
RequestTrace::seconds_between(TracePoint from, TracePoint to)
{
    if (from == TracePoint{} || to == TracePoint{} || to < from) {
        return 0.0;
    }
    return std::chrono::duration<double>(to - from).count();
}

std::uint64_t
next_request_id()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

SlowRequestLog::SlowRequestLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
SlowRequestLog::record(const SlowRequestRecord& record)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.size() < capacity_) {
        heap_.push_back(record);
        std::push_heap(heap_.begin(), heap_.end(), slower);
        return;
    }
    if (record.total_seconds <= heap_.front().total_seconds) {
        return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.back() = record;
    std::push_heap(heap_.begin(), heap_.end(), slower);
}

std::vector<SlowRequestRecord>
SlowRequestLog::entries() const
{
    std::vector<SlowRequestRecord> out;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        out = heap_;
    }
    std::sort(out.begin(), out.end(),
              [](const SlowRequestRecord& a, const SlowRequestRecord& b) {
                  return a.total_seconds > b.total_seconds;
              });
    return out;
}

std::size_t
SlowRequestLog::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return heap_.size();
}

void
SlowRequestLog::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    heap_.clear();
}

std::string
SlowRequestLog::to_json() const
{
    const std::vector<SlowRequestRecord> sorted = entries();
    std::string out = "[";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const SlowRequestRecord& r = sorted[i];
        out += "{\"request_id\": " + std::to_string(r.request_id) +
               ", \"epoch\": " + std::to_string(r.epoch) +
               ", \"pairs\": " + std::to_string(r.pairs) +
               ", \"total_seconds\": " + json_number(r.total_seconds) +
               ", \"admission_seconds\": " +
               json_number(r.admission_seconds) +
               ", \"queue_seconds\": " + json_number(r.queue_seconds) +
               ", \"forward_seconds\": " + json_number(r.forward_seconds) +
               ", \"serialize_seconds\": " +
               json_number(r.serialize_seconds) + "}";
        if (i + 1 < sorted.size()) {
            out += ", ";
        }
    }
    out += "]";
    return out;
}

} // namespace tgl::serve
