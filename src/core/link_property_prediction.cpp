#include "core/link_property_prediction.hpp"

#include "core/metrics.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "rng/random.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tgl::core {

std::vector<std::uint32_t>
label_edges_by_time(const graph::EdgeList& edges, std::uint32_t num_classes)
{
    if (num_classes == 0) {
        util::fatal("label_edges_by_time: need at least one class");
    }
    const std::size_t m = edges.size();
    std::vector<std::uint32_t> order(m);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return edges[a].time < edges[b].time;
                     });
    std::vector<std::uint32_t> labels(m);
    for (std::size_t rank = 0; rank < m; ++rank) {
        labels[order[rank]] = static_cast<std::uint32_t>(
            std::min<std::size_t>(num_classes - 1,
                                  rank * num_classes / std::max<std::size_t>(
                                                           m, 1)));
    }
    return labels;
}

namespace {

nn::TaskDataset
make_edge_property_dataset(const graph::EdgeList& edges,
                           const std::vector<std::uint32_t>& edge_labels,
                           const std::vector<std::uint32_t>& indices,
                           const embed::Embedding& embedding)
{
    const unsigned d = embedding.dim();
    nn::TaskDataset dataset;
    dataset.features.resize(indices.size(), 2 * d);
    dataset.class_labels.reserve(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const graph::TemporalEdge& e = edges[indices[i]];
        auto row = dataset.features.row(i);
        const auto fu = embedding.row(e.src);
        const auto fv = embedding.row(e.dst);
        for (unsigned c = 0; c < d; ++c) {
            row[c] = fu[c];
            row[d + c] = fv[c];
        }
        dataset.class_labels.push_back(edge_labels[indices[i]]);
    }
    return dataset;
}

} // namespace

TaskResult
run_link_property_prediction(const graph::EdgeList& edges,
                             const std::vector<std::uint32_t>& edge_labels,
                             std::uint32_t num_classes,
                             const embed::Embedding& embedding,
                             const SplitConfig& split,
                             const ClassifierConfig& config)
{
    if (edges.size() != edge_labels.size()) {
        util::fatal("run_link_property_prediction: labels/edges mismatch");
    }
    rng::Random random(split.seed);

    // Random edge split (this task has explicit labels, so the
    // negative-sampling machinery of Fig. 7 is unnecessary).
    std::vector<std::uint32_t> order(edges.size());
    std::iota(order.begin(), order.end(), 0u);
    random.shuffle(order);
    const auto num_train = static_cast<std::size_t>(
        static_cast<double>(order.size()) * split.train_fraction);
    const auto num_valid = static_cast<std::size_t>(
        static_cast<double>(order.size()) * split.valid_fraction);

    const std::vector<std::uint32_t> train_idx(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(num_train));
    const std::vector<std::uint32_t> valid_idx(
        order.begin() + static_cast<std::ptrdiff_t>(num_train),
        order.begin() + static_cast<std::ptrdiff_t>(num_train + num_valid));
    const std::vector<std::uint32_t> test_idx(
        order.begin() + static_cast<std::ptrdiff_t>(num_train + num_valid),
        order.end());

    const nn::TaskDataset train_set =
        make_edge_property_dataset(edges, edge_labels, train_idx, embedding);
    const nn::TaskDataset valid_set =
        make_edge_property_dataset(edges, edge_labels, valid_idx, embedding);
    const nn::TaskDataset test_set =
        make_edge_property_dataset(edges, edge_labels, test_idx, embedding);

    rng::Random net_random(config.seed);
    nn::Mlp net =
        nn::make_node_classifier(2 * embedding.dim(), config.hidden1,
                                 config.hidden2, num_classes, net_random);
    nn::Sgd optimizer(net.parameters(), config.lr, config.momentum,
                      config.weight_decay);
    nn::DataLoader loader(train_set, config.batch_size, true,
                          config.seed ^ 0x33);

    TaskResult result;
    util::Timer train_timer;
    nn::Tensor batch_features;
    std::vector<float> batch_binary;
    std::vector<std::uint32_t> batch_classes;

    for (unsigned epoch = 0; epoch < config.max_epochs; ++epoch) {
        loader.start_epoch();
        double epoch_loss = 0.0;
        for (std::size_t b = 0; b < loader.num_batches(); ++b) {
            loader.batch(b, batch_features, batch_binary, batch_classes);
            const nn::Tensor& output = net.forward(batch_features);
            const nn::LossResult loss = nn::nll_loss(output, batch_classes);
            if (!std::isfinite(loss.loss)) {
                util::fatal(util::strcat(
                    "link property prediction: non-finite training loss "
                    "at epoch ", epoch + 1, ", batch ", b + 1,
                    " — the classifier diverged (lower lr or check the "
                    "input features)"));
            }
            epoch_loss += loss.loss;
            optimizer.zero_grad();
            net.backward(loss.grad);
            optimizer.step();
        }
        result.final_train_loss =
            epoch_loss / static_cast<double>(loader.num_batches());
        result.epochs_run = epoch + 1;
    }
    result.train_seconds = train_timer.seconds();
    result.seconds_per_epoch =
        result.epochs_run == 0
            ? 0.0
            : result.train_seconds / result.epochs_run;

    if (!valid_idx.empty()) {
        const nn::Tensor& valid_out = net.forward(valid_set.features);
        result.valid_accuracy =
            multiclass_accuracy(valid_out, valid_set.class_labels);
    }

    util::Timer test_timer;
    const nn::Tensor& test_out = net.forward(test_set.features);
    result.test_accuracy =
        multiclass_accuracy(test_out, test_set.class_labels);
    result.test_macro_f1 =
        macro_f1(test_out, test_set.class_labels, num_classes);
    result.test_seconds = test_timer.seconds();
    return result;
}

} // namespace tgl::core
