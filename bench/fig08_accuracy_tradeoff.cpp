/// @file
/// Fig. 8 reproduction: the accuracy-complexity trade-off.
///
/// Four panels:
///  (a) random-walk kernel time vs number of walks per node
///      (stackoverflow stand-in) — time grows linearly;
///  (b) accuracy vs walks per node (link prediction on ia-email +
///      node classification on dblp5) — saturates near 8-10;
///  (c) accuracy vs walk length — saturates near 4-6;
///  (d) accuracy vs embedding dimension — saturates near 8.
///
/// The summary row prints the paper's recommended operating point.
/// An extra --sampler flag sweeps panel (b) under each transition
/// model (the ablation DESIGN.md calls out).
#include "tgl/tgl.hpp"

#include <algorithm>
#include <cstdio>

namespace {

using namespace tgl;

core::PipelineConfig
base_config(std::uint64_t seed)
{
    core::PipelineConfig config;
    config.walk.walks_per_node = 10;
    config.walk.max_length = 6;
    config.walk.seed = seed;
    config.sgns.dim = 8;
    config.sgns.epochs = 12;
    config.sgns.seed = seed;
    config.classifier.max_epochs = 20;
    return config;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("fig08_accuracy_tradeoff",
                        "Fig. 8: accuracy vs complexity sweeps");
    cli.add_flag("lp-scale", "0.02", "ia-email stand-in scale");
    cli.add_flag("nc-scale", "0.4", "dblp5 stand-in scale");
    cli.add_flag("rw-scale", "0.002", "stackoverflow stand-in scale");
    cli.add_flag("seed", "42", "random seed");
    cli.add_flag("repeats", "3",
                 "pipeline runs averaged per accuracy point");
    cli.add_switch("sweep-sampler",
                   "additionally sweep transition kinds on panel (b)");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        const auto repeats =
            static_cast<unsigned>(std::max<long long>(
                1, cli.get_int("repeats")));
        const gen::Dataset lp_data = gen::make_dataset(
            "ia-email", cli.get_double("lp-scale"), seed);
        const gen::Dataset nc_data = gen::make_dataset(
            "dblp5", cli.get_double("nc-scale"), seed);

        // Average accuracy over `repeats` independently seeded runs:
        // walk/SGD noise on laptop-scale stand-ins is large enough to
        // wobble single-run curves.
        const auto averaged = [&](const gen::Dataset& data,
                                  core::PipelineConfig config,
                                  bool use_auc) {
            double sum = 0.0;
            for (unsigned r = 0; r < repeats; ++r) {
                config.walk.seed = seed + r * 1000003ULL;
                config.sgns.seed = config.walk.seed;
                config.classifier.seed = 11 + r;
                const core::PipelineResult result =
                    core::run_pipeline(data, config);
                sum += use_auc ? result.task.test_auc
                               : result.task.test_accuracy;
            }
            return sum / repeats;
        };

        // ---- (a) walk kernel time vs K --------------------------------
        {
            const gen::Dataset so = gen::make_dataset(
                "stackoverflow", cli.get_double("rw-scale"), seed);
            const auto graph = graph::GraphBuilder::build(
                so.edges, {.symmetrize = true});
            std::printf("# Fig. 8a — random-walk kernel time vs K "
                        "(%s stand-in, %s nodes)\n",
                        so.name.c_str(),
                        util::format_count(graph.num_nodes()).c_str());
            std::printf("%8s %12s %12s\n", "K", "seconds", "normalized");
            double baseline = 0.0;
            for (const unsigned k : {1u, 2u, 4u, 8u, 10u, 16u, 20u}) {
                walk::WalkConfig config;
                config.walks_per_node = k;
                config.max_length = 6;
                config.seed = seed;
                util::Timer timer;
                walk::generate_walks(graph, config);
                const double seconds = timer.seconds();
                if (baseline == 0.0) {
                    baseline = seconds;
                }
                std::printf("%8u %12.3f %11.1fx\n", k, seconds,
                            seconds / baseline);
            }
            std::printf("# shape: near-linear growth in K\n\n");
        }

        // ---- (b) accuracy vs walks per node ---------------------------
        std::printf("# Fig. 8b — accuracy vs walks per node\n");
        std::printf("%8s %14s %14s\n", "K", "linkpred-auc", "nodeclass-acc");
        for (const unsigned k : {1u, 2u, 4u, 6u, 8u, 10u, 14u, 20u}) {
            core::PipelineConfig config = base_config(seed);
            config.walk.walks_per_node = k;
            const double lp = averaged(lp_data, config, true);
            const double nc = averaged(nc_data, config, false);
            std::printf("%8u %14.4f %14.4f\n", k, lp, nc);
        }
        std::printf("# shape: rises then saturates near K = 8-10\n\n");

        // ---- (c) accuracy vs walk length -------------------------------
        std::printf("# Fig. 8c — accuracy vs walk length\n");
        std::printf("%8s %14s %14s\n", "N", "linkpred-auc", "nodeclass-acc");
        for (const unsigned n : {1u, 2u, 3u, 4u, 6u, 8u, 10u}) {
            core::PipelineConfig config = base_config(seed);
            config.walk.max_length = n;
            const double lp = averaged(lp_data, config, true);
            const double nc = averaged(nc_data, config, false);
            std::printf("%8u %14.4f %14.4f\n", n, lp, nc);
        }
        std::printf("# shape: rises then saturates near N = 4-6\n\n");

        // ---- (d) accuracy vs embedding dimension ----------------------
        std::printf("# Fig. 8d — accuracy vs embedding dimension\n");
        std::printf("%8s %14s %14s\n", "d", "linkpred-auc", "nodeclass-acc");
        for (const unsigned d : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
            core::PipelineConfig config = base_config(seed);
            config.sgns.dim = d;
            const double lp = averaged(lp_data, config, true);
            const double nc = averaged(nc_data, config, false);
            std::printf("%8u %14.4f %14.4f\n", d, lp, nc);
        }
        std::printf("# shape: d = 8 already captures the signal; larger "
                    "d buys little accuracy for linear extra cost\n\n");

        // ---- sampler ablation ------------------------------------------
        if (cli.get_switch("sweep-sampler")) {
            std::printf("# ablation — transition model at the optimal "
                        "operating point\n");
            std::printf("%-12s %14s %14s\n", "transition", "linkpred-auc",
                        "nodeclass-acc");
            for (const walk::TransitionKind kind :
                 {walk::TransitionKind::kUniform,
                  walk::TransitionKind::kExponential,
                  walk::TransitionKind::kExponentialDecay,
                  walk::TransitionKind::kLinear}) {
                core::PipelineConfig config = base_config(seed);
                config.walk.transition = kind;
                const double lp = averaged(lp_data, config, true);
                const double nc = averaged(nc_data, config, false);
                std::printf("%-12s %14.4f %14.4f\n",
                            walk::transition_name(kind), lp, nc);
            }
            std::printf("\n");
        }

        std::printf("# paper operating point: walks=10, length=6, dim=8 "
                    "(SVII-A)\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
