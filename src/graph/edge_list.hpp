/// @file
/// Mutable temporal edge list — the ingestion format every loader and
/// generator produces, and the input to the CSR builder and to the
/// link-prediction data preparation (which needs time-sorted edges,
/// Fig. 7 of the paper).
#pragma once

#include "graph/types.hpp"

#include <cstddef>
#include <vector>

namespace tgl::graph {

/// A list of timestamped directed edges with bulk operations.
class EdgeList
{
  public:
    EdgeList() = default;
    explicit EdgeList(std::vector<TemporalEdge> edges)
        : edges_(std::move(edges))
    {
    }

    /// Append one edge.
    void
    add(NodeId src, NodeId dst, Timestamp time)
    {
        edges_.push_back({src, dst, time});
    }

    std::size_t size() const { return edges_.size(); }
    bool empty() const { return edges_.empty(); }
    void reserve(std::size_t n) { edges_.reserve(n); }

    const TemporalEdge& operator[](std::size_t i) const { return edges_[i]; }
    TemporalEdge& operator[](std::size_t i) { return edges_[i]; }

    const std::vector<TemporalEdge>& edges() const { return edges_; }
    std::vector<TemporalEdge>& edges() { return edges_; }

    auto begin() const { return edges_.begin(); }
    auto end() const { return edges_.end(); }

    /// Stable sort by timestamp (ties keep input order).
    void sort_by_time();

    /// True if timestamps are non-decreasing.
    bool is_time_sorted() const;

    /// Largest node id referenced, or kInvalidNode if empty.
    NodeId max_node_id() const;

    /// Number of nodes implied by the ids (max id + 1, 0 if empty).
    NodeId num_nodes() const;

    /// Rescale timestamps linearly onto [0, 1]. A single distinct
    /// timestamp maps to 0. Returns the original (min, max) span.
    std::pair<Timestamp, Timestamp> normalize_timestamps();

    /// Remove edges with src == dst. Returns how many were removed.
    std::size_t remove_self_loops();

    /// Append the reverse of every edge (same timestamp), turning a
    /// directed list into an undirected one. CTDNE treats interaction
    /// networks as undirected streams.
    void symmetrize();

  private:
    std::vector<TemporalEdge> edges_;
};

} // namespace tgl::graph
