#include "graph/temporal_graph.hpp"

#include "util/error.hpp"

#include <algorithm>

namespace tgl::graph {

TemporalGraph::TemporalGraph(std::vector<EdgeId> offsets,
                             std::vector<Neighbor> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors))
{
    TGL_ASSERT(!offsets_.empty());
    TGL_ASSERT(offsets_.front() == 0);
    TGL_ASSERT(offsets_.back() == neighbors_.size());
    if (!neighbors_.empty()) {
        min_time_ = neighbors_.front().time;
        max_time_ = neighbors_.front().time;
        for (const Neighbor& n : neighbors_) {
            min_time_ = std::min(min_time_, n.time);
            max_time_ = std::max(max_time_, n.time);
        }
    }
}

std::span<const Neighbor>
TemporalGraph::temporal_neighbors(NodeId u, Timestamp t, bool strict) const
{
    const std::span<const Neighbor> all = out_neighbors(u);
    const auto by_time = [](const Neighbor& n, Timestamp value) {
        return n.time < value;
    };
    const Neighbor* first;
    if (strict) {
        // First edge with time > t.
        first = std::upper_bound(
            all.data(), all.data() + all.size(), t,
            [](Timestamp value, const Neighbor& n) { return value < n.time; });
    } else {
        // First edge with time >= t.
        first = std::lower_bound(all.data(), all.data() + all.size(), t,
                                 by_time);
    }
    return {first, all.data() + all.size()};
}

std::size_t
TemporalGraph::temporal_neighbors_linear(
    NodeId u, Timestamp t, bool strict,
    std::vector<std::uint32_t>& scratch) const
{
    scratch.clear();
    const std::span<const Neighbor> all = out_neighbors(u);
    for (std::size_t i = 0; i < all.size(); ++i) {
        const bool valid = strict ? all[i].time > t : all[i].time >= t;
        if (valid) {
            scratch.push_back(static_cast<std::uint32_t>(i));
        }
    }
    return scratch.size();
}

bool
TemporalGraph::has_edge(NodeId u, NodeId v) const
{
    for (const Neighbor& n : out_neighbors(u)) {
        if (n.dst == v) {
            return true;
        }
    }
    return false;
}

EdgeId
TemporalGraph::max_out_degree() const
{
    EdgeId max_degree = 0;
    for (NodeId u = 0; u < num_nodes(); ++u) {
        max_degree = std::max(max_degree, out_degree(u));
    }
    return max_degree;
}

bool
TemporalGraph::check_invariants() const
{
    if (offsets_.empty() || offsets_.front() != 0 ||
        offsets_.back() != neighbors_.size()) {
        return false;
    }
    if (!std::is_sorted(offsets_.begin(), offsets_.end())) {
        return false;
    }
    const NodeId n = num_nodes();
    for (NodeId u = 0; u < n; ++u) {
        const auto slice = out_neighbors(u);
        for (std::size_t i = 0; i < slice.size(); ++i) {
            if (slice[i].dst >= n) {
                return false;
            }
            if (i > 0 && slice[i - 1].time > slice[i].time) {
                return false;
            }
        }
    }
    return true;
}

} // namespace tgl::graph
