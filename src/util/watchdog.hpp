/// @file
/// Stall watchdog + phase board for the overlapped walk/word2vec path.
///
/// A wedged shard_queue consumer (or a failpoint-simulated one) used to
/// hang the pipeline forever: producers block on a full queue, the
/// trainer blocks on an empty one, and nothing ever times out.
/// StallWatchdog runs a monitor thread that samples a caller-supplied
/// progress counter (queue ops + phase-board version); when the counter
/// stops advancing for longer than the deadline it captures a report —
/// per-thread phase state plus queue statistics — and invokes the
/// on_stall callback exactly once. The callback requests cooperative
/// cancellation and closes the queue, so every blocked worker unwinds
/// and the run fails with a resumable checkpoint instead of hanging.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace tgl::util {

/// Shared whiteboard where worker threads post what they are doing
/// ("producer-1: generating shard 7"). Cheap enough for per-shard
/// updates; the watchdog folds version() into its progress signal and
/// dumps the board when a stall fires.
class PhaseBoard
{
  public:
    /// Post/update one worker's state line.
    void set(const std::string& who, const std::string& state);

    /// Bumped on every set(); a progress heartbeat in its own right.
    std::uint64_t version() const;

    /// "  <who>: <state>" lines, sorted by worker, newline-terminated.
    std::string dump() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::string> states_;
    std::atomic<std::uint64_t> version_{0};
};

/// Monitor thread that fails a run instead of letting it hang.
class StallWatchdog
{
  public:
    struct Options
    {
        /// No-progress window after which the watchdog fires.
        std::chrono::milliseconds deadline{30000};
        /// Sampling cadence; 0 derives deadline/8 clamped to
        /// [10 ms, 1 s].
        std::chrono::milliseconds poll{0};
        /// Label used in the stall report.
        std::string name = "pipeline";
    };

    /// @p progress is sampled from the monitor thread and must be
    /// thread-safe; any advance counts as liveness. @p dump_state is
    /// called once when the stall fires (also from the monitor thread)
    /// to snapshot worker/queue state for the report. @p on_stall
    /// performs the recovery action (request cancellation, close the
    /// queue); it runs at most once.
    StallWatchdog(Options options, std::function<std::uint64_t()> progress,
                  std::function<std::string()> dump_state,
                  std::function<void(const std::string& report)> on_stall);

    /// Joins the monitor thread (stop() if still running).
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog&) = delete;
    StallWatchdog& operator=(const StallWatchdog&) = delete;

    /// Shut the monitor down without firing; idempotent.
    void stop();

    /// True once the watchdog has fired.
    bool fired() const;

    /// The captured stall report ("" until fired).
    std::string report() const;

  private:
    void run();

    Options options_;
    std::function<std::uint64_t()> progress_;
    std::function<std::string()> dump_state_;
    std::function<void(const std::string&)> on_stall_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::atomic<bool> fired_{false};
    std::string report_; // guarded by mutex_
    std::thread monitor_;
};

} // namespace tgl::util
