/// @file
/// Link prediction on a temporal interaction network — the paper's
/// first downstream task (product recommendation, friend suggestion).
///
/// Works on a `.wel` edge list (`src dst timestamp` per line) or, when
/// no file is given, a synthetic stand-in for one of the Table II
/// datasets. Exposes the paper's hyperparameters as flags.
///
/// Examples:
///   ./link_prediction --dataset wiki-talk --scale 0.02
///   ./link_prediction --input my_graph.wel --walks 10 --length 6
///   ./link_prediction --dataset ia-email --transition uniform
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("link_prediction",
                        "temporal-walk link prediction pipeline");
    cli.add_flag("input", "", ".wel edge list (overrides --dataset)");
    cli.add_flag("dataset", "ia-email",
                 "catalog stand-in: ia-email | wiki-talk | stackoverflow");
    cli.add_flag("scale", "0.05", "stand-in scale vs the paper's size");
    cli.add_flag("walks", "10", "K: walks per node");
    cli.add_flag("length", "6", "N: max walk length");
    cli.add_flag("dim", "8", "d: embedding dimension");
    cli.add_flag("transition", "exp",
                 "transition: uniform | exp | exp-decay | linear");
    cli.add_flag("epochs", "20", "classifier training epochs");
    cli.add_flag("threads", "0", "worker threads (0 = hardware)");
    cli.add_flag("seed", "42", "random seed");
    cli.add_switch("batched-w2v",
                   "use the batched (GPU-model) word2vec execution");
    cli.add_flag("save-embeddings", "", "write embeddings to this path");

    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        if (const long long threads = cli.get_int("threads");
            threads > 0) {
            util::set_default_threads(static_cast<unsigned>(threads));
        }

        graph::EdgeList edges;
        std::string name;
        if (const std::string input = cli.get_string("input");
            !input.empty()) {
            edges = graph::load_wel_file(input);
            name = input;
        } else {
            const gen::Dataset dataset =
                gen::make_dataset(cli.get_string("dataset"),
                                  cli.get_double("scale"),
                                  static_cast<std::uint64_t>(
                                      cli.get_int("seed")));
            if (dataset.task != gen::Task::kLinkPrediction) {
                util::fatal("dataset is a node-classification dataset; "
                            "use ./node_classification");
            }
            edges = std::move(dataset.edges);
            name = dataset.name;
        }
        std::printf("== link prediction on %s: %u nodes, %zu edges ==\n",
                    name.c_str(), edges.num_nodes(), edges.size());

        core::PipelineConfig config;
        config.walk.walks_per_node =
            static_cast<unsigned>(cli.get_int("walks"));
        config.walk.max_length =
            static_cast<unsigned>(cli.get_int("length"));
        config.walk.transition =
            walk::parse_transition(cli.get_string("transition"));
        config.walk.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        config.sgns.dim = static_cast<unsigned>(cli.get_int("dim"));
        config.sgns.seed = config.walk.seed;
        config.classifier.max_epochs =
            static_cast<unsigned>(cli.get_int("epochs"));
        if (cli.get_switch("batched-w2v")) {
            config.w2v_mode = core::W2vMode::kBatched;
        }

        const core::PipelineResult result =
            core::run_link_prediction_pipeline(edges, config);

        std::printf("test accuracy : %.4f\n", result.task.test_accuracy);
        std::printf("test AUC      : %.4f\n", result.task.test_auc);
        std::printf("valid accuracy: %.4f\n", result.task.valid_accuracy);
        std::printf("train loss    : %.4f (%u epochs)\n",
                    result.task.final_train_loss, result.task.epochs_run);
        std::printf("%s\n", core::format_phase_times(result.times).c_str());

        if (const std::string path = cli.get_string("save-embeddings");
            !path.empty()) {
            // Re-run just the front-end to materialize embeddings for
            // the user (the pipeline consumed its own copy).
            const auto graph = graph::GraphBuilder::build(
                edges, {.symmetrize = true});
            const walk::Corpus corpus =
                walk::generate_walks(graph, config.walk);
            const embed::Embedding embedding = embed::train_sgns(
                corpus, graph.num_nodes(), config.sgns);
            embedding.save_file(path);
            std::printf("embeddings written to %s\n", path.c_str());
        }
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
