#include "nn/optim.hpp"

namespace tgl::nn {

Sgd::Sgd(std::vector<Parameter*> parameters, float lr, float momentum,
         float weight_decay)
    : parameters_(std::move(parameters)), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay)
{
    if (momentum_ > 0.0f) {
        velocity_.reserve(parameters_.size());
        for (const Parameter* p : parameters_) {
            velocity_.emplace_back(p->value.rows(), p->value.cols());
        }
    }
}

void
Sgd::step()
{
    for (std::size_t n = 0; n < parameters_.size(); ++n) {
        Parameter& p = *parameters_[n];
        float* value = p.value.data();
        const float* grad = p.grad.data();
        const std::size_t count = p.value.size();

        if (momentum_ > 0.0f) {
            float* velocity = velocity_[n].data();
            for (std::size_t i = 0; i < count; ++i) {
                const float g =
                    grad[i] + weight_decay_ * value[i];
                velocity[i] = momentum_ * velocity[i] + g;
                value[i] -= lr_ * velocity[i];
            }
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                const float g =
                    grad[i] + weight_decay_ * value[i];
                value[i] -= lr_ * g;
            }
        }
    }
}

void
Sgd::zero_grad()
{
    for (Parameter* p : parameters_) {
        p->grad.zero();
    }
}

} // namespace tgl::nn
