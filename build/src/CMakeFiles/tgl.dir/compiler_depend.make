# Empty compiler generated dependencies file for tgl.
# This may be replaced when dependencies are built.
