/// @file
/// Software operation accounting — the MICA-Pintool substitution.
///
/// The paper classifies dynamic instructions into memory / branch /
/// compute / other (Fig. 9) with a binary-instrumentation tool. Without
/// one, tgl derives the same taxonomy at the algorithm level: each
/// kernel reports the data touches, conditional decisions, and
/// arithmetic its inner loops actually perform (counted by the kernels
/// themselves — e.g. walk::TransitionCost — or derived from exact trip
/// counts), plus a fixed overhead share for the stack/SIMD/"others"
/// bucket. Absolute counts differ from retired-instruction counts; the
/// *mix* — which Fig. 9's conclusion rests on — tracks the algorithm.
#pragma once

#include "embed/sgns_model.hpp"
#include "embed/trainer.hpp"
#include "walk/engine.hpp"

#include <cstdint>
#include <string>

namespace tgl::prof {

/// Operation counts in the MICA taxonomy.
struct OpCounts
{
    std::uint64_t memory = 0;
    std::uint64_t branch = 0;
    std::uint64_t compute = 0;
    std::uint64_t other = 0;

    std::uint64_t
    total() const
    {
        return memory + branch + compute + other;
    }

    double memory_fraction() const;
    double branch_fraction() const;
    double compute_fraction() const;
    double other_fraction() const;
};

/// Operation mix of a temporal-random-walk run, derived from the
/// engine's measured profile.
OpCounts walk_op_counts(const walk::WalkProfile& profile);

/// Same, for a run that used the prefix-CDF transition cache: folds the
/// one-time table-build cost (@p cache_build, from
/// walk::TransitionCache::build_cost()) into the kernel totals so the
/// cached mix does not silently hide the O(E) exp pass it amortizes.
/// Pass nullptr when the cache needed no table (uniform / linear).
OpCounts walk_op_counts(const walk::WalkProfile& profile,
                        const walk::TransitionCost* cache_build);

/// Operation mix of an SGNS training run, derived from measured pair
/// counts and the configured dim / negatives.
OpCounts w2v_op_counts(const embed::TrainStats& stats,
                       const embed::SgnsConfig& config);

/// Operation mix of classifier training/testing, derived from the
/// exact GEMM and elementwise trip counts of the layer stack.
///
/// @param batch    examples per pass
/// @param layer_dims  widths including input and output, e.g. {16,16,1}
/// @param passes   forward(+backward) executions
/// @param training include backward-pass work
OpCounts classifier_op_counts(std::size_t batch,
                              const std::vector<std::size_t>& layer_dims,
                              std::uint64_t passes, bool training);

/// Render "kernel: mem x% branch y% compute z% other w%".
std::string format_op_counts(const std::string& kernel,
                             const OpCounts& counts);

} // namespace tgl::prof
