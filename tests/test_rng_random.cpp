/// Unit + statistical tests for the PRNG stack.
#include "rng/random.hpp"

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace tgl::rng {
namespace {

TEST(Xoshiro, DeterministicForSeed)
{
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++same;
        }
    }
    EXPECT_LE(same, 1);
}

TEST(Xoshiro, JumpProducesDisjointStream)
{
    Xoshiro256 a(7);
    Xoshiro256 b(7);
    b.jump();
    std::set<std::uint64_t> from_a;
    for (int i = 0; i < 1000; ++i) {
        from_a.insert(a());
    }
    int collisions = 0;
    for (int i = 0; i < 1000; ++i) {
        if (from_a.count(b())) {
            ++collisions;
        }
    }
    EXPECT_EQ(collisions, 0);
}

TEST(SplitMix, MixSeedSpreadsStreams)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t stream = 0; stream < 1000; ++stream) {
        seeds.insert(mix_seed(123, stream));
    }
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Random, NextIndexStaysInBounds)
{
    Random random(5);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(random.next_index(7), 7u);
    }
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(random.next_index(1), 0u);
    }
}

TEST(Random, NextIndexIsRoughlyUniform)
{
    Random random(11);
    constexpr int kBuckets = 10;
    constexpr int kDraws = 100000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i) {
        ++counts[random.next_index(kBuckets)];
    }
    // Chi-square with 9 dof; 99.9% critical value ~27.9.
    double chi2 = 0.0;
    const double expected = static_cast<double>(kDraws) / kBuckets;
    for (int count : counts) {
        const double diff = count - expected;
        chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 27.9);
}

TEST(Random, NextIntCoversInclusiveRange)
{
    Random random(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = random.next_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Random, NextDoubleInHalfOpenUnit)
{
    Random random(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = random.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, NextDoubleMeanNearHalf)
{
    Random random(13);
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        sum += random.next_double();
    }
    EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Random, BernoulliMatchesProbability)
{
    Random random(17);
    int hits = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (random.next_bernoulli(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Random, GaussianMomentsMatch)
{
    Random random(19);
    double sum = 0.0, sum_sq = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double v = random.next_gaussian();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Random, ExponentialMeanMatchesRate)
{
    Random random(23);
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double v = random.next_exponential(2.0);
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Random, ShufflePreservesElements)
{
    Random random(29);
    std::vector<int> values(100);
    std::iota(values.begin(), values.end(), 0);
    auto shuffled = values;
    random.shuffle(shuffled);
    EXPECT_NE(shuffled, values); // astronomically unlikely to be equal
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

TEST(Random, SampleWithoutReplacementIsDistinctAndBounded)
{
    Random random(31);
    const auto sample = random.sample_without_replacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::uint64_t v : sample) {
        EXPECT_LT(v, 100u);
    }
}

TEST(Random, SampleWithoutReplacementFullSet)
{
    Random random(37);
    const auto sample = random.sample_without_replacement(10, 10);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
}

} // namespace
} // namespace tgl::rng
