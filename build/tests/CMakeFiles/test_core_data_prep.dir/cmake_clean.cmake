file(REMOVE_RECURSE
  "CMakeFiles/test_core_data_prep.dir/test_core_data_prep.cpp.o"
  "CMakeFiles/test_core_data_prep.dir/test_core_data_prep.cpp.o.d"
  "test_core_data_prep"
  "test_core_data_prep.pdb"
  "test_core_data_prep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_data_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
