/// @file
/// Regression tests for the BENCH_*.json writer (bench/bench_json.hpp).
///
/// The load-bearing one is meta order-independence: write_bench_json()
/// takes the meta vector as one argument at the single emission call,
/// so a harness that learned provenance (the SIMD ISA probe, the sweep
/// kind) after its measurement loops had to thread that state back to
/// the call site — BENCH_serve.json silently shipped without its
/// `simd_isa` key in an early draft, which made tools/bench_compare.py
/// treat cross-ISA baselines as comparable. BenchReport::set_meta()
/// may now run before, between, or after add() calls and must always
/// land in the meta block.
#include "bench/bench_json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>

namespace {

using namespace tgl;

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class TempJson
{
  public:
    TempJson() : path_(testing::TempDir() + "bench_json_test.json") {}
    ~TempJson() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

TEST(BenchJson, MetaSetAfterEntriesStillEmitted)
{
    TempJson file;
    bench::BenchReport report("suite");
    report.add({"walk/a", 1.5, 10.0, {}});
    report.add({"walk/b", 2.5, 20.0, {{"count", 3.0}}});
    // Provenance learned after the measurement loop — the historical
    // dropped-meta shape.
    report.set_meta("simd_isa", "avx2");
    report.write(file.path());

    const std::string json = slurp(file.path());
    EXPECT_NE(json.find("\"meta\": {\"simd_isa\": \"avx2\"}"),
              std::string::npos)
        << json;
    // Meta precedes entries regardless of call order.
    EXPECT_LT(json.find("\"meta\""), json.find("\"entries\""));
    EXPECT_NE(json.find("\"walk/a\""), std::string::npos);
    EXPECT_NE(json.find("\"walk/b\""), std::string::npos);
}

TEST(BenchJson, SetMetaUpsertsLastValueWins)
{
    TempJson file;
    bench::BenchReport report("suite");
    report.set_meta("sweep", "short");
    report.add({"x", 1.0, 0.0, {}});
    report.set_meta("sweep", "long");
    report.write(file.path());

    const std::string json = slurp(file.path());
    EXPECT_NE(json.find("\"sweep\": \"long\""), std::string::npos);
    EXPECT_EQ(json.find("\"sweep\": \"short\""), std::string::npos);
}

TEST(BenchJson, HigherIsBetterEmittedPerEntry)
{
    TempJson file;
    bench::BenchReport report("serve");
    report.add({"serve/link_p99", 0.002, 0.0, {}});
    report.add({"serve/peak_qps", 50000.0, 50000.0, {}, "qps",
                /*higher_is_better=*/true});
    report.write(file.path());

    const std::string json = slurp(file.path());
    EXPECT_NE(json.find("\"name\": \"serve/link_p99\", \"seconds\": "
                        "0.002, \"items_per_second\": 0, \"unit\": "
                        "\"seconds\", \"higher_is_better\": false"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"unit\": \"qps\", \"higher_is_better\": true"),
              std::string::npos)
        << json;
}

TEST(BenchJson, PositionalAggregateInitKeepsGateDefaults)
{
    // Every pre-existing timing call site initializes BenchEntry
    // positionally through `metrics` and relies on the trailing fields
    // defaulting to a gateable timing entry. Appending fields must not
    // disturb that.
    const bench::BenchEntry entry{"pipeline/walk", 1.0, 2.0, {}};
    EXPECT_EQ(entry.unit, "seconds");
    EXPECT_FALSE(entry.higher_is_better);
}

TEST(BenchJson, NoMetaOmitsBlock)
{
    TempJson file;
    bench::BenchReport report("suite");
    report.add({"x", 1.0, 0.0, {}});
    report.write(file.path());
    EXPECT_EQ(slurp(file.path()).find("\"meta\""), std::string::npos);
}

TEST(BenchJson, DegenerateNumbersClampToZero)
{
    TempJson file;
    bench::BenchReport report("suite");
    report.add({"nan", std::nan(""),
                std::numeric_limits<double>::infinity(), {}});
    report.write(file.path());
    const std::string json = slurp(file.path());
    EXPECT_NE(json.find("\"seconds\": 0, \"items_per_second\": 0"),
              std::string::npos)
        << json;
}

} // namespace
