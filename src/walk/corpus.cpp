#include "walk/corpus.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <fstream>
#include <ostream>

namespace tgl::walk {

void
Corpus::append(Corpus&& other)
{
    const std::size_t base = tokens_.size();
    tokens_.insert(tokens_.end(), other.tokens_.begin(),
                   other.tokens_.end());
    offsets_.reserve(offsets_.size() + other.num_walks());
    for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
        offsets_.push_back(base + other.offsets_[i]);
    }
    other.tokens_.clear();
    other.offsets_.assign(1, 0);
}

void
Corpus::save(std::ostream& out) const
{
    for (std::size_t i = 0; i < num_walks(); ++i) {
        const auto w = walk(i);
        for (std::size_t j = 0; j < w.size(); ++j) {
            out << w[j] << (j + 1 == w.size() ? '\n' : ' ');
        }
    }
}

Corpus
Corpus::load(std::istream& in)
{
    Corpus corpus;
    std::string line;
    std::vector<graph::NodeId> walk;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto trimmed = util::trim(line);
        if (trimmed.empty()) {
            continue;
        }
        walk.clear();
        for (const auto field : util::split(trimmed)) {
            const long long value = util::parse_int(field);
            if (value < 0) {
                util::fatal(util::strcat("corpus line ", line_number,
                                         ": negative node id"));
            }
            walk.push_back(static_cast<graph::NodeId>(value));
        }
        corpus.add_walk(walk);
    }
    return corpus;
}

void
Corpus::save_file(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        util::fatal(util::strcat("cannot open for writing: ", path));
    }
    save(out);
}

Corpus
Corpus::load_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    return load(in);
}

} // namespace tgl::walk
