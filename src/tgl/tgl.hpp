/// @file
/// Umbrella header: the full public API of the tgl library.
///
/// tgl reproduces the random-walk temporal graph learning pipeline of
/// Talati et al., "A Deep Dive Into Understanding The Random Walk-Based
/// Temporal Graph Learning" (IISWC 2021): temporal random walks over a
/// CSR temporal graph, skip-gram node embeddings, and FNN classifiers
/// for link prediction and node classification, plus the workload-
/// characterization substrate the paper's evaluation uses.
///
/// Quick start:
/// @code
///   auto dataset = tgl::gen::make_dataset("ia-email", 0.05);
///   tgl::core::PipelineConfig config; // paper-optimal defaults
///   auto result = tgl::core::run_pipeline(dataset, config);
/// @endcode
#pragma once

// util: errors, logging, timing, threading, crash-safe artifact I/O
#include "util/artifact_io.hpp"
#include "util/cancellation.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/parallel_for.hpp"
#include "util/retry.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/watchdog.hpp"

// rng: generators and samplers
#include "rng/alias_table.hpp"
#include "rng/discrete_sampler.hpp"
#include "rng/random.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

// obs: metrics registry + tracing spans (pipeline-wide telemetry)
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/process_stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

// graph: temporal CSR substrate
#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/snapshot.hpp"
#include "graph/stats.hpp"
#include "graph/temporal_graph.hpp"
#include "graph/types.hpp"

// gen: synthetic temporal graph generators
#include "gen/barabasi_albert.hpp"
#include "gen/catalog.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "gen/timestamps.hpp"

// walk: temporal random walk engine
#include "walk/batch.hpp"
#include "walk/config.hpp"
#include "walk/corpus.hpp"
#include "walk/engine.hpp"
#include "walk/stats.hpp"
#include "walk/transition.hpp"
#include "walk/transition_cache.hpp"

// embed: word2vec (skip-gram negative sampling)
#include "embed/batched_trainer.hpp"
#include "embed/embedding.hpp"
#include "embed/kernels.hpp"
#include "embed/negative_table.hpp"
#include "embed/sgns_model.hpp"
#include "embed/sigmoid_table.hpp"
#include "embed/trainer.hpp"
#include "embed/vocab.hpp"

// nn: classifier substrate
#include "nn/data_loader.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "nn/tensor.hpp"

// core: the end-to-end pipeline and downstream tasks
#include "core/checkpoint.hpp"
#include "core/data_prep.hpp"
#include "core/link_prediction.hpp"
#include "core/link_property_prediction.hpp"
#include "core/metrics.hpp"
#include "core/node_classification.hpp"
#include "core/pipeline.hpp"

// serve: high-QPS online inference over published embedding snapshots
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"

// profiling: workload characterization substrate
#include "profiling/comparison_kernels.hpp"
#include "profiling/op_counters.hpp"
#include "profiling/phase_timer.hpp"
#include "profiling/stall_model.hpp"
