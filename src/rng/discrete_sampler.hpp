/// @file
/// Sampling from discrete weighted distributions.
///
/// Two flavors:
///  * DiscreteSampler — prefix-sum table built once, O(log n) draws;
///    used when many draws come from one distribution.
///  * one-shot free functions — a single draw from weights that exist
///    only transiently (the temporal-walk softmax over a neighbor
///    suffix, Eq. 1 of the paper), where building a table would cost
///    more than the draw itself.
#pragma once

#include "rng/random.hpp"

#include <cstdint>
#include <functional>
#include <vector>

namespace tgl::rng {

/// CDF sampler with O(log n) draws via binary search.
class DiscreteSampler
{
  public:
    DiscreteSampler() = default;

    /// Build from non-negative weights (at least one positive).
    explicit DiscreteSampler(const std::vector<double>& weights);

    /// Number of outcomes.
    std::size_t size() const { return cdf_.size(); }

    /// Draw an outcome index.
    std::uint32_t sample(Random& random) const;

    /// Exact probability of outcome i (for tests).
    double outcome_probability(std::uint32_t i) const;

  private:
    std::vector<double> cdf_; // inclusive prefix sums, last == total
};

/// One draw from weights[0..n) produced lazily by @p weight_of, using a
/// single pass (weighted reservoir replacement). Returns n if every
/// weight is zero.
std::size_t sample_weighted_one_pass(
    std::size_t n, const std::function<double(std::size_t)>& weight_of,
    Random& random);

/// One draw using two passes (total, then threshold scan). Slightly
/// cheaper per element than the one-pass method when the weight functor
/// is trivial; kept for the sampling ablation bench. Returns n if every
/// weight is zero.
std::size_t sample_weighted_two_pass(
    std::size_t n, const std::function<double(std::size_t)>& weight_of,
    Random& random);

} // namespace tgl::rng
