/// @file
/// Sequential feed-forward network container and the two fixed
/// architectures of the paper (SIV-B):
///  * link prediction — 2-layer FNN ending in a sigmoid probability;
///  * node classification — 3-layer FNN ending in log-softmax over C
///    classes.
#pragma once

#include "nn/layers.hpp"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace tgl::nn {

/// A stack of layers executed in order.
class Mlp
{
  public:
    Mlp() = default;

    /// Append a layer (takes ownership).
    void add(std::unique_ptr<Layer> layer);

    /// Forward pass through every layer.
    const Tensor& forward(const Tensor& input);

    /// Backward pass (reverse order); returns dLoss/dInput.
    const Tensor& backward(const Tensor& grad_output);

    /// All learnable parameters in layer order.
    std::vector<Parameter*> parameters();

    /// Number of layers.
    std::size_t depth() const { return layers_.size(); }

    /// Total learnable scalar count.
    std::size_t num_parameters();

    /// Multi-line architecture description.
    std::string describe() const;

    /// Persist every parameter tensor in the CRC32-checksummed artifact
    /// container (util/artifact_io.hpp, kind "mlp"); @p fingerprint keys
    /// the weights to the configuration that trained them.
    void save_weights(std::ostream& out, std::uint64_t fingerprint = 0);

    /// Restore parameters saved by save_weights into this network. The
    /// architecture must already match: parameter count, names, and
    /// shapes are validated and any mismatch (or a truncated/corrupt
    /// file) throws tgl::util::Error, leaving no partial update
    /// observable to training.
    void load_weights(std::istream& in,
                      std::uint64_t* fingerprint = nullptr);

    /// Atomic (temp file + rename) weight file write / checked read.
    void save_weights_file(const std::string& path,
                           std::uint64_t fingerprint = 0);
    void load_weights_file(const std::string& path,
                           std::uint64_t* fingerprint = nullptr);

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/// The paper's link-prediction classifier: edge features of width
/// 2d -> hidden -> 1 sigmoid probability.
Mlp make_link_predictor(std::size_t input_dim, std::size_t hidden_dim,
                        rng::Random& random);

/// The paper's node classifier: d -> hidden1 -> hidden2 -> |C|
/// log-probabilities.
Mlp make_node_classifier(std::size_t input_dim, std::size_t hidden1,
                         std::size_t hidden2, std::size_t num_classes,
                         rng::Random& random);

/// The SVIII-A extension: a residual link predictor — input projection
/// followed by @p num_blocks ResidualBlocks and a sigmoid head. The
/// paper observes ~2% link-prediction accuracy over the plain FNN.
Mlp make_residual_link_predictor(std::size_t input_dim,
                                 std::size_t hidden_dim,
                                 std::size_t num_blocks,
                                 rng::Random& random);

} // namespace tgl::nn
