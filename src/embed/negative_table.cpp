#include "embed/negative_table.hpp"

#include "util/error.hpp"

#include <cmath>

namespace tgl::embed {

NegativeTable::NegativeTable(const Vocab& vocab, NegativeTableKind kind,
                             std::size_t array_size)
    : kind_(kind)
{
    if (vocab.size() == 0) {
        util::fatal("NegativeTable: empty vocabulary");
    }
    std::vector<double> weights(vocab.size());
    double total = 0.0;
    for (WordId w = 0; w < vocab.size(); ++w) {
        weights[w] = std::pow(static_cast<double>(vocab.count(w)), 0.75);
        total += weights[w];
    }

    if (kind_ == NegativeTableKind::kAlias) {
        alias_ = rng::AliasTable(weights);
        return;
    }

    if (array_size < vocab.size()) {
        util::fatal("NegativeTable: array_size smaller than vocabulary");
    }
    // word2vec's InitUnigramTable: fill the array proportionally,
    // guaranteeing at least the cumulative rounding gives every word
    // with positive weight a chance.
    array_.resize(array_size);
    WordId word = 0;
    double cumulative = weights[0] / total;
    for (std::size_t i = 0; i < array_size; ++i) {
        array_[i] = word;
        const double position =
            static_cast<double>(i + 1) / static_cast<double>(array_size);
        if (position > cumulative && word + 1 < vocab.size()) {
            ++word;
            cumulative += weights[word] / total;
        }
    }
}

double
NegativeTable::probability(WordId w) const
{
    if (kind_ == NegativeTableKind::kAlias) {
        return alias_.outcome_probability(w);
    }
    std::size_t hits = 0;
    for (WordId entry : array_) {
        if (entry == w) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(array_.size());
}

} // namespace tgl::embed
