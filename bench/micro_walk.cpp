/// @file
/// Micro-benchmarks of the temporal random walk kernel: transition
/// model cost, neighbor-search ablation (binary vs the paper's linear
/// scan), strictness modes, and the prefix-CDF transition cache
/// against the direct exp-scan. Throughput is reported in walk steps
/// per second.
///
/// After the google-benchmark suite, a dedicated comparison harness
/// times cached vs direct sampling on a degree-skewed R-MAT graph and
/// records the measurements (including the cached/direct speedup per
/// transition kind) to BENCH_walk.json — see bench_json.hpp for the
/// schema.
#include "bench_json.hpp"
#include "tgl/tgl.hpp"
#include "util/timer.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace tgl;

const graph::TemporalGraph&
shared_graph()
{
    static const graph::TemporalGraph graph = [] {
        const auto dataset = gen::make_dataset("ia-email", 0.05, 7);
        return graph::GraphBuilder::build(dataset.edges,
                                          {.symmetrize = true});
    }();
    return graph;
}

void
run_walks(benchmark::State& state, walk::TransitionKind transition,
          bool linear_search,
          walk::TransitionCacheMode cache = walk::TransitionCacheMode::kOff)
{
    const graph::TemporalGraph& graph = shared_graph();
    walk::WalkConfig config;
    config.walks_per_node = 2;
    config.max_length = 6;
    config.transition = transition;
    config.linear_neighbor_search = linear_search;
    config.transition_cache = cache;
    config.seed = 11;

    std::uint64_t steps = 0;
    for (auto _ : state) {
        walk::WalkProfile profile;
        const walk::Corpus corpus =
            walk::generate_walks(graph, config, &profile);
        benchmark::DoNotOptimize(corpus.num_tokens());
        steps += profile.steps_taken;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}

void
BM_WalkUniform(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kUniform, false);
}

void
BM_WalkExponential(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponential, false);
}

void
BM_WalkExponentialDecay(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponentialDecay, false);
}

void
BM_WalkLinearBias(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kLinear, false);
}

void
BM_WalkLinearNeighborScan(benchmark::State& state)
{
    // The paper's O(max-degree) sampleLatent search.
    run_walks(state, walk::TransitionKind::kExponential, true);
}

void
BM_WalkBinaryNeighborSearch(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponential, false);
}

void
BM_WalkExponentialCached(benchmark::State& state)
{
    // Prefix-CDF path, table built inside generate_walks each
    // iteration (the honest amortized cost a pipeline run pays).
    run_walks(state, walk::TransitionKind::kExponential, false,
              walk::TransitionCacheMode::kOn);
}

void
BM_WalkExponentialDecayCached(benchmark::State& state)
{
    run_walks(state, walk::TransitionKind::kExponentialDecay, false,
              walk::TransitionCacheMode::kOn);
}

BENCHMARK(BM_WalkUniform)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkExponential)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkExponentialDecay)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkLinearBias)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkLinearNeighborScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkBinaryNeighborSearch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkExponentialCached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkExponentialDecayCached)->Unit(benchmark::kMillisecond);

void
BM_WalkLengthSweep(benchmark::State& state)
{
    const graph::TemporalGraph& graph = shared_graph();
    walk::WalkConfig config;
    config.walks_per_node = 2;
    config.max_length = static_cast<unsigned>(state.range(0));
    config.seed = 13;
    for (auto _ : state) {
        const walk::Corpus corpus = walk::generate_walks(graph, config);
        benchmark::DoNotOptimize(corpus.num_tokens());
    }
}

BENCHMARK(BM_WalkLengthSweep)
    ->Arg(2)
    ->Arg(6)
    ->Arg(20)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

/// Best-of-N wall time of one full generate_walks call; returns steps
/// taken via @p steps so rates use the measured run's real work.
double
time_walks(const graph::TemporalGraph& graph, walk::WalkConfig config,
           walk::TransitionCacheMode mode, std::uint64_t* steps)
{
    config.transition_cache = mode;
    constexpr int kReps = 3;
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        walk::WalkProfile profile;
        util::Timer timer;
        const walk::Corpus corpus =
            walk::generate_walks(graph, config, &profile);
        const double seconds = timer.seconds();
        benchmark::DoNotOptimize(corpus.num_tokens());
        if (seconds < best) {
            best = seconds;
            *steps = profile.steps_taken;
        }
    }
    return best;
}

/// Best-of-N wall time of generate_walks against a prebuilt transition
/// cache — isolates the walk kernel from the (shared) cache build.
double
time_walks_cached(const graph::TemporalGraph& graph,
                  const walk::WalkConfig& config,
                  const walk::TransitionCache& cache, std::uint64_t* steps)
{
    constexpr int kReps = 3;
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        walk::WalkProfile profile;
        util::Timer timer;
        const walk::Corpus corpus =
            walk::generate_walks(graph, config, &cache, &profile);
        const double seconds = timer.seconds();
        benchmark::DoNotOptimize(corpus.num_tokens());
        if (seconds < best) {
            best = seconds;
            *steps = profile.steps_taken;
        }
    }
    return best;
}

/// Cached-vs-direct A/B on a degree-skewed R-MAT graph (mean degree
/// >= 16, the regime the cache targets), written to BENCH_walk.json.
void
run_cache_comparison()
{
    gen::RmatParams params;
    params.scale = 14;                // 16384 nodes
    params.num_edges = 1u << 18;      // 262144 edges -> skewed degrees
    params.seed = 5;
    const auto graph = graph::GraphBuilder::build(generate_rmat(params),
                                                  {.symmetrize = true});
    const double mean_degree = static_cast<double>(graph.num_edges()) /
                               static_cast<double>(graph.num_nodes());

    walk::WalkConfig config;
    config.walks_per_node = 4;
    config.max_length = 20;
    config.seed = 17;

    std::vector<bench::BenchEntry> entries;
    std::printf("\n--- prefix-CDF cache vs direct exp-scan (R-MAT "
                "2^%u nodes, %llu edges, mean degree %.1f) ---\n",
                params.scale,
                static_cast<unsigned long long>(graph.num_edges()),
                mean_degree);
    for (const walk::TransitionKind kind :
         {walk::TransitionKind::kExponential,
          walk::TransitionKind::kExponentialDecay,
          walk::TransitionKind::kLinear, walk::TransitionKind::kUniform}) {
        config.transition = kind;
        std::uint64_t direct_steps = 0, cached_steps = 0;
        const double direct = time_walks(
            graph, config, walk::TransitionCacheMode::kOff, &direct_steps);
        const double cached = time_walks(
            graph, config, walk::TransitionCacheMode::kOn, &cached_steps);
        const double speedup = cached > 0.0 ? direct / cached : 0.0;

        const std::string name = walk::transition_name(kind);
        entries.push_back(
            {"walk/" + name + "/direct", direct,
             direct > 0.0 ? direct_steps / direct : 0.0,
             {{"steps", static_cast<double>(direct_steps)},
              {"mean_degree", mean_degree}}});
        entries.push_back(
            {"walk/" + name + "/cached", cached,
             cached > 0.0 ? cached_steps / cached : 0.0,
             {{"steps", static_cast<double>(cached_steps)},
              {"mean_degree", mean_degree},
              {"speedup_vs_direct", speedup}}});
        std::printf("%-10s direct %8.4fs | cached %8.4fs | speedup "
                    "%5.2fx\n",
                    name.c_str(), direct, cached, speedup);
    }
    bench::write_bench_json("BENCH_walk.json", "walk", entries);
}

/// Batched-vs-scalar A/B on the same R-MAT mean-degree-32 workload as
/// run_cache_comparison, written to BENCH_walk_batched.json. Every
/// variant uses the prefix-CDF cache so the measured delta is the
/// lockstep SIMD engine itself, not cache-on vs cache-off. The file's
/// `meta.simd_isa` records the compiled backend; the regression gate
/// skips cross-ISA comparisons (tools/bench_compare.py).
void
run_batched_comparison()
{
    gen::RmatParams params;
    params.scale = 14;
    params.num_edges = 1u << 18;
    params.seed = 5;
    const auto graph = graph::GraphBuilder::build(generate_rmat(params),
                                                  {.symmetrize = true});
    const double mean_degree = static_cast<double>(graph.num_edges()) /
                               static_cast<double>(graph.num_nodes());

    walk::WalkConfig config;
    config.walks_per_node = 4;
    config.max_length = 20;
    config.transition_cache = walk::TransitionCacheMode::kOn;
    config.seed = 17;

    std::vector<bench::BenchEntry> entries;
    std::printf("\n--- batched (SIMD %s) vs scalar walker (same R-MAT "
                "workload, mean degree %.1f, cache prebuilt) ---\n",
                walk::batch_isa_name(), mean_degree);
    for (const walk::TransitionKind kind :
         {walk::TransitionKind::kExponential,
          walk::TransitionKind::kExponentialDecay,
          walk::TransitionKind::kLinear, walk::TransitionKind::kUniform}) {
        config.transition = kind;
        const std::string name = walk::transition_name(kind);
        // Build the prefix-CDF table once outside the timed region:
        // both engines pay an identical (amortizable) build, so timing
        // it would only dilute the kernel delta under test.
        const walk::TransitionCache cache =
            walk::TransitionCache::build(graph, kind, config.num_threads);
        double scalar_time = 0.0;
        for (const unsigned width : {1u, 32u, 64u}) {
            config.batch_width = width;
            std::uint64_t steps = 0;
            const double seconds =
                time_walks_cached(graph, config, cache, &steps);
            const std::string variant =
                width == 1 ? "scalar" : "w" + std::to_string(width);
            bench::BenchEntry entry{
                "walk_batched/" + name + "/" + variant, seconds,
                seconds > 0.0 ? steps / seconds : 0.0,
                {{"steps", static_cast<double>(steps)},
                 {"batch_width", static_cast<double>(width)},
                 {"mean_degree", mean_degree}}};
            if (width == 1) {
                scalar_time = seconds;
            } else {
                entry.metrics.emplace_back(
                    "speedup_vs_scalar",
                    seconds > 0.0 ? scalar_time / seconds : 0.0);
            }
            entries.push_back(std::move(entry));
            if (width == 1) {
                std::printf("%-10s %-6s %8.4fs\n", name.c_str(),
                            variant.c_str(), seconds);
            } else {
                std::printf("%-10s %-6s %8.4fs | speedup %5.2fx\n",
                            name.c_str(), variant.c_str(), seconds,
                            seconds > 0.0 ? scalar_time / seconds : 0.0);
            }
        }
    }
    bench::write_bench_json(
        "BENCH_walk_batched.json", "walk_batched", entries,
        {{"simd_isa", walk::batch_isa_name()},
         {"f64_lanes", std::to_string(walk::batch_f64_lanes())}});
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    run_cache_comparison();
    run_batched_comparison();
    return 0;
}
