# Empty compiler generated dependencies file for test_embed_sgns.
# This may be replaced when dependencies are built.
