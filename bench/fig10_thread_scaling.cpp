/// @file
/// Fig. 10 reproduction: thread-scaling of the temporal random walk
/// and word2vec kernels on the stackoverflow stand-in, plus the
/// batched ("GPU execution model") point for each kernel.
///
/// Paper finding: both kernels scale reasonably despite irregularity
/// thanks to dynamically scheduled (work-stealing) threads; the GPU
/// point lands near 32 CPU threads for the walk (transfer + divergence
/// overheads) but beats the CPU clearly for batched word2vec.
#include "tgl/tgl.hpp"

#include <cstdio>
#include <vector>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("fig10_thread_scaling",
                        "Fig. 10: kernel thread scaling");
    cli.add_flag("dataset", "stackoverflow", "catalog dataset");
    cli.add_flag("scale", "0.003", "stand-in scale");
    cli.add_flag("seed", "1", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"), seed);
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});

        walk::WalkConfig walk_config;
        walk_config.walks_per_node = 10;
        walk_config.max_length = 6;
        walk_config.seed = seed;
        const walk::Corpus corpus =
            walk::generate_walks(graph, walk_config);

        const unsigned hardware = util::host_info().hardware_threads;
        // Sweep to at least 8 team sizes so the bench exercises the
        // dispatch machinery even on small hosts; past `hardware` the
        // rows measure oversubscription, not scaling.
        const unsigned sweep_max = std::max(hardware, 8u);
        std::vector<unsigned> thread_counts;
        for (unsigned t = 1; t <= sweep_max; t *= 2) {
            thread_counts.push_back(t);
        }
        if (thread_counts.back() != sweep_max) {
            thread_counts.push_back(sweep_max);
        }
        if (hardware == 1) {
            std::printf("# WARNING: single-core host — rows beyond 1 "
                        "thread measure oversubscription overhead, not "
                        "scaling; run on a multicore machine for the "
                        "paper's shape\n");
        }

        std::printf("# Fig. 10 reproduction — %s stand-in (%s nodes, %s "
                    "edges), %u hardware threads\n",
                    dataset.name.c_str(),
                    util::format_count(graph.num_nodes()).c_str(),
                    util::format_count(graph.num_edges()).c_str(),
                    hardware);
        std::printf("%10s %12s %12s %12s %12s\n", "threads", "rwalk(s)",
                    "rw-speedup", "w2v(s)", "w2v-speedup");

        double rwalk_base = 0.0;
        double w2v_base = 0.0;
        for (const unsigned threads : thread_counts) {
            walk::WalkConfig wc = walk_config;
            wc.num_threads = threads;
            util::Timer timer;
            walk::generate_walks(graph, wc);
            const double rwalk_seconds = timer.seconds();

            embed::SgnsConfig sgns;
            sgns.dim = 8;
            sgns.epochs = 1;
            sgns.seed = seed;
            sgns.num_threads = threads;
            embed::TrainStats stats;
            embed::train_sgns(corpus, graph.num_nodes(), sgns, &stats);

            if (rwalk_base == 0.0) {
                rwalk_base = rwalk_seconds;
                w2v_base = stats.seconds;
            }
            std::printf("%10u %12.3f %11.2fx %12.3f %11.2fx\n", threads,
                        rwalk_seconds, rwalk_base / rwalk_seconds,
                        stats.seconds, w2v_base / stats.seconds);
        }

        // The batched execution model (the paper's GPU point).
        {
            embed::BatchedSgnsConfig config;
            config.sgns.dim = 8;
            config.sgns.epochs = 1;
            config.sgns.seed = seed;
            config.batch_size = 16384;
            embed::TrainStats stats;
            embed::train_sgns_batched(corpus, graph.num_nodes(), config,
                                      &stats);
            std::printf("%10s %12s %12s %12.3f %11.2fx\n",
                        "batched", "-", "-", stats.seconds,
                        w2v_base / stats.seconds);
        }
        std::printf("\n# paper shape check: near-linear scaling at low "
                    "thread counts, flattening at high counts; the "
                    "batched word2vec point competitive with the best "
                    "threaded run.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
