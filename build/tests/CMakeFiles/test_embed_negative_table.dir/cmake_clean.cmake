file(REMOVE_RECURSE
  "CMakeFiles/test_embed_negative_table.dir/test_embed_negative_table.cpp.o"
  "CMakeFiles/test_embed_negative_table.dir/test_embed_negative_table.cpp.o.d"
  "test_embed_negative_table"
  "test_embed_negative_table.pdb"
  "test_embed_negative_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_negative_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
