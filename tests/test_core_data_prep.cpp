/// Tests for the Fig. 7 data preparation pipeline.
#include "core/data_prep.hpp"

#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tgl::core {
namespace {

struct Prepared
{
    graph::EdgeList edges;
    graph::TemporalGraph graph;
    LinkSplits splits;
};

Prepared
prepare(std::size_t num_edges = 1000, unsigned negatives = 1,
        std::uint64_t seed = 7)
{
    Prepared result;
    result.edges = gen::generate_erdos_renyi(
        {.num_nodes = 100, .num_edges = num_edges, .seed = 3});
    result.graph = graph::GraphBuilder::build(result.edges);
    SplitConfig config;
    config.negatives_per_positive = negatives;
    config.seed = seed;
    result.splits =
        prepare_link_splits(result.edges, result.graph, config);
    return result;
}

std::size_t
count_positives(const std::vector<EdgeSample>& samples)
{
    return static_cast<std::size_t>(
        std::count_if(samples.begin(), samples.end(),
                      [](const EdgeSample& s) { return s.label == 1.0f; }));
}

TEST(LinkSplits, SplitSizesMatchFractions)
{
    const Prepared p = prepare();
    EXPECT_EQ(count_positives(p.splits.train), 600u);
    EXPECT_EQ(count_positives(p.splits.valid), 200u);
    EXPECT_EQ(count_positives(p.splits.test), 200u);
}

TEST(LinkSplits, OneNegativePerPositiveByDefault)
{
    const Prepared p = prepare();
    EXPECT_EQ(p.splits.train.size(), 1200u);
    EXPECT_EQ(p.splits.valid.size(), 400u);
    EXPECT_EQ(p.splits.test.size(), 400u);
}

TEST(LinkSplits, MultipleNegativesPerPositive)
{
    const Prepared p = prepare(1000, 3);
    EXPECT_EQ(p.splits.train.size(), 2400u); // 600 * (1 + 3)
}

TEST(LinkSplits, TestPositivesAreTheMostRecentEdges)
{
    const Prepared p = prepare();
    graph::EdgeList sorted = p.edges;
    sorted.sort_by_time();
    const double cutoff = sorted[799].time; // last past edge

    // Collect the timestamp for each test positive by looking up the
    // original edges: every test positive must be at/after the cutoff.
    std::multiset<std::pair<graph::NodeId, graph::NodeId>> recent;
    for (std::size_t i = 800; i < sorted.size(); ++i) {
        recent.insert({sorted[i].src, sorted[i].dst});
    }
    for (const EdgeSample& sample : p.splits.test) {
        if (sample.label != 1.0f) {
            continue;
        }
        const auto it = recent.find({sample.src, sample.dst});
        ASSERT_NE(it, recent.end())
            << "test positive " << sample.src << "->" << sample.dst
            << " is not among the most recent 20% (cutoff " << cutoff
            << ")";
        recent.erase(it);
    }
}

TEST(LinkSplits, NegativesAreAbsentFromGraph)
{
    const Prepared p = prepare();
    auto check = [&](const std::vector<EdgeSample>& samples) {
        for (const EdgeSample& sample : samples) {
            if (sample.label == 0.0f) {
                EXPECT_FALSE(p.graph.has_edge(sample.src, sample.dst))
                    << sample.src << "->" << sample.dst;
            }
        }
    };
    check(p.splits.train);
    check(p.splits.valid);
    check(p.splits.test);
}

TEST(LinkSplits, TrainValidPositivesDisjoint)
{
    // Every past edge is used exactly once across train+valid.
    const Prepared p = prepare();
    std::multiset<std::pair<graph::NodeId, graph::NodeId>> past;
    graph::EdgeList sorted = p.edges;
    sorted.sort_by_time();
    for (std::size_t i = 0; i < 800; ++i) {
        past.insert({sorted[i].src, sorted[i].dst});
    }
    for (const auto* split : {&p.splits.train, &p.splits.valid}) {
        for (const EdgeSample& sample : *split) {
            if (sample.label != 1.0f) {
                continue;
            }
            const auto it = past.find({sample.src, sample.dst});
            ASSERT_NE(it, past.end());
            past.erase(it);
        }
    }
    EXPECT_TRUE(past.empty());
}

TEST(LinkSplits, DeterministicForSeed)
{
    const Prepared a = prepare(500, 1, 11);
    const Prepared b = prepare(500, 1, 11);
    ASSERT_EQ(a.splits.train.size(), b.splits.train.size());
    for (std::size_t i = 0; i < a.splits.train.size(); ++i) {
        EXPECT_EQ(a.splits.train[i].src, b.splits.train[i].src);
        EXPECT_EQ(a.splits.train[i].dst, b.splits.train[i].dst);
        EXPECT_EQ(a.splits.train[i].label, b.splits.train[i].label);
    }
}

TEST(LinkSplits, BadFractionsThrow)
{
    const auto edges = gen::generate_erdos_renyi(
        {.num_nodes = 10, .num_edges = 50, .seed = 1});
    const auto graph = graph::GraphBuilder::build(edges);
    SplitConfig config;
    config.train_fraction = 0.5; // sums to 0.9
    EXPECT_THROW(prepare_link_splits(edges, graph, config),
                 util::Error);
}

TEST(LinkSplits, EmptyEdgeListThrows)
{
    EXPECT_THROW(
        prepare_link_splits(graph::EdgeList{}, graph::TemporalGraph{},
                            SplitConfig{}),
        util::Error);
}

TEST(NodeSplits, SizesAndCoverage)
{
    const NodeSplits splits = prepare_node_splits(100, SplitConfig{});
    EXPECT_EQ(splits.train.size(), 60u);
    EXPECT_EQ(splits.valid.size(), 20u);
    EXPECT_EQ(splits.test.size(), 20u);
    std::set<graph::NodeId> all;
    for (const auto* split : {&splits.train, &splits.valid, &splits.test}) {
        all.insert(split->begin(), split->end());
    }
    EXPECT_EQ(all.size(), 100u);
}

TEST(NodeSplits, ZeroNodesThrows)
{
    EXPECT_THROW(prepare_node_splits(0, SplitConfig{}), util::Error);
}

TEST(EdgeDataset, ConcatenatesEndpointEmbeddings)
{
    embed::Embedding embedding(4, 2);
    embedding.row(1)[0] = 1.0f;
    embedding.row(1)[1] = 2.0f;
    embedding.row(3)[0] = 3.0f;
    embedding.row(3)[1] = 4.0f;
    const std::vector<EdgeSample> samples = {{1, 3, 1.0f}};
    const nn::TaskDataset dataset = make_edge_dataset(samples, embedding);
    ASSERT_EQ(dataset.features.rows(), 1u);
    ASSERT_EQ(dataset.features.cols(), 4u);
    EXPECT_FLOAT_EQ(dataset.features(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(dataset.features(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(dataset.features(0, 2), 3.0f);
    EXPECT_FLOAT_EQ(dataset.features(0, 3), 4.0f);
    EXPECT_FLOAT_EQ(dataset.binary_labels[0], 1.0f);
}

TEST(NodeDataset, FeaturesAndLabels)
{
    embed::Embedding embedding(3, 2);
    embedding.row(2)[1] = 5.0f;
    const std::vector<graph::NodeId> nodes = {2, 0};
    const std::vector<std::uint32_t> labels = {7, 8, 9};
    const nn::TaskDataset dataset =
        make_node_dataset(nodes, labels, embedding);
    ASSERT_EQ(dataset.features.rows(), 2u);
    EXPECT_FLOAT_EQ(dataset.features(0, 1), 5.0f);
    EXPECT_EQ(dataset.class_labels[0], 9u);
    EXPECT_EQ(dataset.class_labels[1], 7u);
}

} // namespace
} // namespace tgl::core
