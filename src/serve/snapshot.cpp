#include "serve/snapshot.hpp"

#include "embed/kernels.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace tgl::serve {

std::optional<QuantMode>
parse_quant_mode(std::string_view name)
{
    if (name == "fp32") {
        return QuantMode::kFp32;
    }
    if (name == "int8") {
        return QuantMode::kInt8;
    }
    return std::nullopt;
}

const char*
quant_mode_name(QuantMode mode)
{
    return mode == QuantMode::kInt8 ? "int8" : "fp32";
}

std::shared_ptr<const EmbeddingSnapshot>
EmbeddingSnapshot::build(const embed::Embedding& embedding, QuantMode quant,
                         std::uint64_t epoch, std::uint64_t fingerprint)
{
    if (embedding.num_nodes() == 0 || embedding.dim() == 0) {
        util::fatal("serve snapshot: empty embedding");
    }
    auto snapshot = std::shared_ptr<EmbeddingSnapshot>(
        new EmbeddingSnapshot());
    snapshot->num_nodes_ = embedding.num_nodes();
    snapshot->dim_ = embedding.dim();
    snapshot->quant_ = quant;
    snapshot->epoch_ = epoch;
    snapshot->fingerprint_ = fingerprint;

    const std::size_t dim = embedding.dim();
    const std::size_t rows = embedding.num_nodes();
    snapshot->norms_.resize(rows);

    if (quant == QuantMode::kFp32) {
        snapshot->data_ = embedding.data();
        for (std::size_t u = 0; u < rows; ++u) {
            const float* row = snapshot->data_.data() + u * dim;
            double sum = 0.0;
            for (std::size_t j = 0; j < dim; ++j) {
                sum += static_cast<double>(row[j]) *
                       static_cast<double>(row[j]);
            }
            snapshot->norms_[u] = static_cast<float>(std::sqrt(sum));
        }
        return snapshot;
    }

    // int8: per-row symmetric quantization. scale = max|x| / 127, so
    // every element lands in [-127, 127] and the worst-case elementwise
    // error is scale / 2 (round-to-nearest). An all-zero row keeps
    // scale 0 and dequantizes to exact zeros.
    snapshot->q_.resize(rows * dim);
    snapshot->scales_.resize(rows);
    float worst = 0.0f;
    for (std::size_t u = 0; u < rows; ++u) {
        const float* row = embedding.data().data() + u * dim;
        float max_abs = 0.0f;
        for (std::size_t j = 0; j < dim; ++j) {
            max_abs = std::max(max_abs, std::fabs(row[j]));
        }
        const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
        snapshot->scales_[u] = scale;
        std::int8_t* q = snapshot->q_.data() + u * dim;
        double sum = 0.0;
        for (std::size_t j = 0; j < dim; ++j) {
            const float quantized =
                scale > 0.0f ? std::nearbyint(row[j] / scale) : 0.0f;
            q[j] = static_cast<std::int8_t>(
                std::clamp(quantized, -127.0f, 127.0f));
            const float served = static_cast<float>(q[j]) * scale;
            worst = std::max(worst, std::fabs(served - row[j]));
            sum += static_cast<double>(served) *
                   static_cast<double>(served);
        }
        snapshot->norms_[u] = static_cast<float>(std::sqrt(sum));
    }
    snapshot->max_quant_error_ = worst;
    return snapshot;
}

void
EmbeddingSnapshot::gather_row(graph::NodeId u, float* out) const
{
    if (quant_ == QuantMode::kFp32) {
        const float* row = data_.data() + static_cast<std::size_t>(u) * dim_;
        std::copy(row, row + dim_, out);
        return;
    }
    const std::int8_t* q = q_.data() + static_cast<std::size_t>(u) * dim_;
    const float scale = scales_[u];
    for (unsigned j = 0; j < dim_; ++j) {
        out[j] = static_cast<float>(q[j]) * scale;
    }
}

float
EmbeddingSnapshot::dot(graph::NodeId u, graph::NodeId v) const
{
    if (quant_ == QuantMode::kFp32) {
        const float* a = data_.data() + static_cast<std::size_t>(u) * dim_;
        const float* b = data_.data() + static_cast<std::size_t>(v) * dim_;
        return embed::kernels::simd_sgns_ops().dot(a, b, dim_);
    }
    const std::int8_t* a = q_.data() + static_cast<std::size_t>(u) * dim_;
    const std::int8_t* b = q_.data() + static_cast<std::size_t>(v) * dim_;
    std::int32_t acc = 0;
    for (unsigned j = 0; j < dim_; ++j) {
        acc += static_cast<std::int32_t>(a[j]) * b[j];
    }
    return static_cast<float>(acc) * scales_[u] * scales_[v];
}

std::vector<std::pair<graph::NodeId, float>>
EmbeddingSnapshot::nearest(graph::NodeId u, unsigned k) const
{
    std::vector<std::pair<float, graph::NodeId>> scored;
    scored.reserve(num_nodes_);
    const float norm_u = norms_[u];
    for (graph::NodeId v = 0; v < num_nodes_; ++v) {
        if (v == u) {
            continue;
        }
        const float denom = norm_u * norms_[v];
        const float cosine = denom > 0.0f ? dot(u, v) / denom : 0.0f;
        scored.emplace_back(cosine, v);
    }
    const std::size_t keep = std::min<std::size_t>(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(keep),
                      scored.end(),
                      [](const auto& a, const auto& b) {
                          return a.first > b.first;
                      });
    std::vector<std::pair<graph::NodeId, float>> result;
    result.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
        result.emplace_back(scored[i].second, scored[i].first);
    }
    return result;
}

std::size_t
EmbeddingSnapshot::payload_bytes() const
{
    return data_.size() * sizeof(float) + q_.size() * sizeof(std::int8_t) +
           scales_.size() * sizeof(float) + norms_.size() * sizeof(float);
}

} // namespace tgl::serve
