/// @file
/// Fig. 5 reproduction: word2vec sentence batching — speedup and
/// accuracy versus batch size.
///
/// Paper finding (SV-B, Fig. 5): prior GPU word2vec launches one
/// kernel per sentence; with temporal-walk "sentences" of 1-5 tokens
/// that starves the device. Batching B sentences per launch processes
/// them concurrently with stale model reads; 16k-sentence batches gave
/// the paper 124.2x over no batching *without accuracy loss* (updates
/// are sparse, so concurrent staleness rarely collides).
///
/// This harness runs the batched trainer (the CPU model of that GPU
/// execution: one parallel region per batch, barrier between batches)
/// across batch sizes and reports time, speedup over batch=1, and the
/// downstream link-prediction AUC as the accuracy check.
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("fig05_w2v_batching",
                        "Fig. 5: batching speedup & accuracy");
    cli.add_flag("dataset", "wiki-talk", "catalog dataset");
    cli.add_flag("scale", "0.01", "stand-in scale");
    cli.add_flag("seed", "1", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const auto seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"), seed);
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});

        walk::WalkConfig walk_config;
        walk_config.walks_per_node = 10;
        walk_config.max_length = 6;
        walk_config.seed = seed;
        const walk::Corpus corpus =
            walk::generate_walks(graph, walk_config);
        const core::LinkSplits splits =
            core::prepare_link_splits(dataset.edges, graph, {});

        std::printf("# Fig. 5 reproduction — %s stand-in, %s sentences "
                    "(%s tokens)\n",
                    dataset.name.c_str(),
                    util::format_count(corpus.num_walks()).c_str(),
                    util::format_count(corpus.num_tokens()).c_str());
        std::printf("%10s %12s %10s %10s %10s\n", "batch", "w2v(s)",
                    "speedup", "accuracy", "auc");

        const std::size_t batch_sizes[] = {1, 16, 256, 4096, 16384};
        double baseline_seconds = 0.0;
        for (const std::size_t batch : batch_sizes) {
            embed::BatchedSgnsConfig config;
            config.sgns.dim = 8;
            config.sgns.epochs = 6;
            config.sgns.seed = seed;
            config.batch_size = batch;
            embed::TrainStats stats;
            const embed::Embedding embedding = embed::train_sgns_batched(
                corpus, graph.num_nodes(), config, &stats);
            if (batch == 1) {
                baseline_seconds = stats.seconds;
            }

            core::ClassifierConfig classifier;
            classifier.max_epochs = 15;
            const core::TaskResult task =
                core::run_link_prediction(splits, embedding, classifier);
            std::printf("%10zu %12.3f %9.1fx %10.4f %10.4f\n", batch,
                        stats.seconds, baseline_seconds / stats.seconds,
                        task.test_accuracy, task.test_auc);
        }
        std::printf("\n# paper shape check: monotone speedup with batch "
                    "size (paper: 124.2x at 16k on a GPU; CPU-model "
                    "factors are smaller), accuracy column flat.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
