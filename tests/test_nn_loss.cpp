/// Tests for the loss functions, including finite-difference gradients.
#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tgl::nn {
namespace {

TEST(Bce, PerfectPredictionsGiveNearZeroLoss)
{
    const Tensor probs(2, 1, {0.9999f, 0.0001f});
    const LossResult result =
        binary_cross_entropy(probs, {1.0f, 0.0f});
    EXPECT_LT(result.loss, 0.01);
}

TEST(Bce, WrongPredictionsGiveLargeLoss)
{
    const Tensor probs(2, 1, {0.01f, 0.99f});
    const LossResult result =
        binary_cross_entropy(probs, {1.0f, 0.0f});
    EXPECT_GT(result.loss, 4.0);
}

TEST(Bce, UncertainPredictionIsLogTwo)
{
    const Tensor probs(1, 1, {0.5f});
    const LossResult result = binary_cross_entropy(probs, {1.0f});
    EXPECT_NEAR(result.loss, std::log(2.0), 1e-5);
}

TEST(Bce, GradientMatchesFiniteDifference)
{
    const std::vector<float> targets = {1.0f, 0.0f, 1.0f};
    Tensor probs(3, 1, {0.3f, 0.6f, 0.8f});
    const LossResult analytic = binary_cross_entropy(probs, targets);
    constexpr float kEps = 1e-4f;
    for (std::size_t i = 0; i < 3; ++i) {
        Tensor up = probs, down = probs;
        up(i, 0) += kEps;
        down(i, 0) -= kEps;
        const double numeric =
            (binary_cross_entropy(up, targets).loss -
             binary_cross_entropy(down, targets).loss) /
            (2.0 * static_cast<double>(kEps));
        EXPECT_NEAR(analytic.grad(i, 0), numeric, 1e-2)
            << "element " << i;
    }
}

TEST(Bce, ClampsDegenerateProbabilities)
{
    const Tensor probs(2, 1, {0.0f, 1.0f});
    const LossResult result =
        binary_cross_entropy(probs, {1.0f, 0.0f});
    EXPECT_TRUE(std::isfinite(result.loss));
    EXPECT_TRUE(std::isfinite(result.grad(0, 0)));
    EXPECT_TRUE(std::isfinite(result.grad(1, 0)));
}

TEST(Nll, PicksOutTargetLogProb)
{
    // log_probs row: log([0.7, 0.2, 0.1]).
    Tensor log_probs(1, 3);
    log_probs(0, 0) = std::log(0.7f);
    log_probs(0, 1) = std::log(0.2f);
    log_probs(0, 2) = std::log(0.1f);
    const LossResult result = nll_loss(log_probs, {0});
    EXPECT_NEAR(result.loss, -std::log(0.7), 1e-5);
}

TEST(Nll, AveragesOverBatch)
{
    Tensor log_probs(2, 2);
    log_probs(0, 0) = std::log(0.5f);
    log_probs(0, 1) = std::log(0.5f);
    log_probs(1, 0) = std::log(0.25f);
    log_probs(1, 1) = std::log(0.75f);
    const LossResult result = nll_loss(log_probs, {0, 1});
    EXPECT_NEAR(result.loss,
                (-std::log(0.5) - std::log(0.75)) / 2.0, 1e-5);
}

TEST(Nll, GradientIsMinusOneOverBatchAtTarget)
{
    Tensor log_probs(2, 3);
    log_probs.fill(std::log(1.0f / 3.0f));
    const LossResult result = nll_loss(log_probs, {1, 2});
    EXPECT_FLOAT_EQ(result.grad(0, 1), -0.5f);
    EXPECT_FLOAT_EQ(result.grad(1, 2), -0.5f);
    EXPECT_FLOAT_EQ(result.grad(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(result.grad(0, 2), 0.0f);
    EXPECT_FLOAT_EQ(result.grad(1, 0), 0.0f);
}

} // namespace
} // namespace tgl::nn
