file(REMOVE_RECURSE
  "CMakeFiles/test_rng_samplers.dir/test_rng_samplers.cpp.o"
  "CMakeFiles/test_rng_samplers.dir/test_rng_samplers.cpp.o.d"
  "test_rng_samplers"
  "test_rng_samplers.pdb"
  "test_rng_samplers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
