/// @file
/// Bounded MPMC queue for corpus shards flowing from the walk
/// producers to the SGNS consumers during overlapped execution
/// (core/overlap.hpp). A plain mutex + two condition variables is
/// plenty here: shards are coarse (tens of thousands of tokens), so
/// queue operations are orders of magnitude rarer than the work they
/// hand over, and the simple design keeps the close()/drain semantics
/// and the stall accounting easy to reason about (and to verify under
/// ThreadSanitizer).
#pragma once

#include "util/fault_injection.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tgl::util {

/// Blocking bounded queue with shutdown semantics and stall-time
/// accounting.
///
/// Producers push() until close(); consumers pop() until the queue is
/// closed AND drained. Time spent blocked on a full queue (producers)
/// or an empty queue (consumers) is accumulated so the overlap layer
/// can report which side of the pipeline was the bottleneck
/// (`overlap.producer_stall_seconds` / `overlap.consumer_stall_seconds`).
template <typename T>
class ShardQueue
{
  public:
    /// @param capacity maximum queued items (>= 1; 0 is promoted to 1).
    explicit ShardQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    ShardQueue(const ShardQueue&) = delete;
    ShardQueue& operator=(const ShardQueue&) = delete;

    /// Block until there is room, then enqueue. Returns false — and
    /// drops @p item — iff the queue was closed (shutdown while
    /// waiting, or push after close). Failpoint `shard_queue.push`
    /// fires before the wait (chaos schedules stall/fault producers
    /// here).
    bool
    push(T item)
    {
        fault_point("shard_queue.push");
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.size() >= capacity_ && !closed_) {
            const auto begin = std::chrono::steady_clock::now();
            not_full_.wait(lock, [this] {
                return items_.size() < capacity_ || closed_;
            });
            producer_stall_ += std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - begin)
                                   .count();
        }
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(item));
        max_depth_ = std::max(max_depth_, items_.size());
        ops_.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Block until an item is available, then dequeue it. Returns
    /// nullopt iff the queue is closed and fully drained — the
    /// consumer's termination signal. Failpoint `shard_queue.pop`
    /// fires before the wait (chaos schedules stall/fault consumers
    /// here).
    std::optional<T>
    pop()
    {
        fault_point("shard_queue.pop");
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.empty() && !closed_) {
            const auto begin = std::chrono::steady_clock::now();
            not_empty_.wait(lock,
                            [this] { return !items_.empty() || closed_; });
            consumer_stall_ += std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - begin)
                                   .count();
        }
        if (items_.empty()) {
            return std::nullopt; // closed and drained
        }
        T item = std::move(items_.front());
        items_.pop_front();
        ops_.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /// Shut the queue down: pending items stay poppable, further
    /// push() calls fail, and every blocked thread wakes. Idempotent.
    void
    close()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool
    closed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /// Completed push+pop operations — a lock-free liveness heartbeat
    /// the stall watchdog samples. Blocked waiters do not advance it.
    std::uint64_t
    ops() const
    {
        return ops_.load(std::memory_order_relaxed);
    }

    /// High-water mark of the queue depth since construction.
    std::size_t
    max_depth() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return max_depth_;
    }

    /// Cumulative seconds producers spent blocked on a full queue.
    double
    producer_stall_seconds() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return producer_stall_;
    }

    /// Cumulative seconds consumers spent blocked on an empty queue.
    double
    consumer_stall_seconds() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return consumer_stall_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
    std::atomic<std::uint64_t> ops_{0};
    std::size_t max_depth_ = 0;
    double producer_stall_ = 0.0;
    double consumer_stall_ = 0.0;
};

} // namespace tgl::util
