/// Unit tests for the thread pool and parallel loop primitives.
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace tgl::util {
namespace {

TEST(ThreadPool, RunsEveryRankExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(4);
    pool.run(4, [&](unsigned rank) { hits[rank].fetch_add(1); });
    for (const auto& hit : hits) {
        EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPool, PartiesClampedToPoolSize)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.run(100, [&](unsigned rank) {
        EXPECT_LT(rank, 2u);
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SinglePartyRunsInline)
{
    ThreadPool pool(4);
    const auto caller = std::this_thread::get_id();
    std::thread::id executed;
    pool.run(1, [&](unsigned) { executed = std::this_thread::get_id(); });
    EXPECT_EQ(executed, caller);
}

TEST(ThreadPool, ZeroPartiesIsNoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.run(0, [&](unsigned) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesWorkerException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.run(4,
                 [&](unsigned rank) {
                     if (rank == 2) {
                         throw std::runtime_error("boom");
                     }
                 }),
        std::runtime_error);
    // Pool must remain usable after an exception.
    std::atomic<int> count{0};
    pool.run(4, [&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, ReusableAcrossManyRuns)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int i = 0; i < 50; ++i) {
        pool.run(3, [&](unsigned) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 150);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto& hit : hits) {
        EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ParallelFor, RespectsRange)
{
    std::atomic<std::uint64_t> sum{0};
    parallel_for(10, 20, [&](std::size_t i) {
        sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 145u); // 10 + ... + 19
}

TEST(ParallelFor, EmptyRangeIsNoop)
{
    bool ran = false;
    parallel_for(5, 5, [&](std::size_t) { ran = true; });
    parallel_for(7, 3, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleThreadOptionIsSequential)
{
    std::vector<std::size_t> order;
    parallel_for(
        0, 100, [&](std::size_t i) { order.push_back(i); },
        {.num_threads = 1});
    ASSERT_EQ(order.size(), 100u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelForRanked, RanksWithinTeam)
{
    std::atomic<unsigned> max_rank{0};
    const unsigned team = parallel_for_ranked(
        0, 10000,
        [&](std::size_t, unsigned rank) {
            unsigned seen = max_rank.load();
            while (rank > seen &&
                   !max_rank.compare_exchange_weak(seen, rank)) {
            }
        },
        {.num_threads = 4});
    EXPECT_LE(team, 4u);
    EXPECT_LT(max_rank.load(), team);
}

TEST(ParallelReduceSum, MatchesSerialSum)
{
    const double total = parallel_reduce_sum(
        0, 100000, [](std::size_t i) { return static_cast<double>(i); });
    EXPECT_DOUBLE_EQ(total, 99999.0 * 100000.0 / 2.0);
}

TEST(ParallelReduceSum, EmptyRangeIsZero)
{
    EXPECT_DOUBLE_EQ(
        parallel_reduce_sum(3, 3, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(DefaultThreads, SetAndRestore)
{
    const unsigned original = default_threads();
    set_default_threads(3);
    EXPECT_EQ(default_threads(), 3u);
    set_default_threads(0);
    EXPECT_EQ(default_threads(), original);
}

TEST(ParallelFor, GrainLargerThanRange)
{
    std::vector<std::atomic<int>> hits(10);
    parallel_for(
        0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
        {.grain = 1000});
    for (const auto& hit : hits) {
        EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ParallelFor, ExceptionPropagatesAndCancelsRemainingWork)
{
    // 10M iterations, 4 threads, explicit grain: after the throw at
    // iteration 0, peers hold at most ~one in-flight chunk each, so the
    // executed count must stay far below the full range. Without
    // cooperative cancellation every iteration would still run.
    constexpr std::size_t n = 10'000'000;
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(
        parallel_for(
            0, n,
            [&](std::size_t i) {
                if (i == 0) {
                    throw std::runtime_error("boom");
                }
                executed.fetch_add(1, std::memory_order_relaxed);
            },
            {.num_threads = 4, .grain = 1000}),
        std::runtime_error);
    EXPECT_LT(executed.load(), 100'000u);
}

TEST(ParallelForRanked, ExceptionPropagatesAndCancelsRemainingWork)
{
    constexpr std::size_t n = 10'000'000;
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(
        parallel_for_ranked(
            0, n,
            [&](std::size_t i, unsigned) {
                if (i == 0) {
                    throw std::runtime_error("boom");
                }
                executed.fetch_add(1, std::memory_order_relaxed);
            },
            {.num_threads = 4, .grain = 1000}),
        std::runtime_error);
    EXPECT_LT(executed.load(), 100'000u);
}

TEST(ParallelReduceSum, ExceptionPropagatesAndCancelsRemainingWork)
{
    constexpr std::size_t n = 10'000'000;
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(
        parallel_reduce_sum(
            0, n,
            [&](std::size_t i) -> double {
                if (i == 0) {
                    throw std::runtime_error("boom");
                }
                executed.fetch_add(1, std::memory_order_relaxed);
                return 1.0;
            },
            {.num_threads = 4, .grain = 1000}),
        std::runtime_error);
    EXPECT_LT(executed.load(), 100'000u);
}

TEST(ParallelFor, PoolUsableAfterCancelledLoop)
{
    EXPECT_THROW(
        parallel_for(
            0, 100'000,
            [&](std::size_t i) {
                if (i == 0) {
                    throw std::runtime_error("boom");
                }
            },
            {.num_threads = 4, .grain = 10}),
        std::runtime_error);
    std::atomic<std::size_t> count{0};
    parallel_for(
        0, 1000,
        [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); },
        {.num_threads = 4});
    EXPECT_EQ(count.load(), 1000u);
}

TEST(HostInfo, SaneValuesAndCachedSummary)
{
    const HostInfo& info = host_info();
    EXPECT_GE(info.hardware_threads, 1u);
    EXPECT_GT(info.l1d_bytes, 0u);
    EXPECT_GT(info.llc_bytes, info.l1d_bytes);
    EXPECT_GE(info.cache_line_bytes, 16u);
    const std::string summary = host_summary();
    EXPECT_NE(summary.find("host:"), std::string::npos);
    EXPECT_NE(summary.find("hw threads"), std::string::npos);
    // Cached: identical across calls.
    EXPECT_EQ(&host_info(), &info);
}

TEST(Logging, LevelsFilterMessages)
{
    const LogLevel original = log_level();
    set_log_level(LogLevel::kQuiet);
    EXPECT_EQ(log_level(), LogLevel::kQuiet);
    inform("suppressed"); // must not crash while filtered
    warn("suppressed");
    set_log_level(original);
}

TEST(Logging, StrcatEdgeCases)
{
    EXPECT_EQ(strcat(), "");
    EXPECT_EQ(strcat(""), "");
    EXPECT_EQ(strcat(1, 2, 3), "123");
}

} // namespace
} // namespace tgl::util
