#include "embed/negative_table.hpp"

#include "util/error.hpp"

#include <cmath>

namespace tgl::embed {

namespace {

/// Shared table-materialization tail of every constructor.
void
build_table(const std::vector<double>& weights, NegativeTableKind kind,
            std::size_t array_size, rng::AliasTable& alias,
            std::vector<WordId>& array)
{
    if (weights.empty()) {
        util::fatal("NegativeTable: empty weight vector");
    }
    double total = 0.0;
    for (const double w : weights) {
        total += w;
    }
    if (!(total > 0.0)) {
        util::fatal("NegativeTable: all sampling weights are zero");
    }

    if (kind == NegativeTableKind::kAlias) {
        alias = rng::AliasTable(weights);
        return;
    }

    if (array_size < weights.size()) {
        util::fatal("NegativeTable: array_size smaller than vocabulary");
    }
    // word2vec's InitUnigramTable: fill the array proportionally,
    // guaranteeing the cumulative rounding gives every word with
    // positive weight a chance. Unlike the reference implementation,
    // zero-weight words are skipped outright: InitUnigramTable writes
    // the current word before advancing, which hands every zero-weight
    // word one sampleable slot — so zero-count words could be drawn as
    // negatives and the array law disagreed with the alias law (which
    // assigns them probability exactly 0).
    array.resize(array_size);
    WordId word = 0;
    while (!(weights[word] > 0.0)) {
        ++word; // total > 0 guarantees a positive weight exists
    }
    double cumulative = weights[word] / total;
    for (std::size_t i = 0; i < array_size; ++i) {
        array[i] = word;
        const double position =
            static_cast<double>(i + 1) / static_cast<double>(array_size);
        if (position > cumulative) {
            WordId next = word + 1;
            while (next < weights.size() && !(weights[next] > 0.0)) {
                ++next;
            }
            if (next < weights.size()) {
                word = next;
                cumulative += weights[word] / total;
            }
        }
    }
}

std::vector<double>
unigram_weights_from_counts(const std::vector<std::uint64_t>& counts)
{
    std::vector<double> weights(counts.size());
    for (std::size_t w = 0; w < counts.size(); ++w) {
        weights[w] =
            counts[w] == 0
                ? 0.0
                : std::pow(static_cast<double>(counts[w]), 0.75);
    }
    return weights;
}

} // namespace

NegativeTable::NegativeTable(const Vocab& vocab, NegativeTableKind kind,
                             std::size_t array_size)
    : kind_(kind)
{
    if (vocab.size() == 0) {
        util::fatal("NegativeTable: empty vocabulary");
    }
    std::vector<double> weights(vocab.size());
    for (WordId w = 0; w < vocab.size(); ++w) {
        weights[w] = std::pow(static_cast<double>(vocab.count(w)), 0.75);
    }
    build_table(weights, kind_, array_size, alias_, array_);
}

NegativeTable::NegativeTable(const std::vector<std::uint64_t>& counts,
                             NegativeTableKind kind, std::size_t array_size)
    : kind_(kind)
{
    build_table(unigram_weights_from_counts(counts), kind_, array_size,
                alias_, array_);
}

NegativeTable::NegativeTable(const std::vector<double>& weights,
                             NegativeTableKind kind, std::size_t array_size)
    : kind_(kind)
{
    build_table(weights, kind_, array_size, alias_, array_);
}

double
NegativeTable::probability(WordId w) const
{
    if (kind_ == NegativeTableKind::kAlias) {
        return alias_.outcome_probability(w);
    }
    std::size_t hits = 0;
    for (WordId entry : array_) {
        if (entry == w) {
            ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(array_.size());
}

} // namespace tgl::embed
