#include "core/pipeline.hpp"

#include "core/overlap.hpp"
#include "embed/streaming_trainer.hpp"
#include "graph/builder.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

#include <chrono>
#include <cmath>
#include <optional>

namespace tgl::core {

std::vector<std::string>
PipelineConfig::validate() const
{
    std::vector<std::string> problems;
    const auto collect = [&problems](const char* section,
                                     std::vector<std::string> section_problems) {
        for (std::string& problem : section_problems) {
            problems.push_back(std::string(section) + "." +
                               std::move(problem));
        }
    };
    collect("walk", walk.validate());
    collect("sgns", sgns.validate());
    collect("split", split.validate());
    collect("classifier", classifier.validate());
    if (w2v_mode == W2vMode::kBatched && w2v_batch_size == 0) {
        problems.push_back(
            "w2v_batch_size must be >= 1 in batched word2vec mode");
    }
    if (!(watchdog_timeout_seconds >= 0.0) ||
        !std::isfinite(watchdog_timeout_seconds)) {
        problems.push_back(
            "watchdog_timeout_seconds must be finite and >= 0");
    }
    if (overlap == OverlapMode::kOn) {
        // kAuto degrades to sequential on these; an explicit kOn is a
        // configuration error.
        if (w2v_mode != W2vMode::kHogwild) {
            problems.push_back(
                "overlap=on requires the Hogwild word2vec mode (the "
                "batched trainer consumes the whole corpus at once)");
        }
        for (const std::string& problem :
             embed::streaming_unsupported(sgns)) {
            problems.push_back("overlap=on is unsupported: " + problem);
        }
    }
    return problems;
}

std::optional<OverlapMode>
parse_overlap_mode(std::string_view text)
{
    if (text == "off") {
        return OverlapMode::kOff;
    }
    if (text == "on") {
        return OverlapMode::kOn;
    }
    if (text == "auto") {
        return OverlapMode::kAuto;
    }
    return std::nullopt;
}

const char*
overlap_mode_name(OverlapMode mode)
{
    switch (mode) {
    case OverlapMode::kOff:
        return "off";
    case OverlapMode::kOn:
        return "on";
    case OverlapMode::kAuto:
        return "auto";
    }
    return "off";
}

namespace {

/// Emit a pipeline-phase span covering the section timed since
/// @p begin; a no-op when no trace session is active. @p args carries
/// numeric event arguments (perf counter deltas).
void
record_phase(const char* name,
             std::chrono::steady_clock::time_point begin,
             std::vector<std::pair<std::string, double>> args = {})
{
    if (obs::TraceSession* session = obs::TraceSession::current()) {
        session->record(name, begin, std::chrono::steady_clock::now(),
                        std::move(args));
    }
}

/// Counter args for a phase span whose work ran inside worker-side
/// scopes (walk engine, SGNS trainers): the delta of the process-wide
/// phase aggregate over the section, rather than a main-thread scope
/// that would sit idle while the pool does the work.
std::vector<std::pair<std::string, double>>
phase_perf_args(std::string_view phase, const obs::PerfSample& before)
{
    return obs::perf_span_args(obs::perf_phase_total(phase) - before);
}

std::chrono::steady_clock::time_point
phase_now()
{
    return std::chrono::steady_clock::now();
}

/// Refuse to start a multi-phase run on a bad configuration; the error
/// lists every diagnostic so one round of fixes suffices.
void
enforce_valid(const PipelineConfig& config)
{
    const std::vector<std::string> problems = config.validate();
    if (problems.empty()) {
        return;
    }
    std::string message = "invalid pipeline configuration:";
    for (const std::string& problem : problems) {
        message += "\n  - " + problem;
    }
    util::fatal(message);
}

/// The phase-artifact dependency chain: edges -> walk corpus ->
/// embedding. Each stage fingerprint folds in its predecessor, so any
/// upstream change invalidates every downstream checkpoint.
struct PipelineFingerprints
{
    std::uint64_t walk = 0;
    std::uint64_t embed = 0;
    /// Keys the prefix-CDF table, which depends only on the CSR layout
    /// (edges + symmetrize) and the transition kind — NOT on the seed
    /// or walk counts, so reseeded runs reuse the same artifact.
    std::uint64_t cache = 0;
};

PipelineFingerprints
compute_fingerprints(const graph::EdgeList& edges,
                     const PipelineConfig& config)
{
    const std::uint64_t edges_fp = fingerprint_edges(edges);

    util::Fingerprint walk_fp;
    walk_fp.mix(edges_fp);
    walk_fp.mix(static_cast<std::uint8_t>(config.symmetrize_graph));
    mix_config(walk_fp, config.walk);

    util::Fingerprint cache_fp;
    cache_fp.mix(std::string_view("trcache"));
    cache_fp.mix(edges_fp);
    cache_fp.mix(static_cast<std::uint8_t>(config.symmetrize_graph));
    cache_fp.mix(static_cast<std::uint32_t>(config.walk.transition));

    util::Fingerprint embed_fp;
    embed_fp.mix(walk_fp.value());
    mix_config(embed_fp, config.sgns);
    embed_fp.mix(static_cast<std::uint32_t>(config.w2v_mode));
    if (config.w2v_mode == W2vMode::kBatched) {
        embed_fp.mix(static_cast<std::uint64_t>(config.w2v_batch_size));
    }
    return {walk_fp.value(), embed_fp.value(), cache_fp.value()};
}

/// Shared front-end: build CSR, walk, embed. Fills times/profiles and
/// returns the embedding plus the built graph (needed for negative
/// sampling downstream). With @p checkpoints set, a stored embedding
/// whose fingerprint matches skips both the walk and word2vec phases;
/// a stored corpus skips just the walk phase.
embed::Embedding
run_front_end(const graph::EdgeList& edges, const PipelineConfig& config,
              graph::TemporalGraph& graph, PipelineResult& result,
              const CheckpointManager* checkpoints,
              const PipelineFingerprints& fingerprints)
{
    util::check_cancellation("the build-graph phase boundary");
    util::Timer timer;
    auto phase_begin = phase_now();
    graph::BuildOptions build_options;
    build_options.symmetrize = config.symmetrize_graph;
    {
        obs::PerfScope build_perf("build_graph");
        graph = graph::GraphBuilder::build(edges, build_options);
        result.times.build_graph = timer.seconds();
        record_phase("pipeline.build_graph", phase_begin,
                     obs::perf_span_args(build_perf.close()));
    }
    result.num_nodes = graph.num_nodes();
    result.num_edges = graph.num_edges();

    embed::Embedding embedding;
    if (checkpoints != nullptr &&
        checkpoints->load_embedding(fingerprints.embed, embedding)) {
        // Both upstream phases are covered by the embedding artifact;
        // their timers stay ~0 and the corpus is never materialized.
        result.checkpoints.embedding_loaded = true;
        return embedding;
    }

    util::check_cancellation("the walk phase boundary");
    timer.reset();
    phase_begin = phase_now();
    const obs::PerfSample walk_before = obs::perf_phase_total("walk");
    walk::Corpus corpus;
    if (checkpoints != nullptr &&
        checkpoints->load_corpus(fingerprints.walk, corpus)) {
        result.checkpoints.corpus_loaded = true;
        result.overlap.decision = "off: corpus resumed from checkpoint";
    } else {
        // The prefix-CDF table is itself a resumable artifact: it is
        // keyed only by the graph and transition kind, so a run that
        // was reseeded (or crashed mid-walk) skips the O(E) exp pass.
        walk::TransitionCache cache;
        const walk::TransitionCache* cache_ptr = nullptr;
        if (walk::use_transition_cache(config.walk, graph)) {
            if (checkpoints != nullptr &&
                checkpoints->load_transition_cache(fingerprints.cache,
                                                   cache)) {
                result.checkpoints.cache_loaded = true;
            } else {
                cache = walk::TransitionCache::build(
                    graph, config.walk.transition,
                    config.walk.num_threads);
                if (checkpoints != nullptr) {
                    checkpoints->store_transition_cache(
                        fingerprints.cache, cache);
                    result.checkpoints.cache_stored = true;
                }
            }
            cache_ptr = &cache;
        }

        const OverlapPlan plan = plan_overlap(graph, config);
        result.overlap.decision = plan.decision;
        if (plan.enabled) {
            // Fused walk+word2vec region: both phases run concurrently
            // and the overlap layer records their trace spans with the
            // true (overlapping) windows. Cache setup above counts
            // toward the walk side, like in the sequential path.
            const double cache_seconds = timer.seconds();
            OverlapFrontEnd fused = run_overlapped_front_end(
                graph, config, cache_ptr, plan, checkpoints,
                fingerprints.walk);
            result.checkpoints.corpus_shards_loaded =
                fused.shards_loaded;
            result.checkpoints.corpus_shards_stored =
                fused.shards_stored;
            if (checkpoints != nullptr) {
                // Also persist the assembled corpus so later runs
                // (overlapped or not) resume without reassembly.
                checkpoints->store_corpus(fingerprints.walk,
                                          fused.corpus);
                result.checkpoints.corpus_stored = true;
            }
            walk::accumulate_profile(result.walk_profile,
                                     fused.walk_profile);
            result.w2v_stats = fused.train_stats;
            result.overlap = fused.stats;
            result.times.random_walk =
                cache_seconds + fused.walk_seconds;
            result.times.word2vec = fused.w2v_seconds;
            result.times.walk_w2v_wall =
                cache_seconds + fused.wall_seconds;
            result.corpus_walks = fused.corpus.num_walks();
            result.corpus_tokens = fused.corpus.num_tokens();
            util::fault_point("pipeline.after-walk");

            embedding = std::move(fused.embedding);
            if (checkpoints != nullptr) {
                checkpoints->store_embedding(fingerprints.embed,
                                             embedding);
                result.checkpoints.embedding_stored = true;
            }
            util::fault_point("pipeline.after-word2vec");
            return embedding;
        }

        corpus = walk::generate_walks(graph, config.walk, cache_ptr,
                                      &result.walk_profile);
        if (checkpoints != nullptr) {
            checkpoints->store_corpus(fingerprints.walk, corpus);
            result.checkpoints.corpus_stored = true;
        }
    }
    result.times.random_walk = timer.seconds();
    record_phase("pipeline.walk", phase_begin,
                 phase_perf_args("walk", walk_before));
    result.corpus_walks = corpus.num_walks();
    result.corpus_tokens = corpus.num_tokens();
    util::fault_point("pipeline.after-walk");

    util::check_cancellation("the word2vec phase boundary");
    timer.reset();
    phase_begin = phase_now();
    const obs::PerfSample sgns_before = obs::perf_phase_total("sgns");
    if (config.w2v_mode == W2vMode::kHogwild) {
        embedding = embed::train_sgns(corpus, graph.num_nodes(),
                                      config.sgns, &result.w2v_stats);
    } else {
        embed::BatchedSgnsConfig batched;
        batched.sgns = config.sgns;
        batched.batch_size = config.w2v_batch_size;
        embedding = embed::train_sgns_batched(
            corpus, graph.num_nodes(), batched, &result.w2v_stats);
    }
    if (checkpoints != nullptr) {
        checkpoints->store_embedding(fingerprints.embed, embedding);
        result.checkpoints.embedding_stored = true;
    }
    result.times.word2vec = timer.seconds();
    record_phase("pipeline.word2vec", phase_begin,
                 phase_perf_args("sgns", sgns_before));
    util::fault_point("pipeline.after-word2vec");
    return embedding;
}

/// Checkpoint plumbing shared by the two task pipelines.
struct PipelineContext
{
    std::optional<CheckpointManager> manager;
    PipelineFingerprints fingerprints;

    PipelineContext(const graph::EdgeList& edges,
                    const PipelineConfig& config)
    {
        if (!config.checkpoint_dir.empty()) {
            manager.emplace(config.checkpoint_dir);
            fingerprints = compute_fingerprints(edges, config);
        }
    }

    const CheckpointManager*
    get() const
    {
        return manager ? &*manager : nullptr;
    }

    /// Classifier fingerprint: embedding chain + data preparation +
    /// classifier configuration + a task tag (+ optional label data).
    ClassifierCheckpoint
    classifier_checkpoint(const PipelineConfig& config,
                          std::string_view task_tag,
                          const std::vector<std::uint32_t>* labels,
                          std::uint32_t num_classes) const
    {
        ClassifierCheckpoint checkpoint;
        if (!manager) {
            return checkpoint;
        }
        util::Fingerprint fp;
        fp.mix(fingerprints.embed);
        mix_config(fp, config.split);
        mix_config(fp, config.classifier);
        fp.mix(task_tag);
        if (labels != nullptr) {
            fp.mix(static_cast<std::uint64_t>(labels->size()));
            fp.mix_bytes(labels->data(),
                         labels->size() * sizeof(std::uint32_t));
            fp.mix(num_classes);
        }
        checkpoint.manager = &*manager;
        checkpoint.name = std::string(task_tag);
        checkpoint.fingerprint = fp.value();
        return checkpoint;
    }

    /// Copy the manager's recovery tallies into the run's checkpoint
    /// status (the metrics snapshot carries the recovery.* counters;
    /// this makes the same numbers part of the structured result).
    void
    record_recoveries(PipelineResult& result) const
    {
        if (manager) {
            result.checkpoints.artifacts_quarantined =
                manager->quarantined_count();
            result.checkpoints.artifacts_regenerated =
                manager->regenerated_count();
        }
    }
};

} // namespace

PipelineResult
run_link_prediction_pipeline(const graph::EdgeList& edges,
                             const PipelineConfig& config)
{
    enforce_valid(config);
    PipelineResult result;
    const PipelineContext context(edges, config);
    graph::TemporalGraph graph;
    const embed::Embedding embedding = run_front_end(
        edges, config, graph, result, context.get(), context.fingerprints);

    util::check_cancellation("the data-preparation phase boundary");
    util::Timer timer;
    const auto prep_begin = phase_now();
    obs::PerfScope prep_perf("data_prep");
    const LinkSplits splits =
        prepare_link_splits(edges, graph, config.split);
    result.times.data_prep = timer.seconds();
    record_phase("pipeline.data_prep", prep_begin,
                 obs::perf_span_args(prep_perf.close()));

    ClassifierCheckpoint checkpoint = context.classifier_checkpoint(
        config, "link-predictor", nullptr, 0);
    result.task = run_link_prediction(
        splits, embedding, config.classifier,
        checkpoint.manager != nullptr ? &checkpoint : nullptr);
    result.checkpoints.classifier_loaded = checkpoint.loaded;
    result.checkpoints.classifier_stored = checkpoint.stored;
    result.times.train = result.task.train_seconds;
    result.times.train_per_epoch = result.task.seconds_per_epoch;
    result.times.test = result.task.test_seconds;
    context.record_recoveries(result);
    util::fault_point("pipeline.after-train");
    return result;
}

PipelineResult
run_node_classification_pipeline(const graph::EdgeList& edges,
                                 const std::vector<std::uint32_t>& labels,
                                 std::uint32_t num_classes,
                                 const PipelineConfig& config)
{
    enforce_valid(config);
    PipelineResult result;
    const PipelineContext context(edges, config);
    graph::TemporalGraph graph;
    const embed::Embedding embedding = run_front_end(
        edges, config, graph, result, context.get(), context.fingerprints);

    util::check_cancellation("the data-preparation phase boundary");
    util::Timer timer;
    const auto prep_begin = phase_now();
    obs::PerfScope prep_perf("data_prep");
    const NodeSplits splits =
        prepare_node_splits(graph.num_nodes(), config.split);
    result.times.data_prep = timer.seconds();
    record_phase("pipeline.data_prep", prep_begin,
                 obs::perf_span_args(prep_perf.close()));

    ClassifierCheckpoint checkpoint = context.classifier_checkpoint(
        config, "node-classifier", &labels, num_classes);
    result.task = run_node_classification(
        splits, labels, num_classes, embedding, config.classifier,
        checkpoint.manager != nullptr ? &checkpoint : nullptr);
    result.checkpoints.classifier_loaded = checkpoint.loaded;
    result.checkpoints.classifier_stored = checkpoint.stored;
    result.times.train = result.task.train_seconds;
    result.times.train_per_epoch = result.task.seconds_per_epoch;
    result.times.test = result.task.test_seconds;
    context.record_recoveries(result);
    util::fault_point("pipeline.after-train");
    return result;
}

PipelineResult
run_pipeline(const gen::Dataset& dataset, const PipelineConfig& config)
{
    if (dataset.task == gen::Task::kLinkPrediction) {
        return run_link_prediction_pipeline(dataset.edges, config);
    }
    return run_node_classification_pipeline(
        dataset.edges, dataset.labels, dataset.num_classes, config);
}

std::string
format_phase_times(const PhaseTimes& times)
{
    std::string line = util::strcat(
        "build ", util::format_fixed(times.build_graph, 3), "s | rwalk ",
        util::format_fixed(times.random_walk, 3), "s | word2vec ",
        util::format_fixed(times.word2vec, 3), "s | prep ",
        util::format_fixed(times.data_prep, 3), "s | train ",
        util::format_fixed(times.train, 3), "s (",
        util::format_fixed(times.train_per_epoch, 3), "s/epoch) | test ",
        util::format_fixed(times.test, 3), "s");
    if (times.walk_w2v_wall > 0.0) {
        line += util::strcat(" | walk+w2v wall ",
                             util::format_fixed(times.walk_w2v_wall, 3),
                             "s (overlapped)");
    }
    return line;
}

} // namespace tgl::core
