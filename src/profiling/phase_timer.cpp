#include "profiling/phase_timer.hpp"

#include "util/string_util.hpp"

namespace tgl::prof {

void
PhaseTimer::add(const std::string& phase, double seconds)
{
    for (auto& [name, accumulated] : phases_) {
        if (name == phase) {
            accumulated += seconds;
            return;
        }
    }
    phases_.emplace_back(phase, seconds);
}

double
PhaseTimer::seconds(const std::string& phase) const
{
    for (const auto& [name, accumulated] : phases_) {
        if (name == phase) {
            return accumulated;
        }
    }
    return 0.0;
}

double
PhaseTimer::total() const
{
    double sum = 0.0;
    for (const auto& [name, accumulated] : phases_) {
        sum += accumulated;
    }
    return sum;
}

std::string
PhaseTimer::format() const
{
    std::string text;
    for (const auto& [name, accumulated] : phases_) {
        text += name + ": " + util::format_fixed(accumulated, 3) + " s\n";
    }
    text += "total: " + util::format_fixed(total(), 3) + " s";
    return text;
}

} // namespace tgl::prof
