# Empty dependencies file for fig05_w2v_batching.
# This may be replaced when dependencies are built.
