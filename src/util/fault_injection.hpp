/// @file
/// Multi-site failpoint registry for chaos testing and crash-path tests.
///
/// Production code marks interesting failure boundaries with
/// fault_point("site"); the call is a single relaxed atomic load unless
/// at least one site is armed. Sites are armed either programmatically
/// (FailpointRegistry::configure / the legacy FaultInjector test API)
/// or at process start from the TGL_FAILPOINTS environment variable.
///
/// Spec grammar (';'-separated entries):
///
///     site=action[:param][@N]
///
///     actions   error             throw FaultInjected (terminal)
///               error:transient   throw TransientError (retryable)
///               delay:<N>ms       sleep N milliseconds (interruptible)
///               corrupt           return kCorrupt — the call site
///                                 flips bytes in its own artifact
///     triggers  @N                fire on the Nth hit, then deactivate
///               :p=<float>        fire each hit with probability p
///                                 (seeded RNG, deterministic)
///
/// Example: "artifact_io.write=error@3;shard_queue.pop=delay:50ms;
///           checkpoint.load=corrupt:p=0.1"
///
/// Every armed site exports a `failpoint.<site>.hits` counter through
/// the obs metrics registry, so chaos runs can assert which faults a
/// schedule actually exercised.
///
/// FailAfterOStream complements the registry on the I/O side: a stream
/// whose buffer accepts a byte budget and then fails every write — a
/// deterministic stand-in for ENOSPC/quota failures, used to prove the
/// save paths actually report stream errors instead of dropping them.
#pragma once

#include "util/error.hpp"

#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

namespace tgl::util {

/// Exception thrown by an armed fault point. Derives from Error so
/// generic handlers recover, but is distinct so tests can tell an
/// injected fault from a real failure.
class FaultInjected : public Error
{
  public:
    explicit FaultInjected(const std::string& what) : Error(what) {}
};

/// What a fault_point call site should do after returning. Error and
/// delay actions are handled inside fault_point itself (throw / sleep);
/// corruption cannot be — only the call site knows which artifact to
/// damage — so it is returned as a verdict instead.
enum class FailpointAction : std::uint8_t {
    kNone,    ///< site not armed or trigger did not fire
    kCorrupt, ///< damage the artifact about to be read/written
};

/// Trigger point. A single relaxed atomic load when nothing is armed;
/// otherwise consults the registry and may throw FaultInjected /
/// TransientError, sleep, or return kCorrupt.
FailpointAction fault_point(const char* site);

/// Process-global registry of armed failpoints.
class FailpointRegistry
{
  public:
    /// Replace the armed set with @p spec (grammar above). An empty
    /// spec disarms everything. @p seed drives probabilistic triggers
    /// and is remembered for reproducibility. Throws Error on a
    /// malformed spec, leaving the previous configuration armed.
    static void configure(const std::string& spec, std::uint64_t seed = 0);

    /// Arm from TGL_FAILPOINTS / TGL_FAILPOINTS_SEED if set; no-op
    /// otherwise. Called once from tool main()s, never from the
    /// library, so tests stay hermetic.
    static void configure_from_env();

    /// Disarm every site (legacy FaultInjector sites included).
    static void clear();

    /// True if any site is currently armed.
    static bool active();

    /// Hits recorded against @p site since it was (re)armed; 0 for
    /// unknown sites.
    static std::uint64_t hits(const std::string& site);

    /// Names of all armed sites, sorted (diagnostics / tests).
    static std::vector<std::string> armed_sites();

    /// Bumped on every configure()/clear(). In-flight delay actions
    /// poll it and cut their sleep short when the configuration that
    /// scheduled them is gone — this is how the watchdog's recovery
    /// path unwedges a simulated stall.
    static std::uint64_t generation();
};

/// Legacy single-site test API, now a thin wrapper over the registry:
/// arm(site, n) == configure entry "site=error@n" (plus hit counting).
class FaultInjector
{
  public:
    /// Arm @p site: the @p nth future hit throws (1 = next hit).
    /// Re-arming replaces any previous site. Auto-disarms after firing.
    static void arm(const std::string& site, std::uint64_t nth = 1);

    /// Remove any armed site.
    static void disarm();

    /// Hits recorded against the armed site since the last arm().
    static std::uint64_t hits();
};

/// streambuf decorator that forwards up to @p limit bytes to the
/// wrapped buffer, then reports failure on every subsequent write.
class FailAfterStreambuf : public std::streambuf
{
  public:
    FailAfterStreambuf(std::streambuf* inner, std::size_t limit)
        : inner_(inner), remaining_(limit)
    {
    }

  protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* data,
                           std::streamsize count) override;

  private:
    std::streambuf* inner_;
    std::size_t remaining_;
};

/// Output stream that starts failing after @p limit bytes (writes up to
/// the limit are forwarded to @p target).
class FailAfterOStream : public std::ostream
{
  public:
    FailAfterOStream(std::ostream& target, std::size_t limit)
        : std::ostream(nullptr), buffer_(target.rdbuf(), limit)
    {
        rdbuf(&buffer_);
    }

  private:
    FailAfterStreambuf buffer_;
};

} // namespace tgl::util
