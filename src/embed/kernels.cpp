/// @file
/// Vectorized SGNS kernels over util/simd.hpp's f32 half.
///
/// This is the only TU in the library that sees the SGNS vector
/// intrinsics: under -DTGL_SIMD=auto|avx2 CMake compiles exactly this
/// file (and walk/batch.cpp) with -mavx2, so no other object file ever
/// contains AVX2 instructions (same pattern as the batched walker —
/// see src/CMakeLists.txt).
///
/// The sigmoid kernel reproduces SigmoidTable's law exactly, in this
/// order: gather values_[clamped index], force x <= -6 lanes to 0,
/// then force !(x < 6) lanes (including NaN) to 1. The index clamp
/// mirrors SigmoidTable::index_for — see the note there about
/// (x + 6.0f) rounding to 12.0f just below the saturation point.
#include "embed/kernels.hpp"

#include "embed/sigmoid_table.hpp"
#include "util/simd.hpp"

namespace tgl::embed::kernels {

namespace {

namespace simd = util::simd;

float
dot_f32(const float* a, const float* b, unsigned dim)
{
    simd::VFloat acc = simd::fsplat(0.0f);
    unsigned i = 0;
    for (; i + simd::kF32Lanes <= dim; i += simd::kF32Lanes) {
        acc = simd::fadd(acc,
                         simd::fmul(simd::fload(a + i), simd::fload(b + i)));
    }
    float sum = simd::fhsum(acc);
    for (; i < dim; ++i) {
        sum += a[i] * b[i];
    }
    return sum;
}

void
axpy_f32(float g, const float* x, float* y, unsigned dim)
{
    const simd::VFloat vg = simd::fsplat(g);
    unsigned i = 0;
    for (; i + simd::kF32Lanes <= dim; i += simd::kF32Lanes) {
        simd::fstore(y + i, simd::fadd(simd::fload(y + i),
                                       simd::fmul(vg, simd::fload(x + i))));
    }
    for (; i < dim; ++i) {
        y[i] += g * x[i];
    }
}

void
sigmoid_f32(const float* x, float* out, std::size_t n)
{
    const SigmoidTable& table = SigmoidTable::instance();
    const float* lut = table.data();
    const simd::VFloat max_exp = simd::fsplat(SigmoidTable::kMaxExp);
    const simd::VFloat neg_max_exp = simd::fsplat(-SigmoidTable::kMaxExp);
    const simd::VFloat scale = simd::fsplat(
        SigmoidTable::kTableSize / (2.0f * SigmoidTable::kMaxExp));
    const simd::VFloat zero = simd::fsplat(0.0f);
    const simd::VFloat one = simd::fsplat(1.0f);
    const simd::VFloat top =
        simd::fsplat(static_cast<float>(SigmoidTable::kTableSize - 1));

    std::size_t i = 0;
    for (; i + simd::kF32Lanes <= n; i += simd::kF32Lanes) {
        const simd::VFloat v = simd::fload(x + i);
        // Clamp the slot into [0, kTableSize - 1]. fmax turns NaN
        // into 0 on AVX2/scalar; on NEON the NaN survives but the
        // gather's float->int conversion maps it to 0 — either way no
        // lane indexes out of bounds, and the saturation blends below
        // overwrite the garbage value anyway.
        simd::VFloat slot =
            simd::fmax(simd::fmul(simd::fadd(v, max_exp), scale), zero);
        slot = simd::fmin(slot, top);
        simd::VFloat result = simd::fgather(lut, slot);
        result = simd::fselect(simd::fle(v, neg_max_exp), zero, result);
        result = simd::fselect(simd::fnlt(v, max_exp), one, result);
        simd::fstore(out + i, result);
    }
    for (; i < n; ++i) {
        out[i] = table(x[i]);
    }
}

void
update_targets_f32(float* context_row, float* const* target_rows,
                   const float* labels, std::size_t count, unsigned dim,
                   float alpha, float* scratch)
{
    // Phase 1 (the paper's parallel reduction): all scores of the
    // chunk. Zero-pad so the sigmoid runs one full vector regardless
    // of count (pad lanes are never read back).
    float scores[kSgnsTargetChunk] = {};
    float sigmoids[kSgnsTargetChunk];
    for (std::size_t t = 0; t < count; ++t) {
        scores[t] = dot_f32(context_row, target_rows[t], dim);
    }
    // Phase 2: one batched sigmoid over the chunk.
    sigmoid_f32(scores, sigmoids, kSgnsTargetChunk);
    // Phase 3: gradient axpys, same per-target order as the reference
    // kernel (scratch reads the target row before it is updated).
    for (std::size_t t = 0; t < count; ++t) {
        const float gradient = (labels[t] - sigmoids[t]) * alpha;
        axpy_f32(gradient, target_rows[t], scratch, dim);
        axpy_f32(gradient, context_row, target_rows[t], dim);
    }
}

} // namespace

std::optional<SgnsBackend>
parse_sgns_backend(std::string_view name)
{
    if (name == "auto") {
        return SgnsBackend::kAuto;
    }
    if (name == "scalar") {
        return SgnsBackend::kScalar;
    }
    if (name == "simd") {
        return SgnsBackend::kSimd;
    }
    return std::nullopt;
}

const char*
sgns_backend_name(SgnsBackend backend)
{
    switch (backend) {
    case SgnsBackend::kScalar:
        return "scalar";
    case SgnsBackend::kSimd:
        return "simd";
    case SgnsBackend::kAuto:
    default:
        return "auto";
    }
}

const SgnsBackendOps&
simd_sgns_ops()
{
    static const SgnsBackendOps ops{
        "simd",     simd::kIsaName,     dot_f32,
        axpy_f32,   sigmoid_f32,        update_targets_f32,
    };
    return ops;
}

const char*
simd_sgns_isa()
{
    return simd::kIsaName;
}

} // namespace tgl::embed::kernels
