/// @file
/// Configuration of the temporal random walk kernel (Algorithm 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tgl::walk {

/// Transition probability used to pick the next temporally-valid edge.
enum class TransitionKind
{
    /// Uniform over N_u(t): p(v|u) = 1 / |N_u(t)| (SIV-A.1).
    kUniform,
    /// Softmax over raw edge timestamps, Eq. 1 of the paper:
    /// Pr[v|u] = exp(tau(u,v)/r) / sum_i exp(tau(u,i)/r).
    kExponential,
    /// Recency-favoring softmax: exp(-(tau - t_now)/r), weighting edges
    /// that occur soonest after the walker's clock — the "temporal
    /// continuity" motivation of Fig. 2 stated as a decay.
    kExponentialDecay,
    /// CTDNE-style linear bias: weight proportional to the descending
    /// rank of the edge among valid candidates ordered by time (soonest
    /// edge gets the largest weight). No transcendentals — the cheap
    /// point in the sampling-cost ablation.
    kLinear,
};

/// Parse a transition name: "uniform", "exp", "exp-decay", "linear".
TransitionKind parse_transition(const std::string& name);

/// Human-readable transition name.
const char* transition_name(TransitionKind kind);

/// Whether walk steps draw from the precomputed prefix-CDF transition
/// cache (walk/transition_cache.hpp) instead of the direct O(degree)
/// reservoir scan. Both samplers draw from the same distribution, but
/// they consume the per-step RNG stream differently (one draw vs one
/// per candidate), so switching modes legitimately changes which
/// corpus a seed produces.
enum class TransitionCacheMode
{
    kOff,  ///< always the direct O(d) sampler
    kOn,   ///< always the cached sampler
    kAuto, ///< cached when the graph's mean degree makes it profitable
};

/// Parse a cache mode name: "off", "on", "auto".
TransitionCacheMode parse_transition_cache_mode(const std::string& name);

/// Parse a batch width: "auto" (-> 0) or an integer in [1, 64].
unsigned parse_batch_width(const std::string& name);

/// Human-readable cache mode name.
const char* transition_cache_mode_name(TransitionCacheMode mode);

/// Where walks begin.
enum class StartKind
{
    /// K walks from every vertex, clock starting at the earliest
    /// timestamp — Algorithm 1 of the paper.
    kEveryNode,
    /// Walks begin on uniformly sampled temporal edges (u, v, t): the
    /// walk emits [u, v] and continues from v with clock t. This is
    /// CTDNE's edge-sampled initialization; it weights busy regions of
    /// the graph by their activity instead of uniformly by vertex.
    kTemporalEdge,
};

/// Hyperparameters of the walk kernel. Defaults are the paper's optimal
/// operating point (SVII-A): K = 10 walks per node, length N = 6.
struct WalkConfig
{
    /// K — walks started from every vertex.
    unsigned walks_per_node = 10;
    /// N — maximum steps per walk (a walk emits <= N + 1 node tokens).
    unsigned max_length = 6;
    /// Transition probability model.
    TransitionKind transition = TransitionKind::kExponential;
    /// Walk start policy.
    StartKind start = StartKind::kEveryNode;
    /// Enforce temporal validity. When false the walker ignores
    /// timestamps entirely and hops uniformly over all out-neighbors —
    /// the DeepWalk-style *static* baseline used by the temporal-vs-
    /// static ablation (the transition model is ignored in this mode).
    bool temporal = true;
    /// Require strictly increasing timestamps (Definition III.2); false
    /// allows equal consecutive stamps (CTDNE's non-strict variant).
    bool strict_time = true;
    /// Use the paper's original O(max-degree) linear neighbor scan
    /// instead of binary search on the time-sorted slice (ablation).
    bool linear_neighbor_search = false;
    /// Prefix-CDF transition cache policy (see TransitionCacheMode).
    TransitionCacheMode transition_cache = TransitionCacheMode::kAuto;
    /// Walks shorter than this many nodes are dropped from the corpus
    /// (a single-token walk carries no skip-gram signal).
    unsigned min_walk_tokens = 2;
    /// SIMD walker lanes advanced in lockstep per batch (walk/batch.hpp):
    /// 1 pins the scalar engine (byte-identical to the pre-batching
    /// corpus), 0 means auto (kAutoBatchWidth when the graph and
    /// transition model are eligible, scalar otherwise). Widths > 1
    /// draw from the same distribution as the scalar sampler but
    /// consume RNG streams differently, so — like transition_cache —
    /// the width legitimately changes which corpus a seed produces and
    /// participates in the walk fingerprint.
    unsigned batch_width = 1;
    /// Base seed; each (walk, vertex) pair derives its own stream, so
    /// output is identical regardless of thread schedule.
    std::uint64_t seed = 1;
    /// Team size for the parallel middle loop (0 = default threads).
    unsigned num_threads = 0;

    /// All configuration problems, empty when the config is usable.
    /// Collects every diagnostic (not just the first) so a user fixes
    /// one round of mistakes, not one mistake per run.
    std::vector<std::string>
    validate() const
    {
        std::vector<std::string> problems;
        if (walks_per_node == 0) {
            problems.push_back("walks_per_node must be >= 1");
        }
        if (max_length == 0) {
            problems.push_back("max_length must be >= 1");
        }
        if (batch_width > 64) {
            problems.push_back(
                "batch_width (" + std::to_string(batch_width) +
                ") exceeds the engine's lane cap (64); use 1, 8, 16 "
                "or 0 for auto");
        }
        if (min_walk_tokens > max_length + 1) {
            problems.push_back(
                "min_walk_tokens (" + std::to_string(min_walk_tokens) +
                ") exceeds the maximum walk token count (max_length + 1 = " +
                std::to_string(max_length + 1) +
                ") — every walk would be dropped");
        }
        return problems;
    }
};

} // namespace tgl::walk
