/// @file
/// Fig. 4 reproduction: the power-law distribution of temporal walk
/// lengths on the wiki-talk (stand-in) dataset.
///
/// Paper finding: even with a generous length budget, most temporal
/// walks terminate after 1-5 hops because the strictly-increasing
/// timestamp constraint exhausts the neighborhood; the frequency of
/// longer walks decays exponentially. This drives the word2vec GPU
/// batching design (SV-B).
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("fig04_walk_length_distribution",
                        "Fig. 4: temporal walk length distribution");
    cli.add_flag("dataset", "wiki-talk", "catalog dataset");
    cli.add_flag("scale", "0.02", "stand-in scale");
    cli.add_flag("walks", "10", "K: walks per node");
    cli.add_flag("max-length", "80", "length budget (paper uses 80)");
    cli.add_flag("seed", "1", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"),
            static_cast<std::uint64_t>(cli.get_int("seed")));
        const auto graph = graph::GraphBuilder::build(
            dataset.edges, {.symmetrize = true});

        walk::WalkConfig config;
        config.walks_per_node =
            static_cast<unsigned>(cli.get_int("walks"));
        config.max_length =
            static_cast<unsigned>(cli.get_int("max-length"));
        config.min_walk_tokens = 1;
        config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

        const walk::Corpus corpus = walk::generate_walks(graph, config);
        const walk::LengthDistribution dist =
            walk::length_distribution(corpus);

        std::printf("# Fig. 4 reproduction — %s stand-in (%s nodes, %s "
                    "edges), K=%u, budget=%u\n",
                    dataset.name.c_str(),
                    util::format_count(graph.num_nodes()).c_str(),
                    util::format_count(graph.num_edges()).c_str(),
                    config.walks_per_node, config.max_length);
        std::printf("%s\n", walk::format_length_distribution(dist).c_str());
        std::printf("\n# paper shape check: mass concentrated on lengths"
                    " 1-5 (here %.1f%%), exponential tail decay "
                    "(log-slope %.3f < 0)\n",
                    dist.short_walk_fraction * 100.0,
                    dist.tail_log_slope);
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
