/// @file
/// Named synthetic stand-ins for the paper's real datasets (Table II).
///
/// The real temporal networks (ia-email, wiki-talk, stackoverflow,
/// dblp3, dblp5, brain) cannot be redistributed or downloaded offline,
/// so the catalog generates structurally matched substitutes: BA
/// power-law interaction graphs with bursty timestamps for the
/// link-prediction datasets, and labeled SBMs for the classification
/// datasets. Node/edge counts default to a laptop-scale fraction of the
/// originals; pass scale = 1.0 for paper-size graphs.
#pragma once

#include "gen/sbm.hpp"
#include "graph/edge_list.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tgl::gen {

/// Which downstream task a dataset serves.
enum class Task { kLinkPrediction, kNodeClassification };

/// A generated dataset plus its provenance.
struct Dataset
{
    std::string name;
    Task task = Task::kLinkPrediction;
    graph::EdgeList edges;
    std::vector<std::uint32_t> labels; ///< empty for link prediction
    unsigned num_classes = 0;          ///< 0 for link prediction
    graph::NodeId paper_num_nodes = 0; ///< size in the paper (Table II)
    graph::EdgeId paper_num_edges = 0;
};

/// Names accepted by make_dataset.
std::vector<std::string> dataset_names();

/// Generate the stand-in for a Table II dataset.
///
/// @param name one of dataset_names()
/// @param scale linear scale on node count relative to the paper's
///        dataset (default 0.1 keeps everything laptop-fast)
/// @param seed generator seed
/// Throws tgl::util::Error for unknown names or scale <= 0.
Dataset make_dataset(const std::string& name, double scale = 0.1,
                     std::uint64_t seed = 42);

} // namespace tgl::gen
