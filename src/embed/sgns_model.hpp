/// @file
/// Shared skip-gram-negative-sampling model state and the single-pair
/// update kernel used by both the Hogwild and the batched trainers.
#pragma once

#include "embed/embedding.hpp"
#include "embed/kernels.hpp"
#include "embed/negative_table.hpp"
#include "embed/sigmoid_table.hpp"
#include "embed/vocab.hpp"
#include "rng/random.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tgl::embed {

/// Hyperparameters of skip-gram with negative sampling. Defaults match
/// the paper's optimal operating point (d = 8, SVII-A) and the word2vec
/// reference implementation's training schedule.
struct SgnsConfig
{
    /// d — embedding dimensionality.
    unsigned dim = 8;
    /// Context window radius; word2vec shrinks it per position.
    unsigned window = 5;
    /// Negative samples per (center, context) pair.
    unsigned negatives = 5;
    /// Passes over the corpus. Walk corpora are orders of magnitude
    /// smaller than the text corpora word2vec's classic 5-epoch default
    /// assumes, so tgl defaults higher; large graphs can lower this.
    unsigned epochs = 12;
    /// Initial learning rate with linear decay to alpha/10^4.
    float alpha = 0.025f;
    /// Drop words with fewer occurrences from the vocabulary.
    std::uint64_t min_count = 1;
    /// Frequent-word subsampling threshold t (0 disables). Node
    /// corpora rarely need it; exposed for the hub-node ablation.
    double subsample = 0.0;
    std::uint64_t seed = 1;
    /// Team size (0 = default threads).
    unsigned num_threads = 0;
    /// Row stride in floats; 0 means tightly packed (= dim). The GPU
    /// study's cache-line padding maps to stride = 16 (one 64B line).
    unsigned row_stride = 0;
    /// Use the vectorizable contiguous inner loops (the CPU analogue of
    /// the paper's Coalesce + Par-red GPU optimizations). When false the
    /// inner loops run strictly scalar, modeling one-thread-per-vector
    /// uncoalesced access.
    bool vectorized = true;
    /// Kernel backend for the inner loops (--sgns-backend): kAuto picks
    /// the simd kernels on vector-capable builds and the scalar
    /// reference loops otherwise; see sgns_kernel_ops(). Ignored (the
    /// modeled-scalar loops run regardless) when vectorized is false,
    /// and validate() rejects the contradictory kSimd + !vectorized.
    kernels::SgnsBackend backend = kernels::SgnsBackend::kAuto;

    /// All configuration problems, empty when the config is usable.
    std::vector<std::string> validate() const;
};

/// Mutable SGNS parameters: input (syn0) and output (syn1neg) matrices
/// in row-major layout with a configurable stride.
class SgnsModel
{
  public:
    SgnsModel(const Vocab& vocab, const SgnsConfig& config);

    /// Identity word space: word id == node id, sized for the full CSR
    /// node range. This is how the streaming (overlapped) trainer sizes
    /// the model before a single walk exists — the node-id space is
    /// known a priori from the graph, only the counts are not.
    SgnsModel(std::size_t vocab_size, const SgnsConfig& config);

    unsigned dim() const { return dim_; }
    unsigned stride() const { return stride_; }
    std::size_t vocab_size() const { return vocab_size_; }

    float*
    input_row(WordId w)
    {
        return input_.data() + static_cast<std::size_t>(w) * stride_;
    }

    float*
    output_row(WordId w)
    {
        return output_.data() + static_cast<std::size_t>(w) * stride_;
    }

    const float*
    input_row(WordId w) const
    {
        return input_.data() + static_cast<std::size_t>(w) * stride_;
    }

    /// Copy input vectors back into node-id space (zero rows for nodes
    /// outside the vocabulary).
    Embedding to_embedding(const Vocab& vocab,
                           graph::NodeId num_nodes) const;

    /// Identity-word-space variant: row w is node w's vector.
    Embedding to_embedding(graph::NodeId num_nodes) const;

    /// True when every parameter is finite — the trainers' per-epoch
    /// divergence screen (a too-large alpha drives Hogwild updates to
    /// inf/NaN long before convergence).
    bool all_finite() const;

  private:
    unsigned dim_;
    unsigned stride_;
    std::size_t vocab_size_;
    std::vector<float> input_;
    std::vector<float> output_;
};

namespace detail {

/// Dot product over dim floats; scalar_only defeats auto-vectorization
/// to model uncoalesced per-element access (see SgnsConfig::vectorized).
inline float
dot(const float* a, const float* b, unsigned dim, bool scalar_only)
{
    float sum = 0.0f;
    if (scalar_only) {
        for (unsigned i = 0; i < dim; ++i) {
            sum += a[i] * b[i];
            asm volatile("" : "+x"(sum)); // keep strictly sequential
        }
    } else {
        for (unsigned i = 0; i < dim; ++i) {
            sum += a[i] * b[i];
        }
    }
    return sum;
}

/// y += g * x over dim floats.
inline void
axpy(float g, const float* x, float* y, unsigned dim, bool scalar_only)
{
    if (scalar_only) {
        for (unsigned i = 0; i < dim; ++i) {
            y[i] += g * x[i];
            asm volatile("" ::: "memory");
        }
    } else {
        for (unsigned i = 0; i < dim; ++i) {
            y[i] += g * x[i];
        }
    }
}

} // namespace detail

/// Resolve a config to its kernel backend: vectorized = false always
/// means the modeled-scalar loops; otherwise kScalar/kSimd select
/// directly and kAuto takes the simd kernels unless the build is
/// scalar-only (where the 8-lane emulation would just be slower plain
/// loops). Logs the choice once per process and bumps the
/// sgns.backend.<name> counter per resolution.
const kernels::SgnsBackendOps& sgns_kernel_ops(const SgnsConfig& config);

/// One SGNS update: align input[context] with output[center], away
/// from output[negatives]. Follows the word2vec reference kernel
/// (gradient accumulated in @p scratch, applied to the input row last),
/// buffering targets into kernels::kSgnsTargetChunk-row chunks for
/// @p ops.update_targets. Writes are unsynchronized — Hogwild
/// semantics.
void sgns_update_pair(SgnsModel& model, WordId context, WordId center,
                      const NegativeTable& negatives, unsigned num_negatives,
                      float alpha, const kernels::SgnsBackendOps& ops,
                      rng::Random& random, float* scratch);

/// Variant taking pre-sampled negatives (the shared-negative-sampling
/// GPU optimization: one negative pool drawn per batch and reused by
/// every pair, replacing per-pair table draws with reads of rows that
/// are already cache-hot).
void sgns_update_pair_shared(SgnsModel& model, WordId context,
                             WordId center,
                             std::span<const WordId> shared_negatives,
                             float alpha,
                             const kernels::SgnsBackendOps& ops,
                             float* scratch);

} // namespace tgl::embed
