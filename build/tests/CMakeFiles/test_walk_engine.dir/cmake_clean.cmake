file(REMOVE_RECURSE
  "CMakeFiles/test_walk_engine.dir/test_walk_engine.cpp.o"
  "CMakeFiles/test_walk_engine.dir/test_walk_engine.cpp.o.d"
  "test_walk_engine"
  "test_walk_engine.pdb"
  "test_walk_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walk_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
