#include "embed/trainer.hpp"

#include "obs/metrics.hpp"
#include "obs/perf_events.hpp"
#include "obs/trace.hpp"
#include "rng/splitmix64.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/parallel_for.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

namespace tgl::embed {

namespace {

/// Process every (center, context) pair of one sentence.
void
train_sentence(SgnsModel& model, const Vocab& vocab,
               const NegativeTable& negatives, const SgnsConfig& config,
               const kernels::SgnsBackendOps& ops,
               std::span<const graph::NodeId> sentence, float alpha,
               rng::Random& random, std::vector<WordId>& words,
               float* scratch, std::uint64_t& pairs)
{
    // Map to word ids, applying min-count filtering and optional
    // frequent-word subsampling.
    words.clear();
    for (graph::NodeId node : sentence) {
        const WordId w = vocab.word_of(node);
        if (w == kNoWord) {
            continue;
        }
        if (config.subsample > 0.0) {
            const double frequency =
                static_cast<double>(vocab.count(w)) /
                static_cast<double>(vocab.total_tokens());
            const double keep =
                (std::sqrt(frequency / config.subsample) + 1.0) *
                (config.subsample / frequency);
            if (keep < 1.0 && !random.next_bernoulli(keep)) {
                continue;
            }
        }
        words.push_back(w);
    }

    const std::size_t len = words.size();
    for (std::size_t pos = 0; pos < len; ++pos) {
        // word2vec shrinks the window uniformly per position.
        const unsigned shrink = static_cast<unsigned>(
            random.next_index(config.window)) ;
        const unsigned effective = config.window - shrink;
        const std::size_t lo =
            pos >= effective ? pos - effective : 0;
        const std::size_t hi = std::min(len, pos + effective + 1);
        for (std::size_t c = lo; c < hi; ++c) {
            if (c == pos) {
                continue;
            }
            sgns_update_pair(model, words[c], words[pos], negatives,
                             config.negatives, alpha, ops, random,
                             scratch);
            ++pairs;
        }
    }
}

} // namespace

Embedding
train_sgns(const walk::Corpus& corpus, graph::NodeId num_nodes,
           const SgnsConfig& config, TrainStats* stats)
{
    if (config.epochs == 0) {
        util::fatal("train_sgns: epochs must be >= 1");
    }
    if (config.window == 0) {
        util::fatal("train_sgns: window must be >= 1");
    }
    obs::Span span("sgns.train");
    util::Timer timer;

    const Vocab vocab(corpus, config.min_count);
    if (vocab.size() == 0) {
        util::fatal("train_sgns: empty vocabulary (corpus too small or "
                    "min_count too high)");
    }
    const NegativeTable negatives(vocab);
    SgnsModel model(vocab, config);
    const kernels::SgnsBackendOps& ops = sgns_kernel_ops(config);

    const std::size_t num_sentences = corpus.num_walks();
    const std::uint64_t total_tokens =
        static_cast<std::uint64_t>(corpus.num_tokens()) * config.epochs;
    std::atomic<std::uint64_t> tokens_done{0};
    std::atomic<std::uint64_t> total_pairs{0};

    const unsigned max_team = config.num_threads ? config.num_threads
                                                 : util::default_threads();
    struct RankState
    {
        std::vector<WordId> words;
        std::vector<float> scratch;
        std::uint64_t pairs = 0;
        std::uint64_t tokens = 0;
    };
    std::vector<RankState> ranks(max_team);
    for (RankState& state : ranks) {
        state.scratch.resize(config.dim);
    }

    // One counter scope spanning all epochs: the rank→worker mapping
    // is stable across dispatches, so each thread's set is opened once
    // and the close() below aggregates the whole training run.
    obs::PerfRankScopes perf_scopes("sgns", max_team);

    for (unsigned epoch = 0; epoch < config.epochs; ++epoch) {
        util::check_cancellation("the sgns epoch loop");
        const obs::Span epoch_span("sgns.epoch");
        util::parallel_for_ranked(
            0, num_sentences,
            [&](std::size_t s, unsigned rank) {
                perf_scopes.ensure(rank);
                RankState& state = ranks[rank];
                const auto sentence = corpus.walk(s);

                // Linear learning-rate decay from the shared progress
                // counter, refreshed every sentence like word2vec does
                // every 10k words.
                const std::uint64_t done =
                    tokens_done.load(std::memory_order_relaxed);
                const float progress =
                    static_cast<float>(static_cast<double>(done) /
                                       static_cast<double>(total_tokens));
                const float alpha = std::max(
                    config.alpha * (1.0f - progress),
                    config.alpha * 1e-4f);

                rng::Random random(rng::mix_seed(
                    config.seed,
                    static_cast<std::uint64_t>(epoch) * num_sentences + s));
                train_sentence(model, vocab, negatives, config, ops,
                               sentence, alpha, random, state.words,
                               state.scratch.data(), state.pairs);
                state.tokens += sentence.size();
                tokens_done.fetch_add(sentence.size(),
                                      std::memory_order_relaxed);
            },
            {.num_threads = config.num_threads, .grain = 64});

        // Divergence screen: a runaway alpha turns the Hogwild updates
        // into inf/NaN well before training ends; fail with context
        // instead of emitting a poisoned embedding.
        if (!model.all_finite()) {
            util::fatal(util::strcat(
                "train_sgns: non-finite model weights after epoch ",
                epoch + 1, " of ", config.epochs,
                " — training diverged (alpha = ", config.alpha, ")"));
        }
    }

    for (RankState& state : ranks) {
        total_pairs.fetch_add(state.pairs, std::memory_order_relaxed);
    }

    const std::uint64_t pairs = total_pairs.load();
    const std::uint64_t tokens =
        tokens_done.load(std::memory_order_relaxed);
    const double seconds = timer.seconds();
    obs::Registry& registry = obs::Registry::global();
    registry.counter("sgns.pairs").add(pairs);
    registry.counter("sgns.tokens").add(tokens);
    registry.counter("sgns.epochs").add(config.epochs);
    registry.gauge("sgns.alpha")
        .set(static_cast<double>(config.alpha));
    registry.gauge("sgns.pairs_per_second")
        .set(seconds > 0.0 ? static_cast<double>(pairs) / seconds : 0.0);

    const obs::PerfSample perf = perf_scopes.close();
    for (const auto& [key, value] : obs::perf_span_args(perf)) {
        span.arg(key, value);
    }

    if (stats != nullptr) {
        stats->pairs_trained = pairs;
        stats->tokens_processed = tokens;
        stats->seconds = seconds;
    }
    return model.to_embedding(vocab, num_nodes);
}

} // namespace tgl::embed
