/// @file
/// Timestamp assignment models for synthetic temporal graphs.
///
/// The paper's hardware study uses Erdős–Rényi graphs "with synthetic
/// timestamps" (SVI-C). Real interaction networks are not uniform in
/// time, so beyond iid-uniform stamps we provide arrival-order and
/// bursty (Hawkes-flavored) models; the dataset catalog uses bursty
/// stamps to reproduce the short-walk-dominated length distribution of
/// Fig. 4.
#pragma once

#include "graph/edge_list.hpp"
#include "rng/random.hpp"

#include <string>

namespace tgl::gen {

/// How timestamps are assigned to generated edges.
enum class TimestampModel
{
    /// iid Uniform(0, 1), independent of edge order.
    kUniform,
    /// Edge i of m gets i / (m - 1): a pure arrival process.
    kArrivalOrder,
    /// Poisson arrivals with self-exciting bursts: after each edge,
    /// with burst probability the next gap is drawn from a much faster
    /// rate, clustering interactions the way reply chains do.
    kBursty,
};

/// Parse a model name ("uniform", "arrival", "bursty").
TimestampModel parse_timestamp_model(const std::string& name);

/// Overwrite the timestamps of @p edges in place according to the
/// model, then normalize onto [0, 1]. Edge order is preserved.
void assign_timestamps(graph::EdgeList& edges, TimestampModel model,
                       rng::Random& random);

} // namespace tgl::gen
