file(REMOVE_RECURSE
  "CMakeFiles/test_embed_embedding.dir/test_embed_embedding.cpp.o"
  "CMakeFiles/test_embed_embedding.dir/test_embed_embedding.cpp.o.d"
  "test_embed_embedding"
  "test_embed_embedding.pdb"
  "test_embed_embedding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
