#include "walk/corpus.hpp"

#include "util/artifact_io.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <fstream>
#include <ostream>

namespace tgl::walk {

void
Corpus::append(Corpus&& other)
{
    const std::size_t base = tokens_.size();
    tokens_.reserve(tokens_.size() + other.tokens_.size());
    tokens_.insert(tokens_.end(), other.tokens_.begin(),
                   other.tokens_.end());
    offsets_.reserve(offsets_.size() + other.num_walks());
    for (std::size_t i = 1; i < other.offsets_.size(); ++i) {
        offsets_.push_back(base + other.offsets_[i]);
    }
    other.tokens_.clear();
    other.offsets_.assign(1, 0);
}

void
Corpus::save(std::ostream& out) const
{
    for (std::size_t i = 0; i < num_walks(); ++i) {
        const auto w = walk(i);
        for (std::size_t j = 0; j < w.size(); ++j) {
            out << w[j] << (j + 1 == w.size() ? '\n' : ' ');
        }
    }
}

Corpus
Corpus::load(std::istream& in)
{
    Corpus corpus;
    std::string line;
    std::vector<graph::NodeId> walk;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto trimmed = util::trim(line);
        if (trimmed.empty()) {
            continue;
        }
        walk.clear();
        for (const auto field : util::split(trimmed)) {
            const long long value = util::parse_int(field);
            if (value < 0) {
                util::fatal(util::strcat("corpus line ", line_number,
                                         ": negative node id"));
            }
            walk.push_back(static_cast<graph::NodeId>(value));
        }
        corpus.add_walk(walk);
    }
    return corpus;
}

void
Corpus::save_file(const std::string& path) const
{
    util::atomic_write_file(path,
                            [this](std::ostream& out) { save(out); });
}

Corpus
Corpus::load_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    return load(in);
}

namespace {

constexpr char kCorpusKind[] = "corpus";
constexpr std::uint32_t kCorpusPayloadVersion = 1;

} // namespace

void
Corpus::save_binary(std::ostream& out, std::uint64_t fingerprint) const
{
    util::ArtifactWriter writer(out, kCorpusKind, kCorpusPayloadVersion,
                                fingerprint);
    writer.write_pod<std::uint64_t>(num_walks());
    writer.write_pod<std::uint64_t>(num_tokens());
    // offsets_[0] is always 0 — store only the num_walks() tail.
    for (std::size_t i = 1; i < offsets_.size(); ++i) {
        writer.write_pod<std::uint64_t>(offsets_[i]);
    }
    writer.write_bytes(tokens_.data(),
                       tokens_.size() * sizeof(graph::NodeId));
    writer.finish();
}

Corpus
Corpus::load_binary(std::istream& in, std::uint64_t* fingerprint)
{
    util::ArtifactReader reader(in, kCorpusKind);
    if (reader.payload_version() != kCorpusPayloadVersion) {
        util::fatal(util::strcat(
            "corpus artifact: unsupported payload version ",
            reader.payload_version()));
    }
    const auto num_walks = reader.read_pod<std::uint64_t>();
    const auto num_tokens = reader.read_pod<std::uint64_t>();
    const std::size_t expected = num_walks * sizeof(std::uint64_t) +
                                 num_tokens * sizeof(graph::NodeId);
    if (reader.remaining() != expected) {
        util::fatal(util::strcat("corpus artifact: payload holds ",
                                 reader.remaining(),
                                 " bytes, header implies ", expected));
    }
    Corpus corpus;
    corpus.offsets_.reserve(num_walks + 1);
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < num_walks; ++i) {
        const auto offset = reader.read_pod<std::uint64_t>();
        if (offset < previous || offset > num_tokens) {
            util::fatal(util::strcat("corpus artifact: walk ", i,
                                     " has a non-monotone offset"));
        }
        previous = offset;
        corpus.offsets_.push_back(offset);
    }
    if (num_walks > 0 && previous != num_tokens) {
        util::fatal("corpus artifact: final offset != token count");
    }
    corpus.tokens_.resize(num_tokens);
    reader.read_bytes(corpus.tokens_.data(),
                      num_tokens * sizeof(graph::NodeId));
    if (fingerprint != nullptr) {
        *fingerprint = reader.fingerprint();
    }
    return corpus;
}

void
Corpus::save_binary_file(const std::string& path,
                         std::uint64_t fingerprint) const
{
    util::atomic_write_file(
        path,
        [&](std::ostream& out) { save_binary(out, fingerprint); },
        /*binary=*/true);
}

Corpus
Corpus::load_binary_file(const std::string& path,
                         std::uint64_t* fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    return load_binary(in, fingerprint);
}

} // namespace tgl::walk
