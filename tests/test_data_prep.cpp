/// Regression and property tests for split validation and negative
/// sampling (core/data_prep) plus the weighted-draw sentinel contract.
#include "core/data_prep.hpp"

#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "rng/discrete_sampler.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace tgl::core {
namespace {

/// Directed path 0 -> 1 -> ... -> n-1 with increasing timestamps.
graph::EdgeList
path_edges(graph::NodeId n)
{
    graph::EdgeList edges;
    for (graph::NodeId u = 0; u + 1 < n; ++u) {
        edges.add(u, u + 1, static_cast<graph::Timestamp>(u));
    }
    return edges;
}

/// All ordered pairs u != v (a complete directed graph): no true
/// negative exists anywhere.
graph::EdgeList
complete_directed_edges(graph::NodeId n)
{
    graph::EdgeList edges;
    graph::Timestamp t = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
        for (graph::NodeId v = 0; v < n; ++v) {
            if (u != v) {
                edges.add(u, v, t++);
            }
        }
    }
    return edges;
}

std::size_t
count_positives(const std::vector<EdgeSample>& samples)
{
    std::size_t positives = 0;
    for (const EdgeSample& sample : samples) {
        positives += sample.label == 1.0f;
    }
    return positives;
}

// Regression (split-validation drift): validate() used to accept
// fraction sums below 1 that prepare_link_splits then rejected at run
// time. The two checks must agree: anything validate() flags throws,
// anything it accepts runs.
TEST(SplitConfigContract, ValidateRejectsFractionsSummingBelowOne)
{
    SplitConfig config;
    config.train_fraction = 0.5;
    config.valid_fraction = 0.2;
    config.test_fraction = 0.2; // sums to 0.9
    EXPECT_FALSE(config.validate().empty());
}

TEST(SplitConfigContract, ValidateAcceptsExactSum)
{
    SplitConfig config; // 0.6 / 0.2 / 0.2
    EXPECT_TRUE(config.validate().empty());
    config.train_fraction = 1.0;
    config.valid_fraction = 0.0;
    config.test_fraction = 0.0;
    EXPECT_TRUE(config.validate().empty());
}

TEST(SplitConfigContract, PrepareEnforcesValidate)
{
    const graph::EdgeList edges = path_edges(12);
    const auto graph = graph::GraphBuilder::build(edges, {});
    SplitConfig config;
    config.train_fraction = 0.5; // sums to 0.9: validate() rejects it
    EXPECT_THROW(prepare_link_splits(edges, graph, config), util::Error);
}

// Property: over a grid of fraction triples, prepare_link_splits
// accepts exactly the configs validate() accepts — no config passes
// validation and then dies inside the splitter, and none sneaks past a
// failed validation.
TEST(SplitConfigContract, ValidateAndPrepareAgreeOnFractionGrid)
{
    const graph::EdgeList edges = path_edges(20);
    const auto graph = graph::GraphBuilder::build(edges, {});
    for (int train = 0; train <= 10; ++train) {
        for (int valid = 0; valid + train <= 12; ++valid) {
            for (int test = 0; test + train + valid <= 14; ++test) {
                SplitConfig config;
                config.train_fraction = train / 10.0;
                config.valid_fraction = valid / 10.0;
                config.test_fraction = test / 10.0;
                if (config.validate().empty()) {
                    EXPECT_NO_THROW(
                        prepare_link_splits(edges, graph, config))
                        << train << "/" << valid << "/" << test;
                } else {
                    EXPECT_THROW(
                        prepare_link_splits(edges, graph, config),
                        util::Error)
                        << train << "/" << valid << "/" << test;
                }
            }
        }
    }
}

// Regression (negative-sampling collisions): with the CSR holding each
// undirected relation as a single directed arc, the sampler used to
// accept the reverse orientation of an existing edge as a "negative".
// Neither orientation may appear among sampled negatives.
TEST(NegativeSampling, ReverseEdgesAreNotNegativesOnDirectedCsr)
{
    const graph::NodeId n = 12;
    const graph::EdgeList edges = path_edges(n);
    const auto graph =
        graph::GraphBuilder::build(edges, {.symmetrize = false});
    SplitConfig config;
    config.negatives_per_positive = 16; // many draws per positive
    const LinkSplits splits = prepare_link_splits(edges, graph, config);
    for (const std::vector<EdgeSample>* split :
         {&splits.train, &splits.valid, &splits.test}) {
        for (const EdgeSample& sample : *split) {
            if (sample.label != 0.0f) {
                continue;
            }
            EXPECT_FALSE(graph.has_edge(sample.src, sample.dst))
                << sample.src << "->" << sample.dst;
            EXPECT_FALSE(graph.has_edge(sample.dst, sample.src))
                << sample.dst << "->" << sample.src
                << " (reverse edge sampled as negative)";
        }
    }
}

TEST(NegativeSampling, SymmetrizedCsrGetsTrueNegativesToo)
{
    const graph::NodeId n = 12;
    const graph::EdgeList edges = path_edges(n);
    const auto graph =
        graph::GraphBuilder::build(edges, {.symmetrize = true});
    SplitConfig config;
    config.negatives_per_positive = 16;
    const LinkSplits splits = prepare_link_splits(edges, graph, config);
    for (const std::vector<EdgeSample>* split :
         {&splits.train, &splits.valid, &splits.test}) {
        for (const EdgeSample& sample : *split) {
            if (sample.label != 0.0f) {
                continue;
            }
            EXPECT_NE(sample.src, sample.dst);
            EXPECT_FALSE(graph.has_edge(sample.src, sample.dst));
        }
    }
}

// On a complete directed graph every candidate collides: the sampler
// must exhaust its attempts (counted as collisions) and fall back,
// rather than laundering reverse arcs as negatives.
TEST(NegativeSampling, CollisionCounterTracksExhaustion)
{
    const graph::EdgeList edges = complete_directed_edges(6);
    const auto graph =
        graph::GraphBuilder::build(edges, {.symmetrize = false});
    SplitConfig config;
    config.max_negative_attempts = 8;

    obs::Registry& registry = obs::Registry::global();
    const double collisions_before =
        registry.snapshot().value("dataprep.negative_collisions");
    const double fallbacks_before =
        registry.snapshot().value("dataprep.negative_fallbacks");

    const LinkSplits splits = prepare_link_splits(edges, graph, config);
    const std::size_t negatives = splits.train.size() +
                                  splits.valid.size() +
                                  splits.test.size() -
                                  count_positives(splits.train) -
                                  count_positives(splits.valid) -
                                  count_positives(splits.test);

    const double collisions =
        registry.snapshot().value("dataprep.negative_collisions") -
        collisions_before;
    const double fallbacks =
        registry.snapshot().value("dataprep.negative_fallbacks") -
        fallbacks_before;
    // Every attempt of every negative collided, and every negative hit
    // the fallback path.
    EXPECT_EQ(collisions,
              static_cast<double>(negatives) *
                  config.max_negative_attempts);
    EXPECT_EQ(fallbacks, static_cast<double>(negatives));
}

TEST(NegativeSampling, SparseGraphRecordsAttemptsWithFewCollisions)
{
    const graph::EdgeList edges = path_edges(30);
    const auto graph = graph::GraphBuilder::build(edges, {});
    obs::Registry& registry = obs::Registry::global();
    const double attempts_before =
        registry.snapshot().value("dataprep.negative_attempts");

    const LinkSplits splits =
        prepare_link_splits(edges, graph, SplitConfig{});
    const std::size_t negatives = splits.train.size() +
                                  splits.valid.size() +
                                  splits.test.size() -
                                  count_positives(splits.train) -
                                  count_positives(splits.valid) -
                                  count_positives(splits.test);

    const double attempts =
        registry.snapshot().value("dataprep.negative_attempts") -
        attempts_before;
    EXPECT_GE(attempts, static_cast<double>(negatives));
}

// 60/20/20 accounting on a round edge count: test takes the most
// recent 20 edges, train 60 of the past, valid the remaining 20, and
// each split doubles with its 1:1 negatives.
TEST(SplitAccounting, SixtyTwentyTwentySizes)
{
    graph::EdgeList edges;
    const graph::NodeId n = 40;
    for (int i = 0; i < 100; ++i) {
        const auto u = static_cast<graph::NodeId>(i % n);
        const auto v = static_cast<graph::NodeId>((i * 7 + 3) % n);
        edges.add(u == v ? (u + 1) % n : u, v,
                  static_cast<graph::Timestamp>(i));
    }
    const auto graph = graph::GraphBuilder::build(edges, {});
    const LinkSplits splits =
        prepare_link_splits(edges, graph, SplitConfig{});
    EXPECT_EQ(count_positives(splits.train), 60u);
    EXPECT_EQ(count_positives(splits.valid), 20u);
    EXPECT_EQ(count_positives(splits.test), 20u);
    EXPECT_EQ(splits.train.size(), 120u);
    EXPECT_EQ(splits.valid.size(), 40u);
    EXPECT_EQ(splits.test.size(), 40u);
}

TEST(SplitAccounting, NodeSplitsPartitionEveryNode)
{
    const NodeSplits splits = prepare_node_splits(50, SplitConfig{});
    EXPECT_EQ(splits.train.size(), 30u);
    EXPECT_EQ(splits.valid.size(), 10u);
    EXPECT_EQ(splits.test.size(), 10u);
}

// The one-shot weighted draws return n (one past the last index) when
// every weight is zero; callers treat that as "no candidate".
TEST(WeightedSamplingSentinel, AllZeroWeightsReturnN)
{
    rng::Random random(123);
    const auto zero = [](std::size_t) { return 0.0; };
    EXPECT_EQ(rng::sample_weighted_one_pass(5, zero, random), 5u);
    EXPECT_EQ(rng::sample_weighted_two_pass(5, zero, random), 5u);
    EXPECT_EQ(rng::sample_weighted_one_pass(0, zero, random), 0u);
    EXPECT_EQ(rng::sample_weighted_two_pass(0, zero, random), 0u);
}

TEST(WeightedSamplingSentinel, PositiveWeightIsAlwaysFound)
{
    rng::Random random(123);
    const auto only_three = [](std::size_t i) {
        return i == 3 ? 2.5 : 0.0;
    };
    for (int draw = 0; draw < 16; ++draw) {
        EXPECT_EQ(rng::sample_weighted_one_pass(6, only_three, random),
                  3u);
        EXPECT_EQ(rng::sample_weighted_two_pass(6, only_three, random),
                  3u);
    }
}

} // namespace
} // namespace tgl::core
