file(REMOVE_RECURSE
  "CMakeFiles/test_gen_generators.dir/test_gen_generators.cpp.o"
  "CMakeFiles/test_gen_generators.dir/test_gen_generators.cpp.o.d"
  "test_gen_generators"
  "test_gen_generators.pdb"
  "test_gen_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
