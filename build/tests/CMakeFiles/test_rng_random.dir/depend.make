# Empty dependencies file for test_rng_random.
# This may be replaced when dependencies are built.
