# Empty compiler generated dependencies file for test_gen_generators.
# This may be replaced when dependencies are built.
