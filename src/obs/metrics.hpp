/// @file
/// Lock-light metrics registry: the single telemetry path for every
/// pipeline phase (walk engine, word2vec, data preparation, classifier).
///
/// Three instrument kinds:
///  * Counter   — monotonically increasing uint64 sum (steps, pairs,
///                negative-sampling collisions, ...).
///  * Gauge     — last-written double (current alpha, epoch loss, ...).
///  * Histogram — fixed upper-bound buckets plus count and sum
///                (per-batch latencies).
///
/// Hot-path writes never take a lock: counter and histogram cells live
/// in per-thread shards (each cell has exactly one writer), so an
/// increment is a relaxed atomic add on thread-private cache lines.
/// scrape/snapshot() merges the shards under the registry mutex, which
/// is also the only place registration (name -> handle) synchronizes.
/// Gauges write to one central cell (relaxed store) because merging
/// "last value" across shards is meaningless.
///
/// Naming scheme: dot-separated lowercase paths, "<phase>.<quantity>"
/// with an optional qualifier, e.g. `walk.steps.cached`,
/// `sgns.pairs`, `dataprep.negative_collisions`,
/// `classifier.batch_seconds`. Registration is idempotent by name, so
/// independently compiled call sites share one instrument.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tgl::obs {

class Registry;

enum class MetricKind : std::uint8_t
{
    kCounter,
    kGauge,
    kHistogram,
};

/// Monotonic counter handle. Cheap to copy; a default-constructed
/// handle is a no-op sink (safe before registration).
class Counter
{
  public:
    Counter() = default;

    /// Add @p delta to this thread's shard cell (no locks).
    void add(std::uint64_t delta) const;
    void inc() const { add(1); }

  private:
    friend class Registry;
    Counter(Registry* registry, std::uint32_t cell)
        : registry_(registry), cell_(cell)
    {
    }
    Registry* registry_ = nullptr;
    std::uint32_t cell_ = 0;
};

/// Last-value gauge handle (stored centrally, relaxed atomics).
class Gauge
{
  public:
    Gauge() = default;

    void set(double value) const;

  private:
    friend class Registry;
    Gauge(Registry* registry, std::uint32_t cell)
        : registry_(registry), cell_(cell)
    {
    }
    Registry* registry_ = nullptr;
    std::uint32_t cell_ = 0;
};

/// Fixed-bucket histogram handle. Bucket i counts observations
/// <= bounds[i]; one overflow bucket catches the rest. Sum and count
/// accumulate alongside, all in the caller's thread shard.
class Histogram
{
  public:
    Histogram() = default;

    void observe(double value) const;

  private:
    friend class Registry;
    Histogram(Registry* registry, std::uint32_t first_cell,
              const double* bounds, std::uint32_t num_bounds)
        : registry_(registry), first_cell_(first_cell), bounds_(bounds),
          num_bounds_(num_bounds)
    {
    }
    Registry* registry_ = nullptr;
    std::uint32_t first_cell_ = 0;
    const double* bounds_ = nullptr; // owned by the registry metadata
    std::uint32_t num_bounds_ = 0;
};

/// One merged metric in a snapshot.
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// Counter total or gauge value (histograms leave this 0).
    double value = 0.0;
    /// Histogram upper bounds (empty otherwise).
    std::vector<double> bounds;
    /// Histogram per-bucket counts, bounds.size() + 1 entries (last is
    /// the overflow bucket).
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0; ///< histogram observation count
    double sum = 0.0;        ///< histogram observation sum
};

/// Point-in-time merge of every shard, ordered by registration.
struct MetricsSnapshot
{
    std::vector<MetricValue> metrics;

    /// Metric by exact name, nullptr when absent.
    const MetricValue* find(std::string_view name) const;

    /// Counter/gauge value (histogram count) by name; 0 when absent.
    double value(std::string_view name) const;

    /// Serialize as {"schema_version":1,"metrics":[...]}.
    std::string to_json() const;
};

/// A set of named instruments plus their per-thread storage. Most code
/// uses the process-wide Registry::global(); tests build private
/// instances for isolation.
class Registry
{
  public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// The process-wide registry every pipeline phase reports into.
    static Registry& global();

    /// Register (or look up) an instrument. Idempotent by name; a name
    /// already registered with a different kind is an error.
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    /// @p bounds must be non-empty, finite, and strictly increasing
    /// (unsorted, duplicate, or non-finite bounds are fatal). Re-lookup
    /// of an existing histogram keeps the registered bounds; if the
    /// requested bounds differ, a warning is logged once per metric
    /// (see histogram_bounds_mismatches()).
    Histogram histogram(std::string_view name, std::vector<double> bounds);

    /// Number of histograms whose re-registration requested bounds
    /// differing from the registered ones (each counted once, at the
    /// first mismatching lookup).
    std::uint64_t histogram_bounds_mismatches() const;

    /// Merge all shards into an ordered snapshot (approximate while
    /// writers are concurrently active, exact when they are quiesced).
    MetricsSnapshot snapshot() const;

    /// Zero every cell; instruments and outstanding handles stay valid.
    void reset();

    /// Write snapshot().to_json() to @p path (tgl::util::Error on I/O
    /// failure).
    void write_json(const std::string& path) const;

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    using Cell = std::atomic<std::uint64_t>;

    /// Per-thread cell storage. Cells are allocated in fixed blocks so
    /// a concurrent scrape never observes a moving array.
    struct Shard
    {
        static constexpr std::uint32_t kBlockShift = 9;
        static constexpr std::uint32_t kBlockSize = 1u << kBlockShift;
        static constexpr std::uint32_t kMaxBlocks = 128;
        std::array<std::atomic<Cell*>, kMaxBlocks> blocks{};

        ~Shard();
        /// Cell pointer if its block exists, else nullptr.
        Cell* try_cell(std::uint32_t index) const;
    };

    struct MetricInfo
    {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        std::uint32_t first_cell = 0;
        std::uint32_t num_cells = 1;
        /// Histogram upper bounds; heap array so handle pointers stay
        /// valid across metadata growth.
        std::unique_ptr<double[]> bounds;
        std::uint32_t num_bounds = 0;
        /// A re-registration with different bounds already warned.
        bool bounds_warned = false;
    };

    std::uint32_t intern(std::string_view name, MetricKind kind,
                         std::uint32_t num_cells,
                         std::vector<double> bounds);
    Shard* local_shard();
    /// Shard cell for the calling thread, allocating its block if
    /// needed (mutex only on first touch of a block).
    Cell* shard_cell(Shard& shard, std::uint32_t index);
    Cell* ensure_block(Shard& shard, std::uint32_t block);

    mutable std::mutex mutex_;
    std::uint64_t id_ = 0; ///< process-unique, guards thread caches
    std::vector<MetricInfo> metrics_;
    std::vector<std::unique_ptr<Shard>> shards_; ///< one per writer thread
    Shard central_;                              ///< gauge cells
    std::uint32_t next_cell_ = 0;
    std::uint32_t next_gauge_cell_ = 0;
    std::uint64_t bounds_mismatches_ = 0;
};

} // namespace tgl::obs
