/// @file
/// Table II reproduction: the evaluation datasets.
///
/// Prints each stand-in's generated statistics next to the paper's
/// reported sizes, plus the structural properties the substitution is
/// supposed to preserve (power-law degree skew for the interaction
/// networks, community assortativity for the labeled graphs, and
/// normalized bursty timestamps throughout).
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("table2_datasets",
                        "Table II: dataset stand-ins vs paper sizes");
    cli.add_flag("scale", "0.05", "stand-in scale vs the paper's sizes");
    cli.add_flag("seed", "42", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const double scale = cli.get_double("scale");
        const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

        std::printf("# Table II reproduction — synthetic stand-ins at "
                    "scale %.3f (see DESIGN.md for the substitution)\n",
                    scale);
        std::printf("%-14s %-6s %12s %14s %12s %14s %8s %10s %8s\n",
                    "dataset", "task", "paper-nodes", "paper-edges",
                    "gen-nodes", "gen-edges", "avg-deg", "pl-slope",
                    "classes");

        for (const std::string& name : gen::dataset_names()) {
            const gen::Dataset dataset =
                gen::make_dataset(name, scale, seed);
            const auto graph = graph::GraphBuilder::build(
                dataset.edges, {.symmetrize = true});
            const graph::GraphStats stats = graph::compute_stats(graph);
            std::printf(
                "%-14s %-6s %12s %14s %12s %14s %8.1f %10.2f %8u\n",
                dataset.name.c_str(),
                dataset.task == gen::Task::kLinkPrediction ? "LP" : "NC",
                util::format_count(dataset.paper_num_nodes).c_str(),
                util::format_count(dataset.paper_num_edges).c_str(),
                util::format_count(dataset.edges.num_nodes()).c_str(),
                util::format_count(dataset.edges.size()).c_str(),
                stats.avg_out_degree, stats.degree_powerlaw_slope,
                dataset.num_classes);
        }
        std::printf("\n# shape check: LP stand-ins show strongly "
                    "negative power-law slopes (hub-dominated like the "
                    "real interaction networks); NC stand-ins carry "
                    "balanced labels over assortative communities.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
