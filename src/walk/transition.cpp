#include "walk/transition.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

#include <cmath>
#include <stdexcept>

namespace tgl::walk {

TransitionKind
parse_transition(const std::string& name)
{
    if (name == "uniform") {
        return TransitionKind::kUniform;
    }
    if (name == "exp") {
        return TransitionKind::kExponential;
    }
    if (name == "exp-decay") {
        return TransitionKind::kExponentialDecay;
    }
    if (name == "linear") {
        return TransitionKind::kLinear;
    }
    util::fatal(util::strcat("unknown transition kind: ", name));
}

unsigned
parse_batch_width(const std::string& name)
{
    if (name == "auto") {
        return 0;
    }
    unsigned width = 0;
    try {
        const unsigned long parsed = std::stoul(name);
        width = static_cast<unsigned>(parsed);
        if (parsed == 0 || parsed > 64) {
            width = 0;
            throw std::out_of_range(name);
        }
    } catch (const std::exception&) {
        util::fatal(util::strcat("invalid batch width: ", name,
                                 " (expected auto or an integer in "
                                 "[1, 64])"));
    }
    return width;
}

const char*
transition_name(TransitionKind kind)
{
    switch (kind) {
      case TransitionKind::kUniform: return "uniform";
      case TransitionKind::kExponential: return "exp";
      case TransitionKind::kExponentialDecay: return "exp-decay";
      case TransitionKind::kLinear: return "linear";
    }
    return "?";
}

namespace {

/// Weighted one-pass reservoir pick over the candidate span with an
/// inlined weight computation (the std::function-based generic sampler
/// in rng/ is too slow for the per-step hot path).
template <typename WeightFn>
std::size_t
pick_weighted(std::span<const graph::Neighbor> candidates,
              const WeightFn& weight_of, rng::Random& random,
              TransitionCost* cost)
{
    double total = 0.0;
    std::size_t choice = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double w = weight_of(candidates[i].time);
        total += w;
        if (random.next_double() * total < w) {
            choice = i;
        }
    }
    if (cost != nullptr) {
        const auto n = static_cast<std::uint64_t>(candidates.size());
        cost->memory_ops += 2 * n;  // timestamp + neighbor-record loads
        cost->compute_ops += 4 * n; // weight + accumulate + draw + scale
        cost->branch_ops += n;      // reservoir replacement test
    }
    return choice;
}

} // namespace

std::size_t
sample_transition(std::span<const graph::Neighbor> candidates,
                  graph::Timestamp now, graph::Timestamp time_range,
                  TransitionKind kind, rng::Random& random,
                  TransitionCost* cost)
{
    const std::size_t n = candidates.size();
    if (n == 0) {
        return 0;
    }
    if (n == 1) {
        if (cost != nullptr) {
            cost->memory_ops += 1;
            cost->branch_ops += 1;
        }
        return 0;
    }
    const double r = time_range > 0.0 ? time_range : 1.0;

    switch (kind) {
      case TransitionKind::kUniform: {
        if (cost != nullptr) {
            cost->compute_ops += 2; // bounded draw
            cost->branch_ops += 1;
        }
        return static_cast<std::size_t>(random.next_index(n));
      }
      case TransitionKind::kExponential: {
        // Candidates are time-sorted, so the max timestamp is last;
        // shifting by it keeps every exponent <= 0 (no overflow).
        const graph::Timestamp t_max = candidates[n - 1].time;
        const std::size_t choice = pick_weighted(
            candidates,
            [&](graph::Timestamp t) { return std::exp((t - t_max) / r); },
            random, cost);
        if (cost != nullptr) {
            // exp() expands to ~10 arithmetic ops plus polynomial
            // constant loads, which MICA's taxonomy counts as memory.
            cost->compute_ops += 8 * n;
            cost->memory_ops += 2 * n;
        }
        TGL_DASSERT(choice < n);
        return choice;
      }
      case TransitionKind::kExponentialDecay: {
        const std::size_t choice = pick_weighted(
            candidates,
            [&](graph::Timestamp t) { return std::exp(-(t - now) / r); },
            random, cost);
        if (cost != nullptr) {
            cost->compute_ops += 8 * n;
            cost->memory_ops += 2 * n;
        }
        TGL_DASSERT(choice < n);
        return choice;
      }
      case TransitionKind::kLinear: {
        // Descending rank by time: soonest valid edge (index 0) gets
        // weight n, the latest gets weight 1.
        double total = 0.0;
        std::size_t choice = n;
        for (std::size_t i = 0; i < n; ++i) {
            const double w = static_cast<double>(n - i);
            total += w;
            if (random.next_double() * total < w) {
                choice = i;
            }
        }
        if (cost != nullptr) {
            const auto count = static_cast<std::uint64_t>(n);
            cost->compute_ops += 3 * count;
            cost->branch_ops += count;
        }
        TGL_DASSERT(choice < n);
        return choice;
      }
    }
    TGL_PANIC("unhandled transition kind");
}

} // namespace tgl::walk
