file(REMOVE_RECURSE
  "CMakeFiles/test_rng_random.dir/test_rng_random.cpp.o"
  "CMakeFiles/test_rng_random.dir/test_rng_random.cpp.o.d"
  "test_rng_random"
  "test_rng_random.pdb"
  "test_rng_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rng_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
