/// @file
/// Wall-clock timing utilities used by the pipeline phase breakdown
/// (Table III of the paper) and the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace tgl::util {

/// Monotonic wall-clock stopwatch.
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Milliseconds elapsed since construction or the last reset().
    double milliseconds() const { return seconds() * 1e3; }

    /// Nanoseconds elapsed since construction or the last reset().
    std::uint64_t
    nanoseconds() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start_).count());
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Adds elapsed seconds to a target accumulator on scope exit.
class ScopedAccumulator
{
  public:
    explicit ScopedAccumulator(double& target) : target_(target) {}
    ~ScopedAccumulator() { target_ += timer_.seconds(); }

    ScopedAccumulator(const ScopedAccumulator&) = delete;
    ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

  private:
    double& target_;
    Timer timer_;
};

} // namespace tgl::util
