#include "obs/trace.hpp"

#include "obs/perf_events.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace tgl::obs {

namespace {

std::atomic<TraceSession*> g_current{nullptr};

/// Microsecond rendering with fixed sub-microsecond precision; the
/// Trace Event Format allows fractional timestamps.
std::string
format_us(double value)
{
    if (!(value == value) || value < 0.0) {
        return "0";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
    return buffer;
}

/// Arg values are either counter readings (large integers) or derived
/// ratios; keep integers exact and ratios short.
std::string
format_arg_value(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
}

} // namespace

TraceSession::~TraceSession()
{
    stop();
}

TraceSession*
TraceSession::current()
{
    return g_current.load(std::memory_order_acquire);
}

void
TraceSession::start()
{
    origin_ = std::chrono::steady_clock::now();
    TraceSession* expected = nullptr;
    if (!g_current.compare_exchange_strong(expected, this,
                                           std::memory_order_acq_rel)) {
        if (expected == this) {
            return; // already active
        }
        util::fatal("obs::TraceSession: another trace session is "
                    "already active");
    }
}

void
TraceSession::stop()
{
    TraceSession* expected = this;
    g_current.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
}

void
TraceSession::record(std::string name,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end)
{
    record(std::move(name), start, end, {});
}

void
TraceSession::record(std::string name,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end,
                     std::vector<std::pair<std::string, double>> args)
{
    const auto to_us = [this](std::chrono::steady_clock::time_point t) {
        return std::chrono::duration<double, std::micro>(t - origin_)
            .count();
    };
    const std::thread::id self = std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint32_t tid = 0;
    for (; tid < thread_ids_.size(); ++tid) {
        if (thread_ids_[tid] == self) {
            break;
        }
    }
    if (tid == thread_ids_.size()) {
        thread_ids_.push_back(self);
    }
    events_.push_back({std::move(name), to_us(start),
                       to_us(end) - to_us(start), tid + 1,
                       std::move(args)});
}

std::vector<TraceEvent>
TraceSession::events() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::string
TraceSession::to_chrome_json() const
{
    const std::vector<TraceEvent> snapshot = events();
    std::string out =
        "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const TraceEvent& event = snapshot[i];
        out += "    {\"name\": \"" + util::json_escape(event.name) +
               "\", \"cat\": \"tgl\", \"ph\": \"X\", \"ts\": " +
               format_us(event.ts_us) + ", \"dur\": " +
               format_us(event.dur_us) + ", \"pid\": 1, \"tid\": " +
               std::to_string(event.tid);
        if (!event.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t a = 0; a < event.args.size(); ++a) {
                if (a != 0) {
                    out += ", ";
                }
                out += "\"" + util::json_escape(event.args[a].first) +
                       "\": " + format_arg_value(event.args[a].second);
            }
            out += "}";
        }
        out += "}";
        if (i + 1 < snapshot.size()) {
            out += ",";
        }
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
TraceSession::write_chrome_json(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        util::fatal("obs::TraceSession: cannot open " + path +
                    " for writing");
    }
    out << to_chrome_json();
    if (!out) {
        util::fatal("obs::TraceSession: failed writing " + path);
    }
}

Span::Span(std::string_view name) : session_(TraceSession::current())
{
    if (session_ != nullptr) {
        name_.assign(name);
        start_ = std::chrono::steady_clock::now();
    }
}

Span::Span(std::string_view name, std::string_view perf_phase)
    : Span(name)
{
    // The PerfScope exists even when tracing is off: its metrics
    // recording is independent of the trace session.
    perf_ = std::make_unique<PerfScope>(perf_phase);
}

void
Span::arg(std::string_view key, double value)
{
    if (session_ != nullptr) {
        args_.emplace_back(std::string(key), value);
    }
}

Span::~Span()
{
    if (perf_ != nullptr) {
        const PerfSample sample = perf_->close();
        if (session_ != nullptr) {
            for (auto& entry : perf_span_args(sample)) {
                args_.push_back(std::move(entry));
            }
        }
    }
    if (session_ != nullptr && TraceSession::current() == session_) {
        session_->record(std::move(name_), start_,
                         std::chrono::steady_clock::now(),
                         std::move(args_));
    }
}

} // namespace tgl::obs
