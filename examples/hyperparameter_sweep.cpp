/// @file
/// Hyperparameter sweep on a user-chosen dataset — the Fig. 8
/// accuracy-complexity exploration as a reusable tool. Sweeps one
/// hyperparameter (walks | length | dim) while holding the others at
/// the paper's optimum and prints accuracy + front-end runtime per
/// point, making the saturation trade-off visible on your own data.
///
/// Example: ./hyperparameter_sweep --sweep walks --dataset ia-email
#include "tgl/tgl.hpp"

#include <cstdio>
#include <vector>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("hyperparameter_sweep",
                        "accuracy-complexity trade-off explorer (Fig. 8)");
    cli.add_flag("sweep", "walks", "which knob: walks | length | dim");
    cli.add_flag("dataset", "ia-email", "catalog dataset name");
    cli.add_flag("scale", "0.03", "stand-in scale");
    cli.add_flag("seed", "42", "random seed");

    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const std::string sweep = cli.get_string("sweep");
        const gen::Dataset dataset = gen::make_dataset(
            cli.get_string("dataset"), cli.get_double("scale"),
            static_cast<std::uint64_t>(cli.get_int("seed")));

        std::vector<unsigned> values;
        if (sweep == "walks") {
            values = {1, 2, 4, 6, 8, 10, 14, 20};
        } else if (sweep == "length") {
            values = {2, 3, 4, 5, 6, 8, 10};
        } else if (sweep == "dim") {
            values = {1, 2, 4, 8, 16, 32, 64, 128};
        } else {
            util::fatal("--sweep must be walks, length, or dim");
        }

        std::printf("== sweeping %s on %s ==\n", sweep.c_str(),
                    dataset.name.c_str());
        std::printf("%8s %10s %10s %12s %12s\n", sweep.c_str(),
                    "accuracy", "auc", "walk+w2v(s)", "total(s)");

        for (const unsigned value : values) {
            core::PipelineConfig config;
            config.walk.seed =
                static_cast<std::uint64_t>(cli.get_int("seed"));
            config.sgns.seed = config.walk.seed;
            config.classifier.max_epochs = 15;
            if (sweep == "walks") {
                config.walk.walks_per_node = value;
            } else if (sweep == "length") {
                config.walk.max_length = value;
            } else {
                config.sgns.dim = value;
            }
            const core::PipelineResult result =
                core::run_pipeline(dataset, config);
            std::printf("%8u %10.4f %10.4f %12.3f %12.3f\n", value,
                        result.task.test_accuracy, result.task.test_auc,
                        result.times.random_walk + result.times.word2vec,
                        result.times.total());
        }
        std::printf("\npaper's takeaway: accuracy saturates near "
                    "walks=10, length=6, dim=8 while runtime keeps "
                    "growing — pick the knee.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
