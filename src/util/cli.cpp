#include "util/cli.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <cstdio>

namespace tgl::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
CliParser::add_flag(const std::string& name, const std::string& default_value,
                    const std::string& help)
{
    flags_[name] = Flag{default_value, help, false};
}

void
CliParser::add_switch(const std::string& name, const std::string& help)
{
    flags_[name] = Flag{"0", help, true};
}

bool
CliParser::parse(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(help().c_str(), stdout);
            return false;
        }
        if (!starts_with(arg, "--")) {
            positional_.emplace_back(arg);
            continue;
        }
        arg.remove_prefix(2);
        std::string name;
        std::string value;
        bool has_value = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string_view::npos) {
            name = std::string(arg.substr(0, eq));
            value = std::string(arg.substr(eq + 1));
            has_value = true;
        } else {
            name = std::string(arg);
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) {
            fatal(strcat("unknown flag --", name, " (see --help)"));
        }
        if (it->second.is_switch) {
            it->second.value = has_value ? value : "1";
        } else if (has_value) {
            it->second.value = value;
        } else {
            if (i + 1 >= argc) {
                fatal(strcat("flag --", name, " expects a value"));
            }
            it->second.value = argv[++i];
        }
    }
    return true;
}

const CliParser::Flag&
CliParser::find(const std::string& name) const
{
    auto it = flags_.find(name);
    if (it == flags_.end()) {
        fatal(strcat("flag --", name, " was never registered"));
    }
    return it->second;
}

std::string
CliParser::get_string(const std::string& name) const
{
    return find(name).value;
}

long long
CliParser::get_int(const std::string& name) const
{
    return parse_int(find(name).value);
}

double
CliParser::get_double(const std::string& name) const
{
    return parse_double(find(name).value);
}

bool
CliParser::get_switch(const std::string& name) const
{
    const std::string& value = find(name).value;
    return value == "1" || value == "true" || value == "yes";
}

std::string
CliParser::help() const
{
    std::string text = program_ + " — " + description_ + "\n\nFlags:\n";
    for (const auto& [name, flag] : flags_) {
        text += "  --" + name;
        if (!flag.is_switch) {
            text += " <value> (default: " + flag.value + ")";
        }
        text += "\n      " + flag.help + "\n";
    }
    return text;
}

} // namespace tgl::util
