/// Unit tests for util/string_util.
#include "util/string_util.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace tgl::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nhello\r "), "hello");
}

TEST(Trim, EmptyAndAllWhitespace)
{
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   \t  "), "");
}

TEST(Trim, NoWhitespaceIsIdentity)
{
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Split, BasicWhitespace)
{
    const auto fields = split("1 2\t3");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "1");
    EXPECT_EQ(fields[1], "2");
    EXPECT_EQ(fields[2], "3");
}

TEST(Split, CollapsesRepeatedDelimiters)
{
    const auto fields = split("a   b\t\tc ");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[2], "c");
}

TEST(Split, CustomDelimiters)
{
    const auto fields = split("a,b;c", ",;");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[1], "b");
}

TEST(Split, EmptyInput)
{
    EXPECT_TRUE(split("").empty());
    EXPECT_TRUE(split("   ").empty());
}

TEST(StartsWith, Basics)
{
    EXPECT_TRUE(starts_with("--flag", "--"));
    EXPECT_FALSE(starts_with("-f", "--"));
    EXPECT_TRUE(starts_with("abc", ""));
    EXPECT_FALSE(starts_with("", "a"));
}

TEST(ParseInt, ValidValues)
{
    EXPECT_EQ(parse_int("42"), 42);
    EXPECT_EQ(parse_int("-7"), -7);
    EXPECT_EQ(parse_int("  123 "), 123);
    EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, RejectsGarbage)
{
    EXPECT_THROW(parse_int("abc"), Error);
    EXPECT_THROW(parse_int("12x"), Error);
    EXPECT_THROW(parse_int(""), Error);
    EXPECT_THROW(parse_int("1.5"), Error);
}

TEST(ParseDouble, ValidValues)
{
    EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
    EXPECT_DOUBLE_EQ(parse_double("-0.5"), -0.5);
    EXPECT_DOUBLE_EQ(parse_double("1e3"), 1000.0);
}

TEST(ParseDouble, RejectsGarbage)
{
    EXPECT_THROW(parse_double("x"), Error);
    EXPECT_THROW(parse_double("1.2.3"), Error);
    EXPECT_THROW(parse_double(""), Error);
}

TEST(FormatFixed, Precision)
{
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(2.0, 0), "2");
    EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(FormatCount, ThousandsSeparators)
{
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(1000), "1,000");
    EXPECT_EQ(format_count(1234567), "1,234,567");
    EXPECT_EQ(format_count(87274), "87,274");
}

TEST(Strcat, MixedTypes)
{
    EXPECT_EQ(strcat("n=", 4, ", x=", 1.5), "n=4, x=1.5");
    EXPECT_EQ(strcat(), "");
}

} // namespace
} // namespace tgl::util
