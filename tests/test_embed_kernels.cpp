/// Tests for the SGNS kernel layer: the SigmoidTable out-of-bounds
/// regression, the simd kernels against the scalar reference loops,
/// backend parsing/resolution, the batched per-pair RNG stream
/// derivation, and the scalar-vs-simd training equivalence battery
/// (backends agree in law — link-prediction-grade separation — not
/// bytes).
#include "embed/kernels.hpp"

#include "embed/batched_trainer.hpp"
#include "embed/sigmoid_table.hpp"
#include "embed/trainer.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <string_view>
#include <vector>

namespace tgl::embed {
namespace {

constexpr graph::NodeId kNumNodes = 20;

/// Draw-count scale factor for the nightly high-sample rerun:
/// TGL_EQUIV_DRAWS=10 multiplies every statistical sample size by 10.
int
equiv_scale()
{
    const char* env = std::getenv("TGL_EQUIV_DRAWS");
    if (env == nullptr) {
        return 1;
    }
    const long mult = std::strtol(env, nullptr, 10);
    return mult > 1 ? static_cast<int>(mult) : 1;
}

/// Corpus with two disjoint "communities" (0-9 and 10-19): sentences
/// only ever mix nodes within one community.
walk::Corpus
two_community_corpus(std::uint64_t seed, std::size_t sentences = 800)
{
    rng::Random random(seed);
    walk::Corpus corpus;
    std::vector<graph::NodeId> sentence;
    for (std::size_t s = 0; s < sentences; ++s) {
        const graph::NodeId base = (s % 2 == 0) ? 0 : 10;
        sentence.clear();
        for (int i = 0; i < 6; ++i) {
            sentence.push_back(
                base + static_cast<graph::NodeId>(random.next_index(10)));
        }
        corpus.add_walk(sentence);
    }
    return corpus;
}

/// Mean intra-community minus inter-community cosine similarity; a
/// well-trained embedding gives a clearly positive margin.
double
separation_margin(const Embedding& embedding)
{
    double intra = 0.0, inter = 0.0;
    int intra_count = 0, inter_count = 0;
    for (graph::NodeId u = 0; u < kNumNodes; ++u) {
        for (graph::NodeId v = u + 1; v < kNumNodes; ++v) {
            const bool same = (u < 10) == (v < 10);
            const double cos = embedding.cosine(u, v);
            if (same) {
                intra += cos;
                ++intra_count;
            } else {
                inter += cos;
                ++inter_count;
            }
        }
    }
    return intra / intra_count - inter / inter_count;
}

/// Every trained coordinate must be finite — NaN/inf poisoning is what
/// the saturation law exists to prevent.
bool
all_finite(const Embedding& embedding)
{
    for (float v : embedding.data()) {
        if (!std::isfinite(v)) {
            return false;
        }
    }
    return true;
}

SgnsConfig
fast_config(kernels::SgnsBackend backend)
{
    SgnsConfig config;
    config.dim = 8;
    config.window = 3;
    config.negatives = 4;
    config.epochs = 8;
    config.seed = 5;
    config.num_threads = 2;
    config.backend = backend;
    return config;
}

// ---------------------------------------------------------------------
// Bugfix 1 regression: SigmoidTable out-of-bounds read at the +6 edge.
// For x just below kMaxExp, the f32 sum (x + 6.0f) rounds up to exactly
// 12.0f and the classic word2vec index expression lands one past the
// table. Pre-fix (no clamp in index_for) this test reads values_[1024]
// and fails under AddressSanitizer.

TEST(SigmoidTable, NoOutOfBoundsReadJustInsideTheSaturationEdges)
{
    const SigmoidTable& table = SigmoidTable::instance();
    // Hammer a run of representable floats approaching each edge from
    // inside; every one must hit a valid slot and stay in (0, 1).
    float x = std::nextafter(SigmoidTable::kMaxExp, 0.0f);
    for (int i = 0; i < 64; ++i) {
        ASSERT_LT(SigmoidTable::index_for(x),
                  static_cast<std::size_t>(SigmoidTable::kTableSize));
        const float y = table(x);
        EXPECT_GT(y, 0.5f);
        EXPECT_LE(y, 1.0f);
        x = std::nextafter(x, 0.0f);
    }
    x = std::nextafter(-SigmoidTable::kMaxExp, 0.0f);
    for (int i = 0; i < 64; ++i) {
        ASSERT_LT(SigmoidTable::index_for(x),
                  static_cast<std::size_t>(SigmoidTable::kTableSize));
        const float y = table(x);
        EXPECT_GE(y, 0.0f);
        EXPECT_LT(y, 0.5f);
        x = std::nextafter(x, 0.0f);
    }
}

TEST(SigmoidTable, SaturatesSymmetricallyAtExactlySix)
{
    const SigmoidTable& table = SigmoidTable::instance();
    EXPECT_EQ(table(SigmoidTable::kMaxExp), 1.0f);
    EXPECT_EQ(table(-SigmoidTable::kMaxExp), 0.0f);
    EXPECT_EQ(table(100.0f), 1.0f);
    EXPECT_EQ(table(-100.0f), 0.0f);
    EXPECT_EQ(table(std::numeric_limits<float>::infinity()), 1.0f);
    EXPECT_EQ(table(-std::numeric_limits<float>::infinity()), 0.0f);
}

TEST(SigmoidTable, NanSaturatesInsteadOfIndexing)
{
    // Casting NaN to int is UB; the table must route NaN through the
    // saturation branch (a diverged model yields garbage loss, not an
    // out-of-bounds read).
    const SigmoidTable& table = SigmoidTable::instance();
    EXPECT_EQ(table(std::numeric_limits<float>::quiet_NaN()), 1.0f);
}

TEST(SigmoidTable, MatchesExactSigmoidInsideTheTable)
{
    const SigmoidTable& table = SigmoidTable::instance();
    for (float x = -5.9f; x < 5.9f; x += 0.37f) {
        const float expected = 1.0f / (1.0f + std::exp(-x));
        EXPECT_NEAR(table(x), expected, 0.01f) << "x = " << x;
    }
}

// ---------------------------------------------------------------------
// Kernel-level agreement: the simd dot/axpy/sigmoid_batch kernels
// against the scalar reference ops, across dims that exercise full
// vectors, tails, and sub-vector sizes.

std::vector<float>
random_row(rng::Random& random, unsigned dim)
{
    std::vector<float> row(dim);
    for (float& v : row) {
        v = static_cast<float>(random.next_double()) * 2.0f - 1.0f;
    }
    return row;
}

TEST(SgnsKernels, DotMatchesScalarReference)
{
    const auto& scalar = kernels::scalar_sgns_ops();
    const auto& simd = kernels::simd_sgns_ops();
    rng::Random random(17);
    for (unsigned dim : {1u, 3u, 7u, 8u, 9u, 16u, 31u, 32u, 128u, 131u}) {
        const auto a = random_row(random, dim);
        const auto b = random_row(random, dim);
        const float reference = scalar.dot(a.data(), b.data(), dim);
        const float vectorized = simd.dot(a.data(), b.data(), dim);
        // The simd reduction reassociates; dim * eps covers it easily.
        EXPECT_NEAR(vectorized, reference, 1e-4f * dim) << "dim " << dim;
    }
}

TEST(SgnsKernels, AxpyMatchesScalarReference)
{
    const auto& scalar = kernels::scalar_sgns_ops();
    const auto& simd = kernels::simd_sgns_ops();
    rng::Random random(19);
    for (unsigned dim : {1u, 5u, 8u, 13u, 32u, 128u, 131u}) {
        const auto x = random_row(random, dim);
        auto y_scalar = random_row(random, dim);
        auto y_simd = y_scalar;
        scalar.axpy(0.3f, x.data(), y_scalar.data(), dim);
        simd.axpy(0.3f, x.data(), y_simd.data(), dim);
        for (unsigned i = 0; i < dim; ++i) {
            // No reassociation in axpy: fused-multiply-add is the only
            // permitted difference.
            EXPECT_NEAR(y_simd[i], y_scalar[i], 1e-6f)
                << "dim " << dim << " lane " << i;
        }
    }
}

TEST(SgnsKernels, SigmoidBatchMatchesTableExactlyIncludingSpecials)
{
    const SigmoidTable& table = SigmoidTable::instance();
    const auto& simd = kernels::simd_sgns_ops();
    std::vector<float> inputs = {
        0.0f,
        1.5f,
        -2.25f,
        SigmoidTable::kMaxExp,
        -SigmoidTable::kMaxExp,
        std::nextafter(SigmoidTable::kMaxExp, 0.0f),
        std::nextafter(-SigmoidTable::kMaxExp, 0.0f),
        100.0f,
        -100.0f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        5.999999f,
        -5.999999f,
    };
    rng::Random random(23);
    for (int i = 0; i < 200; ++i) {
        inputs.push_back(
            static_cast<float>(random.next_double()) * 16.0f - 8.0f);
    }
    std::vector<float> out(inputs.size());
    simd.sigmoid_batch(inputs.data(), out.data(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        // Exact: both sides read the same LUT under the same clamped
        // saturation law (the gather must not differ from the scalar
        // path even at the edges).
        EXPECT_EQ(out[i], table(inputs[i])) << "x = " << inputs[i];
    }
}

TEST(SgnsKernels, UpdateTargetsMatchesScalarReferenceInLaw)
{
    const auto& scalar = kernels::scalar_sgns_ops();
    const auto& simd = kernels::simd_sgns_ops();
    constexpr unsigned dim = 32;
    rng::Random random(29);
    const auto context0 = random_row(random, dim);
    std::vector<std::vector<float>> targets0;
    float labels[kernels::kSgnsTargetChunk] = {1.0f, 0.0f, 0.0f, 0.0f,
                                               0.0f, 1.0f, 0.0f, 0.0f};
    for (std::size_t t = 0; t < kernels::kSgnsTargetChunk; ++t) {
        targets0.push_back(random_row(random, dim));
    }

    const auto run = [&](const kernels::SgnsBackendOps& ops,
                         std::size_t count) {
        auto context = context0;
        auto targets = targets0;
        std::vector<float*> rows;
        for (auto& row : targets) {
            rows.push_back(row.data());
        }
        std::vector<float> scratch(dim, 0.0f);
        ops.update_targets(context.data(), rows.data(), labels, count, dim,
                           0.05f, scratch.data());
        ops.axpy(1.0f, scratch.data(), context.data(), dim);
        std::vector<float> flat = context;
        for (const auto& row : targets) {
            flat.insert(flat.end(), row.begin(), row.end());
        }
        return flat;
    };

    for (std::size_t count : {std::size_t{1}, std::size_t{3},
                              kernels::kSgnsTargetChunk}) {
        const auto a = run(scalar, count);
        const auto b = run(simd, count);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_NEAR(a[i], b[i], 1e-4f)
                << "count " << count << " element " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Backend selection plumbing.

TEST(SgnsKernels, ParseBackendRoundTrips)
{
    using kernels::SgnsBackend;
    EXPECT_EQ(kernels::parse_sgns_backend("auto"), SgnsBackend::kAuto);
    EXPECT_EQ(kernels::parse_sgns_backend("scalar"), SgnsBackend::kScalar);
    EXPECT_EQ(kernels::parse_sgns_backend("simd"), SgnsBackend::kSimd);
    EXPECT_FALSE(kernels::parse_sgns_backend("gpu").has_value());
    EXPECT_FALSE(kernels::parse_sgns_backend("").has_value());
    EXPECT_STREQ(kernels::sgns_backend_name(SgnsBackend::kAuto), "auto");
    EXPECT_STREQ(kernels::sgns_backend_name(SgnsBackend::kScalar),
                 "scalar");
    EXPECT_STREQ(kernels::sgns_backend_name(SgnsBackend::kSimd), "simd");
}

TEST(SgnsKernels, ResolutionHonorsVectorizedAndBackend)
{
    SgnsConfig config;
    config.vectorized = false;
    EXPECT_STREQ(sgns_kernel_ops(config).name, "scalar-modeled");

    config.vectorized = true;
    config.backend = kernels::SgnsBackend::kScalar;
    EXPECT_STREQ(sgns_kernel_ops(config).name, "scalar");

    config.backend = kernels::SgnsBackend::kSimd;
    EXPECT_STREQ(sgns_kernel_ops(config).name, "simd");

    config.backend = kernels::SgnsBackend::kAuto;
    const char* resolved = sgns_kernel_ops(config).name;
    if (std::string_view(kernels::simd_sgns_isa()) == "scalar") {
        EXPECT_STREQ(resolved, "scalar");
    } else {
        EXPECT_STREQ(resolved, "simd");
    }
}

TEST(SgnsKernels, SimdBackendRequiresVectorizedModel)
{
    SgnsConfig config = fast_config(kernels::SgnsBackend::kSimd);
    config.vectorized = false;
    EXPECT_THROW(train_sgns(two_community_corpus(3), kNumNodes, config),
                 util::Error);
}

// ---------------------------------------------------------------------
// Bugfix 3 regression: per-pair RNG streams in the batched trainer.
// The old derivation packed `(epoch * num_sentences + s) << 8 |
// (pos & 0xff)` and added the in-batch pair index: the `& 0xff`
// wrapped on walks >= 256 tokens and the addition aliased adjacent
// pairs. The fixed scheme hands every pair one value of a global
// monotone counter, so streams are unique across positions, batches,
// and epochs by construction — asserted here on a corpus built to
// trigger both historic collision sources.

TEST(SgnsKernels, BatchPairStreamsUniqueAcrossLongWalksBatchesAndEpochs)
{
    walk::Corpus corpus;
    // One 300-token walk (wraps the historic `pos & 0xff`) plus a
    // handful of short walks to span several batches.
    std::vector<graph::NodeId> long_walk;
    for (int i = 0; i < 300; ++i) {
        long_walk.push_back(static_cast<graph::NodeId>(i % kNumNodes));
    }
    corpus.add_walk(long_walk);
    const std::vector<graph::NodeId> short_walk = {0, 1, 2, 3, 4, 5};
    for (int s = 0; s < 6; ++s) {
        corpus.add_walk(short_walk);
    }
    const Vocab vocab(corpus);

    SgnsConfig sgns;
    sgns.window = 3;
    sgns.seed = 9;

    std::uint64_t pair_counter = 0;
    std::vector<WordId> words;
    std::vector<detail::BatchPair> pairs;
    std::set<std::uint64_t> streams;
    std::uint64_t total_pairs = 0;
    for (unsigned epoch = 0; epoch < 2; ++epoch) {
        // Batch size 2: the long walk and a short one, then the rest.
        for (std::size_t begin = 0; begin < corpus.num_walks();
             begin += 2) {
            const std::size_t end =
                std::min(begin + 2, corpus.num_walks());
            detail::assemble_batch_pairs(corpus, vocab, sgns, epoch,
                                         begin, end, pair_counter, words,
                                         pairs);
            for (const detail::BatchPair& pair : pairs) {
                EXPECT_TRUE(streams.insert(pair.stream).second)
                    << "duplicate stream " << pair.stream << " in epoch "
                    << epoch;
            }
            total_pairs += pairs.size();
        }
    }
    EXPECT_EQ(pair_counter, total_pairs);
    EXPECT_EQ(streams.size(), total_pairs);
    EXPECT_GT(total_pairs, 1000u); // the long walk alone yields > 1k
}

// ---------------------------------------------------------------------
// Equivalence battery (`ctest -L equivalence`): scalar and simd
// backends must agree in law — both train embeddings that separate the
// two communities to link-prediction-grade margins and stay finite.
// TGL_EQUIV_DRAWS scales the number of independent seeds.

TEST(SgnsKernels, EquivalenceHogwildScalarVsSimd)
{
    const int seeds = 2 * equiv_scale();
    for (int seed = 1; seed <= seeds; ++seed) {
        const walk::Corpus corpus =
            two_community_corpus(static_cast<std::uint64_t>(seed));
        const Embedding scalar = train_sgns(
            corpus, kNumNodes, fast_config(kernels::SgnsBackend::kScalar));
        const Embedding simd = train_sgns(
            corpus, kNumNodes, fast_config(kernels::SgnsBackend::kSimd));
        EXPECT_TRUE(all_finite(scalar)) << "seed " << seed;
        EXPECT_TRUE(all_finite(simd)) << "seed " << seed;
        const double scalar_margin = separation_margin(scalar);
        const double simd_margin = separation_margin(simd);
        EXPECT_GT(scalar_margin, 0.5) << "seed " << seed;
        EXPECT_GT(simd_margin, 0.5) << "seed " << seed;
        EXPECT_NEAR(scalar_margin, simd_margin, 0.35) << "seed " << seed;
    }
}

TEST(SgnsKernels, EquivalenceBatchedScalarVsSimd)
{
    const int seeds = 2 * equiv_scale();
    for (int seed = 1; seed <= seeds; ++seed) {
        const walk::Corpus corpus =
            two_community_corpus(static_cast<std::uint64_t>(seed));
        BatchedSgnsConfig config;
        config.batch_size = 64;
        config.sgns = fast_config(kernels::SgnsBackend::kScalar);
        const Embedding scalar =
            train_sgns_batched(corpus, kNumNodes, config);
        config.sgns.backend = kernels::SgnsBackend::kSimd;
        const Embedding simd =
            train_sgns_batched(corpus, kNumNodes, config);
        EXPECT_TRUE(all_finite(scalar)) << "seed " << seed;
        EXPECT_TRUE(all_finite(simd)) << "seed " << seed;
        const double scalar_margin = separation_margin(scalar);
        const double simd_margin = separation_margin(simd);
        EXPECT_GT(scalar_margin, 0.5) << "seed " << seed;
        EXPECT_GT(simd_margin, 0.5) << "seed " << seed;
        EXPECT_NEAR(scalar_margin, simd_margin, 0.35) << "seed " << seed;
    }
}

} // namespace
} // namespace tgl::embed
