/// @file
/// Multi-class node classification — the paper's second downstream
/// task (e.g. inferring professional roles in a social network).
///
/// Uses a labeled catalog stand-in (dblp3 / dblp5 / brain) or a user
/// `.wel` graph plus a label file (one `node_id label` line per node).
///
/// Examples:
///   ./node_classification --dataset dblp5 --scale 0.5
///   ./node_classification --input g.wel --labels labels.tsv --classes 4
#include "tgl/tgl.hpp"

#include <cstdio>
#include <fstream>

namespace {

std::vector<std::uint32_t>
load_labels(const std::string& path, tgl::graph::NodeId num_nodes)
{
    using namespace tgl;
    std::ifstream in(path);
    if (!in) {
        util::fatal("cannot open label file: " + path);
    }
    std::vector<std::uint32_t> labels(num_nodes, 0);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto trimmed = util::trim(line);
        if (trimmed.empty() || trimmed.front() == '#') {
            continue;
        }
        const auto fields = util::split(trimmed);
        if (fields.size() < 2) {
            util::fatal(util::strcat("label file line ", line_number,
                                     ": expected 'node label'"));
        }
        const long long node = util::parse_int(fields[0]);
        const long long label = util::parse_int(fields[1]);
        if (node < 0 || node >= static_cast<long long>(num_nodes) ||
            label < 0) {
            util::fatal(util::strcat("label file line ", line_number,
                                     ": out of range"));
        }
        labels[static_cast<std::size_t>(node)] =
            static_cast<std::uint32_t>(label);
    }
    return labels;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("node_classification",
                        "temporal-walk node classification pipeline");
    cli.add_flag("input", "", ".wel edge list (needs --labels too)");
    cli.add_flag("labels", "", "label file: 'node_id label' per line");
    cli.add_flag("classes", "0", "number of classes (with --input)");
    cli.add_flag("dataset", "dblp5",
                 "catalog stand-in: dblp3 | dblp5 | brain");
    cli.add_flag("scale", "0.5", "stand-in scale vs the paper's size");
    cli.add_flag("walks", "10", "K: walks per node");
    cli.add_flag("length", "6", "N: max walk length");
    cli.add_flag("dim", "8", "d: embedding dimension");
    cli.add_flag("epochs", "30", "classifier training epochs");
    cli.add_flag("seed", "42", "random seed");

    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }

        graph::EdgeList edges;
        std::vector<std::uint32_t> labels;
        std::uint32_t num_classes = 0;
        std::string name;
        if (const std::string input = cli.get_string("input");
            !input.empty()) {
            edges = graph::load_wel_file(input);
            labels = load_labels(cli.get_string("labels"),
                                 edges.num_nodes());
            num_classes =
                static_cast<std::uint32_t>(cli.get_int("classes"));
            if (num_classes == 0) {
                util::fatal("--classes is required with --input");
            }
            name = input;
        } else {
            gen::Dataset dataset = gen::make_dataset(
                cli.get_string("dataset"), cli.get_double("scale"),
                static_cast<std::uint64_t>(cli.get_int("seed")));
            if (dataset.task != gen::Task::kNodeClassification) {
                util::fatal("dataset is a link-prediction dataset; use "
                            "./link_prediction");
            }
            edges = std::move(dataset.edges);
            labels = std::move(dataset.labels);
            num_classes = dataset.num_classes;
            name = dataset.name;
        }
        std::printf(
            "== node classification on %s: %u nodes, %zu edges, "
            "%u classes ==\n",
            name.c_str(), edges.num_nodes(), edges.size(), num_classes);

        core::PipelineConfig config;
        config.walk.walks_per_node =
            static_cast<unsigned>(cli.get_int("walks"));
        config.walk.max_length =
            static_cast<unsigned>(cli.get_int("length"));
        config.walk.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        config.sgns.dim = static_cast<unsigned>(cli.get_int("dim"));
        config.sgns.seed = config.walk.seed;
        config.classifier.max_epochs =
            static_cast<unsigned>(cli.get_int("epochs"));

        const core::PipelineResult result =
            core::run_node_classification_pipeline(edges, labels,
                                                   num_classes, config);

        std::printf("test accuracy : %.4f (chance %.4f)\n",
                    result.task.test_accuracy, 1.0 / num_classes);
        std::printf("test macro-F1 : %.4f\n", result.task.test_macro_f1);
        std::printf("valid accuracy: %.4f\n", result.task.valid_accuracy);
        std::printf("%s\n", core::format_phase_times(result.times).c_str());
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
