#include "serve/client.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tgl::serve {

namespace {

void
write_all_or_throw(int fd, const std::uint8_t* data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        util::fatal(util::strcat("serve client: send(): ",
                                 std::strerror(errno)));
    }
}

/// Read exactly @p size bytes; false on clean EOF at a frame boundary.
bool
read_all(int fd, std::uint8_t* out, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, out + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got == 0) {
                return false;
            }
            util::fatal("serve client: connection closed mid-frame");
        }
        if (errno == EINTR) {
            continue;
        }
        // The server may reset the connection right after (or instead
        // of) an error response; treat it like a close for raw probes.
        if (errno == ECONNRESET && got == 0) {
            return false;
        }
        util::fatal(util::strcat("serve client: recv(): ",
                                 std::strerror(errno)));
    }
    return true;
}

} // namespace

Client::Client(const std::string& host, std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        util::fatal(util::strcat("serve client: socket(): ",
                                 std::strerror(errno)));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        util::fatal(util::strcat("serve client: bad host ", host));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        util::fatal(util::strcat("serve client: cannot connect to ", host,
                                 ":", port, ": ", std::strerror(err)));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::send_frame(const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(4 + payload.size());
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    write_all_or_throw(fd_, frame.data(), frame.size());
}

Response
Client::read_response()
{
    Response response;
    std::uint8_t header[4];
    if (!read_all(fd_, header, sizeof(header))) {
        response.status = Status::kServerError;
        return response; // closed without a response
    }
    std::uint32_t length = 0;
    std::memcpy(&length, header, sizeof(length));
    if (length == 0) {
        util::fatal("serve client: zero-length response frame");
    }
    std::vector<std::uint8_t> payload(length);
    if (!read_all(fd_, payload.data(), payload.size())) {
        util::fatal("serve client: truncated response frame");
    }
    response.status = static_cast<Status>(payload[0]);
    response.body.assign(payload.begin() + 1, payload.end());
    return response;
}

Response
Client::roundtrip(const std::vector<std::uint8_t>& payload)
{
    send_frame(payload);
    return read_response();
}

Response
Client::send_raw(const std::vector<std::uint8_t>& bytes)
{
    write_all_or_throw(fd_, bytes.data(), bytes.size());
    return read_response();
}

namespace {

/// Unwrap a kOk response or throw with the server's reason.
const Response&
expect_ok(const Response& response, const char* what)
{
    if (response.status != Status::kOk) {
        util::fatal(util::strcat("serve client: ", what, " failed (status ",
                                 static_cast<unsigned>(response.status),
                                 "): ", response.body_text()));
    }
    return response;
}

} // namespace

PingInfo
Client::ping()
{
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(Op::kPing));
    const Response response = roundtrip(payload);
    expect_ok(response, "ping");
    PingInfo info;
    std::size_t at = 0;
    std::uint8_t quant = 0;
    if (!get_u64(response.body.data(), response.body.size(), at,
                 info.epoch) ||
        !get_u64(response.body.data(), response.body.size(), at,
                 info.fingerprint) ||
        !get_u32(response.body.data(), response.body.size(), at,
                 info.num_nodes) ||
        !get_u32(response.body.data(), response.body.size(), at,
                 info.dim) ||
        !get_u8(response.body.data(), response.body.size(), at, quant)) {
        util::fatal("serve client: short ping response");
    }
    info.quant = static_cast<QuantMode>(quant);
    return info;
}

std::vector<float>
Client::link_scores(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(1 + 4 + pairs.size() * 8);
    put_u8(payload, static_cast<std::uint8_t>(Op::kLinkScore));
    put_u32(payload, static_cast<std::uint32_t>(pairs.size()));
    for (const auto& [u, v] : pairs) {
        put_u32(payload, u);
        put_u32(payload, v);
    }
    const Response response = roundtrip(payload);
    expect_ok(response, "link-score");
    if (response.body.size() != pairs.size() * sizeof(float)) {
        util::fatal("serve client: link-score response size mismatch");
    }
    std::vector<float> scores(pairs.size());
    std::size_t at = 0;
    for (float& score : scores) {
        get_f32(response.body.data(), response.body.size(), at, score);
    }
    return scores;
}

std::vector<std::pair<std::uint32_t, float>>
Client::knn(std::uint32_t node, std::uint32_t k)
{
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(Op::kKnn));
    put_u32(payload, node);
    put_u32(payload, k);
    const Response response = roundtrip(payload);
    expect_ok(response, "knn");
    std::size_t at = 0;
    std::uint32_t count = 0;
    if (!get_u32(response.body.data(), response.body.size(), at, count) ||
        response.body.size() != 4 + std::size_t{count} * 8) {
        util::fatal("serve client: knn response size mismatch");
    }
    std::vector<std::pair<std::uint32_t, float>> neighbors(count);
    for (auto& [id, score] : neighbors) {
        get_u32(response.body.data(), response.body.size(), at, id);
        get_f32(response.body.data(), response.body.size(), at, score);
    }
    return neighbors;
}

std::string
Client::stats_json()
{
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(Op::kStats));
    const Response response = roundtrip(payload);
    expect_ok(response, "stats");
    return response.body_text();
}

std::string
Client::metrics_text()
{
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(Op::kMetricsText));
    const Response response = roundtrip(payload);
    expect_ok(response, "metrics-text");
    return response.body_text();
}

std::string
Client::timeseries_json()
{
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(Op::kTimeseries));
    const Response response = roundtrip(payload);
    expect_ok(response, "timeseries");
    return response.body_text();
}

std::uint64_t
Client::reload(const std::string& path)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(1 + path.size());
    put_u8(payload, static_cast<std::uint8_t>(Op::kReload));
    payload.insert(payload.end(), path.begin(), path.end());
    const Response response = roundtrip(payload);
    expect_ok(response, "reload");
    std::size_t at = 0;
    std::uint64_t epoch = 0;
    if (!get_u64(response.body.data(), response.body.size(), at, epoch)) {
        util::fatal("serve client: short reload response");
    }
    return epoch;
}

} // namespace tgl::serve
