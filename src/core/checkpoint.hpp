/// @file
/// Crash-safe checkpoint/resume for the four-phase pipeline.
///
/// Each phase's artifact — the walk corpus after RW-P1, the embedding
/// after RW-P2, the trained classifier after RW-P4 — is persisted in
/// the CRC32-checksummed artifact container (util/artifact_io.hpp),
/// keyed by a fingerprint of everything that produced it: the input
/// edges, the phase's configuration, and all upstream fingerprints. On
/// restart the pipeline reloads whatever artifacts match the current
/// fingerprints and recomputes only what is missing, stale (the
/// configuration or input changed), or corrupt (checksum mismatch).
/// Stale and corrupt checkpoints are regenerated silently — a damaged
/// checkpoint directory can never make a run fail, only make it slower.
#pragma once

#include "core/data_prep.hpp"
#include "embed/embedding.hpp"
#include "embed/sgns_model.hpp"
#include "graph/edge_list.hpp"
#include "nn/mlp.hpp"
#include "util/artifact_io.hpp"
#include "walk/config.hpp"
#include "walk/corpus.hpp"
#include "walk/transition_cache.hpp"

#include <atomic>
#include <cstdint>
#include <string>

namespace tgl::core {

struct ClassifierConfig; // core/link_prediction.hpp (includes this file)

/// FNV-1a over the full edge list (count, endpoints, timestamps) — the
/// root of the checkpoint fingerprint chain.
std::uint64_t fingerprint_edges(const graph::EdgeList& edges);

/// Fingerprint of corpus shard @p index in a partition of
/// @p num_shards: the walk fingerprint plus the shard's position, so
/// changing the walk inputs OR the shard count invalidates every
/// shard (ranges move when the partition changes).
std::uint64_t shard_fingerprint(std::uint64_t walk_fingerprint,
                                std::size_t index,
                                std::size_t num_shards);

/// Fold every semantically meaningful field of a configuration into a
/// fingerprint, field by field (never whole structs — padding bytes are
/// indeterminate). Fields that cannot change the produced artifact
/// (e.g. thread counts of deterministic phases) are excluded.
void mix_config(util::Fingerprint& fp, const walk::WalkConfig& config);
void mix_config(util::Fingerprint& fp, const embed::SgnsConfig& config);
void mix_config(util::Fingerprint& fp, const SplitConfig& config);
void mix_config(util::Fingerprint& fp, const ClassifierConfig& config);

/// Stores and restores phase artifacts in one directory.
///
/// load_* returns false — never throws, except to propagate
/// cooperative cancellation — when the artifact is missing, was
/// produced by a different configuration (fingerprint mismatch), or
/// fails container validation (truncation, corruption); the caller
/// regenerates and store_* replaces the file atomically. A load that
/// fails container validation additionally quarantines the damaged
/// file (rename to `<name>.corrupt.<ts>`) so the next run does not
/// trip over it, and transient I/O failures are retried with bounded
/// backoff before the load is declared failed.
class CheckpointManager
{
  public:
    /// Creates @p directory (and parents) when missing; throws
    /// tgl::util::Error when that fails.
    explicit CheckpointManager(std::string directory);

    const std::string& directory() const { return directory_; }

    std::string corpus_path() const;
    std::string embedding_path() const;
    std::string classifier_path(const std::string& name) const;
    std::string transition_cache_path() const;

    bool load_corpus(std::uint64_t fingerprint, walk::Corpus& out) const;
    void store_corpus(std::uint64_t fingerprint,
                      const walk::Corpus& corpus) const;

    /// Corpus-shard artifacts for the overlapped front end: each shard
    /// is its own file (corpus_shard_<i>.tgla) in the corpus container
    /// format, so a run killed mid-walk resumes producing only the
    /// missing shards. Key with shard_fingerprint().
    std::string corpus_shard_path(std::size_t index) const;
    bool load_corpus_shard(std::uint64_t fingerprint, std::size_t index,
                           walk::Corpus& out) const;
    void store_corpus_shard(std::uint64_t fingerprint, std::size_t index,
                            const walk::Corpus& shard) const;

    /// The prefix-CDF transition cache is a derived artifact (O(E)
    /// doubles, O(E·exp) to rebuild) keyed by graph + transition kind
    /// only — reseeding the walk reuses it.
    bool load_transition_cache(std::uint64_t fingerprint,
                               walk::TransitionCache& out) const;
    void store_transition_cache(std::uint64_t fingerprint,
                                const walk::TransitionCache& cache) const;

    bool load_embedding(std::uint64_t fingerprint,
                        embed::Embedding& out) const;
    void store_embedding(std::uint64_t fingerprint,
                         const embed::Embedding& embedding) const;

    /// Restore trained weights into @p net; an architecture mismatch
    /// counts as stale (returns false), not an error.
    bool load_classifier(const std::string& name, std::uint64_t fingerprint,
                         nn::Mlp& net) const;
    void store_classifier(const std::string& name, std::uint64_t fingerprint,
                          nn::Mlp& net) const;

    /// Corrupt artifacts this manager renamed to *.corrupt.<ts>.
    unsigned
    quarantined_count() const
    {
        return quarantined_.load(std::memory_order_relaxed);
    }

    /// Artifacts this manager declared unusable and fell back to
    /// regenerating (quarantined or not).
    unsigned
    regenerated_count() const
    {
        return regenerated_.load(std::memory_order_relaxed);
    }

  private:
    template <typename Loader>
    bool load_checkpoint(const std::string& path, std::uint64_t fingerprint,
                         const char* what, const Loader& loader) const;

    std::string directory_;
    mutable std::atomic<unsigned> quarantined_{0};
    mutable std::atomic<unsigned> regenerated_{0};
};

/// Optional classifier-phase checkpoint hookup for the task runners.
/// When @p manager is set the runner tries to restore the trained
/// network before the training loop and persists it afterwards; the
/// out-flags report which of the two happened.
struct ClassifierCheckpoint
{
    const CheckpointManager* manager = nullptr;
    /// Artifact base name, e.g. "link-predictor".
    std::string name;
    /// Dependency fingerprint covering edges, every upstream phase, and
    /// the classifier configuration.
    std::uint64_t fingerprint = 0;
    bool loaded = false; ///< out: restored a matching artifact
    bool stored = false; ///< out: wrote a new artifact
};

} // namespace tgl::core
