/// Finite-difference gradient checks and behavior tests for layers.
#include "nn/layers.hpp"

#include "rng/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace tgl::nn {
namespace {

Tensor
random_tensor(std::size_t rows, std::size_t cols, rng::Random& random)
{
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = random.next_float() * 2.0f - 1.0f;
    }
    return t;
}

/// Scalar objective: sum of outputs weighted by a fixed random tensor
/// (so the upstream gradient is that tensor).
double
objective(Layer& layer, const Tensor& input, const Tensor& weights)
{
    const Tensor& output = layer.forward(input);
    double sum = 0.0;
    for (std::size_t i = 0; i < output.size(); ++i) {
        sum += static_cast<double>(output.data()[i]) *
               static_cast<double>(weights.data()[i]);
    }
    return sum;
}

/// Check dObjective/dInput via central differences.
void
check_input_gradient(Layer& layer, Tensor input, std::size_t out_rows,
                     std::size_t out_cols, double tol = 2e-2)
{
    rng::Random random(7);
    const Tensor upstream = random_tensor(out_rows, out_cols, random);

    layer.forward(input);
    const Tensor analytic = layer.backward(upstream);

    constexpr float kEps = 1e-2f;
    for (std::size_t i = 0; i < input.size(); ++i) {
        Tensor perturbed = input;
        perturbed.data()[i] += kEps;
        const double up = objective(layer, perturbed, upstream);
        perturbed.data()[i] -= 2 * kEps;
        const double down = objective(layer, perturbed, upstream);
        const double numeric =
            (up - down) / (2.0 * static_cast<double>(kEps));
        EXPECT_NEAR(analytic.data()[i], numeric, tol)
            << "input element " << i;
    }
}

/// Check dObjective/dParameter via central differences.
void
check_parameter_gradients(Layer& layer, const Tensor& input,
                          std::size_t out_rows, std::size_t out_cols,
                          double tol = 2e-2)
{
    rng::Random random(8);
    const Tensor upstream = random_tensor(out_rows, out_cols, random);

    for (Parameter* param : layer.parameters()) {
        param->grad.zero();
    }
    layer.forward(input);
    layer.backward(upstream);

    constexpr float kEps = 1e-2f;
    for (Parameter* param : layer.parameters()) {
        for (std::size_t i = 0; i < param->value.size(); ++i) {
            const float original = param->value.data()[i];
            param->value.data()[i] = original + kEps;
            const double up = objective(layer, input, upstream);
            param->value.data()[i] = original - kEps;
            const double down = objective(layer, input, upstream);
            param->value.data()[i] = original;
            const double numeric =
            (up - down) / (2.0 * static_cast<double>(kEps));
            EXPECT_NEAR(param->grad.data()[i], numeric, tol)
                << param->name << " element " << i;
        }
    }
}

TEST(Linear, ForwardMatchesManualComputation)
{
    rng::Random random(1);
    Linear layer(2, 2, random);
    auto params = layer.parameters();
    Parameter& weight = *params[0];
    Parameter& bias = *params[1];
    weight.value = Tensor(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    bias.value = Tensor(1, 2, {0.5f, -0.5f});

    const Tensor input(1, 2, {1.0f, 1.0f});
    const Tensor& output = layer.forward(input);
    // y = x W^T + b = [1+2, 3+4] + [0.5, -0.5].
    EXPECT_FLOAT_EQ(output(0, 0), 3.5f);
    EXPECT_FLOAT_EQ(output(0, 1), 6.5f);
}

TEST(Linear, InputGradient)
{
    rng::Random random(2);
    Linear layer(3, 2, random);
    check_input_gradient(layer, random_tensor(4, 3, random), 4, 2);
}

TEST(Linear, ParameterGradients)
{
    rng::Random random(3);
    Linear layer(3, 2, random);
    check_parameter_gradients(layer, random_tensor(4, 3, random), 4, 2);
}

TEST(Linear, GradientsAccumulateAcrossBackwardCalls)
{
    rng::Random random(4);
    Linear layer(2, 2, random);
    const Tensor input = random_tensor(2, 2, random);
    const Tensor upstream = random_tensor(2, 2, random);
    layer.forward(input);
    layer.backward(upstream);
    const Tensor once = layer.parameters()[0]->grad;
    layer.forward(input);
    layer.backward(upstream);
    const Tensor twice = layer.parameters()[0]->grad;
    for (std::size_t i = 0; i < once.size(); ++i) {
        EXPECT_NEAR(twice.data()[i], 2.0f * once.data()[i], 1e-4f);
    }
}

TEST(Linear, Describe)
{
    rng::Random random(5);
    Linear layer(8, 16, random);
    EXPECT_EQ(layer.describe(), "Linear(8 -> 16)");
}

TEST(ReLU, ForwardClampsNegatives)
{
    ReLU layer;
    const Tensor input(1, 4, {-1.0f, 0.0f, 2.0f, -3.0f});
    const Tensor& output = layer.forward(input);
    EXPECT_FLOAT_EQ(output(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(output(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(output(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(output(0, 3), 0.0f);
}

TEST(ReLU, BackwardMasksNegatives)
{
    ReLU layer;
    const Tensor input(1, 3, {-1.0f, 1.0f, 2.0f});
    layer.forward(input);
    const Tensor upstream(1, 3, {5.0f, 5.0f, 5.0f});
    const Tensor& grad = layer.backward(upstream);
    EXPECT_FLOAT_EQ(grad(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(grad(0, 2), 5.0f);
}

TEST(Sigmoid, ForwardValues)
{
    Sigmoid layer;
    const Tensor input(1, 3, {0.0f, 100.0f, -100.0f});
    const Tensor& output = layer.forward(input);
    EXPECT_NEAR(output(0, 0), 0.5f, 1e-6f);
    EXPECT_NEAR(output(0, 1), 1.0f, 1e-6f);
    EXPECT_NEAR(output(0, 2), 0.0f, 1e-6f);
}

TEST(Sigmoid, InputGradient)
{
    rng::Random random(6);
    Sigmoid layer;
    check_input_gradient(layer, random_tensor(3, 4, random), 3, 4);
}

TEST(ResidualBlock, IdentityAtInitialization)
{
    // Zero-init of the branch output projection makes the block the
    // identity on non-negative inputs (the post-ReLU regime it sits in).
    rng::Random random(20);
    ResidualBlock block(4, random);
    Tensor input(2, 4, {0.5f, 1.0f, 0.0f, 2.0f,
                        3.0f, 0.1f, 0.2f, 0.0f});
    const Tensor& output = block.forward(input);
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_FLOAT_EQ(output(r, c), input(r, c));
        }
    }
}

TEST(ResidualBlock, InputGradient)
{
    rng::Random random(21);
    ResidualBlock block(3, random);
    // Break the zero-init so the branch contributes to the gradient.
    for (Parameter* p : block.parameters()) {
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            p->value.data()[i] += 0.1f * static_cast<float>(i % 5) - 0.2f;
        }
    }
    check_input_gradient(block, random_tensor(4, 3, random), 4, 3,
                         5e-2);
}

TEST(ResidualBlock, ParameterGradients)
{
    rng::Random random(22);
    ResidualBlock block(3, random);
    for (Parameter* p : block.parameters()) {
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            p->value.data()[i] += 0.07f * static_cast<float>(i % 3);
        }
    }
    check_parameter_gradients(block, random_tensor(4, 3, random), 4, 3,
                              5e-2);
}

TEST(ResidualBlock, HasFourParameters)
{
    rng::Random random(23);
    ResidualBlock block(8, random);
    EXPECT_EQ(block.parameters().size(), 4u);
    EXPECT_EQ(block.describe(), "ResidualBlock(8)");
}

TEST(LogSoftmax, RowsAreLogDistributions)
{
    LogSoftmax layer;
    rng::Random random(9);
    const Tensor input = random_tensor(5, 7, random);
    const Tensor& output = layer.forward(input);
    for (std::size_t r = 0; r < output.rows(); ++r) {
        double sum = 0.0;
        for (float v : output.row(r)) {
            EXPECT_LE(v, 0.0f + 1e-6f);
            sum += std::exp(static_cast<double>(v));
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(LogSoftmax, InvariantToRowShift)
{
    LogSoftmax a, b;
    const Tensor x(1, 3, {1.0f, 2.0f, 3.0f});
    const Tensor shifted(1, 3, {101.0f, 102.0f, 103.0f});
    const Tensor& ya = a.forward(x);
    const Tensor& yb = b.forward(shifted);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(ya(0, c), yb(0, c), 1e-4f);
    }
}

TEST(LogSoftmax, InputGradient)
{
    rng::Random random(10);
    LogSoftmax layer;
    check_input_gradient(layer, random_tensor(3, 5, random), 3, 5);
}

TEST(LogSoftmax, HandlesExtremeValuesWithoutOverflow)
{
    LogSoftmax layer;
    const Tensor input(1, 2, {1000.0f, -1000.0f});
    const Tensor& output = layer.forward(input);
    EXPECT_TRUE(std::isfinite(output(0, 0)));
    EXPECT_TRUE(std::isfinite(output(0, 1)));
    EXPECT_NEAR(output(0, 0), 0.0f, 1e-4f);
}

} // namespace
} // namespace tgl::nn
