/// Unit and concurrency tests for the obs flight recorder
/// (obs/timeseries.hpp): delta/rate semantics, ring wraparound,
/// counter-reset handling, windowed rollups, and sampler-vs-writer
/// races (the latter run under TSan via the `threading` ctest label).
#include "obs/timeseries.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace tgl::obs {
namespace {

TimeseriesConfig
test_config(std::size_t capacity = 16)
{
    TimeseriesConfig config;
    config.interval_ms = 5;
    config.capacity = capacity;
    return config;
}

const MetricRollup*
find_rollup(const std::vector<MetricRollup>& rolls,
            const std::string& name)
{
    for (const MetricRollup& roll : rolls) {
        if (roll.name == name) {
            return &roll;
        }
    }
    return nullptr;
}

TEST(FlightRecorder, RejectsDegenerateConfig)
{
    Registry registry;
    TimeseriesConfig zero_interval;
    zero_interval.interval_ms = 0;
    EXPECT_THROW(FlightRecorder(registry, zero_interval), util::Error);
    TimeseriesConfig tiny;
    tiny.capacity = 1;
    EXPECT_THROW(FlightRecorder(registry, tiny), util::Error);
}

TEST(FlightRecorder, FirstSamplePrimesTheBaseline)
{
    Registry registry;
    const Counter counter = registry.counter("test.counter");
    counter.add(5); // activity before the recorder existed
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    counter.add(7);
    recorder.sample_now();
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.counter");
    ASSERT_NE(roll, nullptr);
    // The pre-recorder 5 primes the baseline; only the 7 is windowed.
    EXPECT_DOUBLE_EQ(roll->delta, 7.0);
    EXPECT_DOUBLE_EQ(roll->last, 12.0);
    EXPECT_GT(roll->rate, 0.0);
}

TEST(FlightRecorder, CounterResetClampsToFreshCumulative)
{
    Registry registry;
    const Counter counter = registry.counter("test.reset");
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    counter.add(10);
    recorder.sample_now();
    registry.reset();
    counter.add(3);
    recorder.sample_now();
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.reset");
    ASSERT_NE(roll, nullptr);
    // 10 before the reset + 3 after; never a negative delta.
    EXPECT_DOUBLE_EQ(roll->delta, 13.0);
    EXPECT_DOUBLE_EQ(roll->last, 3.0);
}

TEST(FlightRecorder, RingWrapsAroundKeepingNewestSamples)
{
    Registry registry;
    const Counter counter = registry.counter("test.wrap");
    FlightRecorder recorder(registry, test_config(/*capacity=*/4));
    for (int i = 0; i < 10; ++i) {
        counter.inc();
        recorder.sample_now();
    }
    EXPECT_EQ(recorder.num_samples(), 10u);
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.wrap");
    ASSERT_NE(roll, nullptr);
    // Only the 4 retained samples contribute (delta 1 each); the
    // cumulative still reports the true total.
    EXPECT_DOUBLE_EQ(roll->delta, 4.0);
    EXPECT_DOUBLE_EQ(roll->last, 10.0);
}

TEST(FlightRecorder, GaugeWindowStatistics)
{
    Registry registry;
    const Gauge gauge = registry.gauge("test.gauge");
    FlightRecorder recorder(registry, test_config());
    gauge.set(1.0);
    recorder.sample_now();
    gauge.set(5.0);
    recorder.sample_now();
    gauge.set(3.0);
    recorder.sample_now();
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.gauge");
    ASSERT_NE(roll, nullptr);
    EXPECT_DOUBLE_EQ(roll->last, 3.0);
    EXPECT_DOUBLE_EQ(roll->min, 1.0);
    EXPECT_DOUBLE_EQ(roll->max, 5.0);
    EXPECT_DOUBLE_EQ(roll->mean, 3.0);
}

TEST(FlightRecorder, HistogramWindowQuantiles)
{
    Registry registry;
    const Histogram histogram =
        registry.histogram("test.hist", {0.001, 0.01, 0.1, 1.0});
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    for (int i = 0; i < 10; ++i) {
        histogram.observe(0.005); // bucket le=0.01
    }
    histogram.observe(0.5); // bucket le=1.0
    recorder.sample_now();
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.hist");
    ASSERT_NE(roll, nullptr);
    EXPECT_DOUBLE_EQ(roll->delta, 11.0);
    // Quantiles report the matching bucket's upper bound.
    EXPECT_DOUBLE_EQ(roll->p50, 0.01);
    EXPECT_DOUBLE_EQ(roll->p99, 1.0);
    EXPECT_NEAR(roll->sum_delta, 10 * 0.005 + 0.5, 1e-9);
}

TEST(FlightRecorder, HistogramDeltasSurviveRegistryReset)
{
    Registry registry;
    const Histogram histogram = registry.histogram("test.hreset", {1.0});
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    histogram.observe(0.5);
    histogram.observe(0.5);
    recorder.sample_now();
    registry.reset();
    // Post-reset count (1) dips below the pre-reset count (2), which is
    // what marks the sample as a reset: the fresh cumulative counts as
    // the delta instead of a negative difference.
    histogram.observe(2.0);
    recorder.sample_now();
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.hreset");
    ASSERT_NE(roll, nullptr);
    EXPECT_DOUBLE_EQ(roll->delta, 3.0); // 2 before + 1 after the reset
}

TEST(FlightRecorder, MetricAppearingMidFlightIsPickedUp)
{
    Registry registry;
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    registry.counter("test.late").add(4);
    recorder.sample_now();
    registry.counter("test.late").add(2);
    recorder.sample_now();
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.late");
    ASSERT_NE(roll, nullptr);
    // First sighting primes; only post-priming deltas are windowed.
    EXPECT_DOUBLE_EQ(roll->delta, 2.0);
    EXPECT_DOUBLE_EQ(roll->last, 6.0);
}

TEST(FlightRecorder, NarrowWindowExcludesOldSamples)
{
    Registry registry;
    const Counter counter = registry.counter("test.window");
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    counter.add(100);
    recorder.sample_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    counter.add(1);
    recorder.sample_now();
    // A 10ms window (much narrower than the 50ms gap) keeps only the
    // newest sample's delta.
    const auto rolls = recorder.rollup(0.010);
    const MetricRollup* roll = find_rollup(rolls, "test.window");
    ASSERT_NE(roll, nullptr);
    EXPECT_DOUBLE_EQ(roll->delta, 1.0);
    EXPECT_DOUBLE_EQ(roll->last, 101.0);
}

TEST(FlightRecorder, JsonHasSchemaWindowsAndMetrics)
{
    Registry registry;
    registry.counter("test.c").add(1);
    registry.gauge("test.g").set(2.0);
    registry.histogram("test.h", {1.0}).observe(0.5);
    FlightRecorder recorder(registry, test_config());
    recorder.sample_now();
    recorder.sample_now();
    const std::string json = recorder.to_json();
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"interval_ms\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"samples\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"windows\": ["), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test.c\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"gauge\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    // The recorder's own health counter flows through the registry.
    EXPECT_NE(json.find("\"name\": \"obs.timeseries.samples\""),
              std::string::npos);
}

TEST(FlightRecorder, SamplerThreadRacesWritersCleanly)
{
    Registry registry;
    const Counter counter = registry.counter("test.race.counter");
    const Histogram histogram =
        registry.histogram("test.race.hist", {0.001, 0.01, 0.1});
    const Gauge gauge = registry.gauge("test.race.gauge");

    TimeseriesConfig config;
    config.interval_ms = 1;
    config.capacity = 64;
    FlightRecorder recorder(registry, config);
    recorder.start();

    constexpr int kWriters = 4;
    constexpr int kPerWriter = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kPerWriter; ++i) {
                counter.inc();
                histogram.observe(0.0005 * ((w + i) % 4 + 1));
                gauge.set(static_cast<double>(i));
            }
        });
    }
    go.store(true, std::memory_order_release);
    // Query concurrently with sampling and writing.
    for (int q = 0; q < 20; ++q) {
        (void)recorder.rollup(1.0);
        (void)recorder.to_json();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::thread& writer : writers) {
        writer.join();
    }
    recorder.stop();
    recorder.sample_now(); // capture the quiesced final state
    EXPECT_GE(recorder.num_samples(), 2u);
    const auto rolls = recorder.rollup(1e9);
    const MetricRollup* roll = find_rollup(rolls, "test.race.counter");
    ASSERT_NE(roll, nullptr);
    // Quiesced: deltas over the full window must sum to every write
    // (the ring is large enough to hold the whole run).
    EXPECT_DOUBLE_EQ(roll->last,
                     static_cast<double>(kWriters * kPerWriter));
    const MetricRollup* hist = find_rollup(rolls, "test.race.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->last,
                     static_cast<double>(kWriters * kPerWriter));
}

TEST(FlightRecorder, StartStopAreIdempotent)
{
    Registry registry;
    FlightRecorder recorder(registry, test_config());
    recorder.start();
    recorder.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    recorder.stop();
    recorder.stop();
    EXPECT_GE(recorder.num_samples(), 1u);
    // Restart after stop works too.
    recorder.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    recorder.stop();
}

} // namespace
} // namespace tgl::obs
