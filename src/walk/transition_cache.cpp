#include "walk/transition_cache.hpp"

#include "util/artifact_io.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/parallel_for.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace tgl::walk {

namespace {

constexpr std::string_view kCacheKind = "trcache";
constexpr std::uint32_t kCachePayloadVersion = 1;

} // namespace

TransitionCacheMode
parse_transition_cache_mode(const std::string& name)
{
    if (name == "off") {
        return TransitionCacheMode::kOff;
    }
    if (name == "on") {
        return TransitionCacheMode::kOn;
    }
    if (name == "auto") {
        return TransitionCacheMode::kAuto;
    }
    util::fatal(util::strcat("unknown transition-cache mode: ", name,
                             " (expected off | on | auto)"));
}

const char*
transition_cache_mode_name(TransitionCacheMode mode)
{
    switch (mode) {
      case TransitionCacheMode::kOff: return "off";
      case TransitionCacheMode::kOn: return "on";
      case TransitionCacheMode::kAuto: return "auto";
    }
    return "?";
}

bool
use_transition_cache(const WalkConfig& config,
                     const graph::TemporalGraph& graph)
{
    if (!config.temporal ||
        config.transition_cache == TransitionCacheMode::kOff) {
        // Static walks force the uniform transition, where the cache
        // is a pass-through with no table to amortize.
        return config.temporal &&
               config.transition_cache == TransitionCacheMode::kOn;
    }
    if (config.transition_cache == TransitionCacheMode::kOn) {
        return true;
    }
    if (config.transition == TransitionKind::kUniform ||
        graph.num_nodes() == 0) {
        return false;
    }
    const double mean_degree = static_cast<double>(graph.num_edges()) /
                               static_cast<double>(graph.num_nodes());
    return mean_degree >= kTransitionCacheAutoMeanDegree;
}

TransitionCache
TransitionCache::build(const graph::TemporalGraph& graph,
                       TransitionKind kind, unsigned num_threads)
{
    TransitionCache cache;
    cache.kind_ = kind;
    cache.num_nodes_ = graph.num_nodes();
    cache.num_edges_ = graph.num_edges();
    cache.rate_scale_ =
        graph.time_range() > 0.0 ? graph.time_range() : 1.0;

    if (kind != TransitionKind::kExponential &&
        kind != TransitionKind::kExponentialDecay) {
        return cache; // uniform / linear need no per-edge state
    }

    cache.prefix_.resize(graph.num_edges());
    const std::vector<graph::Neighbor>& neighbors = graph.neighbors();
    const std::vector<graph::EdgeId>& offsets = graph.offsets();
    const double r = cache.rate_scale_;
    util::parallel_for(
        0, graph.num_nodes(),
        [&](std::size_t u) {
            const graph::EdgeId begin = offsets[u];
            const graph::EdgeId end = offsets[u + 1];
            if (begin == end) {
                return;
            }
            // Shift by the slice extreme so every exponent is <= 0 and,
            // because |t - shift| <= graph timespan = r, >= -1: the
            // weights live in [e^-1, 1] and the running sum can neither
            // overflow nor underflow, whatever the raw timestamps are.
            const graph::Timestamp shift =
                kind == TransitionKind::kExponential
                    ? neighbors[end - 1].time
                    : neighbors[begin].time;
            double sum = 0.0;
            for (graph::EdgeId e = begin; e < end; ++e) {
                const double exponent =
                    kind == TransitionKind::kExponential
                        ? (neighbors[e].time - shift) / r
                        : -(neighbors[e].time - shift) / r;
                sum += std::exp(exponent);
                cache.prefix_[e] = sum;
            }
        },
        {.num_threads = num_threads});
    return cache;
}

TransitionCost
TransitionCache::build_cost() const
{
    TransitionCost cost;
    const std::uint64_t n = prefix_.size();
    // Per edge: timestamp load + prefix store + exp() constant loads,
    // exp() polynomial + subtract/scale/accumulate, loop test.
    cost.memory_ops = 3 * n;
    cost.compute_ops = 10 * n;
    cost.branch_ops = n;
    return cost;
}

std::size_t
TransitionCache::sample(const graph::TemporalGraph& graph, graph::NodeId u,
                        std::span<const graph::Neighbor> candidates,
                        graph::Timestamp now, rng::Random& random,
                        TransitionCost* cost) const
{
    const std::size_t m = candidates.size();
    if (m == 0) {
        return 0;
    }
    if (m == 1) {
        if (cost != nullptr) {
            cost->memory_ops += 1;
            cost->branch_ops += 1;
        }
        return 0;
    }

    switch (kind_) {
      case TransitionKind::kUniform: {
        if (cost != nullptr) {
            cost->compute_ops += 2;
            cost->branch_ops += 1;
        }
        return static_cast<std::size_t>(random.next_index(m));
      }
      case TransitionKind::kLinear: {
        // Invert the closed-form descending-rank CDF: smallest j with
        // C(j) > u * total. No memory traffic at all.
        const double target =
            random.next_double() * linear_cumulative(m, m - 1);
        std::size_t lo = 0;
        std::size_t hi = m - 1;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (linear_cumulative(m, mid) > target) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if (cost != nullptr) {
            const std::uint64_t probes = search_probes(m);
            cost->compute_ops += 4 * probes + 3;
            cost->branch_ops += probes;
        }
        return lo;
      }
      case TransitionKind::kExponential:
      case TransitionKind::kExponentialDecay: {
        // The candidate suffix maps to prefix_ indices
        // [first, first + m): candidates is a subspan of the vertex
        // slice that always extends to its end.
        TGL_DASSERT(prefix_.size() == graph.num_edges());
        const graph::Neighbor* slice_data = graph.neighbors().data();
        const auto first =
            static_cast<std::size_t>(candidates.data() - slice_data);
        const std::size_t slice_begin = graph.offsets()[u];
        TGL_DASSERT(first >= slice_begin);
        TGL_DASSERT(first + m <= graph.offsets()[u + 1]);
        const double base =
            first == slice_begin ? 0.0 : prefix_[first - 1];
        const double top = prefix_[first + m - 1];
        const double total = top - base;
        if (!(total > 0.0) || !std::isfinite(total)) {
            // Degenerate mass (should not happen for finite
            // timestamps; kept as a safety net): fall back to the
            // direct sampler, which recomputes weights per candidate.
            return sample_transition(candidates, now, rate_scale_,
                                     kind_, random, cost);
        }
        const double target = base + random.next_double() * total;
        const double* begin = prefix_.data() + first;
        const double* end = begin + m;
        const double* it = std::upper_bound(begin, end, target);
        if (it == end) {
            // target can round up to exactly `top` when the drawn
            // uniform is close to 1; the last candidate owns that
            // boundary.
            it = end - 1;
        }
        if (cost != nullptr) {
            const std::uint64_t probes = search_probes(m);
            cost->memory_ops += probes + 2; // probe loads + base/top
            cost->branch_ops += probes;
            cost->compute_ops += 3; // draw + scale + add
        }
        return static_cast<std::size_t>(it - begin);
      }
    }
    TGL_PANIC("unhandled transition kind");
}

void
TransitionCache::save_binary(std::ostream& out,
                             std::uint64_t fingerprint) const
{
    util::ArtifactWriter writer(out, kCacheKind, kCachePayloadVersion,
                                fingerprint);
    writer.write_pod<std::uint32_t>(static_cast<std::uint32_t>(kind_));
    writer.write_pod<double>(rate_scale_);
    writer.write_pod<std::uint64_t>(num_nodes_);
    writer.write_pod<std::uint64_t>(num_edges_);
    writer.write_pod<std::uint64_t>(prefix_.size());
    writer.write_bytes(prefix_.data(), prefix_.size() * sizeof(double));
    writer.finish();
}

void
TransitionCache::save_binary_file(const std::string& path,
                                  std::uint64_t fingerprint) const
{
    util::fault_point("transition_cache.save");
    util::atomic_write_file(
        path, [&](std::ostream& out) { save_binary(out, fingerprint); },
        /*binary=*/true);
}

TransitionCache
TransitionCache::load_binary(std::istream& in, std::uint64_t* fingerprint)
{
    util::ArtifactReader reader(in, kCacheKind);
    if (fingerprint != nullptr) {
        *fingerprint = reader.fingerprint();
    }
    if (reader.payload_version() != kCachePayloadVersion) {
        util::fatal(util::strcat(
            "transition-cache artifact: unsupported payload version ",
            reader.payload_version()));
    }
    TransitionCache cache;
    const auto kind = reader.read_pod<std::uint32_t>();
    if (kind > static_cast<std::uint32_t>(TransitionKind::kLinear)) {
        util::fatal(util::strcat(
            "transition-cache artifact: unknown transition kind ", kind));
    }
    cache.kind_ = static_cast<TransitionKind>(kind);
    cache.rate_scale_ = reader.read_pod<double>();
    if (!(cache.rate_scale_ > 0.0) || !std::isfinite(cache.rate_scale_)) {
        util::fatal("transition-cache artifact: invalid rate scale");
    }
    cache.num_nodes_ = reader.read_pod<std::uint64_t>();
    cache.num_edges_ = reader.read_pod<std::uint64_t>();
    const auto table_size = reader.read_pod<std::uint64_t>();
    if (table_size != 0 && table_size != cache.num_edges_) {
        util::fatal(util::strcat(
            "transition-cache artifact: table holds ", table_size,
            " entries for ", cache.num_edges_, " edges"));
    }
    if (reader.remaining() != table_size * sizeof(double)) {
        util::fatal(util::strcat(
            "transition-cache artifact: payload holds ",
            reader.remaining(), " bytes, header implies ",
            table_size * sizeof(double)));
    }
    cache.prefix_.resize(table_size);
    reader.read_bytes(cache.prefix_.data(), table_size * sizeof(double));
    for (const double value : cache.prefix_) {
        if (!std::isfinite(value)) {
            util::fatal(
                "transition-cache artifact: non-finite prefix value");
        }
    }
    return cache;
}

TransitionCache
TransitionCache::load_binary_file(const std::string& path,
                                  std::uint64_t* fingerprint)
{
    util::fault_point("transition_cache.load");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        util::fatal(util::strcat("cannot open: ", path));
    }
    try {
        return load_binary(in, fingerprint);
    } catch (const util::Error& error) {
        // Direct file loads (CLI cache tooling) have no regeneration
        // path of their own, but quarantining the damaged file here
        // means the next pipeline run rebuilds instead of tripping
        // over it again.
        in.close();
        util::quarantine_artifact(path, error.what());
        throw;
    }
}

} // namespace tgl::walk
