/// @file
/// Precomputed logistic sigmoid, word2vec style: the SGNS inner loop
/// evaluates sigma(w.c) per (pair, negative) and a 1k-entry LUT over
/// [-6, 6] with saturation is the classic latency fix. The table is a
/// constexpr-initialized singleton shared by all trainers.
#pragma once

#include <array>
#include <cmath>

namespace tgl::embed {

/// Lookup-table sigmoid with clamped tails.
class SigmoidTable
{
  public:
    static constexpr int kTableSize = 1024;
    static constexpr float kMaxExp = 6.0f;

    /// Shared instance.
    static const SigmoidTable&
    instance()
    {
        static const SigmoidTable table;
        return table;
    }

    /// sigma(x) with |x| > 6 saturated to 0/1.
    float
    operator()(float x) const
    {
        // Negated comparison so NaN saturates instead of reaching the
        // index cast below (casting NaN to int is undefined behavior;
        // a diverged model must not turn into an out-of-bounds read).
        if (!(x < kMaxExp)) {
            return 1.0f;
        }
        if (x <= -kMaxExp) {
            return 0.0f;
        }
        const int index = static_cast<int>(
            (x + kMaxExp) * (kTableSize / (2.0f * kMaxExp)));
        return values_[static_cast<std::size_t>(index)];
    }

  private:
    SigmoidTable()
    {
        for (int i = 0; i < kTableSize; ++i) {
            const float x =
                (static_cast<float>(i) / (kTableSize / (2.0f * kMaxExp))) -
                kMaxExp;
            values_[static_cast<std::size_t>(i)] =
                1.0f / (1.0f + std::exp(-x));
        }
    }

    std::array<float, kTableSize> values_{};
};

} // namespace tgl::embed
