#include "embed/sgns_model.hpp"

#include "util/error.hpp"

#include <cmath>

namespace tgl::embed {

std::vector<std::string>
SgnsConfig::validate() const
{
    std::vector<std::string> problems;
    if (dim == 0) {
        problems.push_back("dim must be >= 1");
    }
    if (window == 0) {
        problems.push_back("window must be >= 1");
    }
    if (epochs == 0) {
        problems.push_back("epochs must be >= 1");
    }
    if (!(alpha > 0.0f) || !std::isfinite(alpha)) {
        problems.push_back("alpha (learning rate) must be positive and "
                           "finite, got " + std::to_string(alpha));
    }
    if (!(subsample >= 0.0) || !std::isfinite(subsample)) {
        problems.push_back("subsample must be >= 0 and finite");
    }
    if (row_stride != 0 && row_stride < dim) {
        problems.push_back("row_stride must be 0 (packed) or >= dim, got " +
                           std::to_string(row_stride));
    }
    return problems;
}

SgnsModel::SgnsModel(const Vocab& vocab, const SgnsConfig& config)
    : SgnsModel(vocab.size(), config)
{
}

SgnsModel::SgnsModel(std::size_t vocab_size, const SgnsConfig& config)
    : dim_(config.dim),
      stride_(config.row_stride == 0 ? config.dim : config.row_stride),
      vocab_size_(vocab_size)
{
    if (dim_ == 0) {
        util::fatal("SgnsModel: dim must be >= 1");
    }
    if (stride_ < dim_) {
        util::fatal("SgnsModel: row_stride must be >= dim");
    }
    input_.assign(vocab_size_ * stride_, 0.0f);
    output_.assign(vocab_size_ * stride_, 0.0f);

    // word2vec initialization: input uniform in (-0.5/dim, 0.5/dim),
    // output zero.
    rng::Random random(config.seed ^ 0x5bd1e995u);
    for (std::size_t w = 0; w < vocab_size_; ++w) {
        float* row = input_.data() + w * stride_;
        for (unsigned i = 0; i < dim_; ++i) {
            row[i] = (random.next_float() - 0.5f) /
                     static_cast<float>(dim_);
        }
    }
}

bool
SgnsModel::all_finite() const
{
    // Only the live dim_ columns matter; stride padding stays zero.
    for (const std::vector<float>* matrix : {&input_, &output_}) {
        for (std::size_t w = 0; w < vocab_size_; ++w) {
            const float* row = matrix->data() + w * stride_;
            for (unsigned i = 0; i < dim_; ++i) {
                if (!std::isfinite(row[i])) {
                    return false;
                }
            }
        }
    }
    return true;
}

Embedding
SgnsModel::to_embedding(graph::NodeId num_nodes) const
{
    TGL_ASSERT(vocab_size_ >= num_nodes);
    Embedding embedding(num_nodes, dim_);
    for (graph::NodeId node = 0; node < num_nodes; ++node) {
        auto out = embedding.row(node);
        const float* in = input_row(static_cast<WordId>(node));
        for (unsigned i = 0; i < dim_; ++i) {
            out[i] = in[i];
        }
    }
    return embedding;
}

Embedding
SgnsModel::to_embedding(const Vocab& vocab, graph::NodeId num_nodes) const
{
    Embedding embedding(num_nodes, dim_);
    for (WordId w = 0; w < vocab.size(); ++w) {
        const graph::NodeId node = vocab.node_of(w);
        TGL_ASSERT(node < num_nodes);
        auto out = embedding.row(node);
        const float* in = input_row(w);
        for (unsigned i = 0; i < dim_; ++i) {
            out[i] = in[i];
        }
    }
    return embedding;
}

void
sgns_update_pair(SgnsModel& model, WordId context, WordId center,
                 const NegativeTable& negatives, unsigned num_negatives,
                 float alpha, bool vectorized, rng::Random& random,
                 float* scratch)
{
    const unsigned dim = model.dim();
    const bool scalar_only = !vectorized;
    const SigmoidTable& sigmoid = SigmoidTable::instance();

    float* context_row = model.input_row(context);
    for (unsigned i = 0; i < dim; ++i) {
        scratch[i] = 0.0f;
    }

    // Positive target plus `num_negatives` sampled negatives.
    for (unsigned n = 0; n <= num_negatives; ++n) {
        WordId target;
        float label;
        if (n == 0) {
            target = center;
            label = 1.0f;
        } else {
            target = negatives.sample(random);
            if (target == center) {
                continue;
            }
            label = 0.0f;
        }
        float* target_row = model.output_row(target);
        const float score =
            detail::dot(context_row, target_row, dim, scalar_only);
        const float gradient = (label - sigmoid(score)) * alpha;
        detail::axpy(gradient, target_row, scratch, dim, scalar_only);
        detail::axpy(gradient, context_row, target_row, dim, scalar_only);
    }
    detail::axpy(1.0f, scratch, context_row, dim, scalar_only);
}

void
sgns_update_pair_shared(SgnsModel& model, WordId context, WordId center,
                        std::span<const WordId> shared_negatives,
                        float alpha, bool vectorized, float* scratch)
{
    const unsigned dim = model.dim();
    const bool scalar_only = !vectorized;
    const SigmoidTable& sigmoid = SigmoidTable::instance();

    float* context_row = model.input_row(context);
    for (unsigned i = 0; i < dim; ++i) {
        scratch[i] = 0.0f;
    }

    const std::size_t targets = shared_negatives.size() + 1;
    for (std::size_t n = 0; n < targets; ++n) {
        WordId target;
        float label;
        if (n == 0) {
            target = center;
            label = 1.0f;
        } else {
            target = shared_negatives[n - 1];
            if (target == center) {
                continue;
            }
            label = 0.0f;
        }
        float* target_row = model.output_row(target);
        const float score =
            detail::dot(context_row, target_row, dim, scalar_only);
        const float gradient = (label - sigmoid(score)) * alpha;
        detail::axpy(gradient, target_row, scratch, dim, scalar_only);
        detail::axpy(gradient, context_row, target_row, dim, scalar_only);
    }
    detail::axpy(1.0f, scratch, context_row, dim, scalar_only);
}

} // namespace tgl::embed
