#!/usr/bin/env python3
"""Scripted end-to-end smoke test for a running `tgl_cli serve`.

Speaks the wire protocol (src/serve/protocol.hpp) directly over a TCP
socket — an independent reimplementation, so a framing bug that the
C++ client and server share cannot cancel out.  CI starts a server on
a tiny trained model and points this script at it:

    python3 tools/serve_smoke.py --port 7411 \
        --reload-path ckpt-serve/embedding.tgla --expect-quant fp32

Checks, in order: ping identity, link-score determinism and sanity,
kNN ordering/self-exclusion, the stats JSON snapshot (including the
spliced slow-request log), the Prometheus text exposition (parsed and
validated by an independent Python parser: name/label syntax, monotone
cumulative buckets, `_count` == the +Inf bucket), the flight-recorder
timeseries rollup, malformed-frame and oversized-frame rejection (bad
request + connection close, server stays up), failed-reload isolation
(server error, connection stays usable, epoch unchanged), and a
successful reload bumping the epoch.

--expect-slow additionally requires the slow-request log to contain a
request at least that many seconds in total (CI arms a `serve.score`
delay failpoint and asserts the stall shows up).

Exit 0 when every check passes, 1 with a diagnostic on the first
failure.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import socket
import struct
import sys

OP_PING = 0x01
OP_LINK_SCORE = 0x02
OP_KNN = 0x03
OP_STATS = 0x04
OP_RELOAD = 0x05
OP_METRICS_TEXT = 0x06
OP_TIMESERIES = 0x07

STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_SERVER_ERROR = 2

QUANT_NAMES = {0: "fp32", 1: "int8"}


class SmokeFailure(Exception):
    pass


def check(condition: bool, message: str):
    if not condition:
        raise SmokeFailure(message)


# --- Prometheus text-exposition parser -----------------------------------
#
# Independent of the C++ encoder (obs/exposition.cpp) on purpose: a bug
# both sides share cannot cancel out. Grammar per the exposition format:
#
#   # TYPE <name> <counter|gauge|histogram>
#   name[{label="value",...}] <number>

PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
PROM_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def prom_value(text: str) -> float:
    """Parse a sample value, accepting the +Inf/-Inf/NaN spellings."""
    special = {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}
    if text in special:
        return special[text]
    return float(text)


def parse_prometheus(text: str):
    """Parse an exposition payload into (types, samples).

    types: metric name -> declared kind.
    samples: list of (name, labels-dict, value) in document order.
    Raises SmokeFailure on any syntax violation.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            check(len(parts) == 4 and parts[1] == "TYPE",
                  f"line {lineno}: unexpected comment {line!r}")
            name, kind = parts[2], parts[3]
            check(PROM_NAME.match(name) is not None,
                  f"line {lineno}: bad metric name {name!r}")
            check(kind in ("counter", "gauge", "histogram"),
                  f"line {lineno}: unknown type {kind!r}")
            check(name not in types,
                  f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        match = PROM_SAMPLE.match(line)
        check(match is not None, f"line {lineno}: unparseable {line!r}")
        labels = {}
        if match["labels"]:
            for item in match["labels"].split(","):
                label = PROM_LABEL.match(item)
                check(label is not None,
                      f"line {lineno}: bad label {item!r}")
                labels[label["key"]] = label["val"]
        try:
            value = prom_value(match["value"])
        except ValueError:
            raise SmokeFailure(
                f"line {lineno}: bad value {match['value']!r}") from None
        samples.append((match["name"], labels, value))
    return types, samples


def validate_prometheus(text: str) -> dict:
    """Full structural validation; returns {name: scalar-or-histogram}.

    Every sample must belong to a declared TYPE (histogram samples via
    their _bucket/_sum/_count suffixes); histogram buckets must be
    le-labelled, sorted, cumulative, terminated by +Inf, and agree with
    _count.
    """
    types, samples = parse_prometheus(text)
    series: dict[str, dict] = {}
    for name, labels, value in samples:
        base = name
        part = "value"
        for suffix, role in (("_bucket", "bucket"), ("_sum", "sum"),
                             ("_count", "count")):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base, part = name[: -len(suffix)], role
                break
        check(base in types, f"sample {name} has no # TYPE declaration")
        kind = types[base]
        entry = series.setdefault(
            base, {"kind": kind, "buckets": [], "sum": None,
                   "count": None, "value": None})
        if part == "bucket":
            check(kind == "histogram", f"{name}: bucket on a {kind}")
            check(set(labels) == {"le"}, f"{name}: labels {labels}")
            entry["buckets"].append((prom_value(labels["le"]), value))
        elif part in ("sum", "count"):
            check(kind == "histogram", f"{name}: {part} on a {kind}")
            entry[part] = value
        else:
            check(kind in ("counter", "gauge"),
                  f"{name}: bare sample on a {kind}")
            if kind == "counter":
                check(name.endswith("_total"),
                      f"counter {name} lacks the _total suffix")
                check(value >= 0 and math.isfinite(value),
                      f"counter {name} = {value}")
            entry["value"] = value
    for base, entry in series.items():
        if entry["kind"] != "histogram":
            check(entry["value"] is not None, f"{base}: TYPE but no sample")
            continue
        buckets = entry["buckets"]
        check(len(buckets) >= 1, f"{base}: histogram without buckets")
        bounds = [le for le, _ in buckets]
        check(bounds == sorted(bounds), f"{base}: le out of order: {bounds}")
        check(len(set(bounds)) == len(bounds),
              f"{base}: duplicate le: {bounds}")
        check(bounds[-1] == math.inf, f"{base}: no le=\"+Inf\" bucket")
        counts = [c for _, c in buckets]
        check(all(c0 <= c1 for c0, c1 in zip(counts, counts[1:])),
              f"{base}: buckets not cumulative: {counts}")
        check(entry["count"] is not None and entry["sum"] is not None,
              f"{base}: missing _count or _sum")
        check(counts[-1] == entry["count"],
              f"{base}: +Inf bucket {counts[-1]} != _count {entry['count']}")
    return series


class Conn:
    """One protocol connection: length-prefixed frames, blocking I/O."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def close(self):
        self.sock.close()

    def send_payload(self, payload: bytes):
        self.sock.sendall(struct.pack("<I", len(payload)) + payload)

    def send_raw(self, data: bytes):
        self.sock.sendall(data)

    def recv_exact(self, size: int) -> bytes:
        buf = b""
        while len(buf) < size:
            chunk = self.sock.recv(size - len(buf))
            if not chunk:
                check(not buf, "connection closed mid-frame")
                return b""  # clean close at a frame boundary
            buf += chunk
        return buf

    def read_response(self) -> tuple[int, bytes] | None:
        """(status, body), or None when the server closed instead."""
        header = self.recv_exact(4)
        if not header:
            return None
        (length,) = struct.unpack("<I", header)
        check(length > 0, "zero-length response frame")
        payload = self.recv_exact(length)
        check(len(payload) == length, "truncated response frame")
        return payload[0], payload[1:]

    def roundtrip(self, payload: bytes) -> tuple[int, bytes] | None:
        self.send_payload(payload)
        return self.read_response()

    def closed_by_server(self) -> bool:
        """True when the next read hits EOF (the server hung up)."""
        return self.recv_exact(4) == b""

    # --- typed requests -------------------------------------------------

    def ping(self):
        response = self.roundtrip(bytes([OP_PING]))
        check(response is not None and response[0] == STATUS_OK,
              f"ping failed: {response!r}")
        epoch, fingerprint, num_nodes, dim, quant = struct.unpack(
            "<QQIIB", response[1]
        )
        return {
            "epoch": epoch,
            "fingerprint": fingerprint,
            "num_nodes": num_nodes,
            "dim": dim,
            "quant": quant,
        }

    def link_scores(self, pairs):
        payload = struct.pack("<BI", OP_LINK_SCORE, len(pairs))
        for u, v in pairs:
            payload += struct.pack("<II", u, v)
        response = self.roundtrip(payload)
        check(response is not None and response[0] == STATUS_OK,
              f"link-score failed: {response!r}")
        body = response[1]
        check(len(body) == 4 * len(pairs),
              f"link-score body {len(body)}B for {len(pairs)} pairs")
        return list(struct.unpack(f"<{len(pairs)}f", body))

    def knn(self, node: int, k: int):
        response = self.roundtrip(struct.pack("<BII", OP_KNN, node, k))
        check(response is not None and response[0] == STATUS_OK,
              f"knn failed: {response!r}")
        body = response[1]
        (count,) = struct.unpack_from("<I", body)
        check(len(body) == 4 + 8 * count, "knn body size mismatch")
        return [
            struct.unpack_from("<If", body, 4 + 8 * i) for i in range(count)
        ]

    def stats_json(self) -> dict:
        response = self.roundtrip(bytes([OP_STATS]))
        check(response is not None and response[0] == STATUS_OK,
              f"stats failed: {response!r}")
        return json.loads(response[1].decode())

    def metrics_text(self) -> str:
        response = self.roundtrip(bytes([OP_METRICS_TEXT]))
        check(response is not None and response[0] == STATUS_OK,
              f"metrics-text failed: {response!r}")
        return response[1].decode()

    def timeseries_json(self) -> dict:
        response = self.roundtrip(bytes([OP_TIMESERIES]))
        check(response is not None and response[0] == STATUS_OK,
              f"timeseries failed: {response!r}")
        return json.loads(response[1].decode())

    def reload(self, path: str):
        """(status, epoch-or-None, reason)."""
        response = self.roundtrip(bytes([OP_RELOAD]) + path.encode())
        check(response is not None, "reload: server closed the connection")
        status, body = response
        if status == STATUS_OK:
            (epoch,) = struct.unpack("<Q", body)
            return status, epoch, ""
        return status, None, body.decode(errors="replace")


def smoke(args) -> int:
    conn = Conn(args.host, args.port)

    # 1. Ping identity.
    info = conn.ping()
    check(info["num_nodes"] > 0 and info["dim"] > 0,
          f"degenerate model: {info}")
    check(info["epoch"] == 1, f"fresh server should be at epoch 1: {info}")
    if args.expect_quant:
        got = QUANT_NAMES.get(info["quant"], f"?{info['quant']}")
        check(got == args.expect_quant,
              f"quant mode {got}, expected {args.expect_quant}")
    print(f"ok ping: epoch {info['epoch']}, {info['num_nodes']} nodes, "
          f"dim {info['dim']}, "
          f"quant {QUANT_NAMES.get(info['quant'], info['quant'])}")

    # 2. Link scores: sane values, deterministic across identical
    #    requests (one snapshot, one weights file — nothing may drift).
    n = info["num_nodes"]
    pairs = [(0, 1 % n), (1 % n, 2 % n), (n - 1, 0), (0, 0)]
    first = conn.link_scores(pairs)
    second = conn.link_scores(pairs)
    check(all(math.isfinite(s) for s in first),
          f"non-finite link scores: {first}")
    check(first == second,
          f"link scores not deterministic: {first} vs {second}")
    print(f"ok link-score: {len(pairs)} pairs, deterministic, "
          f"scores like {first[0]:.4f}")

    # 3. kNN: self-excluded, descending cosine, correct count.
    k = min(5, n - 1)
    neighbors = conn.knn(0, k)
    check(len(neighbors) == k, f"knn returned {len(neighbors)}, wanted {k}")
    check(all(v != 0 for v, _ in neighbors), "knn returned the query node")
    cosines = [c for _, c in neighbors]
    check(all(c1 >= c2 for c1, c2 in zip(cosines, cosines[1:])),
          f"knn cosines not descending: {cosines}")
    check(all(abs(c) <= 1.0 + 1e-4 for c in cosines),
          f"cosine out of range: {cosines}")
    print(f"ok knn: top-{k} of node 0, best cosine {cosines[0]:.4f}")

    # 4. Stats snapshot: the registry schema with live serve.* counters.
    stats = conn.stats_json()
    check(stats.get("schema_version") == 1,
          f"stats schema_version {stats.get('schema_version')!r}")
    values = {m["name"]: m for m in stats["metrics"]}
    for name in ("serve.connections", "serve.requests",
                 "serve.link.requests", "serve.link.pairs"):
        check(name in values, f"stats missing {name}")
        check(values[name]["value"] > 0, f"{name} never incremented")
    check("serve.epoch" in values, "stats missing serve.epoch")
    check("slow_requests" in stats, "stats missing the slow_requests log")
    slow = stats["slow_requests"]
    check(isinstance(slow, list), f"slow_requests is {type(slow)}")
    totals = [r["total_seconds"] for r in slow]
    check(totals == sorted(totals, reverse=True),
          f"slow_requests not slowest-first: {totals}")
    if args.expect_slow > 0.0:
        check(bool(slow),
              "slow_requests empty despite an injected scorer stall")
        check(totals[0] >= args.expect_slow,
              f"slowest request {totals[0]:.4f}s < expected "
              f"{args.expect_slow}s stall")
        check(slow[0]["queue_seconds"] + slow[0]["forward_seconds"]
              >= args.expect_slow * 0.5,
              f"stall not attributed to the scorer stages: {slow[0]}")
    print(f"ok stats: {len(values)} metrics, "
          f"serve.requests={values['serve.requests']['value']:.0f}, "
          f"{len(slow)} slow requests")

    # 4b. Prometheus exposition: independently parsed and validated,
    #     then cross-checked against the JSON stats snapshot.
    series = validate_prometheus(conn.metrics_text())
    check("serve_requests_total" in series,
          "exposition missing serve_requests_total")
    check(series["serve_requests_total"]["kind"] == "counter",
          "serve_requests_total is not a counter")
    check(series["serve_requests_total"]["value"]
          >= values["serve.requests"]["value"],
          "exposition counter behind the stats snapshot")
    check("serve_link_latency_seconds" in series,
          "exposition missing the link latency histogram")
    link = series["serve_link_latency_seconds"]
    check(link["kind"] == "histogram" and link["count"] > 0,
          f"link latency histogram empty: {link}")
    check("serve_stage_total_seconds" in series,
          "exposition missing the request-stage histograms")
    print(f"ok metrics-text: {len(series)} series validated, "
          f"link count {link['count']:.0f}")

    # 4c. Flight-recorder rollups: schema, windows, live serve counters.
    timeseries = conn.timeseries_json()
    check(timeseries.get("schema_version") == 1,
          f"timeseries schema_version {timeseries.get('schema_version')!r}")
    check(timeseries.get("samples", 0) >= 1, "recorder never sampled")
    windows = timeseries.get("windows", [])
    check(bool(windows), "timeseries has no windows")
    for window in windows:
        names = {m["name"] for m in window["metrics"]}
        check("serve.requests" in names,
              f"window {window['seconds']}s missing serve.requests")
        check("obs.timeseries.samples" in names,
              "recorder's own health counter missing")
    print(f"ok timeseries: {timeseries['samples']} samples, "
          f"{len(windows)} windows")

    # 5. Malformed frame: unknown opcode — bad request, connection
    #    closed, server still up for the next connection.
    bad = Conn(args.host, args.port)
    response = bad.roundtrip(bytes([0x7F]))
    check(response is not None and response[0] == STATUS_BAD_REQUEST,
          f"unknown opcode not rejected: {response!r}")
    check(bad.closed_by_server(),
          "connection stayed open after a malformed frame")
    bad.close()

    # A truncated body (link-score claiming 8 pairs, sending none).
    bad = Conn(args.host, args.port)
    response = bad.roundtrip(struct.pack("<BI", OP_LINK_SCORE, 8))
    check(response is not None and response[0] == STATUS_BAD_REQUEST,
          f"truncated body not rejected: {response!r}")
    bad.close()
    print("ok malformed frames rejected, connection closed, server alive")

    # 6. Oversized frame: a 256 MiB length prefix with no body — the
    #    server must reject from the header alone (a response at all
    #    proves it never tried to read the phantom payload).
    big = Conn(args.host, args.port)
    big.send_raw(struct.pack("<I", 256 * 1024 * 1024))
    response = big.read_response()
    check(response is not None and response[0] == STATUS_BAD_REQUEST,
          f"oversized frame not rejected: {response!r}")
    check(b"oversized" in response[1], f"unexpected reason: {response[1]!r}")
    big.close()
    print("ok oversized frame rejected from the length prefix")

    # 7. Failed reload: server error, but the connection stays usable
    #    and the published epoch does not move.
    status, _, reason = conn.reload("/nonexistent/embedding.tgla")
    check(status == STATUS_SERVER_ERROR,
          f"missing-file reload returned status {status} ({reason})")
    after = conn.ping()  # same connection must still answer
    check(after["epoch"] == info["epoch"],
          f"failed reload moved the epoch: {after}")
    print("ok failed reload: server error, connection usable, "
          "epoch unchanged")

    # 8. Successful reload bumps the epoch and keeps serving.
    if args.reload_path:
        status, epoch, reason = conn.reload(args.reload_path)
        check(status == STATUS_OK, f"reload failed: {reason}")
        check(epoch == info["epoch"] + 1,
              f"reload epoch {epoch}, expected {info['epoch'] + 1}")
        check(conn.ping()["epoch"] == epoch, "ping disagrees with reload")
        conn.link_scores(pairs)  # still scoring on the new snapshot
        print(f"ok reload: epoch {info['epoch']} -> {epoch}")

    conn.close()
    print("serve smoke: all checks passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--reload-path", default="",
        help="embedding artifact to hot-reload (skips the reload check "
        "when omitted)",
    )
    parser.add_argument(
        "--expect-quant", default="", choices=["", "fp32", "int8"],
        help="assert the server's quantization mode",
    )
    parser.add_argument(
        "--expect-slow", type=float, default=0.0,
        help="require the slow-request log to hold a request of at "
        "least this many seconds (for failpoint-stall CI runs)",
    )
    args = parser.parse_args(argv)
    try:
        return smoke(args)
    except SmokeFailure as err:
        print(f"serve smoke FAILED: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
