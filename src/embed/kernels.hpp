/// @file
/// SGNS kernel backends: one interface over the inner loops shared by
/// the Hogwild, batched, and streaming trainers.
///
/// The paper attributes most of the GPU word2vec speedup to coalesced
/// vector access, parallel reduction, and batched sigmoid evaluation
/// (SV-B). On the CPU those map onto SIMD dot/axpy kernels plus a
/// vectorized sigmoid-LUT gather; this header names that contract so
/// the three trainers share exactly one implementation of the hot loop
/// and a future GPU/ISPC backend can slot in without touching them.
///
/// Three implementations exist today:
///
///   - "scalar"          — the reference `detail::dot/axpy` loops in
///                         sgns_model.cpp, compiled under the default
///                         target ISA (byte-identical to the historic
///                         trainers).
///   - "scalar-modeled"  — the same loops with compiler barriers,
///                         modeling one-thread-per-element uncoalesced
///                         access (SgnsConfig::vectorized = false, the
///                         paper-faithful un-optimized GPU baseline).
///   - "simd"            — fused chunked kernels in kernels.cpp built
///                         on util/simd.hpp's f32 half; its ISA string
///                         reports which vector backend the PR-7
///                         -DTGL_SIMD=auto|avx2|scalar dispatch chose.
///
/// Backends agree *in law, not bytes*: the simd dot reassociates the
/// reduction into vector partial sums, so trained embeddings match in
/// link-prediction accuracy (the `ctest -L equivalence` battery) but
/// not bitwise, and checkpoint fingerprints include the resolved
/// backend name + ISA.
///
/// This header is intrinsics-free on purpose: the AVX2 instructions
/// live only inside kernels.cpp (the PR-7 one-ISA-flagged-TU pattern),
/// so including this header never leaks vector code into generic TUs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace tgl::embed::kernels {

/// CLI-selectable backend. kAuto resolves to the simd kernels whenever
/// the build carries real vector lanes and to the scalar reference
/// loops on the scalar-fallback build (where 8-lane emulation would
/// only add overhead).
enum class SgnsBackend : std::uint8_t
{
    kAuto = 0,
    kScalar,
    kSimd,
};

/// Parse a --sgns-backend value ("auto", "scalar", "simd").
std::optional<SgnsBackend> parse_sgns_backend(std::string_view name);

/// Flag spelling of a backend value.
const char* sgns_backend_name(SgnsBackend backend);

/// Upper bound on targets handed to one update_targets call. The
/// trainers buffer the positive target plus the sampled negatives into
/// chunks of this many rows so the simd backend can batch the sigmoid
/// evaluation across them (8 = one full AVX2 f32 vector).
inline constexpr std::size_t kSgnsTargetChunk = 8;

/// One SGNS kernel backend. All functions operate on packed rows of
/// `dim` floats; none of them allocate or lock.
struct SgnsBackendOps
{
    /// Stable identity ("scalar", "scalar-modeled", "simd") — mixed
    /// into checkpoint fingerprints.
    const char* name;
    /// Vector ISA the backend was compiled for ("generic" for the
    /// scalar loops, util::simd::kIsaName for the simd kernels).
    const char* isa;
    /// sum(a[i] * b[i]).
    float (*dot)(const float* a, const float* b, unsigned dim);
    /// y[i] += g * x[i].
    void (*axpy)(float g, const float* x, float* y, unsigned dim);
    /// out[i] = sigma(x[i]) with the SigmoidTable saturation law
    /// (x >= 6 -> 1, x <= -6 -> 0, NaN -> 1).
    void (*sigmoid_batch)(const float* x, float* out, std::size_t n);
    /// Fused SGNS step over up to kSgnsTargetChunk targets: per target
    /// t, score = dot(context_row, target_rows[t]); gradient =
    /// (labels[t] - sigma(score)) * alpha; scratch += gradient *
    /// target_rows[t]; target_rows[t] += gradient * context_row. The
    /// context-row update itself stays deferred in scratch (word2vec
    /// reference semantics) — the caller applies it after the last
    /// chunk.
    void (*update_targets)(float* context_row, float* const* target_rows,
                           const float* labels, std::size_t count,
                           unsigned dim, float alpha, float* scratch);
};

/// The vectorized kernels (kernels.cpp, the ISA-flagged TU). On a
/// scalar build these run util/simd.hpp's emulated 8-lane f32 structs.
const SgnsBackendOps& simd_sgns_ops();

/// Vector ISA the simd kernels were compiled for, without pulling
/// util/simd.hpp into the caller's TU.
const char* simd_sgns_isa();

/// The reference loops (sgns_model.cpp, default target ISA).
const SgnsBackendOps& scalar_sgns_ops();

/// The barriered uncoalesced-access model (SgnsConfig::vectorized =
/// false).
const SgnsBackendOps& modeled_scalar_sgns_ops();

} // namespace tgl::embed::kernels
