file(REMOVE_RECURSE
  "libtgl.a"
)
