#include "nn/gemm.hpp"

#include "util/parallel_for.hpp"

namespace tgl::nn {

namespace {

/// Parallelize over row blocks only when the problem amortizes the
/// team dispatch (the paper's classifier layers are tiny).
util::ParallelOptions
gemm_options(std::size_t m, std::size_t n, std::size_t k)
{
    util::ParallelOptions options;
    if (m * n * k < kParallelFlopThreshold) {
        options.num_threads = 1;
    }
    options.grain = 8;
    return options;
}

} // namespace

void
matmul(const Tensor& a, const Tensor& b, Tensor& c)
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    TGL_ASSERT(b.rows() == k);
    c.resize(m, n);

    // i-k-j order: the inner j loop streams one row of B and one row of
    // C, vectorizing cleanly and reusing the A element from a register.
    util::parallel_for(
        0, m,
        [&](std::size_t i) {
            float* c_row = c.data() + i * n;
            const float* a_row = a.data() + i * k;
            for (std::size_t l = 0; l < k; ++l) {
                const float a_val = a_row[l];
                const float* b_row = b.data() + l * n;
                for (std::size_t j = 0; j < n; ++j) {
                    c_row[j] += a_val * b_row[j];
                }
            }
        },
        gemm_options(m, n, k));
}

void
matmul_nt(const Tensor& a, const Tensor& b, Tensor& c)
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    TGL_ASSERT(b.cols() == k);
    c.resize(m, n);

    // Row-by-row dot products; both operands stream contiguously.
    util::parallel_for(
        0, m,
        [&](std::size_t i) {
            const float* a_row = a.data() + i * k;
            float* c_row = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                const float* b_row = b.data() + j * k;
                float sum = 0.0f;
                for (std::size_t l = 0; l < k; ++l) {
                    sum += a_row[l] * b_row[l];
                }
                c_row[j] = sum;
            }
        },
        gemm_options(m, n, k));
}

void
matmul_tn(const Tensor& a, const Tensor& b, Tensor& c)
{
    const std::size_t k = a.rows();
    const std::size_t m = a.cols();
    const std::size_t n = b.cols();
    TGL_ASSERT(b.rows() == k);
    c.resize(m, n);

    util::parallel_for(
        0, m,
        [&](std::size_t i) {
            float* c_row = c.data() + i * n;
            for (std::size_t l = 0; l < k; ++l) {
                const float a_val = a(l, i);
                const float* b_row = b.data() + l * n;
                for (std::size_t j = 0; j < n; ++j) {
                    c_row[j] += a_val * b_row[j];
                }
            }
        },
        gemm_options(m, n, k));
}

void
matmul_naive(const Tensor& a, const Tensor& b, Tensor& c)
{
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    TGL_ASSERT(b.rows() == k);
    c.resize(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            float sum = 0.0f;
            for (std::size_t l = 0; l < k; ++l) {
                sum += a(i, l) * b(l, j);
            }
            c(i, j) = sum;
        }
    }
}

} // namespace tgl::nn
