/// @file
/// xoshiro256** — the workhorse PRNG for all sampling in tgl.
///
/// Chosen over std::mt19937_64 because random-walk transition sampling
/// sits on the hot path (one draw per walk step, SV-A of the paper) and
/// xoshiro256** is both several times faster and has far smaller state,
/// which matters when thousands of per-walk streams are live at once.
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021 (public-domain reference implementation).
#pragma once

#include "rng/splitmix64.hpp"

#include <cstdint>

namespace tgl::rng {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /// Seed via SplitMix64 expansion so any 64-bit seed gives a good state.
    explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL)
    {
        SplitMix64 mixer(seed);
        for (auto& word : state_) {
            word = mixer.next();
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /// Next 64 pseudorandom bits.
    constexpr result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Jump 2^128 draws ahead; gives non-overlapping parallel streams.
    constexpr void
    jump()
    {
        constexpr std::uint64_t kJump[] = {
            0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
        std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::uint64_t word : kJump) {
            for (int bit = 0; bit < 64; ++bit) {
                if (word & (std::uint64_t{1} << bit)) {
                    s0 ^= state_[0];
                    s1 ^= state_[1];
                    s2 ^= state_[2];
                    s3 ^= state_[3];
                }
                (*this)();
            }
        }
        state_[0] = s0;
        state_[1] = s1;
        state_[2] = s2;
        state_[3] = s3;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace tgl::rng
