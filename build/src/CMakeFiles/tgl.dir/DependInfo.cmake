
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_prep.cpp" "src/CMakeFiles/tgl.dir/core/data_prep.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/core/data_prep.cpp.o.d"
  "/root/repo/src/core/link_prediction.cpp" "src/CMakeFiles/tgl.dir/core/link_prediction.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/core/link_prediction.cpp.o.d"
  "/root/repo/src/core/link_property_prediction.cpp" "src/CMakeFiles/tgl.dir/core/link_property_prediction.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/core/link_property_prediction.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/tgl.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/node_classification.cpp" "src/CMakeFiles/tgl.dir/core/node_classification.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/core/node_classification.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/tgl.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/embed/batched_trainer.cpp" "src/CMakeFiles/tgl.dir/embed/batched_trainer.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/embed/batched_trainer.cpp.o.d"
  "/root/repo/src/embed/embedding.cpp" "src/CMakeFiles/tgl.dir/embed/embedding.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/embed/embedding.cpp.o.d"
  "/root/repo/src/embed/negative_table.cpp" "src/CMakeFiles/tgl.dir/embed/negative_table.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/embed/negative_table.cpp.o.d"
  "/root/repo/src/embed/sgns_model.cpp" "src/CMakeFiles/tgl.dir/embed/sgns_model.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/embed/sgns_model.cpp.o.d"
  "/root/repo/src/embed/trainer.cpp" "src/CMakeFiles/tgl.dir/embed/trainer.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/embed/trainer.cpp.o.d"
  "/root/repo/src/embed/vocab.cpp" "src/CMakeFiles/tgl.dir/embed/vocab.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/embed/vocab.cpp.o.d"
  "/root/repo/src/gen/barabasi_albert.cpp" "src/CMakeFiles/tgl.dir/gen/barabasi_albert.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/gen/barabasi_albert.cpp.o.d"
  "/root/repo/src/gen/catalog.cpp" "src/CMakeFiles/tgl.dir/gen/catalog.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/gen/catalog.cpp.o.d"
  "/root/repo/src/gen/erdos_renyi.cpp" "src/CMakeFiles/tgl.dir/gen/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/gen/erdos_renyi.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "src/CMakeFiles/tgl.dir/gen/rmat.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/gen/rmat.cpp.o.d"
  "/root/repo/src/gen/sbm.cpp" "src/CMakeFiles/tgl.dir/gen/sbm.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/gen/sbm.cpp.o.d"
  "/root/repo/src/gen/timestamps.cpp" "src/CMakeFiles/tgl.dir/gen/timestamps.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/gen/timestamps.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/tgl.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/tgl.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/tgl.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/CMakeFiles/tgl.dir/graph/reorder.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/reorder.cpp.o.d"
  "/root/repo/src/graph/snapshot.cpp" "src/CMakeFiles/tgl.dir/graph/snapshot.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/snapshot.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/tgl.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/stats.cpp.o.d"
  "/root/repo/src/graph/temporal_graph.cpp" "src/CMakeFiles/tgl.dir/graph/temporal_graph.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/graph/temporal_graph.cpp.o.d"
  "/root/repo/src/nn/data_loader.cpp" "src/CMakeFiles/tgl.dir/nn/data_loader.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/data_loader.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/CMakeFiles/tgl.dir/nn/gemm.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/gemm.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/tgl.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/tgl.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/tgl.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/tgl.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/CMakeFiles/tgl.dir/nn/optim.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/optim.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/tgl.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/profiling/comparison_kernels.cpp" "src/CMakeFiles/tgl.dir/profiling/comparison_kernels.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/profiling/comparison_kernels.cpp.o.d"
  "/root/repo/src/profiling/op_counters.cpp" "src/CMakeFiles/tgl.dir/profiling/op_counters.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/profiling/op_counters.cpp.o.d"
  "/root/repo/src/profiling/phase_timer.cpp" "src/CMakeFiles/tgl.dir/profiling/phase_timer.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/profiling/phase_timer.cpp.o.d"
  "/root/repo/src/profiling/stall_model.cpp" "src/CMakeFiles/tgl.dir/profiling/stall_model.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/profiling/stall_model.cpp.o.d"
  "/root/repo/src/rng/alias_table.cpp" "src/CMakeFiles/tgl.dir/rng/alias_table.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/rng/alias_table.cpp.o.d"
  "/root/repo/src/rng/discrete_sampler.cpp" "src/CMakeFiles/tgl.dir/rng/discrete_sampler.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/rng/discrete_sampler.cpp.o.d"
  "/root/repo/src/rng/random.cpp" "src/CMakeFiles/tgl.dir/rng/random.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/rng/random.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/tgl.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/tgl.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/util/env.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/tgl.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/parallel_for.cpp" "src/CMakeFiles/tgl.dir/util/parallel_for.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/util/parallel_for.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/CMakeFiles/tgl.dir/util/string_util.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/util/string_util.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/tgl.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/walk/corpus.cpp" "src/CMakeFiles/tgl.dir/walk/corpus.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/walk/corpus.cpp.o.d"
  "/root/repo/src/walk/engine.cpp" "src/CMakeFiles/tgl.dir/walk/engine.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/walk/engine.cpp.o.d"
  "/root/repo/src/walk/stats.cpp" "src/CMakeFiles/tgl.dir/walk/stats.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/walk/stats.cpp.o.d"
  "/root/repo/src/walk/transition.cpp" "src/CMakeFiles/tgl.dir/walk/transition.cpp.o" "gcc" "src/CMakeFiles/tgl.dir/walk/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
