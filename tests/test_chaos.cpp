/// Chaos harness: the checkpointed pipeline under seeded failpoint
/// schedules. The invariant under test is the PR's acceptance bar —
/// every chaos run either completes with artifacts bit-identical to a
/// fault-free run, or fails cleanly with a checkpoint from which a
/// resumed run converges. Also unit-covers the stall watchdog, the
/// phase board, and cooperative cancellation.
///
/// Seeds are fixed (CI runs `ctest -L chaos` with TGL_CHAOS_SEED
/// unset → all three) so failures reproduce exactly.
#include "core/pipeline.hpp"

#include "core/checkpoint.hpp"
#include "rng/splitmix64.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace tgl::core {
namespace {

using namespace std::chrono_literals;

std::string
scratch_dir(const std::string& name)
{
    const std::string path = testing::TempDir() + "/tgl_chaos_" + name;
    std::filesystem::remove_all(path);
    return path;
}

/// Small deterministic temporal graph: a ring with chords and
/// increasing timestamps (the checkpoint suite's workload).
graph::EdgeList
test_edges()
{
    graph::EdgeList edges;
    const graph::NodeId n = 40;
    for (graph::NodeId u = 0; u < n; ++u) {
        edges.add(u, (u + 1) % n, 0.01 * u);
        edges.add(u, (u + 7) % n, 0.01 * u + 0.005);
    }
    return edges;
}

/// Fully deterministic configuration: every phase reproduces
/// bit-for-bit, so a converged chaos run must match a fault-free run.
PipelineConfig
test_config()
{
    PipelineConfig config;
    config.walk.walks_per_node = 4;
    config.walk.max_length = 6;
    config.sgns.dim = 4;
    config.sgns.epochs = 2;
    config.sgns.num_threads = 1; // Hogwild is deterministic only solo
    config.classifier.max_epochs = 3;
    config.classifier.batch_size = 16;
    return config;
}

std::string
file_bytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::size_t
count_quarantined(const std::string& dir)
{
    std::size_t count = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().find(".corrupt.") !=
            std::string::npos) {
            ++count;
        }
    }
    return count;
}

void
remove_quarantined(const std::string& dir)
{
    for (const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().find(".corrupt.") !=
            std::string::npos) {
            std::filesystem::remove(entry.path());
        }
    }
}

/// Randomized-but-seeded failpoint schedule: one terminal kill at a
/// phase boundary, one transient write hiccup the retry layer must
/// absorb, and one corrupted checkpoint load the quarantine path must
/// survive. Positions and counts vary with the seed; the site mix
/// exercises every self-healing layer on every run.
std::string
schedule_for_seed(std::uint64_t seed)
{
    rng::SplitMix64 rng(seed);
    std::string spec;
    spec += rng.next() % 2 == 0 ? "pipeline.after-walk=error@1"
                                : "pipeline.after-word2vec=error@1";
    spec += ";artifact_io.write=error:transient@" +
            std::to_string(1 + rng.next() % 3);
    spec += ";checkpoint.load=corrupt@" +
            std::to_string(1 + rng.next() % 2);
    return spec;
}

class ChaosTest : public testing::Test
{
  protected:
    void TearDown() override
    {
        util::FailpointRegistry::clear();
        util::reset_cancellation();
    }
};

/// The E2E chaos invariant, one fixed seed per instantiation.
class ChaosSchedule : public ChaosTest,
                      public testing::WithParamInterface<std::uint64_t>
{
};

TEST_P(ChaosSchedule, ConvergesToFaultFreeArtifacts)
{
    const std::uint64_t seed = GetParam();
    const graph::EdgeList edges = test_edges();

    // Fault-free reference run, checkpointed so its artifacts can be
    // compared byte-for-byte.
    const std::string reference_dir =
        scratch_dir("ref_" + std::to_string(seed));
    PipelineConfig config = test_config();
    config.checkpoint_dir = reference_dir;
    const PipelineResult reference =
        run_link_prediction_pipeline(edges, config);
    ASSERT_TRUE(reference.checkpoints.embedding_stored);

    // Chaos runs: the armed schedule kills, delays, and corrupts; each
    // failed run must leave a checkpoint the next attempt extends.
    // Every @N trigger deactivates after firing, so the sequence is
    // guaranteed to run out of faults.
    const std::string chaos_dir =
        scratch_dir("chaos_" + std::to_string(seed));
    config.checkpoint_dir = chaos_dir;
    util::FailpointRegistry::configure(schedule_for_seed(seed), seed);

    PipelineResult converged;
    unsigned clean_failures = 0;
    unsigned quarantined = 0;
    bool completed = false;
    for (int attempt = 0; attempt < 8 && !completed; ++attempt) {
        try {
            converged = run_link_prediction_pipeline(edges, config);
            completed = true;
        } catch (const util::FaultInjected&) {
            ++clean_failures; // terminal kill: checkpoints stay intact
        } catch (const util::TransientError&) {
            ++clean_failures; // retry budget exhausted: same contract
        }
        quarantined += converged.checkpoints.artifacts_quarantined;
    }
    ASSERT_TRUE(completed) << "schedule " << schedule_for_seed(seed)
                           << " did not converge in 8 attempts";
    EXPECT_GE(clean_failures, 1u) << "the terminal kill never fired";
    EXPECT_GE(util::FailpointRegistry::hits("artifact_io.write"), 1u);

    // Converged metrics match the fault-free run exactly.
    EXPECT_DOUBLE_EQ(converged.task.test_accuracy,
                     reference.task.test_accuracy);
    EXPECT_DOUBLE_EQ(converged.task.test_auc, reference.task.test_auc);

    // And the persisted artifacts are bit-identical to the fault-free
    // run's. A final fault-free pass reuses them untouched.
    util::FailpointRegistry::clear();
    const CheckpointManager reference_manager(reference_dir);
    const CheckpointManager chaos_manager(chaos_dir);
    EXPECT_EQ(file_bytes(chaos_manager.corpus_path()),
              file_bytes(reference_manager.corpus_path()));
    EXPECT_EQ(file_bytes(chaos_manager.embedding_path()),
              file_bytes(reference_manager.embedding_path()));

    const PipelineResult warm = run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(warm.checkpoints.embedding_loaded);
    EXPECT_DOUBLE_EQ(warm.task.test_accuracy,
                     reference.task.test_accuracy);

    // Quarantined corrupt artifacts are renamed aside, never deleted —
    // and nothing else may linger once they are swept.
    EXPECT_LE(count_quarantined(chaos_dir), quarantined + 1u);
    remove_quarantined(chaos_dir);
    EXPECT_EQ(count_quarantined(chaos_dir), 0u);
    std::filesystem::remove_all(reference_dir);
    std::filesystem::remove_all(chaos_dir);
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ChaosSchedule,
                         testing::Values(101u, 202u, 303u));

TEST_F(ChaosTest, TransientWriteFaultAbsorbedByRetry)
{
    const std::string dir = scratch_dir("transient_write");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;

    util::FailpointRegistry::configure(
        "artifact_io.write=error:transient@1");
    const PipelineResult result =
        run_link_prediction_pipeline(edges, config);
    // The first store hit the injected hiccup (the @1 site deactivates
    // after firing, so only the faulted pass is counted) and the retry
    // completed the write.
    EXPECT_EQ(util::FailpointRegistry::hits("artifact_io.write"), 1u);
    EXPECT_TRUE(result.checkpoints.corpus_stored);
    EXPECT_EQ(result.checkpoints.artifacts_quarantined, 0u);
    std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, CorruptCheckpointQuarantinedAndRegenerated)
{
    const std::string dir = scratch_dir("quarantine");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;

    const PipelineResult first =
        run_link_prediction_pipeline(edges, config);
    ASSERT_TRUE(first.checkpoints.corpus_stored);

    // Every load in the second run reads a freshly byte-flipped
    // artifact: all of them must be quarantined and regenerated, and
    // the run must still succeed with identical results.
    util::FailpointRegistry::configure("checkpoint.load=corrupt");
    const PipelineResult healed =
        run_link_prediction_pipeline(edges, config);
    util::FailpointRegistry::clear();
    EXPECT_GE(healed.checkpoints.artifacts_quarantined, 1u);
    EXPECT_GE(healed.checkpoints.artifacts_regenerated,
              healed.checkpoints.artifacts_quarantined);
    EXPECT_FALSE(healed.checkpoints.corpus_loaded);
    EXPECT_TRUE(healed.checkpoints.corpus_stored);
    EXPECT_DOUBLE_EQ(healed.task.test_accuracy,
                     first.task.test_accuracy);
    EXPECT_GE(count_quarantined(dir),
              healed.checkpoints.artifacts_quarantined);

    // With the fault gone the regenerated artifacts load cleanly (the
    // embedding resume short-circuits the corpus load entirely).
    const PipelineResult after =
        run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(after.checkpoints.embedding_loaded);
    EXPECT_TRUE(after.checkpoints.classifier_loaded);
    EXPECT_EQ(after.checkpoints.artifacts_quarantined, 0u);
    std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, WatchdogFailsStalledOverlapRunThenResumes)
{
    const std::string dir = scratch_dir("watchdog_stall");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;
    config.overlap = OverlapMode::kOn;
    config.watchdog_timeout_seconds = 0.4;
    ASSERT_TRUE(config.validate().empty());

    // Wedge the consumer: the first shard pop sleeps far past the
    // deadline (interruptibly — the watchdog's cancellation wakes it).
    util::FailpointRegistry::configure("shard_queue.pop=delay:60000ms@1");
    try {
        run_link_prediction_pipeline(edges, config);
        FAIL() << "the stalled run must not complete";
    } catch (const util::Error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("stall watchdog"), std::string::npos) << what;
        EXPECT_NE(what.find("resumable checkpoint"), std::string::npos)
            << what;
        // The report carries per-worker phase state and queue stats.
        EXPECT_NE(what.find("trainer"), std::string::npos) << what;
        EXPECT_NE(what.find("queue"), std::string::npos) << what;
    }
    util::FailpointRegistry::clear();
    // The watchdog's own cancellation request must not leak into the
    // next run.
    EXPECT_FALSE(util::cancellation_requested());

    // Same process, same config, fault gone: the rerun converges.
    const PipelineResult resumed =
        run_link_prediction_pipeline(edges, config);
    EXPECT_GT(resumed.corpus_walks, 0u);
    std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, WatchdogStaysQuietOnHealthyOverlapRun)
{
    const std::string dir = scratch_dir("watchdog_quiet");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;
    config.overlap = OverlapMode::kOn;
    config.watchdog_timeout_seconds = 30.0;

    const PipelineResult result =
        run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(result.overlap.used);
    EXPECT_GT(result.corpus_walks, 0u);
    EXPECT_FALSE(util::cancellation_requested());
    std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, CancellationStopsAtPhaseBoundaryWithCheckpoints)
{
    const std::string dir = scratch_dir("cancel");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;

    // A pending request (what a SIGINT handler records) stops the run
    // at the first safe point as Cancelled, not as a generic Error.
    util::request_cancellation("unit test interrupt");
    EXPECT_THROW(run_link_prediction_pipeline(edges, config),
                 util::Cancelled);
    util::reset_cancellation();

    // Nothing half-written: the rerun completes from whatever phase
    // boundary the cancellation unwound at.
    const PipelineResult resumed =
        run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(resumed.checkpoints.classifier_stored);
    std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, ValidateRejectsBadWatchdogTimeout)
{
    PipelineConfig config = test_config();
    config.watchdog_timeout_seconds = -1.0;
    EXPECT_FALSE(config.validate().empty());
    config.watchdog_timeout_seconds = 0.0;
    EXPECT_TRUE(config.validate().empty());
}

TEST(PhaseBoard, DumpsSortedWorkerStates)
{
    util::PhaseBoard board;
    EXPECT_EQ(board.version(), 0u);
    board.set("worker-2", "idle");
    board.set("worker-1", "pushing shard 3");
    board.set("worker-2", "done");
    EXPECT_EQ(board.version(), 3u);
    EXPECT_EQ(board.dump(),
              "  worker-1: pushing shard 3\n  worker-2: done\n");
}

TEST(StallWatchdogUnit, FiresWithinDeadlineOnNoProgress)
{
    util::StallWatchdog::Options options;
    options.deadline = 100ms;
    options.poll = 10ms;
    options.name = "unit";
    std::atomic<unsigned> stalls{0};
    const auto begin = std::chrono::steady_clock::now();
    util::StallWatchdog watchdog(
        options, [] { return std::uint64_t{7}; },
        [] { return std::string("  worker: wedged\n"); },
        [&](const std::string&) { stalls.fetch_add(1); });
    while (!watchdog.fired() &&
           std::chrono::steady_clock::now() - begin < 5s) {
        std::this_thread::sleep_for(5ms);
    }
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    ASSERT_TRUE(watchdog.fired());
    // Detection latency: deadline + at most a few polls of slack.
    EXPECT_LT(elapsed, 1s);
    EXPECT_EQ(stalls.load(), 1u);
    const std::string report = watchdog.report();
    EXPECT_NE(report.find("unit"), std::string::npos) << report;
    EXPECT_NE(report.find("worker: wedged"), std::string::npos) << report;
    EXPECT_NE(report.find("no progress"), std::string::npos) << report;
}

TEST(StallWatchdogUnit, NeverFiresWhileProgressAdvances)
{
    util::StallWatchdog::Options options;
    options.deadline = 60ms;
    options.poll = 10ms;
    std::atomic<std::uint64_t> progress{0};
    util::StallWatchdog watchdog(
        options,
        // Each sample observes an advance: permanent liveness.
        [&] { return progress.fetch_add(1) + 1; },
        [] { return std::string(); }, [](const std::string&) {});
    std::this_thread::sleep_for(250ms);
    watchdog.stop();
    EXPECT_FALSE(watchdog.fired());
    EXPECT_TRUE(watchdog.report().empty());
}

TEST(StallWatchdogUnit, StopBeforeDeadlinePreventsFiring)
{
    util::StallWatchdog::Options options;
    options.deadline = 200ms;
    options.poll = 10ms;
    util::StallWatchdog watchdog(
        options, [] { return std::uint64_t{0}; },
        [] { return std::string(); }, [](const std::string&) {});
    std::this_thread::sleep_for(50ms);
    watchdog.stop();
    EXPECT_FALSE(watchdog.fired());
}

} // namespace
} // namespace tgl::core
