/// Unit + end-to-end tests for pipeline checkpoint/resume: artifact
/// roundtrips, stale/corrupt rejection, and fault-injected "kills"
/// between phases that a second run must resume from.
#include "core/checkpoint.hpp"

#include "core/pipeline.hpp"
#include "nn/mlp.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace tgl::core {
namespace {

/// Fresh scratch directory per test.
std::string
scratch_dir(const std::string& name)
{
    const std::string path = testing::TempDir() + "/tgl_ckpt_" + name;
    std::filesystem::remove_all(path);
    return path;
}

/// Small deterministic temporal graph: a ring with chords and
/// increasing timestamps.
graph::EdgeList
test_edges()
{
    graph::EdgeList edges;
    const graph::NodeId n = 40;
    for (graph::NodeId u = 0; u < n; ++u) {
        edges.add(u, (u + 1) % n, 0.01 * u);
        edges.add(u, (u + 7) % n, 0.01 * u + 0.005);
    }
    return edges;
}

/// Pipeline configuration whose every phase is deterministic, so a
/// resumed run must reproduce an uninterrupted run bit-for-bit.
PipelineConfig
test_config()
{
    PipelineConfig config;
    config.walk.walks_per_node = 4;
    config.walk.max_length = 6;
    config.sgns.dim = 4;
    config.sgns.epochs = 2;
    config.sgns.num_threads = 1; // Hogwild is deterministic only solo
    config.classifier.max_epochs = 3;
    config.classifier.batch_size = 16;
    return config;
}

walk::Corpus
test_corpus()
{
    walk::Corpus corpus;
    const graph::NodeId walk1[] = {0, 1, 2, 3};
    const graph::NodeId walk2[] = {5, 4};
    corpus.add_walk(walk1);
    corpus.add_walk(walk2);
    return corpus;
}

TEST(CheckpointManager, CorpusRoundTrip)
{
    const CheckpointManager manager(scratch_dir("corpus"));
    const walk::Corpus original = test_corpus();
    manager.store_corpus(123, original);

    walk::Corpus loaded;
    ASSERT_TRUE(manager.load_corpus(123, loaded));
    ASSERT_EQ(loaded.num_walks(), original.num_walks());
    EXPECT_EQ(loaded.num_tokens(), original.num_tokens());
    for (std::size_t i = 0; i < original.num_walks(); ++i) {
        const auto a = original.walk(i);
        const auto b = loaded.walk(i);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
    std::filesystem::remove_all(manager.directory());
}

TEST(CheckpointManager, MissingAndStaleReturnFalse)
{
    const CheckpointManager manager(scratch_dir("stale"));
    walk::Corpus loaded;
    EXPECT_FALSE(manager.load_corpus(123, loaded)); // nothing stored

    manager.store_corpus(123, test_corpus());
    EXPECT_FALSE(manager.load_corpus(456, loaded)); // wrong fingerprint
    EXPECT_TRUE(manager.load_corpus(123, loaded));
    std::filesystem::remove_all(manager.directory());
}

TEST(CheckpointManager, EmbeddingRoundTrip)
{
    const CheckpointManager manager(scratch_dir("embedding"));
    embed::Embedding original(6, 3);
    for (graph::NodeId u = 0; u < 6; ++u) {
        auto row = original.row(u);
        for (unsigned i = 0; i < 3; ++i) {
            row[i] = static_cast<float>(u) + 0.1f * static_cast<float>(i);
        }
    }
    manager.store_embedding(99, original);

    embed::Embedding loaded;
    ASSERT_TRUE(manager.load_embedding(99, loaded));
    EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
    EXPECT_EQ(loaded.dim(), original.dim());
    EXPECT_EQ(loaded.data(), original.data());
    EXPECT_FALSE(manager.load_embedding(100, loaded));
    std::filesystem::remove_all(manager.directory());
}

TEST(CheckpointManager, ClassifierRoundTripAndArchMismatch)
{
    const CheckpointManager manager(scratch_dir("classifier"));
    rng::Random random(7);
    nn::Mlp trained = nn::make_link_predictor(8, 4, random);
    manager.store_classifier("net", 5, trained);

    rng::Random random2(999); // different init, same architecture
    nn::Mlp restored = nn::make_link_predictor(8, 4, random2);
    ASSERT_TRUE(manager.load_classifier("net", 5, restored));
    std::ostringstream a;
    std::ostringstream b;
    trained.save_weights(a, 5);
    restored.save_weights(b, 5);
    EXPECT_EQ(a.str(), b.str());

    // Different architecture under the same name: treated as stale, and
    // the target network's weights stay untouched.
    rng::Random random3(1);
    nn::Mlp other_arch = nn::make_link_predictor(8, 16, random3);
    std::ostringstream before;
    other_arch.save_weights(before, 0);
    EXPECT_FALSE(manager.load_classifier("net", 5, other_arch));
    std::ostringstream after;
    other_arch.save_weights(after, 0);
    EXPECT_EQ(before.str(), after.str());
    std::filesystem::remove_all(manager.directory());
}

TEST(CheckpointManager, StaleLoadLeavesClassifierWeightsUntouched)
{
    const CheckpointManager manager(scratch_dir("stale_classifier"));
    rng::Random random(7);
    nn::Mlp stored = nn::make_link_predictor(8, 4, random);
    manager.store_classifier("net", 5, stored);

    rng::Random random2(8);
    nn::Mlp fresh = nn::make_link_predictor(8, 4, random2);
    std::ostringstream before;
    fresh.save_weights(before, 0);
    EXPECT_FALSE(manager.load_classifier("net", 777, fresh)); // stale
    std::ostringstream after;
    fresh.save_weights(after, 0);
    EXPECT_EQ(before.str(), after.str());
    std::filesystem::remove_all(manager.directory());
}

TEST(CheckpointManager, EveryByteFlipRejectedNotCrash)
{
    const CheckpointManager manager(scratch_dir("byteflip"));
    manager.store_corpus(42, test_corpus());
    const std::string path = manager.corpus_path();

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        blob = buffer.str();
    }
    ASSERT_FALSE(blob.empty());

    walk::Corpus loaded;
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::string corrupt = blob;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out.write(corrupt.data(),
                      static_cast<std::streamsize>(corrupt.size()));
        }
        // Every flip must be swallowed as "regenerate" — never an
        // exception, never a crash, never a wrong successful load.
        EXPECT_FALSE(manager.load_corpus(42, loaded)) << "byte " << i;
    }
    std::filesystem::remove_all(manager.directory());
}

TEST(FingerprintChain, ConfigChangesChangeFingerprints)
{
    const graph::EdgeList edges = test_edges();
    const std::uint64_t base = fingerprint_edges(edges);

    graph::EdgeList other = test_edges();
    other[0].time += 1.0;
    EXPECT_NE(fingerprint_edges(other), base);

    util::Fingerprint a;
    a.mix(base);
    mix_config(a, test_config().walk);
    util::Fingerprint b;
    b.mix(base);
    walk::WalkConfig changed = test_config().walk;
    changed.walks_per_node += 1;
    mix_config(b, changed);
    EXPECT_NE(a.value(), b.value());
}

TEST(PipelineResume, KillAfterWord2vecResumesSkippingBothPhases)
{
    const std::string dir = scratch_dir("resume_w2v");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();

    // Uninterrupted baseline without any checkpointing.
    const PipelineResult baseline =
        run_link_prediction_pipeline(edges, config);

    // Run 1: killed right after the word2vec phase persisted its
    // artifact — the classifier never runs.
    config.checkpoint_dir = dir;
    util::FaultInjector::arm("pipeline.after-word2vec");
    EXPECT_THROW(run_link_prediction_pipeline(edges, config),
                 util::FaultInjected);
    util::FaultInjector::disarm();

    // Run 2: resumes from the embedding checkpoint; the walk and
    // word2vec phases never execute (their timers are never started).
    const PipelineResult resumed =
        run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(resumed.checkpoints.embedding_loaded);
    EXPECT_FALSE(resumed.checkpoints.corpus_loaded);
    EXPECT_FALSE(resumed.checkpoints.embedding_stored);
    EXPECT_TRUE(resumed.checkpoints.classifier_stored);
    EXPECT_EQ(resumed.times.random_walk, 0.0);
    EXPECT_EQ(resumed.times.word2vec, 0.0);

    // Deterministic phases: the resumed run must reproduce the
    // uninterrupted run's metrics exactly.
    EXPECT_DOUBLE_EQ(resumed.task.test_accuracy,
                     baseline.task.test_accuracy);
    EXPECT_DOUBLE_EQ(resumed.task.test_auc, baseline.task.test_auc);
    EXPECT_DOUBLE_EQ(resumed.task.final_train_loss,
                     baseline.task.final_train_loss);

    // Run 3: everything is checkpointed, including the classifier —
    // the training loop is skipped outright.
    const PipelineResult warm = run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(warm.checkpoints.embedding_loaded);
    EXPECT_TRUE(warm.checkpoints.classifier_loaded);
    EXPECT_EQ(warm.task.epochs_run, 0u);
    EXPECT_DOUBLE_EQ(warm.task.test_accuracy, baseline.task.test_accuracy);
    EXPECT_DOUBLE_EQ(warm.task.test_auc, baseline.task.test_auc);
    std::filesystem::remove_all(dir);
}

TEST(PipelineResume, KillAfterWalkResumesCorpusOnly)
{
    const std::string dir = scratch_dir("resume_walk");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;

    util::FaultInjector::arm("pipeline.after-walk");
    EXPECT_THROW(run_link_prediction_pipeline(edges, config),
                 util::FaultInjected);
    util::FaultInjector::disarm();

    const PipelineResult resumed =
        run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(resumed.checkpoints.corpus_loaded);
    EXPECT_FALSE(resumed.checkpoints.embedding_loaded);
    EXPECT_TRUE(resumed.checkpoints.embedding_stored);
    EXPECT_GT(resumed.corpus_walks, 0u);
    std::filesystem::remove_all(dir);
}

TEST(PipelineResume, ConfigChangeInvalidatesDownstreamOnly)
{
    const std::string dir = scratch_dir("resume_stale");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;

    const PipelineResult first = run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(first.checkpoints.corpus_stored);
    EXPECT_TRUE(first.checkpoints.embedding_stored);

    // Changing only the embedding seed keeps the corpus checkpoint
    // valid but makes the embedding (and classifier) stale.
    config.sgns.seed += 1;
    const PipelineResult second =
        run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(second.checkpoints.corpus_loaded);
    EXPECT_FALSE(second.checkpoints.embedding_loaded);
    EXPECT_TRUE(second.checkpoints.embedding_stored);
    EXPECT_FALSE(second.checkpoints.classifier_loaded);
    EXPECT_TRUE(second.checkpoints.classifier_stored);
    std::filesystem::remove_all(dir);
}

TEST(PipelineResume, CorruptCheckpointRegeneratedSilently)
{
    const std::string dir = scratch_dir("resume_corrupt");
    const graph::EdgeList edges = test_edges();
    PipelineConfig config = test_config();

    const PipelineResult baseline =
        run_link_prediction_pipeline(edges, config);

    config.checkpoint_dir = dir;
    run_link_prediction_pipeline(edges, config);

    // Flip one byte in the middle of the embedding artifact.
    const CheckpointManager manager(dir);
    const std::string path = manager.embedding_path();
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 40);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    file.seekp(size / 2);
    file.write(&byte, 1);
    file.close();

    // The corrupt artifact is rejected by its checksum and silently
    // regenerated — the run still succeeds with identical metrics.
    const PipelineResult regenerated =
        run_link_prediction_pipeline(edges, config);
    EXPECT_FALSE(regenerated.checkpoints.embedding_loaded);
    EXPECT_TRUE(regenerated.checkpoints.embedding_stored);
    EXPECT_DOUBLE_EQ(regenerated.task.test_accuracy,
                     baseline.task.test_accuracy);

    // And the regenerated artifact is valid again.
    const PipelineResult after = run_link_prediction_pipeline(edges, config);
    EXPECT_TRUE(after.checkpoints.embedding_loaded);
    std::filesystem::remove_all(dir);
}

TEST(PipelineResume, NodeClassificationCheckpointsClassifier)
{
    const std::string dir = scratch_dir("resume_nodes");
    const graph::EdgeList edges = test_edges();
    std::vector<std::uint32_t> labels(edges.num_nodes());
    for (std::size_t u = 0; u < labels.size(); ++u) {
        labels[u] = static_cast<std::uint32_t>(u % 3);
    }
    PipelineConfig config = test_config();
    config.checkpoint_dir = dir;

    const PipelineResult first =
        run_node_classification_pipeline(edges, labels, 3, config);
    EXPECT_TRUE(first.checkpoints.classifier_stored);

    const PipelineResult second =
        run_node_classification_pipeline(edges, labels, 3, config);
    EXPECT_TRUE(second.checkpoints.classifier_loaded);
    EXPECT_DOUBLE_EQ(second.task.test_accuracy, first.task.test_accuracy);

    // Different labels invalidate the classifier checkpoint.
    labels[0] = (labels[0] + 1) % 3;
    const PipelineResult third =
        run_node_classification_pipeline(edges, labels, 3, config);
    EXPECT_FALSE(third.checkpoints.classifier_loaded);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace tgl::core
