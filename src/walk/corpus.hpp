/// @file
/// Walk corpus: the variable-length "sentences" handed to word2vec.
///
/// The paper stores walks in a dense |V| x K x N matrix; because real
/// temporal walks terminate early (Fig. 4: most are 1-5 tokens), a
/// ragged offsets+tokens layout wastes no space and is exactly the
/// sentence stream the skip-gram trainer consumes.
#pragma once

#include "graph/types.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <span>
#include <vector>

namespace tgl::walk {

/// Append-only store of node-id sequences.
class Corpus
{
  public:
    Corpus() { offsets_.push_back(0); }

    /// Append one walk.
    void
    add_walk(std::span<const graph::NodeId> walk)
    {
        tokens_.insert(tokens_.end(), walk.begin(), walk.end());
        offsets_.push_back(tokens_.size());
    }

    /// Number of walks stored.
    std::size_t num_walks() const { return offsets_.size() - 1; }

    /// Total node tokens across all walks.
    std::size_t num_tokens() const { return tokens_.size(); }

    /// Walk i as a span.
    std::span<const graph::NodeId>
    walk(std::size_t i) const
    {
        return {tokens_.data() + offsets_[i],
                tokens_.data() + offsets_[i + 1]};
    }

    /// Length (token count) of walk i.
    std::size_t
    walk_length(std::size_t i) const
    {
        return offsets_[i + 1] - offsets_[i];
    }

    /// Move another corpus's walks onto the end of this one.
    void append(Corpus&& other);

    /// Raw flat access for trainers.
    const std::vector<graph::NodeId>& tokens() const { return tokens_; }
    const std::vector<std::size_t>& offsets() const { return offsets_; }

    /// Text serialization: one space-separated walk per line (the
    /// sentence format word2vec tooling expects). save_file replaces
    /// the target atomically (temp file + rename).
    void save(std::ostream& out) const;
    static Corpus load(std::istream& in);
    void save_file(const std::string& path) const;
    static Corpus load_file(const std::string& path);

    /// Binary serialization in the CRC32-checksummed artifact container
    /// (util/artifact_io.hpp, kind "corpus"). load_binary rejects
    /// truncated, corrupt, or version-mismatched files with a
    /// tgl::util::Error; @p fingerprint keys the artifact to the walk
    /// configuration that produced it (checkpointing).
    void save_binary(std::ostream& out, std::uint64_t fingerprint = 0) const;
    static Corpus load_binary(std::istream& in,
                              std::uint64_t* fingerprint = nullptr);
    /// Atomic (temp file + rename) binary file write.
    void save_binary_file(const std::string& path,
                          std::uint64_t fingerprint = 0) const;
    static Corpus load_binary_file(const std::string& path,
                                   std::uint64_t* fingerprint = nullptr);

    void
    reserve(std::size_t walks, std::size_t tokens)
    {
        offsets_.reserve(walks + 1);
        tokens_.reserve(tokens);
    }

  private:
    std::vector<graph::NodeId> tokens_;
    std::vector<std::size_t> offsets_; // size num_walks()+1, first is 0
};

/// One slice of the walk corpus produced by sharded generation
/// (engine.hpp) — the unit flowing through the overlap queue. Shards
/// cover contiguous walk-slot ranges; concatenating them in ascending
/// @ref index reproduces the sequential corpus exactly.
struct CorpusShard
{
    std::size_t index = 0; ///< shard number in [0, num_shards)
    Corpus walks;
};

} // namespace tgl::walk
