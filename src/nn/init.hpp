/// @file
/// Parameter initialization schemes.
#pragma once

#include "nn/tensor.hpp"
#include "rng/random.hpp"

namespace tgl::nn {

/// Xavier/Glorot uniform: U(-s, s) with s = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& weights, std::size_t fan_in,
                    std::size_t fan_out, rng::Random& random);

/// Kaiming/He normal for ReLU stacks: N(0, sqrt(2 / fan_in)).
void kaiming_normal(Tensor& weights, std::size_t fan_in,
                    rng::Random& random);

} // namespace tgl::nn
