#include "embed/vocab.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace tgl::embed {

Vocab::Vocab(const walk::Corpus& corpus, std::uint64_t min_count)
{
    // Raw per-node counts. The id space must stay strictly below the
    // NodeId maximum: raw.size() would otherwise exceed the NodeId
    // range and the scan below could not index it with a NodeId.
    std::vector<std::uint64_t> raw;
    for (graph::NodeId node : corpus.tokens()) {
        if (node >= std::numeric_limits<graph::NodeId>::max()) {
            util::fatal("Vocab: node id " + std::to_string(node) +
                        " exhausts the NodeId range");
        }
        if (raw.size() <= node) {
            raw.resize(static_cast<std::size_t>(node) + 1, 0);
        }
        ++raw[node];
    }

    // Collect surviving nodes and sort by descending count (ties by
    // node id for determinism). The induction variable is size_t, not
    // NodeId: a NodeId counter wraps to 0 before reaching a size() at
    // the top of the id range and the loop never terminates.
    std::vector<graph::NodeId> order;
    for (std::size_t node = 0; node < raw.size(); ++node) {
        if (raw[node] >= min_count && raw[node] > 0) {
            order.push_back(static_cast<graph::NodeId>(node));
        }
    }
    std::sort(order.begin(), order.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                  return raw[a] != raw[b] ? raw[a] > raw[b] : a < b;
              });

    nodes_ = std::move(order);
    counts_.resize(nodes_.size());
    node_to_word_.assign(raw.size(), kNoWord);
    for (WordId w = 0; w < nodes_.size(); ++w) {
        counts_[w] = raw[nodes_[w]];
        node_to_word_[nodes_[w]] = w;
        total_tokens_ += counts_[w];
    }
}

} // namespace tgl::embed
