# Empty dependencies file for tgl_cli.
# This may be replaced when dependencies are built.
