/// Tests for the MLP container and the paper's two architectures.
#include "nn/mlp.hpp"

#include "nn/loss.hpp"
#include "nn/optim.hpp"

#include <gtest/gtest.h>

namespace tgl::nn {
namespace {

TEST(Mlp, LinkPredictorArchitecture)
{
    rng::Random random(1);
    Mlp net = make_link_predictor(16, 8, random);
    EXPECT_EQ(net.depth(), 4u); // Linear, ReLU, Linear, Sigmoid
    // 16*8 + 8 weights+bias, 8*1 + 1.
    EXPECT_EQ(net.num_parameters(), 16u * 8 + 8 + 8 + 1);
    EXPECT_EQ(net.describe(),
              "Linear(16 -> 8) -> ReLU -> Linear(8 -> 1) -> Sigmoid");
}

TEST(Mlp, NodeClassifierArchitecture)
{
    rng::Random random(2);
    Mlp net = make_node_classifier(8, 32, 16, 5, random);
    EXPECT_EQ(net.depth(), 6u);
    EXPECT_EQ(net.num_parameters(),
              8u * 32 + 32 + 32 * 16 + 16 + 16 * 5 + 5);
}

TEST(Mlp, ForwardShapes)
{
    rng::Random random(3);
    Mlp net = make_link_predictor(4, 8, random);
    const Tensor input(10, 4);
    const Tensor& output = net.forward(input);
    EXPECT_EQ(output.rows(), 10u);
    EXPECT_EQ(output.cols(), 1u);
    // Sigmoid output is a probability.
    for (std::size_t r = 0; r < 10; ++r) {
        EXPECT_GE(output(r, 0), 0.0f);
        EXPECT_LE(output(r, 0), 1.0f);
    }
}

TEST(Mlp, LearnsXor)
{
    // XOR is not linearly separable: passing this requires the hidden
    // layer + nonlinearity to actually work end to end.
    rng::Random random(4);
    Mlp net = make_link_predictor(2, 8, random);
    Sgd optimizer(net.parameters(), 0.5f, 0.9f);

    const Tensor inputs(4, 2, {0.0f, 0.0f, 0.0f, 1.0f,
                               1.0f, 0.0f, 1.0f, 1.0f});
    const std::vector<float> targets = {0.0f, 1.0f, 1.0f, 0.0f};

    double final_loss = 1e9;
    for (int epoch = 0; epoch < 2000; ++epoch) {
        const Tensor& output = net.forward(inputs);
        const LossResult loss = binary_cross_entropy(output, targets);
        final_loss = loss.loss;
        optimizer.zero_grad();
        net.backward(loss.grad);
        optimizer.step();
    }
    EXPECT_LT(final_loss, 0.1);

    const Tensor& output = net.forward(inputs);
    EXPECT_LT(output(0, 0), 0.5f);
    EXPECT_GT(output(1, 0), 0.5f);
    EXPECT_GT(output(2, 0), 0.5f);
    EXPECT_LT(output(3, 0), 0.5f);
}

TEST(Mlp, ClassifierLearnsSeparableClasses)
{
    rng::Random random(5);
    Mlp net = make_node_classifier(2, 16, 8, 3, random);
    Sgd optimizer(net.parameters(), 0.2f, 0.9f);

    // Three well-separated clusters.
    rng::Random data_random(6);
    constexpr int kPerClass = 30;
    Tensor inputs(3 * kPerClass, 2);
    std::vector<std::uint32_t> targets;
    const float centers[3][2] = {{0, 0}, {4, 0}, {0, 4}};
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < kPerClass; ++i) {
            const std::size_t row = c * kPerClass + i;
            inputs(row, 0) =
                centers[c][0] +
                static_cast<float>(data_random.next_gaussian()) * 0.3f;
            inputs(row, 1) =
                centers[c][1] +
                static_cast<float>(data_random.next_gaussian()) * 0.3f;
            targets.push_back(c);
        }
    }

    for (int epoch = 0; epoch < 300; ++epoch) {
        const Tensor& output = net.forward(inputs);
        const LossResult loss = nll_loss(output, targets);
        optimizer.zero_grad();
        net.backward(loss.grad);
        optimizer.step();
    }

    const Tensor& output = net.forward(inputs);
    int correct = 0;
    for (std::size_t r = 0; r < output.rows(); ++r) {
        std::uint32_t best = 0;
        for (std::uint32_t c = 1; c < 3; ++c) {
            if (output(r, c) > output(r, best)) {
                best = c;
            }
        }
        if (best == targets[r]) {
            ++correct;
        }
    }
    EXPECT_GT(correct, 85); // out of 90
}

TEST(Mlp, ResidualLinkPredictorArchitecture)
{
    rng::Random random(8);
    Mlp net = make_residual_link_predictor(16, 8, 3, random);
    // Linear, ReLU, 3 blocks, Linear, Sigmoid.
    EXPECT_EQ(net.depth(), 7u);
    EXPECT_EQ(net.num_parameters(),
              16u * 8 + 8 + 3 * (8 * 8 + 8 + 8 * 8 + 8) + 8 + 1);
}

TEST(Mlp, ResidualPredictorLearnsXor)
{
    rng::Random random(9);
    Mlp net = make_residual_link_predictor(2, 8, 2, random);
    // Deeper stack: gentler learning rate than the plain-FNN XOR test.
    Sgd optimizer(net.parameters(), 0.2f, 0.9f);
    const Tensor inputs(4, 2, {0.0f, 0.0f, 0.0f, 1.0f,
                               1.0f, 0.0f, 1.0f, 1.0f});
    const std::vector<float> targets = {0.0f, 1.0f, 1.0f, 0.0f};
    double final_loss = 1e9;
    for (int epoch = 0; epoch < 4000; ++epoch) {
        const Tensor& output = net.forward(inputs);
        const LossResult loss = binary_cross_entropy(output, targets);
        final_loss = loss.loss;
        optimizer.zero_grad();
        net.backward(loss.grad);
        optimizer.step();
    }
    EXPECT_LT(final_loss, 0.1);
}

TEST(Mlp, BackwardReturnsInputGradientShape)
{
    rng::Random random(7);
    Mlp net = make_link_predictor(6, 4, random);
    const Tensor input(5, 6);
    net.forward(input);
    const Tensor upstream(5, 1);
    const Tensor& grad = net.backward(upstream);
    EXPECT_EQ(grad.rows(), 5u);
    EXPECT_EQ(grad.cols(), 6u);
}

TEST(Mlp, DifferentSeedsGiveDifferentInitialOutputs)
{
    rng::Random r1(10), r2(11);
    Mlp a = make_link_predictor(4, 4, r1);
    Mlp b = make_link_predictor(4, 4, r2);
    Tensor input(1, 4);
    input.fill(1.0f);
    EXPECT_NE(a.forward(input)(0, 0), b.forward(input)(0, 0));
}

} // namespace
} // namespace tgl::nn
