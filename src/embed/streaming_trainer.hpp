/// @file
/// Streaming (overlapped) SGNS trainer: the consumer half of the
/// sharded walk→word2vec pipeline (core/overlap.hpp).
///
/// The sequential trainer needs the whole corpus twice before the
/// first update: once to build the Vocab and once for the
/// unigram^0.75 negative table. Streaming resolves that dependency in
/// two steps. The *word space* needs no corpus at all — node ids are
/// known a priori from the CSR, so the model is sized |V| with word id
/// == node id. The *negative distribution* is approximated during
/// epoch 0 by a structural prior supplied by the caller (the CSR's
/// (out_degree+1)^0.75 — walk visit frequency is degree-biased), while
/// exact occurrence counts are accumulated as shards stream past; the
/// exact unigram^0.75 table is rebuilt once before epoch 1 and every
/// later epoch replays the assembled corpus exactly like the
/// sequential trainer. A statistical-equivalence test
/// (tests/test_overlap.cpp) checks the rebuilt table against the
/// sequential path's.
#pragma once

#include "embed/embedding.hpp"
#include "embed/sgns_model.hpp"
#include "embed/trainer.hpp"
#include "util/shard_queue.hpp"
#include "walk/corpus.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tgl::embed {

/// Streaming-trainer knobs on top of the shared SGNS hyperparameters.
struct StreamingSgnsConfig
{
    SgnsConfig sgns;
    /// Epoch-0 consumer team size (>= 1; the calling thread is rank 0).
    unsigned consumer_threads = 1;
    /// Expected tokens of one full corpus pass — the epoch-0 learning-
    /// rate schedule denominator (the exact count only exists once
    /// every shard has arrived). The schedule switches to exact totals
    /// for epochs >= 1.
    std::uint64_t total_token_estimate = 0;
};

/// Everything the streaming trainer produces: the embedding, the
/// corpus reassembled in shard-index order (== the sequential corpus),
/// the exact per-node token counts, and the usual execution stats.
struct StreamingResult
{
    Embedding embedding;
    walk::Corpus corpus;
    std::vector<std::uint64_t> counts;
    TrainStats stats;
};

/// Reasons @p config cannot run on the streaming path (empty when it
/// can). min_count filtering and frequent-word subsampling both need
/// global counts before the first update, which streaming by
/// definition does not have during epoch 0.
std::vector<std::string> streaming_unsupported(const SgnsConfig& config);

/// Train SGNS embeddings from a live shard queue (Hogwild semantics,
/// identity word space). Consumes shards until the queue is closed and
/// drained; epoch 0 trains each shard as it arrives against
/// @p prior_weights (indexed by node id, used verbatim), epochs >= 1
/// replay the assembled corpus against the exact rebuilt table.
///
/// @p prior_weights must have one entry per node with at least one
/// positive weight. Fails (tgl::util::Error) on an unsupported config,
/// an empty drained corpus, or training divergence.
StreamingResult train_sgns_streaming(
    util::ShardQueue<walk::CorpusShard>& queue, graph::NodeId num_nodes,
    const std::vector<double>& prior_weights,
    const StreamingSgnsConfig& config);

} // namespace tgl::embed
