file(REMOVE_RECURSE
  "CMakeFiles/test_graph_snapshot_reorder.dir/test_graph_snapshot_reorder.cpp.o"
  "CMakeFiles/test_graph_snapshot_reorder.dir/test_graph_snapshot_reorder.cpp.o.d"
  "test_graph_snapshot_reorder"
  "test_graph_snapshot_reorder.pdb"
  "test_graph_snapshot_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_snapshot_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
