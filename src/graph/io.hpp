/// @file
/// Edge-list file I/O.
///
/// The on-disk format is the artifact's `.wel` ("weighted edge list"):
/// one `src dst timestamp` triple per line, whitespace separated.
/// Loading reproduces the artifact's preprocess_dataset.py behaviour:
/// comment lines (# or %) are skipped and timestamps can optionally be
/// normalized to [0, 1].
#pragma once

#include "graph/edge_list.hpp"

#include <iosfwd>
#include <string>

namespace tgl::graph {

/// Options for edge-list loading.
struct LoadOptions
{
    /// Rescale timestamps onto [0, 1] after loading.
    bool normalize_timestamps = true;
    /// Treat a third column as optional (missing -> sequence order).
    bool allow_missing_timestamps = false;
};

/// Load a `.wel` edge list from a stream.
/// Throws tgl::util::Error on malformed lines.
EdgeList load_wel(std::istream& in, const LoadOptions& options = {});

/// Load a `.wel` edge list from a file path.
EdgeList load_wel_file(const std::string& path,
                       const LoadOptions& options = {});

/// Write an edge list in `.wel` format.
void save_wel(std::ostream& out, const EdgeList& edges);

/// Write an edge list to a file path.
void save_wel_file(const std::string& path, const EdgeList& edges);

} // namespace tgl::graph
