/// @file
/// Vocabulary over walk corpora.
///
/// In the graph-learning setting a "word" is a node id (SIV-C: the
/// pipeline is feature-less and uses the single-integer vertex id as
/// the feature). The vocabulary maps the node ids that actually occur
/// in the corpus onto dense word indices ordered by descending
/// frequency — the layout the negative-sampling table and the trainers
/// expect (frequent words first keeps their rows hot in cache).
#pragma once

#include "graph/types.hpp"
#include "walk/corpus.hpp"

#include <cstdint>
#include <limits>
#include <vector>

namespace tgl::embed {

/// Dense word index.
using WordId = std::uint32_t;

/// Sentinel for "node not in vocabulary".
inline constexpr WordId kNoWord = std::numeric_limits<WordId>::max();

/// Frequency-ordered vocabulary of node ids.
class Vocab
{
  public:
    Vocab() = default;

    /// Build from a corpus, dropping nodes occurring fewer than
    /// @p min_count times (word2vec's min-count filter).
    Vocab(const walk::Corpus& corpus, std::uint64_t min_count = 1);

    /// Number of distinct in-vocabulary words.
    std::size_t size() const { return counts_.size(); }

    /// Total in-vocabulary token occurrences.
    std::uint64_t total_tokens() const { return total_tokens_; }

    /// Occurrence count of word w.
    std::uint64_t count(WordId w) const { return counts_[w]; }

    /// Node id of word w.
    graph::NodeId node_of(WordId w) const { return nodes_[w]; }

    /// Word index of a node id, or kNoWord.
    WordId
    word_of(graph::NodeId node) const
    {
        return node < node_to_word_.size() ? node_to_word_[node] : kNoWord;
    }

    /// All occurrence counts in word order (for the negative table).
    const std::vector<std::uint64_t>& counts() const { return counts_; }

  private:
    std::vector<std::uint64_t> counts_;      // per word, descending
    std::vector<graph::NodeId> nodes_;       // word -> node id
    std::vector<WordId> node_to_word_;       // node id -> word
    std::uint64_t total_tokens_ = 0;
};

} // namespace tgl::embed
