#include "util/cancellation.hpp"

#include "util/logging.hpp"

#include <atomic>
#include <csignal>
#include <mutex>
#include <string>

namespace tgl::util {

namespace {

// The signal path may run at any time, so it touches only lock-free
// state; the programmatic path additionally records a reason string
// under a mutex. cancellation_requested() reads one relaxed atomic.
std::atomic<bool> g_cancelled{false};
volatile std::sig_atomic_t g_signal = 0;
std::mutex g_reason_mutex;
std::string g_reason;

extern "C" void
handle_cancel_signal(int signum)
{
    g_signal = signum;
    g_cancelled.store(true, std::memory_order_relaxed);
}

} // namespace

void
request_cancellation(const char* reason)
{
    {
        std::lock_guard<std::mutex> lock(g_reason_mutex);
        if (g_reason.empty()) { // first request wins
            g_reason = reason;
        }
    }
    g_cancelled.store(true, std::memory_order_relaxed);
}

bool
cancellation_requested()
{
    return g_cancelled.load(std::memory_order_relaxed);
}

std::string
cancellation_reason()
{
    if (!cancellation_requested()) {
        return "";
    }
    const int signum = g_signal;
    if (signum == SIGINT) {
        return "interrupted by signal SIGINT";
    }
    if (signum == SIGTERM) {
        return "interrupted by signal SIGTERM";
    }
    if (signum != 0) {
        return strcat("interrupted by signal ", signum);
    }
    std::lock_guard<std::mutex> lock(g_reason_mutex);
    return g_reason.empty() ? "cancellation requested" : g_reason;
}

void
reset_cancellation()
{
    std::lock_guard<std::mutex> lock(g_reason_mutex);
    g_reason.clear();
    g_signal = 0;
    g_cancelled.store(false, std::memory_order_relaxed);
}

void
check_cancellation(const char* where)
{
    if (cancellation_requested()) {
        throw Cancelled(strcat(cancellation_reason(), " — stopping at ",
                               where,
                               " (checkpoints written so far are intact; "
                               "rerun to resume)"));
    }
}

bool
install_signal_handlers()
{
    return std::signal(SIGINT, handle_cancel_signal) != SIG_ERR &&
           std::signal(SIGTERM, handle_cancel_signal) != SIG_ERR;
}

int
cancellation_signal()
{
    return static_cast<int>(g_signal);
}

} // namespace tgl::util
