#include "profiling/stall_model.hpp"

#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace tgl::prof {

const char*
stall_category_name(StallCategory category)
{
    switch (category) {
      case StallCategory::kImcMiss: return "imc-miss";
      case StallCategory::kComputeDependency: return "compute-dep";
      case StallCategory::kInstructionCacheMiss: return "icache-miss";
      case StallCategory::kScoreboardMemory: return "memory-dep";
      case StallCategory::kPipeBusy: return "pipe-busy";
      case StallCategory::kBarrier: return "barrier";
      case StallCategory::kTexQueue: return "tex-queue";
      case StallCategory::kOther: return "other";
      case StallCategory::kCount: break;
    }
    return "?";
}

StallDistribution
attribute_stalls(const StallModelInput& input)
{
    // Raw attribution weights: each category claims cycles in
    // proportion to the workload facts that cause it. The constants
    // are the single calibration of the model (fit once against the
    // paper's Fig. 11 kernels, then held fixed for every experiment).
    StallDistribution weights{};
    const double compute_share = input.ops.compute_fraction();
    const double memory_share = input.ops.memory_fraction();
    const double branch_share = input.ops.branch_fraction();

    // Little exposed parallelism => every warp reloads immediates and
    // code with no cache reuse (classifier kernels).
    const double starvation =
        1.0 / (1.0 + std::log2(1.0 + input.parallel_work_per_sync));

    weights[static_cast<std::size_t>(StallCategory::kImcMiss)] =
        6.0 * starvation;
    weights[static_cast<std::size_t>(StallCategory::kComputeDependency)] =
        2.2 * compute_share * input.long_latency_compute_fraction +
        0.15 * compute_share;
    weights[static_cast<std::size_t>(
        StallCategory::kInstructionCacheMiss)] = 1.5 * starvation;
    weights[static_cast<std::size_t>(StallCategory::kScoreboardMemory)] =
        1.8 * memory_share * input.irregular_access_fraction +
        0.10 * memory_share;
    weights[static_cast<std::size_t>(StallCategory::kPipeBusy)] =
        0.25 * compute_share;
    weights[static_cast<std::size_t>(StallCategory::kBarrier)] =
        0.9 * starvation + 0.05;
    weights[static_cast<std::size_t>(StallCategory::kTexQueue)] =
        0.8 * branch_share * input.work_variability;
    weights[static_cast<std::size_t>(StallCategory::kOther)] = 0.08;

    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    for (double& w : weights) {
        w /= total;
    }
    return weights;
}

StallModelInput
walk_stall_input(const walk::WalkProfile& profile,
                 walk::TransitionKind transition)
{
    StallModelInput input;
    input.ops = walk_op_counts(profile);
    // CSR traversal: offset load -> neighbor loads are dependent, but
    // within one vertex the slice streams (the paper notes the spatial
    // locality keeping memory-dep stalls low for this kernel).
    input.irregular_access_fraction = 0.25;
    input.long_latency_compute_fraction =
        (transition == walk::TransitionKind::kExponential ||
         transition == walk::TransitionKind::kExponentialDecay)
            ? 0.6
            : 0.1;
    const double steps = static_cast<double>(
        std::max<std::uint64_t>(profile.steps_taken, 1));
    const double walks = static_cast<double>(
        std::max<std::uint64_t>(profile.walks_started, 1));
    input.parallel_work_per_sync = walks;
    // Per-walk work varies with degree and timestamps; approximate the
    // CV from the dead-end rate (walks dying early diverge from the
    // pack).
    input.work_variability =
        0.5 + static_cast<double>(profile.dead_ends) / walks +
        0.1 * std::log2(1.0 + steps / walks);
    return input;
}

StallModelInput
w2v_stall_input(const embed::TrainStats& stats,
                const embed::SgnsConfig& config)
{
    StallModelInput input;
    input.ops = w2v_op_counts(stats, config);
    // Embedding-row addresses come from walk output (random vertex
    // ids): nearly every row access is data-dependent and irregular —
    // the paper's explanation for this kernel's memory-dep dominance.
    input.irregular_access_fraction = 0.85;
    input.long_latency_compute_fraction = 0.05; // LUT sigmoid, mul/add
    input.parallel_work_per_sync =
        static_cast<double>(std::max<std::uint64_t>(stats.pairs_trained, 1));
    input.work_variability = 0.3; // sentences are uniformly short
    return input;
}

StallModelInput
classifier_stall_input(std::size_t batch, std::size_t widest_layer,
                       const OpCounts& ops)
{
    StallModelInput input;
    input.ops = ops;
    // Dense GEMM streams; irregularity is negligible.
    input.irregular_access_fraction = 0.05;
    input.long_latency_compute_fraction = 0.05;
    // The paper's key fact: layers are tiny (d = 8 features), so a
    // launch exposes batch x width independent elements — orders of
    // magnitude below GPU saturation, making constant/immediate loads
    // un-amortized (IMC misses dominate, SM util < 10%).
    input.parallel_work_per_sync =
        static_cast<double>(batch) * static_cast<double>(widest_layer);
    input.work_variability = 0.1;
    return input;
}

std::string
format_stalls(const std::string& kernel, const StallDistribution& stalls)
{
    std::vector<std::size_t> order(stalls.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return stalls[a] > stalls[b];
    });
    std::string text = kernel + ":";
    for (std::size_t index : order) {
        text += util::strcat(
            " ", stall_category_name(static_cast<StallCategory>(index)),
            " ", util::format_fixed(stalls[index] * 100.0, 1), "%");
    }
    return text;
}

FoldedStalls
fold_stalls_frontend_backend(const StallDistribution& stalls)
{
    FoldedStalls folded;
    for (std::size_t c = 0; c < stalls.size(); ++c) {
        if (static_cast<StallCategory>(c) ==
            StallCategory::kInstructionCacheMiss) {
            folded.frontend += stalls[c];
        } else {
            folded.backend += stalls[c];
        }
    }
    return folded;
}

} // namespace tgl::prof
