/// @file
/// Table III reproduction: end-to-end phase time breakdown across
/// synthetic Erdős–Rényi graphs of growing edge counts, for the
/// standard CPU execution and the batched "GPU execution model"
/// word2vec (the cross-platform comparison column).
///
/// Paper findings: (1) classifier training dominates end-to-end time;
/// (2) every phase grows monotonically with graph size; (3) the
/// batched/GPU execution loses at small sizes (fixed overheads) and
/// wins at large sizes. The default run scales the paper's 1M-node
/// configs down 100x; pass --node-scale 1 for paper size.
#include "tgl/tgl.hpp"

#include <cstdio>

int
main(int argc, char** argv)
{
    using namespace tgl;
    util::CliParser cli("table3_time_breakdown",
                        "Table III: phase time breakdown vs graph size");
    cli.add_flag("node-scale", "0.01",
                 "scale on the paper's 1M-node configs");
    cli.add_flag("max-rows", "6", "how many of the 9 size rows to run");
    cli.add_flag("seed", "1", "random seed");
    try {
        if (!cli.parse(argc, argv)) {
            return 0;
        }
        const double node_scale = cli.get_double("node-scale");
        const long long max_rows = cli.get_int("max-rows");
        const auto seed =
            static_cast<std::uint64_t>(cli.get_int("seed"));

        // Paper rows: 1M nodes x {100k, 1M, 2M, 5M, 10M, 20M, 50M,
        // 100M, 200M} edges.
        const double edge_multipliers[] = {0.1, 1, 2, 5, 10, 20, 50,
                                           100, 200};
        const auto nodes = static_cast<graph::NodeId>(1e6 * node_scale);

        std::printf("# Table III reproduction — ER graphs, %s nodes "
                    "(paper: 1M), per-epoch train times; cpu = Hogwild "
                    "w2v, batched = GPU execution model\n",
                    util::format_count(nodes).c_str());
        std::printf("%-14s %10s %10s %12s %12s %12s %10s\n",
                    "graph", "rwalk(s)", "w2v-cpu(s)", "w2v-batch(s)",
                    "train/ep(s)", "test(s)", "total(s)");

        for (int row = 0;
             row < static_cast<int>(std::size(edge_multipliers)) &&
             row < max_rows;
             ++row) {
            const auto edge_count = static_cast<graph::EdgeId>(
                1e6 * edge_multipliers[row] * node_scale);
            const auto edges = gen::generate_erdos_renyi(
                {.num_nodes = nodes, .num_edges = edge_count,
                 .seed = seed});

            core::PipelineConfig config;
            config.walk.walks_per_node = 10;
            config.walk.max_length = 6;
            config.walk.seed = seed;
            config.sgns.dim = 8;
            config.sgns.epochs = 1;
            config.sgns.seed = seed;
            config.classifier.max_epochs = 3;

            const core::PipelineResult cpu =
                core::run_link_prediction_pipeline(edges, config);

            config.w2v_mode = core::W2vMode::kBatched;
            config.w2v_batch_size = 16384;
            const core::PipelineResult batched =
                core::run_link_prediction_pipeline(edges, config);

            std::printf(
                "%-3s,%-9s %10.3f %10.3f %12.3f %12.3f %12.3f %10.3f\n",
                util::format_count(nodes).c_str(),
                util::format_count(edge_count).c_str(),
                cpu.times.random_walk, cpu.times.word2vec,
                batched.times.word2vec, cpu.times.train_per_epoch,
                cpu.times.test, cpu.times.total());
        }
        std::printf("\n# paper shape check: train dominates total time; "
                    "all phases grow with edges; the batched w2v column "
                    "overtakes the cpu column as graphs grow.\n");
    } catch (const util::Error& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
