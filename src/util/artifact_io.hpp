/// @file
/// Crash-safe artifact I/O: atomic file replacement and a versioned,
/// CRC32-checksummed binary container shared by every persisted
/// artifact (walk corpus, embedding matrix, classifier weights,
/// pipeline checkpoints).
///
/// Two failure modes motivate this layer. First, a process killed
/// mid-write must never leave a half-written artifact where a valid one
/// is expected — atomic_write_file writes to a temporary sibling,
/// flushes, verifies the stream, and renames into place so readers see
/// either the old file or the complete new one. Second, a reader handed
/// a truncated, corrupted, or version-mismatched file must reject it
/// with a descriptive tgl::util::Error instead of parsing garbage —
/// ArtifactReader validates magic, container version, artifact kind,
/// declared payload size, and a CRC32 of the payload before a single
/// payload byte is handed to the caller.
///
/// Container layout (fixed-width little-endian integers):
///   magic              4 bytes  "TGLA"
///   container version  u32      layout version of this header (= 1)
///   kind               8 bytes  zero-padded ASCII artifact tag
///   payload version    u32      per-kind payload format version
///   fingerprint        u64      producer-defined dependency hash
///   payload size       u64      bytes following the header
///   payload CRC32      u32      checksum of the payload bytes
///   payload            payload-size bytes
#pragma once

#include "util/error.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace tgl::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range.
/// Pass a previous result as @p seed to checksum incrementally.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Order-sensitive FNV-1a accumulator used to key checkpoints by the
/// exact configuration and inputs that produced them. Mix every field
/// explicitly (never whole structs — padding bytes are indeterminate).
class Fingerprint
{
  public:
    /// Fold raw bytes into the hash.
    Fingerprint& mix_bytes(const void* data, std::size_t size);

    /// Fold one trivially copyable value into the hash.
    template <typename T>
    Fingerprint&
    mix(const T& value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "mix() needs a trivially copyable value");
        return mix_bytes(&value, sizeof(T));
    }

    /// Fold a string (length-prefixed, so "ab"+"c" != "a"+"bc").
    Fingerprint& mix(std::string_view text);

    /// Current hash value.
    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0xcbf29ce484222325ull; // FNV-1a offset basis
};

/// Atomically replace @p path: @p writer streams the content to a
/// temporary file in the same directory, which is flushed, closed,
/// checked for write errors (ENOSPC and quota failures surface here,
/// not silently), and renamed over @p path. On any failure the
/// temporary is removed, the original file is left untouched, and a
/// tgl::util::Error is thrown. Transient stream failures
/// (EINTR/EAGAIN-style) are retried with bounded backoff before the
/// error propagates.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer,
                       bool binary = false);

/// Move a corrupt artifact out of the way: rename @p path to
/// `<path>.corrupt.<timestamp>`, warn once per path (with @p why), and
/// bump the `recovery.quarantined` counter. Returns the quarantine
/// path, or "" if the rename failed (the warning still fires). The
/// caller regenerates the artifact; the quarantined file is kept for
/// post-mortem inspection.
std::string quarantine_artifact(const std::string& path,
                                const std::string& why);

/// Serializes one artifact into the container format. The payload is
/// buffered in memory so the CRC and size can be written up front;
/// nothing reaches @p out until finish().
class ArtifactWriter
{
  public:
    /// Maximum kind-tag length (the header field is fixed-width).
    static constexpr std::size_t kKindSize = 8;

    ArtifactWriter(std::ostream& out, std::string_view kind,
                   std::uint32_t payload_version,
                   std::uint64_t fingerprint);

    /// Append raw bytes to the payload.
    void write_bytes(const void* data, std::size_t size);

    /// Append one trivially copyable value.
    template <typename T>
    void
    write_pod(const T& value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write_bytes(&value, sizeof(T));
    }

    /// Append a length-prefixed string (u32 length + bytes).
    void write_string(std::string_view text);

    /// Emit header + payload and flush; throws Error if the stream
    /// reports failure. Must be called exactly once.
    void finish();

  private:
    std::ostream& out_;
    std::array<char, kKindSize> kind_{};
    std::uint32_t payload_version_;
    std::uint64_t fingerprint_;
    std::vector<char> payload_;
    bool finished_ = false;
};

/// Parses and validates one artifact. The constructor reads the whole
/// container, verifying magic, container version, kind, payload size,
/// and CRC32 — any mismatch (truncation, bit rot, wrong file) throws a
/// tgl::util::Error before the caller sees a byte of payload.
class ArtifactReader
{
  public:
    ArtifactReader(std::istream& in, std::string_view expected_kind);

    /// Per-kind payload format version from the header.
    std::uint32_t payload_version() const { return payload_version_; }

    /// Producer-defined dependency fingerprint from the header.
    std::uint64_t fingerprint() const { return fingerprint_; }

    /// Unread payload bytes.
    std::size_t remaining() const { return payload_.size() - pos_; }

    /// Copy @p size payload bytes out; throws Error on overrun.
    void read_bytes(void* data, std::size_t size);

    /// Read one trivially copyable value.
    template <typename T>
    T
    read_pod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        read_bytes(&value, sizeof(T));
        return value;
    }

    /// Read a length-prefixed string written by write_string.
    std::string read_string();

  private:
    std::uint32_t payload_version_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::vector<char> payload_;
    std::size_t pos_ = 0;
};

} // namespace tgl::util
