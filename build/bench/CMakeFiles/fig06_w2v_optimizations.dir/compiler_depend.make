# Empty compiler generated dependencies file for fig06_w2v_optimizations.
# This may be replaced when dependencies are built.
