# Empty compiler generated dependencies file for micro_w2v.
# This may be replaced when dependencies are built.
