#include "embed/sgns_model.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <atomic>
#include <cmath>
#include <string_view>

namespace tgl::embed {

namespace {

/// The reference per-target SGNS step, templated on the uncoalesced
/// model so both scalar backends share one body. Processing targets
/// strictly in sequence keeps these backends byte-identical to the
/// historic (pre-backend-interface) trainers regardless of how the
/// caller chunks the targets.
template <bool ScalarOnly>
void
scalar_update_targets(float* context_row, float* const* target_rows,
                      const float* labels, std::size_t count, unsigned dim,
                      float alpha, float* scratch)
{
    const SigmoidTable& sigmoid = SigmoidTable::instance();
    for (std::size_t t = 0; t < count; ++t) {
        float* target_row = target_rows[t];
        const float score =
            detail::dot(context_row, target_row, dim, ScalarOnly);
        const float gradient = (labels[t] - sigmoid(score)) * alpha;
        detail::axpy(gradient, target_row, scratch, dim, ScalarOnly);
        detail::axpy(gradient, context_row, target_row, dim, ScalarOnly);
    }
}

template <bool ScalarOnly>
float
scalar_dot(const float* a, const float* b, unsigned dim)
{
    return detail::dot(a, b, dim, ScalarOnly);
}

template <bool ScalarOnly>
void
scalar_axpy(float g, const float* x, float* y, unsigned dim)
{
    detail::axpy(g, x, y, dim, ScalarOnly);
}

void
scalar_sigmoid(const float* x, float* out, std::size_t n)
{
    const SigmoidTable& sigmoid = SigmoidTable::instance();
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = sigmoid(x[i]);
    }
}

} // namespace

const kernels::SgnsBackendOps&
kernels::scalar_sgns_ops()
{
    static const SgnsBackendOps ops{
        "scalar",           "generic",
        scalar_dot<false>,  scalar_axpy<false>,
        scalar_sigmoid,     scalar_update_targets<false>,
    };
    return ops;
}

const kernels::SgnsBackendOps&
kernels::modeled_scalar_sgns_ops()
{
    static const SgnsBackendOps ops{
        "scalar-modeled",  "generic",
        scalar_dot<true>,  scalar_axpy<true>,
        scalar_sigmoid,    scalar_update_targets<true>,
    };
    return ops;
}

const kernels::SgnsBackendOps&
sgns_kernel_ops(const SgnsConfig& config)
{
    const kernels::SgnsBackendOps& ops =
        [&]() -> const kernels::SgnsBackendOps& {
        if (!config.vectorized) {
            // An explicit simd request contradicts the modeled
            // uncoalesced path; validate() reports the same conflict
            // for pipeline configs, this guards direct trainer calls.
            if (config.backend == kernels::SgnsBackend::kSimd) {
                util::fatal("sgns backend 'simd' contradicts vectorized "
                            "= false (the modeled uncoalesced scalar "
                            "path); use backend 'scalar' or 'auto'");
            }
            return kernels::modeled_scalar_sgns_ops();
        }
        switch (config.backend) {
        case kernels::SgnsBackend::kScalar:
            return kernels::scalar_sgns_ops();
        case kernels::SgnsBackend::kSimd:
            return kernels::simd_sgns_ops();
        case kernels::SgnsBackend::kAuto:
        default:
            return std::string_view(kernels::simd_sgns_isa()) == "scalar"
                       ? kernels::scalar_sgns_ops()
                       : kernels::simd_sgns_ops();
        }
    }();

    obs::Registry::global()
        .counter(util::strcat("sgns.backend.", ops.name))
        .add(1);
    static std::atomic<bool> logged{false};
    if (!logged.exchange(true)) {
        util::inform(util::strcat("sgns kernel backend: ", ops.name, " (",
                                  ops.isa, ")"));
    }
    return ops;
}

std::vector<std::string>
SgnsConfig::validate() const
{
    std::vector<std::string> problems;
    if (dim == 0) {
        problems.push_back("dim must be >= 1");
    }
    if (window == 0) {
        problems.push_back("window must be >= 1");
    }
    if (epochs == 0) {
        problems.push_back("epochs must be >= 1");
    }
    if (!(alpha > 0.0f) || !std::isfinite(alpha)) {
        problems.push_back("alpha (learning rate) must be positive and "
                           "finite, got " + std::to_string(alpha));
    }
    if (!(subsample >= 0.0) || !std::isfinite(subsample)) {
        problems.push_back("subsample must be >= 0 and finite");
    }
    if (row_stride != 0 && row_stride < dim) {
        problems.push_back("row_stride must be 0 (packed) or >= dim, got " +
                           std::to_string(row_stride));
    }
    if (backend == kernels::SgnsBackend::kSimd && !vectorized) {
        problems.push_back(
            "sgns backend 'simd' contradicts vectorized = false (the "
            "modeled uncoalesced scalar path); use backend 'scalar' or "
            "'auto'");
    }
    return problems;
}

SgnsModel::SgnsModel(const Vocab& vocab, const SgnsConfig& config)
    : SgnsModel(vocab.size(), config)
{
}

SgnsModel::SgnsModel(std::size_t vocab_size, const SgnsConfig& config)
    : dim_(config.dim),
      stride_(config.row_stride == 0 ? config.dim : config.row_stride),
      vocab_size_(vocab_size)
{
    if (dim_ == 0) {
        util::fatal("SgnsModel: dim must be >= 1");
    }
    if (stride_ < dim_) {
        util::fatal("SgnsModel: row_stride must be >= dim");
    }
    input_.assign(vocab_size_ * stride_, 0.0f);
    output_.assign(vocab_size_ * stride_, 0.0f);

    // word2vec initialization: input uniform in (-0.5/dim, 0.5/dim),
    // output zero.
    rng::Random random(config.seed ^ 0x5bd1e995u);
    for (std::size_t w = 0; w < vocab_size_; ++w) {
        float* row = input_.data() + w * stride_;
        for (unsigned i = 0; i < dim_; ++i) {
            row[i] = (random.next_float() - 0.5f) /
                     static_cast<float>(dim_);
        }
    }
}

bool
SgnsModel::all_finite() const
{
    // Only the live dim_ columns matter; stride padding stays zero.
    for (const std::vector<float>* matrix : {&input_, &output_}) {
        for (std::size_t w = 0; w < vocab_size_; ++w) {
            const float* row = matrix->data() + w * stride_;
            for (unsigned i = 0; i < dim_; ++i) {
                if (!std::isfinite(row[i])) {
                    return false;
                }
            }
        }
    }
    return true;
}

Embedding
SgnsModel::to_embedding(graph::NodeId num_nodes) const
{
    TGL_ASSERT(vocab_size_ >= num_nodes);
    Embedding embedding(num_nodes, dim_);
    for (graph::NodeId node = 0; node < num_nodes; ++node) {
        auto out = embedding.row(node);
        const float* in = input_row(static_cast<WordId>(node));
        for (unsigned i = 0; i < dim_; ++i) {
            out[i] = in[i];
        }
    }
    return embedding;
}

Embedding
SgnsModel::to_embedding(const Vocab& vocab, graph::NodeId num_nodes) const
{
    Embedding embedding(num_nodes, dim_);
    for (WordId w = 0; w < vocab.size(); ++w) {
        const graph::NodeId node = vocab.node_of(w);
        TGL_ASSERT(node < num_nodes);
        auto out = embedding.row(node);
        const float* in = input_row(w);
        for (unsigned i = 0; i < dim_; ++i) {
            out[i] = in[i];
        }
    }
    return embedding;
}

void
sgns_update_pair(SgnsModel& model, WordId context, WordId center,
                 const NegativeTable& negatives, unsigned num_negatives,
                 float alpha, const kernels::SgnsBackendOps& ops,
                 rng::Random& random, float* scratch)
{
    const unsigned dim = model.dim();

    float* context_row = model.input_row(context);
    for (unsigned i = 0; i < dim; ++i) {
        scratch[i] = 0.0f;
    }

    // Positive target plus `num_negatives` sampled negatives, buffered
    // into chunks so the simd backend batches the sigmoid across them.
    // The negatives are drawn in the same RNG order as the reference
    // kernel, so the target sequence is backend-independent.
    float* rows[kernels::kSgnsTargetChunk];
    float labels[kernels::kSgnsTargetChunk];
    std::size_t count = 0;
    for (unsigned n = 0; n <= num_negatives; ++n) {
        WordId target;
        float label;
        if (n == 0) {
            target = center;
            label = 1.0f;
        } else {
            target = negatives.sample(random);
            if (target == center) {
                continue;
            }
            label = 0.0f;
        }
        rows[count] = model.output_row(target);
        labels[count] = label;
        if (++count == kernels::kSgnsTargetChunk) {
            ops.update_targets(context_row, rows, labels, count, dim,
                               alpha, scratch);
            count = 0;
        }
    }
    if (count > 0) {
        ops.update_targets(context_row, rows, labels, count, dim, alpha,
                           scratch);
    }
    ops.axpy(1.0f, scratch, context_row, dim);
}

void
sgns_update_pair_shared(SgnsModel& model, WordId context, WordId center,
                        std::span<const WordId> shared_negatives,
                        float alpha, const kernels::SgnsBackendOps& ops,
                        float* scratch)
{
    const unsigned dim = model.dim();

    float* context_row = model.input_row(context);
    for (unsigned i = 0; i < dim; ++i) {
        scratch[i] = 0.0f;
    }

    float* rows[kernels::kSgnsTargetChunk];
    float labels[kernels::kSgnsTargetChunk];
    std::size_t count = 0;
    const std::size_t targets = shared_negatives.size() + 1;
    for (std::size_t n = 0; n < targets; ++n) {
        WordId target;
        float label;
        if (n == 0) {
            target = center;
            label = 1.0f;
        } else {
            target = shared_negatives[n - 1];
            if (target == center) {
                continue;
            }
            label = 0.0f;
        }
        rows[count] = model.output_row(target);
        labels[count] = label;
        if (++count == kernels::kSgnsTargetChunk) {
            ops.update_targets(context_row, rows, labels, count, dim,
                               alpha, scratch);
            count = 0;
        }
    }
    if (count > 0) {
        ops.update_targets(context_row, rows, labels, count, dim, alpha,
                           scratch);
    }
    ops.axpy(1.0f, scratch, context_row, dim);
}

} // namespace tgl::embed
