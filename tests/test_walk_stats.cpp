/// Tests for walk-length distribution statistics (Fig. 4 machinery).
#include "walk/stats.hpp"

#include "gen/catalog.hpp"
#include "graph/builder.hpp"
#include "walk/engine.hpp"

#include <gtest/gtest.h>

namespace tgl::walk {
namespace {

Corpus
corpus_with_lengths(const std::vector<std::size_t>& lengths)
{
    Corpus corpus;
    std::vector<graph::NodeId> walk;
    for (std::size_t len : lengths) {
        walk.assign(len, 0);
        corpus.add_walk(walk);
    }
    return corpus;
}

TEST(LengthDistribution, CountsPerLength)
{
    const Corpus corpus = corpus_with_lengths({1, 2, 2, 3, 3, 3});
    const LengthDistribution dist = length_distribution(corpus);
    ASSERT_EQ(dist.counts.size(), 4u);
    EXPECT_EQ(dist.counts[1], 1u);
    EXPECT_EQ(dist.counts[2], 2u);
    EXPECT_EQ(dist.counts[3], 3u);
    EXPECT_EQ(dist.max_length, 3u);
}

TEST(LengthDistribution, MeanLength)
{
    const Corpus corpus = corpus_with_lengths({2, 4});
    const LengthDistribution dist = length_distribution(corpus);
    EXPECT_DOUBLE_EQ(dist.mean_length, 3.0);
}

TEST(LengthDistribution, ShortWalkFraction)
{
    const Corpus corpus = corpus_with_lengths({2, 3, 5, 6, 9});
    const LengthDistribution dist = length_distribution(corpus);
    EXPECT_DOUBLE_EQ(dist.short_walk_fraction, 3.0 / 5.0);
}

TEST(LengthDistribution, EmptyCorpus)
{
    const LengthDistribution dist = length_distribution(Corpus{});
    EXPECT_TRUE(dist.counts.empty());
    EXPECT_DOUBLE_EQ(dist.mean_length, 0.0);
}

TEST(LengthDistribution, DecayingTailHasNegativeSlope)
{
    std::vector<std::size_t> lengths;
    // Exponentially decaying: 512 walks of length 1, 256 of 2, ...
    for (std::size_t len = 1, count = 512; len <= 8;
         ++len, count /= 2) {
        for (std::size_t i = 0; i < count; ++i) {
            lengths.push_back(len);
        }
    }
    const LengthDistribution dist =
        length_distribution(corpus_with_lengths(lengths));
    EXPECT_LT(dist.tail_log_slope, -0.5);
}

TEST(LengthDistribution, Fig4ShapeOnWikiTalkStandIn)
{
    // The paper's Fig. 4 finding: temporal walk lengths on wiki-talk
    // concentrate on 1-5 tokens and decay exponentially beyond the
    // mode, despite a much larger length budget.
    const gen::Dataset dataset = gen::make_dataset("wiki-talk", 0.01, 3);
    const auto graph = graph::GraphBuilder::build(dataset.edges,
                                                  {.symmetrize = true});
    WalkConfig config;
    config.walks_per_node = 5;
    config.max_length = 40;
    config.min_walk_tokens = 1;
    const Corpus corpus = generate_walks(graph, config);
    const LengthDistribution dist = length_distribution(corpus);

    EXPECT_GT(dist.short_walk_fraction, 0.4);
    EXPECT_LT(dist.tail_log_slope, -0.05);
    EXPECT_LT(dist.mean_length, 10.0);
}

TEST(LengthDistribution, FormatContainsTable)
{
    const Corpus corpus = corpus_with_lengths({2, 2, 3});
    const std::string text =
        format_length_distribution(length_distribution(corpus));
    EXPECT_NE(text.find("length  count"), std::string::npos);
    EXPECT_NE(text.find("mean"), std::string::npos);
}

} // namespace
} // namespace tgl::walk
