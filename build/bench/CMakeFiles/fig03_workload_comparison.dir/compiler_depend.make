# Empty compiler generated dependencies file for fig03_workload_comparison.
# This may be replaced when dependencies are built.
