#include "nn/mlp.hpp"

#include "util/error.hpp"

namespace tgl::nn {

void
Mlp::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

const Tensor&
Mlp::forward(const Tensor& input)
{
    TGL_ASSERT(!layers_.empty());
    const Tensor* current = &input;
    for (auto& layer : layers_) {
        current = &layer->forward(*current);
    }
    return *current;
}

const Tensor&
Mlp::backward(const Tensor& grad_output)
{
    TGL_ASSERT(!layers_.empty());
    const Tensor* current = &grad_output;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        current = &layers_[i]->backward(*current);
    }
    return *current;
}

std::vector<Parameter*>
Mlp::parameters()
{
    std::vector<Parameter*> all;
    for (auto& layer : layers_) {
        for (Parameter* p : layer->parameters()) {
            all.push_back(p);
        }
    }
    return all;
}

std::size_t
Mlp::num_parameters()
{
    std::size_t count = 0;
    for (Parameter* p : parameters()) {
        count += p->value.size();
    }
    return count;
}

std::string
Mlp::describe() const
{
    std::string text;
    for (const auto& layer : layers_) {
        if (!text.empty()) {
            text += " -> ";
        }
        text += layer->describe();
    }
    return text;
}

Mlp
make_link_predictor(std::size_t input_dim, std::size_t hidden_dim,
                    rng::Random& random)
{
    Mlp net;
    net.add(std::make_unique<Linear>(input_dim, hidden_dim, random));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Linear>(hidden_dim, 1, random));
    net.add(std::make_unique<Sigmoid>());
    return net;
}

Mlp
make_residual_link_predictor(std::size_t input_dim, std::size_t hidden_dim,
                             std::size_t num_blocks, rng::Random& random)
{
    Mlp net;
    net.add(std::make_unique<Linear>(input_dim, hidden_dim, random));
    net.add(std::make_unique<ReLU>());
    for (std::size_t b = 0; b < num_blocks; ++b) {
        net.add(std::make_unique<ResidualBlock>(hidden_dim, random));
    }
    net.add(std::make_unique<Linear>(hidden_dim, 1, random));
    net.add(std::make_unique<Sigmoid>());
    return net;
}

Mlp
make_node_classifier(std::size_t input_dim, std::size_t hidden1,
                     std::size_t hidden2, std::size_t num_classes,
                     rng::Random& random)
{
    Mlp net;
    net.add(std::make_unique<Linear>(input_dim, hidden1, random));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Linear>(hidden1, hidden2, random));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<Linear>(hidden2, num_classes, random));
    net.add(std::make_unique<LogSoftmax>());
    return net;
}

} // namespace tgl::nn
