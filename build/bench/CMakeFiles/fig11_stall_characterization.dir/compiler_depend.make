# Empty compiler generated dependencies file for fig11_stall_characterization.
# This may be replaced when dependencies are built.
