#include "gen/rmat.hpp"

#include "util/error.hpp"

#include <cmath>

namespace tgl::gen {

graph::EdgeList
generate_rmat(const RmatParams& params)
{
    const double total = params.a + params.b + params.c + params.d;
    if (std::abs(total - 1.0) > 1e-6) {
        util::fatal("rmat: quadrant probabilities must sum to 1");
    }
    if (params.scale == 0 || params.scale > 31) {
        util::fatal("rmat: scale must be in [1, 31]");
    }
    rng::Random random(params.seed);
    graph::EdgeList edges;
    edges.reserve(params.num_edges);

    const double ab = params.a + params.b;
    const double abc = ab + params.c;
    for (graph::EdgeId i = 0; i < params.num_edges; ++i) {
        graph::NodeId src = 0;
        graph::NodeId dst = 0;
        for (unsigned bit = 0; bit < params.scale; ++bit) {
            const double u = random.next_double();
            src <<= 1;
            dst <<= 1;
            if (u < params.a) {
                // top-left: nothing set
            } else if (u < ab) {
                dst |= 1;
            } else if (u < abc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.add(src, dst, 0.0);
    }
    assign_timestamps(edges, params.timestamps, random);
    return edges;
}

} // namespace tgl::gen
