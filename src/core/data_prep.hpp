/// @file
/// Classifier data preparation — Fig. 7 of the paper.
///
/// Link prediction: edges are sorted by timestamp; the most recent 20%
/// become test positives (train on the past, test on the future), and
/// the remaining edges are randomly split 60/20 (of the total) into
/// train/validation positives. Each positive gets a negative sampled
/// by perturbing endpoints until the resulting pair is absent from the
/// graph. Edge features concatenate the endpoint embeddings,
/// f(e(u,v)) = [f(u), f(v)].
///
/// Node classification: labeled nodes are split 60/20/20 at random; a
/// node's feature is its embedding (no negative sampling needed).
#pragma once

#include "embed/embedding.hpp"
#include "graph/edge_list.hpp"
#include "graph/temporal_graph.hpp"
#include "nn/data_loader.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace tgl::core {

/// Split fractions and negative-sampling controls.
struct SplitConfig
{
    double train_fraction = 0.6;
    double valid_fraction = 0.2;
    double test_fraction = 0.2;
    /// Negative edges generated per positive edge.
    unsigned negatives_per_positive = 1;
    /// Bail-out attempts per negative before accepting a collision
    /// (dense graphs can make true negatives scarce).
    unsigned max_negative_attempts = 64;
    std::uint64_t seed = 7;

    /// All configuration problems, empty when the config is usable.
    std::vector<std::string> validate() const;
};

/// One labeled edge example.
struct EdgeSample
{
    graph::NodeId src = 0;
    graph::NodeId dst = 0;
    float label = 0.0f; ///< 1 = edge exists, 0 = negative sample
};

/// Positive + negative edge sets for the three splits.
struct LinkSplits
{
    std::vector<EdgeSample> train;
    std::vector<EdgeSample> valid;
    std::vector<EdgeSample> test;
};

/// Node-index splits for classification.
struct NodeSplits
{
    std::vector<graph::NodeId> train;
    std::vector<graph::NodeId> valid;
    std::vector<graph::NodeId> test;
};

/// Build the Fig. 7 link-prediction splits. @p graph is used for
/// negative-sample membership checks and must be built from @p edges.
LinkSplits prepare_link_splits(const graph::EdgeList& edges,
                               const graph::TemporalGraph& graph,
                               const SplitConfig& config);

/// Random 60/20/20 node split over [0, num_nodes).
NodeSplits prepare_node_splits(graph::NodeId num_nodes,
                               const SplitConfig& config);

/// Materialize edge features: (examples x 2d) rows [f(u), f(v)].
nn::TaskDataset make_edge_dataset(const std::vector<EdgeSample>& samples,
                                  const embed::Embedding& embedding);

/// Materialize node features: (examples x d) rows f(u) with labels.
nn::TaskDataset make_node_dataset(
    const std::vector<graph::NodeId>& nodes,
    const std::vector<std::uint32_t>& labels,
    const embed::Embedding& embedding);

/// Throw util::Error if @p dataset holds a NaN/inf feature. ReLU
/// activations silently absorb NaN inputs, so corrupt features must be
/// rejected before training, not detected via the loss.
void check_finite_features(const nn::TaskDataset& dataset,
                           const char* phase);

} // namespace tgl::core
