#include "obs/exposition.hpp"

#include "util/error.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace tgl::obs {

namespace {

bool
is_name_char(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Sample-value rendering. Unlike JSON, the exposition format has
/// spellings for non-finite values, so they pass through instead of
/// being clamped. Finite values use the shortest precision that still
/// round-trips, so a bound of 0.1 renders as le="0.1" rather than
/// le="0.10000000000000001".
std::string
prom_number(double value)
{
    if (std::isnan(value)) {
        return "NaN";
    }
    if (std::isinf(value)) {
        return value > 0 ? "+Inf" : "-Inf";
    }
    char buffer[64];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
        if (std::strtod(buffer, nullptr) == value) {
            break;
        }
    }
    return buffer;
}

bool
ends_with(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

void
render_histogram(std::string& out, const std::string& name,
                 const MetricValue& metric)
{
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < metric.bounds.size(); ++b) {
        cumulative += b < metric.bucket_counts.size()
                          ? metric.bucket_counts[b]
                          : 0;
        out += name + "_bucket{le=\"" + prom_number(metric.bounds[b]) +
               "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(metric.count) +
           "\n";
    out += name + "_sum " + prom_number(metric.sum) + "\n";
    out += name + "_count " + std::to_string(metric.count) + "\n";
}

} // namespace

std::string
prometheus_name(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        out += is_name_char(c) ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
        out.insert(out.begin(), '_');
    }
    return out;
}

std::string
render_prometheus(const MetricsSnapshot& snapshot)
{
    std::string out;
    out.reserve(snapshot.metrics.size() * 96);
    for (const MetricValue& metric : snapshot.metrics) {
        std::string name = prometheus_name(metric.name);
        switch (metric.kind) {
        case MetricKind::kCounter:
            if (!ends_with(name, "_total")) {
                name += "_total";
            }
            out += "# TYPE " + name + " counter\n";
            out += name + " " + prom_number(metric.value) + "\n";
            break;
        case MetricKind::kGauge:
            out += "# TYPE " + name + " gauge\n";
            out += name + " " + prom_number(metric.value) + "\n";
            break;
        case MetricKind::kHistogram:
            render_histogram(out, name, metric);
            break;
        }
    }
    return out;
}

void
write_prometheus_file(const Registry& registry, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        util::fatal("obs::exposition: cannot open " + path +
                    " for writing");
    }
    out << render_prometheus(registry.snapshot());
    if (!out) {
        util::fatal("obs::exposition: failed writing " + path);
    }
}

} // namespace tgl::obs
