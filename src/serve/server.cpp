#include "serve/server.hpp"

#include "nn/tensor.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/cancellation.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace tgl::serve {

namespace {

/// Shared instrument handles (registration is idempotent by name, so
/// every Server instance feeds the same registry cells).
struct ServeMetrics
{
    obs::Counter connections;
    obs::Counter requests;
    obs::Counter link_requests;
    obs::Counter link_pairs;
    obs::Counter knn_requests;
    obs::Counter bad_requests;
    obs::Counter oversized_rejected;
    obs::Counter reloads;
    obs::Gauge epoch;
    obs::Gauge inflight;
    obs::Gauge snapshot_bytes;
    obs::Gauge drained;
    obs::Histogram link_latency;
    obs::Histogram knn_latency;
    obs::Histogram batch_pairs;
    obs::Histogram stage_admission;
    obs::Histogram stage_queue;
    obs::Histogram stage_forward;
    obs::Histogram stage_serialize;
    obs::Histogram stage_total;
};

ServeMetrics&
metrics()
{
    static ServeMetrics m = [] {
        obs::Registry& r = obs::Registry::global();
        const std::vector<double> latency_bounds = {
            1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
            2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0};
        ServeMetrics handles;
        handles.connections = r.counter("serve.connections");
        handles.requests = r.counter("serve.requests");
        handles.link_requests = r.counter("serve.link.requests");
        handles.link_pairs = r.counter("serve.link.pairs");
        handles.knn_requests = r.counter("serve.knn.requests");
        handles.bad_requests = r.counter("serve.bad_requests");
        handles.oversized_rejected = r.counter("serve.oversized_rejected");
        handles.reloads = r.counter("serve.reloads");
        handles.epoch = r.gauge("serve.epoch");
        handles.inflight = r.gauge("serve.inflight");
        handles.snapshot_bytes = r.gauge("serve.snapshot_bytes");
        handles.drained = r.gauge("serve.drained");
        handles.link_latency =
            r.histogram("serve.link.latency_seconds", latency_bounds);
        handles.knn_latency =
            r.histogram("serve.knn.latency_seconds", latency_bounds);
        handles.batch_pairs = r.histogram(
            "serve.batch.pairs",
            {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
        handles.stage_admission =
            r.histogram("serve.stage.admission_seconds", latency_bounds);
        handles.stage_queue =
            r.histogram("serve.stage.queue_seconds", latency_bounds);
        handles.stage_forward =
            r.histogram("serve.stage.forward_seconds", latency_bounds);
        handles.stage_serialize =
            r.histogram("serve.stage.serialize_seconds", latency_bounds);
        handles.stage_total =
            r.histogram("serve.stage.total_seconds", latency_bounds);
        return handles;
    }();
    return m;
}

/// In-flight request gauge: the registry gauge stores last-value, so
/// track the live count in one shared atomic and mirror it.
std::atomic<std::int64_t> g_inflight{0};

struct InflightScope
{
    InflightScope()
    {
        metrics().inflight.set(static_cast<double>(
            g_inflight.fetch_add(1, std::memory_order_relaxed) + 1));
    }
    ~InflightScope()
    {
        metrics().inflight.set(static_cast<double>(
            g_inflight.fetch_sub(1, std::memory_order_relaxed) - 1));
    }
};

/// recv() exactly @p size bytes. SO_RCVTIMEO makes recv return EAGAIN
/// every poll interval so the loop can notice a drain request between
/// frames; @p started reports whether any byte of this read arrived,
/// letting the caller distinguish "idle between frames" (clean close on
/// drain) from "died mid-frame".
bool
read_exact(int fd, std::uint8_t* out, std::size_t size,
           const std::atomic<bool>& stopping, bool* started = nullptr)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, out + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            if (started != nullptr) {
                *started = true;
            }
            continue;
        }
        if (n == 0) {
            return false; // peer closed
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (stopping.load(std::memory_order_relaxed)) {
                return false;
            }
            continue;
        }
        return false;
    }
    return true;
}

bool
write_all(int fd, const std::uint8_t* data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
            continue;
        }
        return false;
    }
    return true;
}

bool
send_response(int fd, Status status, const std::vector<std::uint8_t>& body)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(4 + 1 + body.size());
    put_u32(frame, static_cast<std::uint32_t>(1 + body.size()));
    put_u8(frame, static_cast<std::uint8_t>(status));
    frame.insert(frame.end(), body.begin(), body.end());
    return write_all(fd, frame.data(), frame.size());
}

bool
send_error(int fd, Status status, const std::string& reason)
{
    std::vector<std::uint8_t> body(reason.begin(), reason.end());
    return send_response(fd, status, body);
}

} // namespace

std::vector<std::string>
ServeConfig::validate() const
{
    std::vector<std::string> problems;
    if (scorer_threads == 0) {
        problems.push_back("scorer_threads must be >= 1");
    }
    if (max_batch_pairs == 0) {
        problems.push_back("max_batch_pairs must be >= 1");
    }
    if (max_pairs_per_request == 0) {
        problems.push_back("max_pairs_per_request must be >= 1");
    }
    if (max_frame_bytes < 64) {
        problems.push_back("max_frame_bytes must be >= 64");
    }
    if (max_frame_bytes > kDefaultMaxFrameBytes) {
        problems.push_back("max_frame_bytes must be <= 1 MiB");
    }
    if (max_knn == 0) {
        problems.push_back("max_knn must be >= 1");
    }
    if (timeseries) {
        if (sample_interval_ms == 0 || sample_interval_ms > 60'000) {
            problems.push_back(
                "sample_interval_ms must be in [1, 60000]");
        }
        if (timeseries_capacity < 2) {
            problems.push_back("timeseries_capacity must be >= 2");
        }
    }
    if (request_tracing && slow_log_capacity == 0) {
        problems.push_back("slow_log_capacity must be >= 1");
    }
    return problems;
}

// ---------------------------------------------------------------------------
// Batcher

Batcher::Batcher(const SnapshotStore& store,
                 std::function<nn::Mlp()> classifier_factory,
                 unsigned threads, std::size_t max_batch_pairs,
                 bool tracing)
    : store_(store), classifier_factory_(std::move(classifier_factory)),
      threads_(threads), max_batch_pairs_(max_batch_pairs),
      tracing_(tracing)
{
}

Batcher::~Batcher() { stop(); }

void
Batcher::start()
{
    scorers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
        scorers_.emplace_back([this, i] { scorer_loop(i); });
    }
}

void
Batcher::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& scorer : scorers_) {
        if (scorer.joinable()) {
            scorer.join();
        }
    }
    scorers_.clear();
}

void
Batcher::submit_and_wait(const std::shared_ptr<ScoreJob>& job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // Connections are joined before the batcher stops, so this
            // only fires on misuse; fail the job instead of hanging.
            std::lock_guard<std::mutex> job_lock(job->mutex);
            job->error = "server draining";
            job->done = true;
            job->cv.notify_all();
            return;
        }
        queue_.push_back(job);
    }
    cv_.notify_one();
    std::unique_lock<std::mutex> job_lock(job->mutex);
    job->cv.wait(job_lock, [&] { return job->done; });
}

void
Batcher::scorer_loop(unsigned /*index*/)
{
    // Private replica: the Mlp forward pass reuses internal activation
    // buffers, so sharing one instance across threads would race.
    nn::Mlp net = classifier_factory_();
    nn::Tensor features;

    while (true) {
        std::vector<std::shared_ptr<ScoreJob>> batch;
        std::size_t total_pairs = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return; // stopping and fully drained
            }
            // Coalesce whole queued requests until the batch cap; the
            // first request always rides (a single request larger than
            // the cap becomes its own batch).
            while (!queue_.empty() &&
                   (batch.empty() ||
                    total_pairs + queue_.front()->pairs.size() <=
                        max_batch_pairs_)) {
                total_pairs += queue_.front()->pairs.size();
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }

        // One snapshot pin per batch: every job in this batch is scored
        // against a single epoch, never a mix.
        const std::shared_ptr<const EmbeddingSnapshot> snapshot =
            store_.acquire();
        const unsigned dim = snapshot->dim();
        const graph::NodeId num_nodes = snapshot->num_nodes();

        // Validate ids against the pinned snapshot (a reload may have
        // shrunk the graph between admission and scoring).
        std::vector<ScoreJob*> valid;
        std::size_t valid_pairs = 0;
        for (const auto& job : batch) {
            bool ok = true;
            for (const auto& [u, v] : job->pairs) {
                if (u >= num_nodes || v >= num_nodes) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                valid.push_back(job.get());
                valid_pairs += job->pairs.size();
            } else {
                job->error = "node id out of range";
            }
        }

        if (valid_pairs > 0) {
            metrics().batch_pairs.observe(
                static_cast<double>(valid_pairs));
            try {
                // Failpoint for chaos/CI: an injected delay here stalls
                // the forward stage, which the slow-request log must
                // then surface.
                util::fault_point("serve.score");
                features = nn::Tensor(valid_pairs, 2 * std::size_t{dim});
                std::size_t row = 0;
                for (ScoreJob* job : valid) {
                    for (const auto& [u, v] : job->pairs) {
                        float* out = features.row(row).data();
                        snapshot->gather_row(u, out);
                        snapshot->gather_row(v, out + dim);
                        ++row;
                    }
                }
                if (tracing_) {
                    const TracePoint assembled =
                        std::chrono::steady_clock::now();
                    for (ScoreJob* job : valid) {
                        job->trace.assembled = assembled;
                    }
                }
                const nn::Tensor& output = net.forward(features);
                if (tracing_) {
                    const TracePoint forward_done =
                        std::chrono::steady_clock::now();
                    for (ScoreJob* job : valid) {
                        job->trace.forward_done = forward_done;
                    }
                }
                row = 0;
                for (ScoreJob* job : valid) {
                    job->epoch = snapshot->epoch();
                    job->scores.resize(job->pairs.size());
                    for (std::size_t i = 0; i < job->pairs.size(); ++i) {
                        job->scores[i] = output(row++, 0);
                    }
                }
            } catch (const util::Error& error) {
                // A scoring failure (injected or real) fails this
                // batch's jobs instead of killing the scorer thread.
                for (ScoreJob* job : valid) {
                    job->error = util::strcat("score: ", error.what());
                }
            }
        }

        for (const auto& job : batch) {
            std::lock_guard<std::mutex> job_lock(job->mutex);
            job->done = true;
            job->cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Server

Server::Server(ServeConfig config,
               std::shared_ptr<const EmbeddingSnapshot> initial,
               std::function<nn::Mlp()> classifier_factory)
    : config_(std::move(config)),
      batcher_(store_, std::move(classifier_factory),
               config_.scorer_threads, config_.max_batch_pairs,
               config_.request_tracing),
      slow_log_(config_.slow_log_capacity)
{
    if (const auto problems = config_.validate(); !problems.empty()) {
        util::fatal(util::strcat("serve config: ", problems.front()));
    }
    if (initial == nullptr) {
        util::fatal("serve: initial snapshot required");
    }
    epoch_.store(initial->epoch(), std::memory_order_relaxed);
    publish(std::move(initial));
}

Server::~Server() { stop(); }

std::uint64_t
Server::epoch() const
{
    return epoch_.load(std::memory_order_relaxed);
}

void
Server::publish(std::shared_ptr<const EmbeddingSnapshot> snapshot)
{
    epoch_.store(snapshot->epoch(), std::memory_order_relaxed);
    metrics().epoch.set(static_cast<double>(snapshot->epoch()));
    metrics().snapshot_bytes.set(
        static_cast<double>(snapshot->payload_bytes()));
    store_.publish(std::move(snapshot));
}

std::uint64_t
Server::next_epoch()
{
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
Server::start()
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        util::fatal(util::strcat("serve: socket(): ",
                                 std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        util::fatal(util::strcat("serve: bad host ", config_.host));
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        util::fatal(util::strcat("serve: cannot bind ", config_.host, ":",
                                 config_.port, ": ",
                                 std::strerror(errno)));
    }
    if (::listen(listen_fd_, 128) != 0) {
        util::fatal(util::strcat("serve: listen(): ",
                                 std::strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    port_ = ntohs(bound.sin_port);

    if (config_.timeseries) {
        obs::TimeseriesConfig ts;
        ts.interval_ms = config_.sample_interval_ms;
        ts.capacity = config_.timeseries_capacity;
        recorder_ = std::make_unique<obs::FlightRecorder>(
            obs::Registry::global(), std::move(ts));
        recorder_->start();
    }
    batcher_.start();
    acceptor_ = std::thread([this] { acceptor_loop(); });
    started_.store(true, std::memory_order_release);
}

void
Server::acceptor_loop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            // stop() shuts the listening socket down to unblock us.
            if (stopping_.load(std::memory_order_relaxed)) {
                return;
            }
            continue;
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // The poll interval for noticing a drain between frames.
        timeval timeout{};
        timeout.tv_usec = 50'000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));

        metrics().connections.inc();
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection* raw = connection.get();
        {
            std::lock_guard<std::mutex> lock(connections_mutex_);
            reap_finished_connections();
            connections_.push_back(std::move(connection));
        }
        raw->thread = std::thread([this, raw] { connection_loop(raw); });
    }
}

void
Server::reap_finished_connections()
{
    // Called under connections_mutex_. Joining a finished thread is
    // instant, so long-running servers do not accumulate one zombie
    // std::thread per past connection.
    std::erase_if(connections_, [](const auto& connection) {
        if (!connection->finished.load(std::memory_order_acquire)) {
            return false;
        }
        if (connection->thread.joinable()) {
            connection->thread.join();
        }
        return true;
    });
}

void
Server::connection_loop(Connection* connection)
{
    const int fd = connection->fd;
    std::vector<std::uint8_t> payload;
    while (true) {
        std::uint8_t header[4];
        bool started_frame = false;
        if (!read_exact(fd, header, sizeof(header), stopping_,
                        &started_frame)) {
            break; // peer closed, error, or drain between frames
        }
        std::uint32_t length = 0;
        std::memcpy(&length, header, sizeof(length));
        if (length == 0) {
            metrics().bad_requests.inc();
            send_error(fd, Status::kBadRequest, "empty frame");
            break;
        }
        if (length > config_.max_frame_bytes) {
            metrics().oversized_rejected.inc();
            metrics().bad_requests.inc();
            send_error(fd, Status::kBadRequest,
                       util::strcat("oversized frame: ", length, " > ",
                                    config_.max_frame_bytes, " bytes"));
            break;
        }
        payload.resize(length);
        if (!read_exact(fd, payload.data(), length, stopping_)) {
            break; // truncated frame: peer died mid-send
        }
        metrics().requests.inc();
        if (!handle_frame(fd, payload.data(), payload.size())) {
            break;
        }
    }
    ::close(fd);
    connection->finished.store(true, std::memory_order_release);
}

bool
Server::handle_frame(int fd, const std::uint8_t* payload, std::size_t size)
{
    InflightScope inflight;
    std::size_t at = 0;
    std::uint8_t opcode = 0;
    if (!get_u8(payload, size, at, opcode)) {
        metrics().bad_requests.inc();
        send_error(fd, Status::kBadRequest, "empty payload");
        return false;
    }
    switch (static_cast<Op>(opcode)) {
    case Op::kPing: {
        if (size != 1) {
            break;
        }
        const auto snapshot = store_.acquire();
        std::vector<std::uint8_t> body;
        put_u64(body, snapshot->epoch());
        put_u64(body, snapshot->fingerprint());
        put_u32(body, snapshot->num_nodes());
        put_u32(body, snapshot->dim());
        put_u8(body, static_cast<std::uint8_t>(snapshot->quant()));
        return send_response(fd, Status::kOk, body);
    }
    case Op::kLinkScore:
        return handle_link_score(fd, payload, size);
    case Op::kKnn:
        return handle_knn(fd, payload, size);
    case Op::kStats: {
        if (size != 1) {
            break;
        }
        std::string json = obs::Registry::global().snapshot().to_json();
        // Splice the slow-request log in as a sibling of "metrics" so
        // existing consumers of the registry schema keep working.
        if (const std::size_t brace = json.rfind('}');
            brace != std::string::npos) {
            json.insert(brace, ",\n  \"slow_requests\": " +
                                   slow_log_.to_json() + "\n");
        }
        std::vector<std::uint8_t> body(json.begin(), json.end());
        return send_response(fd, Status::kOk, body);
    }
    case Op::kReload:
        return handle_reload(fd, payload, size);
    case Op::kMetricsText: {
        if (size != 1) {
            break;
        }
        const std::string text =
            obs::render_prometheus(obs::Registry::global().snapshot());
        std::vector<std::uint8_t> body(text.begin(), text.end());
        return send_response(fd, Status::kOk, body);
    }
    case Op::kTimeseries: {
        if (size != 1) {
            break;
        }
        if (recorder_ == nullptr) {
            // Operator asked for history on a server running without
            // the recorder: a server-side condition, and the
            // connection stays usable.
            send_error(fd, Status::kServerError,
                       "timeseries: flight recorder disabled");
            return true;
        }
        const std::string json = recorder_->to_json();
        std::vector<std::uint8_t> body(json.begin(), json.end());
        return send_response(fd, Status::kOk, body);
    }
    }
    metrics().bad_requests.inc();
    send_error(fd, Status::kBadRequest,
               util::strcat("malformed frame (opcode ",
                            static_cast<unsigned>(opcode), ")"));
    return false;
}

bool
Server::handle_link_score(int fd, const std::uint8_t* payload,
                          std::size_t size)
{
    util::Timer timer;
    const bool tracing = config_.request_tracing;
    const TracePoint accepted =
        tracing ? std::chrono::steady_clock::now() : TracePoint{};
    std::size_t at = 1;
    std::uint32_t count = 0;
    const auto reject = [&](const std::string& reason) {
        metrics().bad_requests.inc();
        send_error(fd, Status::kBadRequest, reason);
        return false;
    };
    if (!get_u32(payload, size, at, count) || count == 0) {
        return reject("link-score: missing pair count");
    }
    if (count > config_.max_pairs_per_request) {
        return reject(util::strcat("link-score: ", count,
                                   " pairs exceeds the per-request cap ",
                                   config_.max_pairs_per_request));
    }
    if (size != at + std::size_t{count} * 8) {
        return reject("link-score: body size does not match pair count");
    }
    auto job = std::make_shared<ScoreJob>();
    job->pairs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t u = 0, v = 0;
        get_u32(payload, size, at, u);
        get_u32(payload, size, at, v);
        job->pairs.emplace_back(u, v);
    }
    metrics().link_requests.inc();
    metrics().link_pairs.add(count);
    if (tracing) {
        job->trace.request_id = next_request_id();
        job->trace.accepted = accepted;
        job->trace.enqueued = std::chrono::steady_clock::now();
    }
    batcher_.submit_and_wait(job);
    if (!job->error.empty()) {
        return reject(util::strcat("link-score: ", job->error));
    }
    std::vector<std::uint8_t> body;
    body.reserve(job->scores.size() * sizeof(float));
    for (const float score : job->scores) {
        put_f32(body, score);
    }
    const bool ok = send_response(fd, Status::kOk, body);
    metrics().link_latency.observe(timer.seconds());
    if (tracing) {
        job->trace.serialized = std::chrono::steady_clock::now();
        record_trace(*job);
    }
    return ok;
}

void
Server::record_trace(const ScoreJob& job)
{
    const RequestTrace& trace = job.trace;
    if (!trace.complete()) {
        return; // failed or partially traced request
    }
    SlowRequestRecord record;
    record.request_id = trace.request_id;
    record.epoch = job.epoch;
    record.pairs = job.pairs.size();
    record.admission_seconds =
        RequestTrace::seconds_between(trace.accepted, trace.enqueued);
    record.queue_seconds =
        RequestTrace::seconds_between(trace.enqueued, trace.assembled);
    record.forward_seconds =
        RequestTrace::seconds_between(trace.assembled, trace.forward_done);
    record.serialize_seconds =
        RequestTrace::seconds_between(trace.forward_done, trace.serialized);
    record.total_seconds =
        RequestTrace::seconds_between(trace.accepted, trace.serialized);
    metrics().stage_admission.observe(record.admission_seconds);
    metrics().stage_queue.observe(record.queue_seconds);
    metrics().stage_forward.observe(record.forward_seconds);
    metrics().stage_serialize.observe(record.serialize_seconds);
    metrics().stage_total.observe(record.total_seconds);
    slow_log_.record(record);
}

bool
Server::handle_knn(int fd, const std::uint8_t* payload, std::size_t size)
{
    util::Timer timer;
    std::size_t at = 1;
    std::uint32_t node = 0, k = 0;
    const auto reject = [&](const std::string& reason) {
        metrics().bad_requests.inc();
        send_error(fd, Status::kBadRequest, reason);
        return false;
    };
    if (!get_u32(payload, size, at, node) ||
        !get_u32(payload, size, at, k) || at != size) {
        return reject("knn: body must be (node, k)");
    }
    if (k == 0 || k > config_.max_knn) {
        return reject(util::strcat("knn: k must be in [1, ",
                                   config_.max_knn, "]"));
    }
    const auto snapshot = store_.acquire();
    if (node >= snapshot->num_nodes()) {
        return reject("knn: node id out of range");
    }
    metrics().knn_requests.inc();
    const auto neighbors = snapshot->nearest(node, k);
    std::vector<std::uint8_t> body;
    body.reserve(4 + neighbors.size() * 8);
    put_u32(body, static_cast<std::uint32_t>(neighbors.size()));
    for (const auto& [id, score] : neighbors) {
        put_u32(body, id);
        put_f32(body, score);
    }
    const bool ok = send_response(fd, Status::kOk, body);
    metrics().knn_latency.observe(timer.seconds());
    return ok;
}

bool
Server::handle_reload(int fd, const std::uint8_t* payload, std::size_t size)
{
    const std::string path(reinterpret_cast<const char*>(payload) + 1,
                           size - 1);
    if (path.empty()) {
        metrics().bad_requests.inc();
        send_error(fd, Status::kBadRequest, "reload: empty path");
        return false;
    }
    try {
        std::uint64_t fingerprint = 0;
        embed::Embedding embedding;
        if (path.size() > 5 &&
            path.compare(path.size() - 5, 5, ".tgla") == 0) {
            embedding = embed::Embedding::load_binary_file(path,
                                                           &fingerprint);
        } else {
            embedding = embed::Embedding::load_file(path);
        }
        const auto current = store_.acquire();
        if (embedding.dim() != current->dim()) {
            // The classifier replicas are fixed at 2*dim inputs; a
            // different width cannot be hot-swapped.
            send_error(fd, Status::kServerError,
                       util::strcat("reload: dim ", embedding.dim(),
                                    " != served dim ", current->dim()));
            return true;
        }
        const auto snapshot = EmbeddingSnapshot::build(
            embedding, config_.quant, next_epoch(), fingerprint);
        publish(snapshot);
        metrics().reloads.inc();
        std::vector<std::uint8_t> body;
        put_u64(body, snapshot->epoch());
        return send_response(fd, Status::kOk, body);
    } catch (const util::Error& error) {
        // Load/validation failure: the previous snapshot stays
        // published and the connection stays usable.
        send_error(fd, Status::kServerError,
                   util::strcat("reload: ", error.what()));
        return true;
    }
}

void
Server::stop()
{
    if (!started_.load(std::memory_order_acquire)) {
        batcher_.stop();
        return;
    }
    if (stopping_.exchange(true)) {
        return;
    }
    // 1. Stop accepting: shutdown unblocks a blocked accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    // 2. Drain connections: each thread finishes its in-flight request
    // (including its queued batcher work) and exits at the next
    // between-frames poll.
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (const auto& connection : connections_) {
            if (connection->thread.joinable()) {
                connection->thread.join();
            }
        }
        connections_.clear();
    }
    // 3. Only then stop the scorers (the queue is empty by now).
    batcher_.stop();
    // 4. One final sample so the recorded history covers the drain,
    // then park the sampler. The history stays queryable.
    if (recorder_ != nullptr) {
        recorder_->sample_now();
        recorder_->stop();
    }
    metrics().drained.set(1.0);
}

std::string
Server::timeseries_json() const
{
    return recorder_ != nullptr ? recorder_->to_json() : "{}\n";
}

void
Server::run_until_cancelled()
{
    while (!util::cancellation_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    stop();
}

} // namespace tgl::serve
