/// Tests for the unigram^0.75 negative-sampling table.
#include "embed/negative_table.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tgl::embed {
namespace {

walk::Corpus
corpus_with_counts(const std::vector<std::pair<graph::NodeId, int>>& spec)
{
    walk::Corpus corpus;
    std::vector<graph::NodeId> walk;
    for (const auto& [node, count] : spec) {
        for (int i = 0; i < count; ++i) {
            walk.push_back(node);
        }
    }
    corpus.add_walk(walk);
    return corpus;
}

TEST(NegativeTable, AliasProbabilitiesFollowThreeQuarterPower)
{
    // counts 16 and 1: weights 16^0.75 = 8 and 1 -> probs 8/9, 1/9.
    const Vocab vocab(corpus_with_counts({{0, 16}, {1, 1}}));
    const NegativeTable table(vocab, NegativeTableKind::kAlias);
    EXPECT_NEAR(table.probability(0), 8.0 / 9.0, 1e-9);
    EXPECT_NEAR(table.probability(1), 1.0 / 9.0, 1e-9);
}

TEST(NegativeTable, AliasEmpiricalDistribution)
{
    const Vocab vocab(corpus_with_counts({{0, 16}, {1, 1}}));
    const NegativeTable table(vocab);
    rng::Random random(1);
    int zero_draws = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (table.sample(random) == 0) {
            ++zero_draws;
        }
    }
    EXPECT_NEAR(zero_draws / static_cast<double>(kDraws), 8.0 / 9.0,
                0.01);
}

TEST(NegativeTable, ArrayModeApproximatesAlias)
{
    const Vocab vocab(
        corpus_with_counts({{0, 100}, {1, 50}, {2, 10}, {3, 1}}));
    const NegativeTable alias(vocab, NegativeTableKind::kAlias);
    const NegativeTable array(vocab, NegativeTableKind::kArray, 1 << 16);
    for (WordId w = 0; w < 4; ++w) {
        EXPECT_NEAR(array.probability(w), alias.probability(w), 0.01)
            << "word " << w;
    }
}

TEST(NegativeTable, ArrayEmpiricalDistribution)
{
    const Vocab vocab(corpus_with_counts({{0, 81}, {1, 1}}));
    const NegativeTable table(vocab, NegativeTableKind::kArray, 1 << 14);
    rng::Random random(2);
    int zero_draws = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        if (table.sample(random) == 0) {
            ++zero_draws;
        }
    }
    // 81^0.75 = 27 -> p0 = 27/28.
    EXPECT_NEAR(zero_draws / static_cast<double>(kDraws), 27.0 / 28.0,
                0.01);
}

TEST(NegativeTable, EmptyVocabThrows)
{
    EXPECT_THROW(NegativeTable(Vocab{}), util::Error);
}

TEST(NegativeTable, ArraySmallerThanVocabThrows)
{
    const Vocab vocab(
        corpus_with_counts({{0, 1}, {1, 1}, {2, 1}, {3, 1}}));
    EXPECT_THROW(NegativeTable(vocab, NegativeTableKind::kArray, 2),
                 util::Error);
}

TEST(NegativeTable, EveryWordReachableInArrayMode)
{
    const Vocab vocab(
        corpus_with_counts({{0, 1000}, {1, 100}, {2, 10}, {3, 1}}));
    const NegativeTable table(vocab, NegativeTableKind::kArray, 1 << 16);
    for (WordId w = 0; w < 4; ++w) {
        EXPECT_GT(table.probability(w), 0.0) << "word " << w;
    }
}

} // namespace
} // namespace tgl::embed
