#include "gen/timestamps.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

namespace tgl::gen {

TimestampModel
parse_timestamp_model(const std::string& name)
{
    if (name == "uniform") {
        return TimestampModel::kUniform;
    }
    if (name == "arrival") {
        return TimestampModel::kArrivalOrder;
    }
    if (name == "bursty") {
        return TimestampModel::kBursty;
    }
    util::fatal(util::strcat("unknown timestamp model: ", name));
}

void
assign_timestamps(graph::EdgeList& edges, TimestampModel model,
                  rng::Random& random)
{
    const std::size_t m = edges.size();
    if (m == 0) {
        return;
    }
    switch (model) {
      case TimestampModel::kUniform:
        for (std::size_t i = 0; i < m; ++i) {
            edges[i].time = random.next_double();
        }
        break;
      case TimestampModel::kArrivalOrder:
        for (std::size_t i = 0; i < m; ++i) {
            edges[i].time =
                m == 1 ? 0.0
                       : static_cast<double>(i) / static_cast<double>(m - 1);
        }
        break;
      case TimestampModel::kBursty: {
        // Base Poisson arrivals at rate 1; after any edge there is a
        // 30% chance the process enters a burst where gaps shrink 50x,
        // producing the heavy clustering of reply/retweet chains.
        constexpr double kBurstProbability = 0.3;
        constexpr double kBurstRateBoost = 50.0;
        double clock = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const double rate =
                random.next_bernoulli(kBurstProbability)
                    ? kBurstRateBoost
                    : 1.0;
            clock += random.next_exponential(rate);
            edges[i].time = clock;
        }
        break;
      }
    }
    edges.normalize_timestamps();
}

} // namespace tgl::gen
