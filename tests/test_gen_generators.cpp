/// Unit + property tests for the synthetic graph generators.
#include "gen/barabasi_albert.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "gen/timestamps.hpp"

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tgl::gen {
namespace {

void
expect_normalized_times(const graph::EdgeList& edges)
{
    for (const graph::TemporalEdge& e : edges) {
        EXPECT_GE(e.time, 0.0);
        EXPECT_LE(e.time, 1.0);
    }
}

TEST(ErdosRenyi, ExactCounts)
{
    const auto edges = generate_erdos_renyi(
        {.num_nodes = 100, .num_edges = 1000, .seed = 1});
    EXPECT_EQ(edges.size(), 1000u);
    EXPECT_LE(edges.num_nodes(), 100u);
    expect_normalized_times(edges);
}

TEST(ErdosRenyi, NoSelfLoopsByDefault)
{
    const auto edges = generate_erdos_renyi(
        {.num_nodes = 20, .num_edges = 2000, .seed = 2});
    for (const graph::TemporalEdge& e : edges) {
        EXPECT_NE(e.src, e.dst);
    }
}

TEST(ErdosRenyi, DeterministicForSeed)
{
    const ErdosRenyiParams params{.num_nodes = 50, .num_edges = 200,
                                  .seed = 7};
    const auto a = generate_erdos_renyi(params);
    const auto b = generate_erdos_renyi(params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]);
    }
}

TEST(ErdosRenyi, EmptyVertexSetWithEdgesThrows)
{
    EXPECT_THROW(generate_erdos_renyi({.num_nodes = 0, .num_edges = 5}),
                 util::Error);
}

TEST(ErdosRenyi, DegreesRoughlyUniform)
{
    const auto edges = generate_erdos_renyi(
        {.num_nodes = 100, .num_edges = 10000, .seed = 3});
    const auto graph = graph::GraphBuilder::build(edges);
    const auto stats = graph::compute_stats(graph);
    // Mean degree 100; Poisson tail makes degree > 200 essentially
    // impossible.
    EXPECT_LT(stats.max_out_degree, 200u);
    EXPECT_EQ(stats.num_isolated, 0u);
}

TEST(BarabasiAlbert, CountsAndValidity)
{
    const auto edges = generate_barabasi_albert(
        {.num_nodes = 500, .edges_per_node = 2, .seed = 4});
    EXPECT_GE(edges.size(), 2u * (500 - 3));
    EXPECT_EQ(edges.num_nodes(), 500u);
    expect_normalized_times(edges);
}

TEST(BarabasiAlbert, ProducesSkewedDegrees)
{
    const auto edges = generate_barabasi_albert(
        {.num_nodes = 2000, .edges_per_node = 2, .seed = 5});
    const auto graph =
        graph::GraphBuilder::build(edges, {.symmetrize = true});
    const auto stats = graph::compute_stats(graph);
    // Hubs should far exceed the mean degree (~4-5).
    EXPECT_GT(stats.max_out_degree, 30u);
}

TEST(BarabasiAlbert, TooFewNodesThrows)
{
    EXPECT_THROW(
        generate_barabasi_albert({.num_nodes = 2, .edges_per_node = 3}),
        util::Error);
}

TEST(BarabasiAlbert, DeterministicForSeed)
{
    const BarabasiAlbertParams params{.num_nodes = 100,
                                      .edges_per_node = 2,
                                      .seed = 11};
    const auto a = generate_barabasi_albert(params);
    const auto b = generate_barabasi_albert(params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]);
    }
}

TEST(Rmat, CountsAndIdBounds)
{
    const auto edges =
        generate_rmat({.scale = 8, .num_edges = 5000, .seed = 6});
    EXPECT_EQ(edges.size(), 5000u);
    for (const graph::TemporalEdge& e : edges) {
        EXPECT_LT(e.src, 256u);
        EXPECT_LT(e.dst, 256u);
    }
}

TEST(Rmat, SkewedQuadrantsGiveSkewedDegrees)
{
    const auto skewed =
        generate_rmat({.scale = 10, .num_edges = 20000, .seed = 7});
    const auto uniform = generate_rmat({.scale = 10,
                                        .num_edges = 20000,
                                        .a = 0.25,
                                        .b = 0.25,
                                        .c = 0.25,
                                        .d = 0.25,
                                        .seed = 7});
    const auto skewed_stats = graph::compute_stats(
        graph::GraphBuilder::build(skewed));
    const auto uniform_stats = graph::compute_stats(
        graph::GraphBuilder::build(uniform));
    EXPECT_GT(skewed_stats.max_out_degree,
              2 * uniform_stats.max_out_degree);
}

TEST(Rmat, InvalidProbabilitiesThrow)
{
    EXPECT_THROW(generate_rmat({.scale = 4,
                                .num_edges = 10,
                                .a = 0.9,
                                .b = 0.9,
                                .c = 0.1,
                                .d = 0.1}),
                 util::Error);
    EXPECT_THROW(generate_rmat({.scale = 0, .num_edges = 10}),
                 util::Error);
}

TEST(Sbm, LabelsAndClassCount)
{
    const LabeledGraph result = generate_sbm(
        {.num_nodes = 300, .num_edges = 3000, .num_communities = 3,
         .label_noise = 0.0, .seed = 8});
    EXPECT_EQ(result.num_classes, 3u);
    ASSERT_EQ(result.labels.size(), 300u);
    for (std::uint32_t label : result.labels) {
        EXPECT_LT(label, 3u);
    }
    // Balanced round-robin assignment (before noise).
    std::vector<int> per_class(3, 0);
    for (std::uint32_t label : result.labels) {
        ++per_class[label];
    }
    EXPECT_EQ(per_class[0], 100);
    EXPECT_EQ(per_class[1], 100);
    EXPECT_EQ(per_class[2], 100);
}

TEST(Sbm, AssortativeStructure)
{
    const LabeledGraph result = generate_sbm(
        {.num_nodes = 400, .num_edges = 8000, .num_communities = 4,
         .intra_probability = 0.9, .label_noise = 0.0, .seed = 9});
    std::size_t intra = 0;
    for (const graph::TemporalEdge& e : result.edges.edges()) {
        if (e.src % 4 == e.dst % 4) {
            ++intra;
        }
    }
    const double fraction =
        static_cast<double>(intra) / result.edges.size();
    EXPECT_NEAR(fraction, 0.9, 0.03);
}

TEST(Sbm, LabelNoiseFlipsApproximatelyRequestedFraction)
{
    const LabeledGraph result = generate_sbm(
        {.num_nodes = 2000, .num_edges = 2000, .num_communities = 2,
         .label_noise = 0.2, .seed = 10});
    std::size_t flipped = 0;
    for (graph::NodeId u = 0; u < 2000; ++u) {
        if (result.labels[u] != u % 2) {
            ++flipped;
        }
    }
    EXPECT_NEAR(static_cast<double>(flipped) / 2000.0, 0.2, 0.04);
}

TEST(Sbm, InvalidParamsThrow)
{
    EXPECT_THROW(generate_sbm({.num_nodes = 10, .num_communities = 0}),
                 util::Error);
    EXPECT_THROW(generate_sbm({.num_nodes = 2, .num_communities = 5}),
                 util::Error);
    EXPECT_THROW(generate_sbm({.num_nodes = 10,
                               .num_communities = 2,
                               .intra_probability = 1.5}),
                 util::Error);
}

TEST(DriftingSbm, BasicShapeAndMonotoneTimes)
{
    const LabeledGraph result = generate_drifting_sbm(
        {.num_nodes = 200, .num_edges = 5000, .num_communities = 4,
         .switch_fraction = 0.5, .seed = 11});
    EXPECT_EQ(result.num_classes, 4u);
    EXPECT_EQ(result.labels.size(), 200u);
    EXPECT_EQ(result.edges.size(), 5000u);
    EXPECT_TRUE(result.edges.is_time_sorted());
    for (std::uint32_t label : result.labels) {
        EXPECT_LT(label, 4u);
    }
}

TEST(DriftingSbm, LateEdgesMatchFinalLabels)
{
    // Edges near t=1 must be assortative w.r.t. the FINAL labels; the
    // earliest edges reflect initial (round-robin) memberships instead.
    const LabeledGraph result = generate_drifting_sbm(
        {.num_nodes = 400, .num_edges = 20000, .num_communities = 4,
         .intra_probability = 0.9, .switch_fraction = 0.6, .seed = 12});
    std::size_t late_intra_final = 0, late_total = 0;
    std::size_t early_intra_initial = 0, early_total = 0;
    for (const graph::TemporalEdge& e : result.edges) {
        if (e.time > 0.95) {
            ++late_total;
            if (result.labels[e.src] == result.labels[e.dst]) {
                ++late_intra_final;
            }
        } else if (e.time < 0.05) {
            ++early_total;
            if (e.src % 4 == e.dst % 4) {
                ++early_intra_initial;
            }
        }
    }
    ASSERT_GT(late_total, 100u);
    ASSERT_GT(early_total, 100u);
    EXPECT_GT(static_cast<double>(late_intra_final) / late_total, 0.8);
    EXPECT_GT(static_cast<double>(early_intra_initial) / early_total,
              0.8);
}

TEST(DriftingSbm, SwitchFractionZeroKeepsInitialLabels)
{
    const LabeledGraph result = generate_drifting_sbm(
        {.num_nodes = 100, .num_edges = 1000, .num_communities = 2,
         .switch_fraction = 0.0, .seed = 13});
    for (graph::NodeId u = 0; u < 100; ++u) {
        EXPECT_EQ(result.labels[u], u % 2);
    }
}

TEST(DriftingSbm, InvalidParamsThrow)
{
    EXPECT_THROW(generate_drifting_sbm({.num_nodes = 100,
                                        .num_communities = 1}),
                 util::Error);
    EXPECT_THROW(generate_drifting_sbm({.num_nodes = 3,
                                        .num_communities = 4}),
                 util::Error);
}

TEST(BarabasiAlbert, RecencyBiasConcentratesLateEdgesOnLateNodes)
{
    // With strong recency bias, targets of the last edges should be
    // recently arrived nodes far more often than under pure BA.
    BarabasiAlbertParams params{.num_nodes = 2000, .edges_per_node = 2,
                                .seed = 14};
    params.recency_bias = 0.0;
    const auto pure = generate_barabasi_albert(params);
    params.recency_bias = 0.9;
    const auto recent = generate_barabasi_albert(params);
    const auto late_target_fraction = [](const graph::EdgeList& edges) {
        std::size_t late = 0, total = 0;
        for (std::size_t i = edges.size() - edges.size() / 10;
             i < edges.size(); ++i) {
            ++total;
            if (edges[i].dst > 1000) {
                ++late;
            }
        }
        return static_cast<double>(late) / static_cast<double>(total);
    };
    EXPECT_GT(late_target_fraction(recent),
              late_target_fraction(pure) + 0.1);
}

class TimestampModelTest
    : public ::testing::TestWithParam<TimestampModel>
{
};

TEST_P(TimestampModelTest, NormalizedAndDeterministic)
{
    graph::EdgeList edges;
    for (int i = 0; i < 500; ++i) {
        edges.add(0, 1, 0.0);
    }
    rng::Random r1(21), r2(21);
    graph::EdgeList copy = edges;
    assign_timestamps(edges, GetParam(), r1);
    assign_timestamps(copy, GetParam(), r2);
    expect_normalized_times(edges);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_DOUBLE_EQ(edges[i].time, copy[i].time);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, TimestampModelTest,
                         ::testing::Values(TimestampModel::kUniform,
                                           TimestampModel::kArrivalOrder,
                                           TimestampModel::kBursty));

TEST(Timestamps, ArrivalOrderIsMonotone)
{
    graph::EdgeList edges;
    for (int i = 0; i < 100; ++i) {
        edges.add(0, 1, 0.0);
    }
    rng::Random random(1);
    assign_timestamps(edges, TimestampModel::kArrivalOrder, random);
    EXPECT_TRUE(edges.is_time_sorted());
    EXPECT_DOUBLE_EQ(edges[0].time, 0.0);
    EXPECT_DOUBLE_EQ(edges[99].time, 1.0);
}

TEST(Timestamps, BurstyIsMonotoneAndClustered)
{
    graph::EdgeList edges;
    for (int i = 0; i < 2000; ++i) {
        edges.add(0, 1, 0.0);
    }
    rng::Random random(2);
    assign_timestamps(edges, TimestampModel::kBursty, random);
    EXPECT_TRUE(edges.is_time_sorted());
    // Bursts create many tiny gaps: the median gap should be far below
    // the mean gap.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < edges.size(); ++i) {
        gaps.push_back(edges[i].time - edges[i - 1].time);
    }
    std::sort(gaps.begin(), gaps.end());
    const double median = gaps[gaps.size() / 2];
    const double mean = 1.0 / static_cast<double>(gaps.size());
    EXPECT_LT(median, mean * 0.75);
}

TEST(Timestamps, ParseNames)
{
    EXPECT_EQ(parse_timestamp_model("uniform"), TimestampModel::kUniform);
    EXPECT_EQ(parse_timestamp_model("arrival"),
              TimestampModel::kArrivalOrder);
    EXPECT_EQ(parse_timestamp_model("bursty"), TimestampModel::kBursty);
    EXPECT_THROW(parse_timestamp_model("bogus"), util::Error);
}

} // namespace
} // namespace tgl::gen
