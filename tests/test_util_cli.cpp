/// Unit tests for util/cli.
#include "util/cli.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

namespace tgl::util {
namespace {

CliParser
make_parser()
{
    CliParser cli("tool", "test tool");
    cli.add_flag("walks", "10", "walks per node");
    cli.add_flag("name", "default", "dataset name");
    cli.add_flag("scale", "0.5", "scale factor");
    cli.add_switch("verbose", "chatty");
    return cli;
}

TEST(Cli, DefaultsApply)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.get_int("walks"), 10);
    EXPECT_EQ(cli.get_string("name"), "default");
    EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
    EXPECT_FALSE(cli.get_switch("verbose"));
}

TEST(Cli, SpaceSeparatedValues)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "--walks", "20", "--name", "wiki-talk"};
    ASSERT_TRUE(cli.parse(5, argv));
    EXPECT_EQ(cli.get_int("walks"), 20);
    EXPECT_EQ(cli.get_string("name"), "wiki-talk");
}

TEST(Cli, EqualsSeparatedValues)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "--walks=7", "--scale=2.5"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_EQ(cli.get_int("walks"), 7);
    EXPECT_DOUBLE_EQ(cli.get_double("scale"), 2.5);
}

TEST(Cli, SwitchForms)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "--verbose"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.get_switch("verbose"));
}

TEST(Cli, UnknownFlagThrows)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "--bogus", "1"};
    EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, MissingValueThrows)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "--walks"};
    EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, UnregisteredAccessThrows)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_THROW(cli.get_string("nope"), Error);
}

TEST(Cli, PositionalArgumentsCollected)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "input.wel", "--walks", "3", "extra"};
    ASSERT_TRUE(cli.parse(5, argv));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.wel");
    EXPECT_EQ(cli.positional()[1], "extra");
}

TEST(Cli, HelpReturnsFalse)
{
    CliParser cli = make_parser();
    const char* argv[] = {"tool", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpTextListsFlags)
{
    CliParser cli = make_parser();
    const std::string help = cli.help();
    EXPECT_NE(help.find("--walks"), std::string::npos);
    EXPECT_NE(help.find("--verbose"), std::string::npos);
}

} // namespace
} // namespace tgl::util
