/// @file
/// Named phase timing with hierarchical accumulation, used by the
/// benchmark drivers to build Table III-style breakdowns.
#pragma once

#include "obs/trace.hpp"
#include "util/timer.hpp"

#include <string>
#include <utility>
#include <vector>

namespace tgl::prof {

/// Accumulates wall-clock seconds under string keys, preserving first-
/// use order.
class PhaseTimer
{
  public:
    /// Add seconds to a phase (created on first use).
    void add(const std::string& phase, double seconds);

    /// Time a callable and record it under @p phase; returns its
    /// result. The measured section also shows up as a trace span
    /// ("phase.<name>") when a session is active.
    template <typename Fn>
    auto
    measure(const std::string& phase, Fn&& fn)
    {
        const obs::Span span("phase." + phase);
        util::Timer timer;
        if constexpr (std::is_void_v<decltype(fn())>) {
            fn();
            add(phase, timer.seconds());
        } else {
            auto result = fn();
            add(phase, timer.seconds());
            return result;
        }
    }

    /// Accumulated seconds for a phase (0 if never recorded).
    double seconds(const std::string& phase) const;

    /// All phases in first-use order.
    const std::vector<std::pair<std::string, double>>&
    phases() const
    {
        return phases_;
    }

    /// Sum of all phases.
    double total() const;

    /// Render "phase: x.xxx s" lines plus a total.
    std::string format() const;

    /// Drop all recorded phases.
    void reset() { phases_.clear(); }

  private:
    std::vector<std::pair<std::string, double>> phases_;
};

} // namespace tgl::prof
