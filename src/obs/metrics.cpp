#include "obs/metrics.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace tgl::obs {

namespace {

/// Round-trippable double rendering; JSON has no Inf/NaN so degenerate
/// values are clamped to 0 (mirrors bench/bench_json.hpp).
std::string
json_number(double value)
{
    if (!(value == value) || value > 1e308 || value < -1e308) {
        return "0";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

const char*
kind_name(MetricKind kind)
{
    switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    }
    return "unknown";
}

} // namespace

// --- Shard -----------------------------------------------------------

Registry::Shard::~Shard()
{
    for (std::atomic<Cell*>& block : blocks) {
        delete[] block.load(std::memory_order_relaxed);
    }
}

Registry::Cell*
Registry::Shard::try_cell(std::uint32_t index) const
{
    const std::uint32_t block = index >> kBlockShift;
    if (block >= kMaxBlocks) {
        return nullptr;
    }
    Cell* cells = blocks[block].load(std::memory_order_acquire);
    return cells != nullptr ? cells + (index & (kBlockSize - 1)) : nullptr;
}

Registry::Cell*
Registry::ensure_block(Shard& shard, std::uint32_t block)
{
    TGL_ASSERT(block < Shard::kMaxBlocks);
    const std::lock_guard<std::mutex> lock(mutex_);
    Cell* cells = shard.blocks[block].load(std::memory_order_acquire);
    if (cells == nullptr) {
        // Value-initialized: every cell starts at zero.
        cells = new Cell[Shard::kBlockSize]();
        shard.blocks[block].store(cells, std::memory_order_release);
    }
    return cells;
}

Registry::Cell*
Registry::shard_cell(Shard& shard, std::uint32_t index)
{
    const std::uint32_t block = index >> Shard::kBlockShift;
    TGL_ASSERT(block < Shard::kMaxBlocks);
    Cell* cells = shard.blocks[block].load(std::memory_order_acquire);
    if (cells == nullptr) {
        cells = ensure_block(shard, block);
    }
    return cells + (index & (Shard::kBlockSize - 1));
}

Registry::Shard*
Registry::local_shard()
{
    struct CacheEntry
    {
        const Registry* registry;
        std::uint64_t id;
        Shard* shard;
    };
    struct Cache
    {
        const Registry* registry = nullptr;
        std::uint64_t id = 0;
        Shard* shard = nullptr;
        std::vector<CacheEntry> all;
    };
    // One-entry inline cache over a per-thread list: the common case
    // (a thread reporting into one registry) is two compares. Entries
    // are keyed by (pointer, process-unique id) so a registry destroyed
    // and reallocated at the same address can never alias a stale
    // shard pointer.
    thread_local Cache cache;
    if (cache.registry == this && cache.id == id_) {
        return cache.shard;
    }
    for (const CacheEntry& entry : cache.all) {
        if (entry.registry == this && entry.id == id_) {
            cache.registry = this;
            cache.id = id_;
            cache.shard = entry.shard;
            return entry.shard;
        }
    }
    auto owned = std::make_unique<Shard>();
    Shard* shard = owned.get();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(owned));
    }
    cache.all.push_back({this, id_, shard});
    cache.registry = this;
    cache.id = id_;
    cache.shard = shard;
    return shard;
}

// --- Registry --------------------------------------------------------

Registry::Registry()
{
    static std::atomic<std::uint64_t> next_id{1};
    id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Registry::~Registry() = default;

Registry&
Registry::global()
{
    static Registry registry;
    return registry;
}

std::uint32_t
Registry::intern(std::string_view name, MetricKind kind,
                 std::uint32_t num_cells, std::vector<double> bounds)
{
    if (name.empty()) {
        util::fatal("obs::Registry: metric name must be non-empty");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint32_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name) {
            MetricInfo& existing = metrics_[i];
            if (existing.kind != kind) {
                util::fatal("obs::Registry: metric '" + std::string(name) +
                            "' already registered as " +
                            kind_name(existing.kind));
            }
            if (kind == MetricKind::kHistogram &&
                !std::equal(bounds.begin(), bounds.end(),
                            existing.bounds.get(),
                            existing.bounds.get() + existing.num_bounds)) {
                // The registered bounds win (handles already point at
                // them); warn once so the conflicting call site is
                // discoverable instead of silently mis-bucketing.
                if (!existing.bounds_warned) {
                    existing.bounds_warned = true;
                    ++bounds_mismatches_;
                    util::warn("obs::Registry: histogram '" +
                               std::string(name) +
                               "' re-registered with different bounds; "
                               "keeping the original " +
                               std::to_string(existing.num_bounds) +
                               "-bucket layout");
                }
            }
            return i;
        }
    }
    MetricInfo info;
    info.name = std::string(name);
    info.kind = kind;
    info.num_cells = num_cells;
    if (kind == MetricKind::kGauge) {
        info.first_cell = next_gauge_cell_;
        next_gauge_cell_ += num_cells;
    } else {
        info.first_cell = next_cell_;
        next_cell_ += num_cells;
    }
    if (!bounds.empty()) {
        info.num_bounds = static_cast<std::uint32_t>(bounds.size());
        info.bounds = std::make_unique<double[]>(bounds.size());
        std::copy(bounds.begin(), bounds.end(), info.bounds.get());
    }
    metrics_.push_back(std::move(info));
    return static_cast<std::uint32_t>(metrics_.size() - 1);
}

Counter
Registry::counter(std::string_view name)
{
    const std::uint32_t index =
        intern(name, MetricKind::kCounter, 1, {});
    return Counter(this, metrics_[index].first_cell);
}

Gauge
Registry::gauge(std::string_view name)
{
    const std::uint32_t index = intern(name, MetricKind::kGauge, 1, {});
    return Gauge(this, metrics_[index].first_cell);
}

Histogram
Registry::histogram(std::string_view name, std::vector<double> bounds)
{
    if (bounds.empty()) {
        util::fatal("obs::Registry: histogram '" + std::string(name) +
                    "' needs at least one bucket bound");
    }
    for (const double bound : bounds) {
        if (!std::isfinite(bound)) {
            util::fatal("obs::Registry: histogram '" + std::string(name) +
                        "' has a non-finite bucket bound (NaN/Inf); the "
                        "overflow bucket already covers +Inf");
        }
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        if (bounds[i] == bounds[i - 1]) {
            util::fatal("obs::Registry: histogram '" + std::string(name) +
                        "' has a duplicate bucket bound (" +
                        std::to_string(bounds[i]) + ")");
        }
        if (bounds[i] < bounds[i - 1]) {
            util::fatal("obs::Registry: histogram '" + std::string(name) +
                        "' bounds must be sorted strictly increasing");
        }
    }
    // Cells: one per bound, one overflow bucket, one sum (double bits).
    const auto num_bounds = static_cast<std::uint32_t>(bounds.size());
    const std::uint32_t index = intern(name, MetricKind::kHistogram,
                                       num_bounds + 2, std::move(bounds));
    const MetricInfo& info = metrics_[index];
    return Histogram(this, info.first_cell, info.bounds.get(),
                     info.num_bounds);
}

std::uint64_t
Registry::histogram_bounds_mismatches() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return bounds_mismatches_;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.metrics.reserve(metrics_.size());
    const auto sum_cell = [this](std::uint32_t index) {
        std::uint64_t total = 0;
        for (const std::unique_ptr<Shard>& shard : shards_) {
            if (const Cell* cell = shard->try_cell(index)) {
                total += cell->load(std::memory_order_relaxed);
            }
        }
        return total;
    };
    const auto sum_cell_double = [this](std::uint32_t index) {
        double total = 0.0;
        for (const std::unique_ptr<Shard>& shard : shards_) {
            if (const Cell* cell = shard->try_cell(index)) {
                total += std::bit_cast<double>(
                    cell->load(std::memory_order_relaxed));
            }
        }
        return total;
    };
    for (const MetricInfo& info : metrics_) {
        MetricValue value;
        value.name = info.name;
        value.kind = info.kind;
        switch (info.kind) {
        case MetricKind::kCounter:
            value.value =
                static_cast<double>(sum_cell(info.first_cell));
            break;
        case MetricKind::kGauge:
            if (const Cell* cell = central_.try_cell(info.first_cell)) {
                value.value = std::bit_cast<double>(
                    cell->load(std::memory_order_relaxed));
            }
            break;
        case MetricKind::kHistogram: {
            value.bounds.assign(info.bounds.get(),
                                info.bounds.get() + info.num_bounds);
            value.bucket_counts.resize(info.num_bounds + 1);
            for (std::uint32_t b = 0; b <= info.num_bounds; ++b) {
                value.bucket_counts[b] = sum_cell(info.first_cell + b);
                value.count += value.bucket_counts[b];
            }
            value.sum =
                sum_cell_double(info.first_cell + info.num_bounds + 1);
            break;
        }
        }
        snap.metrics.push_back(std::move(value));
    }
    return snap;
}

void
Registry::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto zero_shard = [](Shard& shard) {
        for (std::atomic<Cell*>& block : shard.blocks) {
            Cell* cells = block.load(std::memory_order_acquire);
            if (cells == nullptr) {
                continue;
            }
            for (std::uint32_t i = 0; i < Shard::kBlockSize; ++i) {
                cells[i].store(0, std::memory_order_relaxed);
            }
        }
    };
    for (const std::unique_ptr<Shard>& shard : shards_) {
        zero_shard(*shard);
    }
    zero_shard(central_);
}

void
Registry::write_json(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        util::fatal("obs::Registry: cannot open " + path + " for writing");
    }
    out << snapshot().to_json();
    if (!out) {
        util::fatal("obs::Registry: failed writing " + path);
    }
}

// --- Handles ---------------------------------------------------------

void
Counter::add(std::uint64_t delta) const
{
    if (registry_ == nullptr || delta == 0) {
        return;
    }
    Registry::Shard* shard = registry_->local_shard();
    registry_->shard_cell(*shard, cell_)
        ->fetch_add(delta, std::memory_order_relaxed);
}

void
Gauge::set(double value) const
{
    if (registry_ == nullptr) {
        return;
    }
    registry_->shard_cell(registry_->central_, cell_)
        ->store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

void
Histogram::observe(double value) const
{
    if (registry_ == nullptr) {
        return;
    }
    std::uint32_t bucket = 0;
    while (bucket < num_bounds_ && value > bounds_[bucket]) {
        ++bucket;
    }
    Registry::Shard* shard = registry_->local_shard();
    registry_->shard_cell(*shard, first_cell_ + bucket)
        ->fetch_add(1, std::memory_order_relaxed);
    // The sum cell has a single writer (this thread's shard), so a
    // relaxed read-modify-write of the double bits cannot lose updates.
    Registry::Cell* sum =
        registry_->shard_cell(*shard, first_cell_ + num_bounds_ + 1);
    const double current =
        std::bit_cast<double>(sum->load(std::memory_order_relaxed));
    sum->store(std::bit_cast<std::uint64_t>(current + value),
               std::memory_order_relaxed);
}

// --- Snapshot --------------------------------------------------------

const MetricValue*
MetricsSnapshot::find(std::string_view name) const
{
    for (const MetricValue& metric : metrics) {
        if (metric.name == name) {
            return &metric;
        }
    }
    return nullptr;
}

double
MetricsSnapshot::value(std::string_view name) const
{
    const MetricValue* metric = find(name);
    if (metric == nullptr) {
        return 0.0;
    }
    return metric->kind == MetricKind::kHistogram
               ? static_cast<double>(metric->count)
               : metric->value;
}

std::string
MetricsSnapshot::to_json() const
{
    std::string out = "{\n  \"schema_version\": 1,\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const MetricValue& metric = metrics[i];
        out += "    {\"name\": \"" + util::json_escape(metric.name) +
               "\", \"type\": \"" + kind_name(metric.kind) + "\"";
        if (metric.kind == MetricKind::kHistogram) {
            out += ", \"count\": " +
                   std::to_string(metric.count) + ", \"sum\": " +
                   json_number(metric.sum) + ", \"bounds\": [";
            for (std::size_t b = 0; b < metric.bounds.size(); ++b) {
                out += json_number(metric.bounds[b]);
                if (b + 1 < metric.bounds.size()) {
                    out += ", ";
                }
            }
            out += "], \"counts\": [";
            for (std::size_t b = 0; b < metric.bucket_counts.size(); ++b) {
                out += std::to_string(metric.bucket_counts[b]);
                if (b + 1 < metric.bucket_counts.size()) {
                    out += ", ";
                }
            }
            out += "]";
        } else {
            out += ", \"value\": " + json_number(metric.value);
        }
        out += "}";
        if (i + 1 < metrics.size()) {
            out += ",";
        }
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace tgl::obs
